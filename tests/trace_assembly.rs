//! Trace assembly under topology churn (`DESIGN.md` §14): the
//! `cluster-trace` assembler must keep explaining requests when the
//! cluster is anything but static.
//!
//! * **Live migration** — a session's requests stay traceable before
//!   and after a mid-stream move, and the migration's own rid
//!   assembles into a tree whose shard-side `checkpoint`/`restore`
//!   phases span two processes.
//! * **Shard-kill failover** — after the home shard dies behind the
//!   router's back, the rid of a request that shard served still
//!   assembles: the live tiers contribute their spans, and the dead
//!   shard's part of the story is sourced from its frozen black-box
//!   journal (`via=journal` leaves). A trace must never go dark just
//!   because the process that served it did.

use std::time::{Duration, Instant};

use snn_cluster::{Cluster, ClusterConfig, ClusterLimits};
use snn_data::Image;
use snn_serve::protocol::{format_request, parse_response, Request};
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer};
use spikedyn::Method;

fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

fn stream(seed: u64, total: u64) -> Vec<Image> {
    let gen = snn_data::SyntheticDigits::new(seed);
    (0..total)
        .map(|i| {
            gen.sample((i % 10) as u8, seed.wrapping_mul(1000) + i)
                .downsample(4)
        })
        .collect()
}

/// True when any node in the subtree carries the phase label.
fn has_phase(node: &snn_obs::TraceNode, phase: &str) -> bool {
    node.phase == phase || node.children.iter().any(|c| has_phase(c, phase))
}

/// Sends a raw request line and returns (reply fields, the rid the
/// routed reply carried).
fn call_for_rid(client: &mut ServeClient, line: &str) -> String {
    let reply = client.call_raw(line).expect("round trip");
    let resp = parse_response(&reply).expect("well-formed reply");
    resp.get("rid")
        .unwrap_or_else(|| panic!("routed reply must carry a rid: {reply}"))
        .to_string()
}

#[test]
fn trace_assembly_survives_a_live_migration() {
    let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();

    let full = stream(80, 16);
    client.open("roam", tiny_spec(80)).unwrap();
    let rid_before = call_for_rid(
        &mut client,
        &format_request(&Request::Ingest {
            id: "roam".to_string(),
            images: full[..8].to_vec(),
        }),
    );

    let here = cluster.session_shard("roam").unwrap();
    let there = cluster
        .shard_ids()
        .into_iter()
        .find(|&s| s != here)
        .unwrap();
    cluster.migrate_session("roam", there).unwrap();
    let rid_after = call_for_rid(
        &mut client,
        &format_request(&Request::Ingest {
            id: "roam".to_string(),
            images: full[8..].to_vec(),
        }),
    );

    // Requests on both sides of the move assemble the full phase chain —
    // the post-move tree is built from a *different* shard's spans, and
    // the assembler cannot tell (nor should it).
    for rid in [&rid_before, &rid_after] {
        let tree = client.cluster_trace(rid).unwrap();
        assert_eq!(tree.rid, *rid);
        assert_eq!(tree.root.phase, "accept");
        for phase in ["relay", "request", "queue_wait", "exec"] {
            assert!(
                has_phase(&tree.root, phase),
                "rid {rid}: missing `{phase}` in:\n{}",
                tree.render()
            );
        }
    }

    // The migration's own rid tells the move's story across two shards:
    // the forwarded checkpoint (old home) and restore (new home) both
    // executed as rid-attributed requests.
    let merged = client.call_raw("cluster-metrics").unwrap();
    let resp = parse_response(&merged).unwrap();
    let text =
        String::from_utf8(snn_serve::protocol::hex_decode(resp.get("data").unwrap()).unwrap())
            .unwrap();
    let snapshot = snn_obs::Snapshot::parse(&text).unwrap();
    let migrate_rid = snapshot
        .spans
        .iter()
        .find(|s| s.name == "cluster.migrate")
        .expect("migration span in the merged scrape")
        .rid
        .clone();
    let tree = client.cluster_trace(&migrate_rid).unwrap();
    let rendered = tree.render();
    for name in ["serve.checkpoint", "serve.restore"] {
        assert!(
            rendered.contains(name),
            "migration trace must cite {name}:\n{rendered}"
        );
    }

    client.close("roam").unwrap();
    cluster.shutdown();
}

#[test]
fn trace_assembly_survives_a_shard_kill_via_the_black_box_journal() {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_millis(40),
                probes_to_kill: 2,
                shadow_interval: Some(Duration::from_millis(25)),
                ..ClusterLimits::default()
            },
        },
    )
    .expect("cluster");
    cluster.spawn_shard(ServerConfig::default()).expect("shard");
    // The victim runs outside the cluster so the test can kill it
    // behind the router's back.
    let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("victim");
    let victim = cluster.attach_shard(external.local_addr()).expect("attach");

    // Open sessions via raw lines so each open reply's rid is captured —
    // the victim's flight recorder attributes its `serve.open` event to
    // exactly that rid. Keep opening until the hash ring places one on
    // the victim: that session's open was *served by* the soon-to-die
    // process, so its shard-side evidence will die with it.
    let mut client = ServeClient::connect(cluster.local_addr()).expect("connect");
    let mut open_rids = Vec::new();
    let mut n_sessions = 0u64;
    let mut doomed = None;
    while n_sessions < 3 || (doomed.is_none() && n_sessions < 16) {
        let s = n_sessions;
        let line = format_request(&Request::Open {
            id: format!("k-{s}"),
            spec: tiny_spec(s),
        });
        open_rids.push(call_for_rid(&mut client, &line));
        if doomed.is_none() && cluster.session_shard(&format!("k-{s}")) == Some(victim) {
            doomed = Some(s);
        }
        n_sessions += 1;
    }
    let doomed = doomed.expect("the ring must place some session on the victim");
    for s in 0..n_sessions {
        client
            .ingest(&format!("k-{s}"), &stream(s, 16)[..8])
            .expect("first half");
    }

    // Park every victim-resident shadow at exactly seq 8, then kill.
    let resident: Vec<String> = (0..n_sessions)
        .map(|s| format!("k-{s}"))
        .filter(|id| cluster.session_shard(id) == Some(victim))
        .collect();
    assert!(
        !resident.is_empty(),
        "the victim hosts at least one session"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while !resident
        .iter()
        .all(|id| cluster.session_shadow(id).map(|(_, seq)| seq) == Some(8))
    {
        assert!(Instant::now() < deadline, "shadower never parked seq 8");
        std::thread::sleep(Duration::from_millis(10));
    }
    external.shutdown();

    // Drive every session through the failover window.
    for s in 0..n_sessions {
        let id = format!("k-{s}");
        let chunk = &stream(s, 16)[8..];
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match client.ingest(&id, chunk) {
                Ok(_) => break,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("session {id} never recovered: {e}"),
            }
        }
    }

    // The incident rid (shared by the probe strikes and the death
    // verdict) must assemble even though it references a dead process.
    let reply = client.call_raw("cluster-journal").expect("journal scrape");
    let resp = parse_response(&reply).expect("well-formed journal reply");
    let text = String::from_utf8(
        snn_serve::protocol::hex_decode(resp.get("data").expect("journal data")).unwrap(),
    )
    .unwrap();
    let journal = snn_obs::JournalSnapshot::parse(&text).expect("merged journal parses");
    let down = journal
        .events
        .iter()
        .find(|e| e.kind == "cluster.shard_down" && e.field("shard") == Some(&victim.to_string()))
        .expect("the journal records the victim's death");
    let incident = client.cluster_trace(&down.rid).expect("incident trace");
    assert_eq!(incident.rid, down.rid);
    let rendered = incident.render();
    assert!(
        rendered.contains("event.cluster.shard_down"),
        "incident trace names the verdict:\n{rendered}"
    );

    // The core claim: a request the DEAD shard served is still
    // explainable. Its router-side spans survive in the router's ring;
    // the shard-side evidence is gone with the process — except for the
    // black-box journal the router froze at the moment of death, whose
    // rid-attributed `serve.open` event joins the tree as a
    // `via=journal` leaf.
    let rid = &open_rids[doomed as usize];
    let tree = client
        .cluster_trace(rid)
        .expect("dead-shard request still assembles");
    assert_eq!(tree.rid, *rid);
    assert_eq!(tree.root.phase, "accept", "router spans root the tree");
    assert!(has_phase(&tree.root, "relay"));
    let rendered = tree.render();
    assert!(
        rendered.contains("event.serve.open") && rendered.contains("via=journal"),
        "the dead shard's open event must come from the black box:\n{rendered}"
    );

    for s in 0..n_sessions {
        client.close(&format!("k-{s}")).expect("close");
    }
    cluster.shutdown();
}
