//! Workspace-level guarantees of the `snn-serve` layer:
//!
//! * **Concurrent multi-session serving**: ≥4 sessions, each training on
//!   a *different* `snn_data::scenario` drift stream, drive one server
//!   over TCP at the same time.
//! * **Checkpoint/restore over the wire extends the PR 2 determinism
//!   contract**: a session checkpointed mid-stream through the protocol
//!   and restored into a new session finishes bit-identical to a session
//!   that never paused — same predictions, same final wire checkpoint.
//! * **Hot model swap over the wire**: a running session adopted onto a
//!   received snapshot continues exactly as the snapshot's source.

use snn_data::{Image, Scenario, SyntheticDigits};
use snn_serve::{ServeClient, ServeLimits, ServerConfig, SessionSpec, SnnServer};
use spikedyn::Method;

/// A tiny 7×7-input serving profile so four concurrent streams stay fast.
fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

/// The scenario's deterministic stream, downsampled onto the 7×7 profile.
fn scenario_stream(scenario: Scenario, seed: u64, total: u64) -> Vec<Image> {
    let gen = SyntheticDigits::new(seed);
    let classes: Vec<u8> = (0..10).collect();
    scenario
        .stream(&gen, &classes, total, seed, 0)
        .into_iter()
        .map(|img| img.downsample(4))
        .collect()
}

#[test]
fn four_concurrent_sessions_checkpoint_restore_bit_identical() {
    let server = SnnServer::start(
        "127.0.0.1:0",
        ServerConfig {
            limits: ServeLimits {
                max_sessions: 16,
                ..ServeLimits::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();

    let handles: Vec<_> = Scenario::all()
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| {
            std::thread::spawn(move || {
                let seed = 40 + i as u64;
                let label = scenario.label();
                let stream = scenario_stream(scenario, seed, 32);
                let mut client = ServeClient::connect(addr).expect("connect");

                // Uninterrupted reference session: the whole stream, then
                // a final checkpoint over the wire.
                let full_id = format!("full-{label}");
                client.open(&full_id, tiny_spec(seed)).unwrap();
                let mut full_preds = Vec::new();
                for chunk in stream.chunks(4) {
                    full_preds.extend(client.ingest(&full_id, chunk).unwrap().predictions);
                }
                let full_final = client.checkpoint(&full_id).unwrap();

                // Interrupted session: half the stream, checkpoint over
                // the wire, close.
                let half_id = format!("half-{label}");
                client.open(&half_id, tiny_spec(seed)).unwrap();
                let mut preds = Vec::new();
                for chunk in stream[..16].chunks(4) {
                    preds.extend(client.ingest(&half_id, chunk).unwrap().predictions);
                }
                let mid = client.checkpoint(&half_id).unwrap();
                client.close(&half_id).unwrap();

                // Restore into a NEW session and finish the stream.
                let restored_id = format!("restored-{label}");
                assert_eq!(client.restore(&restored_id, &mid).unwrap(), 16);
                for chunk in stream[16..].chunks(4) {
                    preds.extend(client.ingest(&restored_id, chunk).unwrap().predictions);
                }
                let restored_final = client.checkpoint(&restored_id).unwrap();

                assert_eq!(
                    preds, full_preds,
                    "{label}: interrupted and uninterrupted predictions must match"
                );
                assert_eq!(
                    restored_final, full_final,
                    "{label}: final wire checkpoints must be byte-identical"
                );

                // Hot model swap over the wire: a running session with its
                // own divergent history adopts the reference snapshot and
                // must continue exactly as the reference would.
                let swap_id = format!("swap-{label}");
                client.open(&swap_id, tiny_spec(seed)).unwrap();
                client.ingest(&swap_id, &stream[..4]).unwrap(); // divergent history
                assert_eq!(client.swap(&swap_id, &full_final).unwrap(), 32);
                assert_eq!(
                    client.checkpoint(&swap_id).unwrap(),
                    full_final,
                    "{label}: swapped session must hold the adopted state exactly"
                );

                let report = client.close(&full_id).unwrap();
                assert_eq!(report.samples, 32);
                client.close(&restored_id).unwrap();
                client.close(&swap_id).unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("scenario session thread");
    }

    let stats = server.stats();
    assert_eq!(stats.sessions, 0, "every session closed");
    // 4 scenarios × (32 full + 32 interrupted/restored + 4 pre-swap).
    assert_eq!(stats.total_samples, 4 * (32 + 32 + 4));
    assert!(stats.ticks > 0);
    server.shutdown();
}

#[test]
fn served_energy_accounting_matches_local_learner() {
    let server = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.local_addr()).unwrap();
    let stream = scenario_stream(Scenario::NoiseBurst, 7, 16);

    client.open("meter", tiny_spec(7)).unwrap();
    let mut local = snn_online::OnlineLearner::new(tiny_spec(7).online_config());
    for chunk in stream.chunks(4) {
        client.ingest("meter", chunk).unwrap();
        local.ingest_batch(chunk).unwrap();
    }
    let served = client.energy("meter").unwrap();
    let reference = local.energy(&neuro_energy::GpuSpec::gtx_1080_ti());
    assert_eq!(served.train_j.to_bits(), reference.train_j.to_bits());
    assert_eq!(served.infer_j.to_bits(), reference.infer_j.to_bits());
    assert_eq!(
        served.per_sample_j.to_bits(),
        reference.per_sample_j.to_bits()
    );
    client.close("meter").unwrap();
    server.shutdown();
}
