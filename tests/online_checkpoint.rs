//! Workspace-level guarantees of the `snn-online` subsystem:
//!
//! * **Snapshot round-trip** (property-based): save → load yields an equal
//!   snapshot, byte-identical re-encoding, an identical forward pass, and
//!   an identical *next* checkpoint after further learning.
//! * **Pause/restore exactness** (pinned): a learner stopped mid-stream,
//!   persisted through disk, and warm-started produces bit-identical
//!   predictions and a bit-identical final snapshot to an uninterrupted
//!   run over the same seeded stream.
//! * **Hot swap serving**: a long-lived engine adopting a loaded snapshot
//!   between batches serves the same results as an engine built from the
//!   live trainer.

use proptest::prelude::*;
use snn_data::{Image, Scenario, SyntheticDigits};
use snn_online::{ModelSnapshot, OnlineConfig, OnlineLearner};
use spikedyn::{Method, Trainer};

/// A tiny 7×7-input configuration so property cases stay fast.
fn tiny_config(method: Method, seed: u64) -> OnlineConfig {
    let mut cfg = OnlineConfig::fast(method, 6);
    cfg.n_input = 49;
    cfg.seed = seed;
    cfg.batch_size = 4;
    cfg.assign_every = 8;
    cfg.reservoir_capacity = 12;
    cfg.metric_window = 12;
    cfg.drift.window = 8;
    cfg.response.hold_samples = 6;
    cfg
}

fn tiny_stream(seed: u64, n: u64) -> Vec<Image> {
    let gen = SyntheticDigits::new(seed);
    (0..n)
        .map(|i| gen.sample((i % 4) as u8, i).downsample(4))
        .collect()
}

fn method_from_index(i: u8) -> Method {
    Method::all()[i as usize % 3]
}

proptest! {
    #[test]
    fn snapshot_roundtrip_preserves_forward_pass_and_next_checkpoint(
        seed in 0u64..500,
        method_idx in 0u8..3,
        prefix_batches in 1usize..4,
        suffix_batches in 1usize..3,
    ) {
        let method = method_from_index(method_idx);
        let stream = tiny_stream(seed, ((prefix_batches + suffix_batches) * 4) as u64);
        let mut live = OnlineLearner::new(tiny_config(method, seed));
        for chunk in stream[..prefix_batches * 4].chunks(4) {
            live.ingest_batch(chunk).unwrap();
        }

        // save → load: equal value, byte-identical re-encoding.
        let snapshot = live.checkpoint();
        let bytes = snapshot.to_bytes();
        let loaded = ModelSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&loaded, &snapshot);
        prop_assert_eq!(loaded.to_bytes(), bytes.clone());

        // Identical forward pass and identical next checkpoint.
        let mut restored = OnlineLearner::resume(loaded).unwrap();
        for chunk in stream[prefix_batches * 4..].chunks(4) {
            let live_preds = live.ingest_batch(chunk).unwrap();
            let restored_preds = restored.ingest_batch(chunk).unwrap();
            prop_assert_eq!(live_preds, restored_preds);
        }
        prop_assert_eq!(
            restored.checkpoint().to_bytes(),
            live.checkpoint().to_bytes()
        );
    }
}

#[test]
fn pause_restore_mid_stream_is_bit_identical_through_disk() {
    // A drifting stream at the repo's fast scale, paused right around the
    // drift transition — the hardest point, since detector windows,
    // response countdowns and assignment cursors are all mid-flight.
    let gen = SyntheticDigits::new(42);
    let classes: Vec<u8> = (0..10).collect();
    let stream: Vec<Image> = Scenario::GradualDrift
        .stream(&gen, &classes, 64, 42, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    let mut cfg = OnlineConfig::fast(Method::SpikeDyn, 12);
    cfg.batch_size = 8;
    cfg.assign_every = 16;
    cfg.drift.window = 12;

    let mut uninterrupted = OnlineLearner::new(cfg.clone());
    let mut expected_preds = Vec::new();
    for chunk in stream.chunks(8) {
        expected_preds.extend(uninterrupted.ingest_batch(chunk).unwrap());
    }

    let mut paused = OnlineLearner::new(cfg);
    let mut preds = Vec::new();
    for chunk in stream[..32].chunks(8) {
        preds.extend(paused.ingest_batch(chunk).unwrap());
    }
    let dir = std::env::temp_dir().join("spikedyn-online-checkpoint-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pause.sdyn");
    paused.checkpoint().save(&path).unwrap();
    drop(paused);

    let mut resumed = OnlineLearner::resume(ModelSnapshot::load(&path).unwrap()).unwrap();
    for chunk in stream[32..].chunks(8) {
        preds.extend(resumed.ingest_batch(chunk).unwrap());
    }
    std::fs::remove_file(&path).ok();

    assert_eq!(preds, expected_preds, "predictions must be bit-identical");
    assert_eq!(
        resumed.checkpoint().to_bytes(),
        uninterrupted.checkpoint().to_bytes(),
        "final snapshots must be byte-identical"
    );
}

#[test]
fn engine_hot_swaps_onto_a_loaded_snapshot() {
    // Serving path: a deployed engine adopts a persisted model between
    // batches, without rebuilding, and serves exactly what a fresh engine
    // built from the live trainer would.
    let stream = tiny_stream(7, 16);
    let mut learner = OnlineLearner::new(tiny_config(Method::SpikeDyn, 7));
    for chunk in stream.chunks(4) {
        learner.ingest_batch(chunk).unwrap();
    }
    let snapshot = ModelSnapshot::from_bytes(&learner.checkpoint().to_bytes()).unwrap();

    // The "deployment": restore a trainer only to mint a reference engine,
    // and hot-swap a long-lived engine built from a *different* (fresh)
    // model state onto the snapshot weights.
    let restored = Trainer::restore(snapshot.trainer.clone()).unwrap();
    let reference = restored.engine();

    let fresh = OnlineLearner::new(tiny_config(Method::SpikeDyn, 999));
    let mut serving = fresh.trainer().engine();
    serving
        .hot_swap(&snapshot.trainer.weights, &snapshot.trainer.thetas)
        .unwrap();

    let probe = tiny_stream(11, 6);
    assert_eq!(
        serving.infer_batch(&probe, 123),
        reference.infer_batch(&probe, 123),
        "hot-swapped engine must serve the snapshot model bit-identically"
    );
}
