//! Workspace-level guarantees of the `snn-cluster` layer:
//!
//! * **Migration bit-identity** (the pinned invariant): a session opened
//!   through the router and live-migrated between two shards mid-stream
//!   finishes with a wire checkpoint **byte-identical** to the same
//!   stream served unmigrated on one shard — and to a single-process
//!   `OnlineLearner`. Serving topology changes *where* a learner runs,
//!   never *what* it computes.
//! * **Drain bit-identity**: draining a shard (the shutdown path) moves
//!   its sessions without perturbing a single bit of their streams.
//!
//! Ring-hash unit tests (uniformity, minimal reshuffle on join/leave)
//! live in `snn-cluster/src/ring.rs`.

use snn_cluster::{Cluster, ClusterConfig};
use snn_data::{Image, Scenario, SyntheticDigits};
use snn_serve::{ServeClient, ServerConfig, SessionSpec};
use spikedyn::Method;

/// A tiny 7×7-input profile so multi-shard streams stay fast.
fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

/// The scenario's deterministic stream, downsampled onto the 7×7 profile.
fn scenario_stream(scenario: Scenario, seed: u64, total: u64) -> Vec<Image> {
    let gen = SyntheticDigits::new(seed);
    let classes: Vec<u8> = (0..10).collect();
    scenario
        .stream(&gen, &classes, total, seed, 0)
        .into_iter()
        .map(|img| img.downsample(4))
        .collect()
}

fn two_shard_cluster() -> Cluster {
    let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    cluster
}

#[test]
fn migrated_session_finishes_bit_identical_to_unmigrated() {
    let cluster = two_shard_cluster();
    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();

    for (i, scenario) in [Scenario::GradualDrift, Scenario::RecurringTasks]
        .into_iter()
        .enumerate()
    {
        let seed = 60 + i as u64;
        let label = scenario.label();
        let stream = scenario_stream(scenario, seed, 32);

        // Reference: the same stream served through the same router with
        // no migration (whatever single shard the ring picks).
        let fixed_id = format!("fixed-{label}");
        client.open(&fixed_id, tiny_spec(seed)).unwrap();
        let mut fixed_preds = Vec::new();
        for chunk in stream.chunks(4) {
            fixed_preds.extend(client.ingest(&fixed_id, chunk).unwrap().predictions);
        }
        let fixed_final = client.checkpoint(&fixed_id).unwrap();

        // Moving session: half the stream, live-migrate to the *other*
        // shard mid-stream, then hop back — two migrations, zero pauses
        // from the client's point of view.
        let moved_id = format!("moved-{label}");
        client.open(&moved_id, tiny_spec(seed)).unwrap();
        let mut moved_preds = Vec::new();
        for chunk in stream[..16].chunks(4) {
            moved_preds.extend(client.ingest(&moved_id, chunk).unwrap().predictions);
        }
        let first_home = cluster.session_shard(&moved_id).unwrap();
        let other = cluster
            .shard_ids()
            .into_iter()
            .find(|&s| s != first_home)
            .expect("two shards");
        cluster.migrate_session(&moved_id, other).unwrap();
        assert_eq!(cluster.session_shard(&moved_id), Some(other));
        for chunk in stream[16..24].chunks(4) {
            moved_preds.extend(client.ingest(&moved_id, chunk).unwrap().predictions);
        }
        cluster.migrate_session(&moved_id, first_home).unwrap();
        for chunk in stream[24..].chunks(4) {
            moved_preds.extend(client.ingest(&moved_id, chunk).unwrap().predictions);
        }
        let moved_final = client.checkpoint(&moved_id).unwrap();

        assert_eq!(
            moved_preds, fixed_preds,
            "{label}: migrated and unmigrated predictions must match"
        );
        assert_eq!(
            moved_final, fixed_final,
            "{label}: final wire checkpoints must be byte-identical across migration"
        );

        // Triple-check against a single-process learner: the cluster adds
        // nothing and loses nothing.
        let mut local = snn_online::OnlineLearner::new(tiny_spec(seed).online_config());
        let mut local_preds = Vec::new();
        for chunk in stream.chunks(4) {
            local_preds.extend(local.ingest_batch(chunk).unwrap());
        }
        assert_eq!(moved_preds, local_preds, "{label}: local reference preds");
        assert_eq!(
            moved_final,
            local.checkpoint().to_bytes(),
            "{label}: local reference checkpoint"
        );

        client.close(&fixed_id).unwrap();
        client.close(&moved_id).unwrap();
    }
    cluster.shutdown();
}

#[test]
fn draining_a_shard_mid_stream_perturbs_nothing() {
    let cluster = two_shard_cluster();
    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
    let n_sessions = 4u64;
    let streams: Vec<Vec<Image>> = (0..n_sessions)
        .map(|s| scenario_stream(Scenario::NoiseBurst, 80 + s, 24))
        .collect();

    for (s, stream) in streams.iter().enumerate() {
        let id = format!("dr-{s}");
        client.open(&id, tiny_spec(80 + s as u64)).unwrap();
        for chunk in stream[..12].chunks(4) {
            client.ingest(&id, chunk).unwrap();
        }
    }
    // Drain whichever shard currently holds dr-0 (guaranteed non-empty),
    // then finish every stream on the survivor.
    let drained = cluster.session_shard("dr-0").unwrap();
    let moved = cluster.drain_shard(drained).unwrap();
    assert!(moved >= 1, "dr-0 lived on the drained shard");
    assert_eq!(cluster.shard_ids().len(), 1);

    for (s, stream) in streams.iter().enumerate() {
        let id = format!("dr-{s}");
        for chunk in stream[12..].chunks(4) {
            client.ingest(&id, chunk).unwrap();
        }
        let served = client.checkpoint(&id).unwrap();
        let mut local = snn_online::OnlineLearner::new(tiny_spec(80 + s as u64).online_config());
        for chunk in stream.chunks(4) {
            local.ingest_batch(chunk).unwrap();
        }
        assert_eq!(
            served,
            local.checkpoint().to_bytes(),
            "session dr-{s} must be bit-identical after the drain"
        );
        client.close(&id).unwrap();
    }
    cluster.shutdown();
}
