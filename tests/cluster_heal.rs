//! Workspace-level guarantees of the self-healing layer (`snn-heal` +
//! the router's shadowing/failover machinery):
//!
//! * **Kill a shard mid-stream and every session finishes.** With
//!   shadowing enabled, sessions homed on a shard that dies abruptly
//!   resume from their replicated checkpoints on a live shard; clients
//!   ride out the detection window with retries and never lose a
//!   session.
//! * **Failover is bit-exact.** Every failed-over session finishes with
//!   a wire checkpoint byte-identical to a single-process
//!   `OnlineLearner` fed the same stream with the same ingest-call
//!   partitioning — the kill changes *where* the learner runs, never
//!   *what* it computes.
//! * **Failover is traced across tiers.** The merged `cluster-metrics`
//!   scrape carries the router's `cluster.failover` span and the target
//!   shard's `serve.restore` span stitched by the same request id.
//!
//! The autoscaler's grow/drain drill lives in
//! `crates/snn-heal/tests/autoscaler.rs`; replay-gap disclosure and
//! fail-fast staleness are pinned by `snn-cluster`'s in-crate tests.

use std::time::{Duration, Instant};

use snn_cluster::{Cluster, ClusterConfig, ClusterLimits};
use snn_data::Image;
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer};
use spikedyn::Method;

fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

fn stream(seed: u64, total: u64) -> Vec<Image> {
    let gen = snn_data::SyntheticDigits::new(seed);
    (0..total)
        .map(|i| {
            gen.sample((i % 10) as u8, seed.wrapping_mul(1000) + i)
                .downsample(4)
        })
        .collect()
}

/// Scrapes and parses one exposition verb through the router.
fn scrape(client: &mut ServeClient, verb: &str) -> snn_obs::Snapshot {
    let reply = client.call_raw(verb).expect("scrape round trip");
    let resp = snn_serve::protocol::parse_response(&reply).expect("scrape reply parses");
    let hex = resp.get("data").expect("scrape reply carries data");
    let bytes = snn_serve::protocol::hex_decode(hex).expect("scrape payload is hex");
    let text = String::from_utf8(bytes).expect("scrape payload is UTF-8");
    snn_obs::Snapshot::parse(&text).expect("exposition parses")
}

/// Ingests a chunk, retrying through a failover window (`shard-down`,
/// transient relay errors) against a hard deadline.
fn ingest_through_failover(client: &mut ServeClient, id: &str, chunk: &[Image]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.ingest(id, chunk) {
            Ok(_) => return,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("session {id} never recovered: {e}"),
        }
    }
}

#[test]
fn killed_shard_sessions_finish_bit_exact_and_failover_is_traced() {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_millis(40),
                probes_to_kill: 2,
                shadow_interval: Some(Duration::from_millis(25)),
                ..ClusterLimits::default()
            },
        },
    )
    .unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    // The victim runs outside the cluster so the test can kill it
    // behind the router's back — an abrupt crash, not a drain.
    let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let victim = cluster.attach_shard(external.local_addr()).unwrap();

    let n_sessions = 6u64;
    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
    for s in 0..n_sessions {
        client.open(&format!("k-{s}"), tiny_spec(s)).unwrap();
    }
    // The ring may have placed nothing on the victim; seed it so the
    // kill is guaranteed to matter.
    if !(0..n_sessions).any(|s| cluster.session_shard(&format!("k-{s}")) == Some(victim)) {
        cluster.migrate_session("k-0", victim).unwrap();
    }

    // First half of every stream, in one ingest call each (the
    // reference learner below mirrors this call partitioning exactly).
    for s in 0..n_sessions {
        client
            .ingest(&format!("k-{s}"), &stream(s, 16)[..8])
            .unwrap();
    }

    // Let the shadower park every victim-resident session at exactly
    // seq 8 before pulling the trigger: the failover then provably
    // restores the checkpoint the reference is rebuilt from.
    let doomed: Vec<String> = (0..n_sessions)
        .map(|s| format!("k-{s}"))
        .filter(|id| cluster.session_shard(id) == Some(victim))
        .collect();
    assert!(
        !doomed.is_empty(),
        "the victim shard hosts at least one session"
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while !doomed
        .iter()
        .all(|id| cluster.session_shadow(id).map(|(_, seq)| seq) == Some(8))
    {
        assert!(Instant::now() < deadline, "shadower never parked seq 8");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Kill. No drain, no goodbye: the router finds out from its probes.
    external.shutdown();

    // Second half of every stream — the doomed sessions ride out the
    // detection + failover window on retries, then finish on a live
    // shard. Nothing is lost: the shadow was at seq 8 and so was the
    // stream when the shard died.
    for s in 0..n_sessions {
        ingest_through_failover(&mut client, &format!("k-{s}"), &stream(s, 16)[8..]);
    }

    // Every failed-over session left the victim…
    for id in &doomed {
        let now = cluster.session_shard(id);
        assert!(
            now.is_some() && now != Some(victim),
            "{id} must fail over, not drop"
        );
    }

    // …and every session (failed-over or not) is bit-identical to a
    // single-process learner fed the same two ingest calls.
    for s in 0..n_sessions {
        let id = format!("k-{s}");
        let full = stream(s, 16);
        let mut reference = snn_online::OnlineLearner::new(tiny_spec(s).online_config());
        reference.ingest_batch(&full[..8]).unwrap();
        reference.ingest_batch(&full[8..]).unwrap();
        assert_eq!(
            client.checkpoint(&id).unwrap(),
            reference.checkpoint().to_bytes(),
            "{id}: checkpoint must be bit-identical across the kill"
        );
    }

    // The merged scrape stitches the failover across tiers: the
    // router's cluster.failover span and the restore it drove on the
    // target shard share one request id.
    let telemetry = scrape(&mut client, "cluster-metrics");
    assert_eq!(
        telemetry.counter("cluster.failovers"),
        doomed.len() as u64,
        "every victim session failed over exactly once"
    );
    assert!(telemetry.histogram("cluster.failover_us").count() >= 1);
    let failover_spans: Vec<_> = telemetry
        .spans
        .iter()
        .filter(|sp| sp.name == "cluster.failover")
        .collect();
    assert_eq!(
        failover_spans.len(),
        doomed.len(),
        "one failover span per victim session"
    );
    for span in failover_spans {
        assert!(!span.rid.is_empty(), "failover spans carry a rid");
        assert!(
            telemetry
                .spans
                .iter()
                .any(|sp| sp.name == "serve.restore" && sp.rid == span.rid),
            "the target shard's restore span stitches to failover rid {}",
            span.rid
        );
    }

    for s in 0..n_sessions {
        client.close(&format!("k-{s}")).unwrap();
    }
    cluster.shutdown();
}
