//! Workspace-level guarantee of the flight recorder: after a chaos
//! kill, one `cluster-journal` scrape returns a merged post-mortem
//! whose tail *explains* the failover end to end —
//!
//! * the victim's last pre-death journal is present (captured by the
//!   router's black-box sweep while the shard still answered probes),
//! * every probe strike and the death verdict share one incident
//!   request id, and
//! * each failover names that incident as its `cause` and reappears as
//!   the target shard's `serve.restore` under the failover's own rid —
//!
//! so the whole chain `probe_fail → shard_down → failover → restore`
//! is walkable by rid from a single artifact, with no shard left to
//! ask.

use std::time::{Duration, Instant};

use snn_cluster::{Cluster, ClusterConfig, ClusterLimits};
use snn_data::Image;
use snn_obs::JournalSnapshot;
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer};
use spikedyn::Method;

fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

fn stream(seed: u64, total: u64) -> Vec<Image> {
    let gen = snn_data::SyntheticDigits::new(seed);
    (0..total)
        .map(|i| {
            gen.sample((i % 10) as u8, seed.wrapping_mul(1000) + i)
                .downsample(4)
        })
        .collect()
}

/// One `cluster-journal` round trip, decoded into the merged snapshot.
fn cluster_journal(client: &mut ServeClient) -> JournalSnapshot {
    let reply = client.call_raw("cluster-journal").expect("journal scrape");
    let resp = snn_serve::protocol::parse_response(&reply).expect("journal reply parses");
    let hex = resp.get("data").expect("journal reply carries data");
    let bytes = snn_serve::protocol::hex_decode(hex).expect("journal payload is hex");
    let text = String::from_utf8(bytes).expect("journal payload is UTF-8");
    JournalSnapshot::parse(&text).expect("journal text parses")
}

fn ingest_through_failover(client: &mut ServeClient, id: &str, chunk: &[Image]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.ingest(id, chunk) {
            Ok(_) => return,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("session {id} never recovered: {e}"),
        }
    }
}

#[test]
fn postmortem_journal_tail_explains_the_failover_by_rid() {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_millis(40),
                probes_to_kill: 2,
                shadow_interval: Some(Duration::from_millis(25)),
                ..ClusterLimits::default()
            },
        },
    )
    .unwrap();
    let internal = cluster.spawn_shard(ServerConfig::default()).unwrap();
    // The victim runs outside the cluster so the test can kill it
    // behind the router's back — an abrupt crash, not a drain.
    let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let victim = cluster.attach_shard(external.local_addr()).unwrap();

    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
    for s in 0..2u64 {
        client.open(&format!("pm-{s}"), tiny_spec(s)).unwrap();
    }
    // Land pm-0 on the victim *by migration*: the migration's restore is
    // journaled on the victim and nowhere else, so its presence in the
    // final merged journal proves the black-box capture survived the
    // process the events died with.
    if cluster.session_shard("pm-0") == Some(victim) {
        cluster.migrate_session("pm-0", internal).unwrap();
    }
    cluster.migrate_session("pm-0", victim).unwrap();

    for s in 0..2u64 {
        client
            .ingest(&format!("pm-{s}"), &stream(s, 16)[..8])
            .unwrap();
    }

    // Park every victim-resident shadow at seq 8, then give the health
    // loop a few ticks to refresh its black-box copy of the victim's
    // journal (it re-captures after every successful probe).
    let doomed: Vec<String> = (0..2u64)
        .map(|s| format!("pm-{s}"))
        .filter(|id| cluster.session_shard(id) == Some(victim))
        .collect();
    assert!(doomed.contains(&"pm-0".to_string()));
    let deadline = Instant::now() + Duration::from_secs(10);
    while !doomed
        .iter()
        .all(|id| cluster.session_shadow(id).map(|(_, seq)| seq) == Some(8))
    {
        assert!(Instant::now() < deadline, "shadower never parked seq 8");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(250));

    // Kill. No drain, no goodbye: the router finds out from its probes.
    external.shutdown();
    for s in 0..2u64 {
        ingest_through_failover(&mut client, &format!("pm-{s}"), &stream(s, 16)[8..]);
    }

    let journal = cluster_journal(&mut client);

    // The death verdict names the victim and carries the incident rid…
    let down = journal
        .events
        .iter()
        .find(|e| e.kind == "cluster.shard_down" && e.field("shard") == Some(&victim.to_string()))
        .expect("merged journal records the shard death");
    let incident = down.rid.clone();
    assert!(!incident.is_empty(), "shard death is rid-attributed");

    // …every probe strike of the incident shares that rid and precedes
    // the verdict (same recording clock: all router-side events)…
    let strikes: Vec<_> = journal
        .events
        .iter()
        .filter(|e| e.kind == "cluster.probe_fail" && e.rid == incident)
        .collect();
    assert!(
        strikes.len() >= 2,
        "both strikes of the 2-probe verdict share the incident rid: {strikes:?}"
    );
    assert!(
        strikes.iter().all(|e| e.at_us <= down.at_us),
        "strikes precede the verdict"
    );

    // …each failover cites the incident as its cause and reappears on
    // the target shard as `serve.restore` under the failover's own rid.
    let failovers: Vec<_> = journal
        .events
        .iter()
        .filter(|e| e.kind == "cluster.failover" && e.field("cause") == Some(&incident))
        .collect();
    assert_eq!(
        failovers.len(),
        doomed.len(),
        "one failover per victim session, each citing the incident"
    );
    for fo in &failovers {
        assert!(fo.at_us >= down.at_us, "failovers follow the verdict");
        assert!(!fo.rid.is_empty() && fo.rid != incident);
        let id = fo.field("id").expect("failover names its session");
        assert!(
            journal
                .events
                .iter()
                .any(|e| e.kind == "serve.restore" && e.rid == fo.rid && e.field("id") == Some(id)),
            "restore of {id} stitches to failover rid {}",
            fo.rid
        );
    }

    // Black-box capture: pm-0's *migration* restore only ever existed in
    // the dead victim's journal, yet the merged post-mortem has it —
    // plus the failover restore — so the session restores twice.
    let pm0_restores = journal
        .events
        .iter()
        .filter(|e| e.kind == "serve.restore" && e.field("id") == Some("pm-0"))
        .count();
    assert!(
        pm0_restores >= 2,
        "victim's frozen journal contributes the pre-death restore (saw {pm0_restores})"
    );

    for s in 0..2u64 {
        client.close(&format!("pm-{s}")).unwrap();
    }
    cluster.shutdown();
}
