//! Differential proto 1 ↔ proto 2 conformance (`DESIGN.md` §13).
//!
//! The binary framing layer is pinned by running the **same scripted
//! workloads** over both protocols and asserting the protocols are
//! indistinguishable above the wire:
//!
//! * **Byte-identical checkpoints** — the learner's state never depends
//!   on which framing carried it.
//! * **Identical replies modulo framing** — the proto 2 frame→line
//!   reconstruction reproduces proto 1's reply lines exactly.
//! * **Identical metrics deltas** — filtered to exclude the counters
//!   that *define* the difference (wire bytes, per-proto latency) and
//!   wall-clock noise.
//! * **Torture mode** — every request frame delivered one byte at a
//!   time, so the server's reassembly sees every possible split point.
//!
//! Cluster-level conformance additionally drives a mid-stream live
//! migration under both protocols and a shard-kill failover under
//! proto 2 (the relay path itself multiplexes frames by default).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use snn_cluster::{Cluster, ClusterConfig, ClusterLimits};
use snn_data::Image;
use snn_serve::frame::{line_to_frame, Frame};
use snn_serve::protocol::{format_request, hex_decode, parse_response, Request};
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer, PROTO_V2, PROTO_VERSION};
use spikedyn::Method;

fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

fn stream(seed: u64, total: u64) -> Vec<Image> {
    let gen = snn_data::SyntheticDigits::new(seed);
    (0..total)
        .map(|i| {
            gen.sample((i % 10) as u8, seed.wrapping_mul(1000) + i)
                .downsample(4)
        })
        .collect()
}

/// Counter totals with the protocol-dependent and wall-clock-dependent
/// names removed: what must be *identical* across a proto 1 and a
/// proto 2 run of the same workload.
fn filtered_counters(snapshot: &snn_obs::Snapshot) -> BTreeMap<String, u64> {
    snapshot
        .counters
        .iter()
        .filter(|(name, _)| {
            !name.contains(".wire.") && !name.ends_with("_us") && !name.contains("uptime")
        })
        .map(|(name, value)| (name.clone(), *value))
        .collect()
}

/// Scrapes and parses one exposition verb (serve `metrics` or router
/// `cluster-metrics`).
fn scrape(client: &mut ServeClient, verb: &str) -> snn_obs::Snapshot {
    let reply = client.call_raw(verb).expect("scrape round trip");
    let resp = parse_response(&reply).expect("scrape reply parses");
    let hex = resp.get("data").expect("scrape reply carries data");
    let bytes = hex_decode(hex).expect("scrape payload is hex");
    let text = String::from_utf8(bytes).expect("scrape payload is UTF-8");
    snn_obs::Snapshot::parse(&text).expect("exposition parses")
}

/// The scripted session workload: every state-bearing verb in the
/// protocol, as raw request lines, in a fixed order. Returns the raw
/// request lines so both transports send byte-identical requests.
fn serve_script(seed: u64) -> Vec<String> {
    let id = "conf".to_string();
    let full = stream(seed, 16);
    let mut script = vec![format_request(&Request::Open {
        id: id.clone(),
        spec: tiny_spec(seed),
    })];
    for chunk in full.chunks(4) {
        script.push(format_request(&Request::Ingest {
            id: id.clone(),
            images: chunk.to_vec(),
        }));
    }
    script.push(format!("report id={id}"));
    script.push(format!("energy id={id}"));
    script.push(format!("checkpoint id={id}"));
    script
}

/// Runs the scripted workload over one protocol against a fresh server:
/// returns (reply lines, checkpoint bytes, restore/swap/close replies,
/// filtered counters, client rx bytes on the wire).
fn run_serve_workload(proto: u32) -> (Vec<String>, Vec<u8>, BTreeMap<String, u64>, u64) {
    let server = SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("server");
    let mut client = ServeClient::connect_with_proto(server.local_addr(), proto).expect("connect");
    assert_eq!(client.proto(), proto);

    let mut replies = Vec::new();
    for line in serve_script(11) {
        replies.push(client.call_raw(&line).expect("scripted request"));
    }
    // The checkpoint reply carries the state; round-trip it through
    // restore and swap so the blob crosses the wire in both directions.
    let checkpoint = {
        let resp = parse_response(replies.last().expect("script is non-empty")).expect("parses");
        hex_decode(resp.get("data").expect("checkpoint data")).expect("checkpoint hex")
    };
    let restore_line = format_request(&Request::Restore {
        id: "conf-restored".to_string(),
        snapshot: checkpoint.clone(),
    });
    replies.push(client.call_raw(&restore_line).expect("restore"));
    let swap_line = format_request(&Request::Swap {
        id: "conf".to_string(),
        snapshot: checkpoint.clone(),
    });
    replies.push(client.call_raw(&swap_line).expect("swap"));
    replies.push(client.call_raw("close id=conf").expect("close"));
    replies.push(client.call_raw("close id=conf-restored").expect("close"));

    let counters = filtered_counters(&scrape(&mut client, "metrics"));
    let (_tx, rx) = client.wire_bytes();
    (replies, checkpoint, counters, rx)
}

#[test]
fn serve_workload_is_identical_across_protocols() {
    let (replies_1, ckpt_1, counters_1, rx_1) = run_serve_workload(PROTO_VERSION);
    let (replies_2, ckpt_2, counters_2, rx_2) = run_serve_workload(PROTO_V2);

    assert_eq!(
        replies_1, replies_2,
        "every reply line must be identical modulo framing"
    );
    assert_eq!(ckpt_1, ckpt_2, "checkpoints must be byte-identical");
    assert_eq!(
        counters_1, counters_2,
        "filtered metrics deltas must be identical"
    );
    // The same checkpoint-heavy workload must cost fewer bytes framed:
    // the blob rides as raw bytes instead of hex text.
    assert!(
        rx_2 < rx_1,
        "proto 2 must receive fewer bytes ({rx_2} vs {rx_1})"
    );
}

#[test]
fn frame_split_torture_yields_byte_identical_checkpoints() {
    // Reference run: the same script over plain proto 1.
    let (replies_ref, ckpt_ref, _, _) = run_serve_workload(PROTO_VERSION);

    // Torture run: proto 2 with every request frame written one byte at
    // a time, so the server's frame reassembly crosses every possible
    // split boundary (header/head/payload/checksum).
    let server = SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("server");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(format!("hello proto={PROTO_V2}\n").as_bytes())
        .expect("hello");
    let mut banner = String::new();
    BufReader::new(stream.try_clone().expect("clone"))
        .read_line(&mut banner)
        .expect("banner");
    assert!(banner.starts_with("ok proto=2"), "got {banner:?}");

    let mut reader = stream;
    let mut call_tortured = |line: &str, tag: u32| -> String {
        for byte in line_to_frame(line, tag, 0).encode() {
            writer.write_all(&[byte]).expect("single byte");
            writer.flush().expect("flush");
        }
        let frame = Frame::read_from(&mut reader)
            .expect("reply frame")
            .expect("connection stays open");
        assert_eq!(frame.tag, tag, "reply routed to the request's tag");
        frame.to_line().expect("reply decodes")
    };

    let mut replies = Vec::new();
    let mut tag = 1u32;
    // Strictly request-by-request: the torture pins reassembly, not
    // concurrent scheduling (worker threads would race reply order).
    for line in serve_script(11) {
        replies.push(call_tortured(&line, tag));
        tag += 1;
    }
    let checkpoint = {
        let resp = parse_response(replies.last().expect("non-empty")).expect("parses");
        hex_decode(resp.get("data").expect("checkpoint data")).expect("checkpoint hex")
    };
    replies.push(call_tortured(
        &format_request(&Request::Restore {
            id: "conf-restored".to_string(),
            snapshot: checkpoint.clone(),
        }),
        tag,
    ));
    replies.push(call_tortured(
        &format_request(&Request::Swap {
            id: "conf".to_string(),
            snapshot: checkpoint.clone(),
        }),
        tag + 1,
    ));
    replies.push(call_tortured("close id=conf", tag + 2));
    replies.push(call_tortured("close id=conf-restored", tag + 3));

    assert_eq!(replies, replies_ref, "tortured replies match proto 1");
    assert_eq!(
        checkpoint, ckpt_ref,
        "tortured checkpoint is byte-identical"
    );
}

/// A quiet cluster: no health probes or shadow ticks during the run, so
/// metrics deltas are a pure function of the request script.
fn quiet_cluster() -> Cluster {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_secs(60),
                shadow_interval: None,
                ..ClusterLimits::default()
            },
        },
    )
    .expect("cluster");
    cluster.spawn_shard(ServerConfig::default()).expect("shard");
    cluster.spawn_shard(ServerConfig::default()).expect("shard");
    cluster
}

/// The scripted cluster workload: two sessions, one live-migrated to the
/// other shard and back mid-stream. Returns (predictions, checkpoints,
/// filtered merged counters, relay p2 tx bytes, client p-idx rx bytes).
#[allow(clippy::type_complexity)]
fn run_cluster_workload(
    proto: u32,
) -> (
    Vec<Vec<Option<u8>>>,
    Vec<Vec<u8>>,
    BTreeMap<String, u64>,
    u64,
) {
    let cluster = quiet_cluster();
    let mut client = ServeClient::connect_with_proto(cluster.local_addr(), proto).expect("connect");
    assert_eq!(client.proto(), proto);

    let mut predictions = Vec::new();
    let mut checkpoints = Vec::new();
    for (i, id) in ["fixed", "moved"].into_iter().enumerate() {
        let seed = 40 + i as u64;
        let full = stream(seed, 16);
        client.open(id, tiny_spec(seed)).expect("open");
        let mut preds = Vec::new();
        for chunk in full[..8].chunks(4) {
            preds.extend(client.ingest(id, chunk).expect("ingest").predictions);
        }
        if id == "moved" {
            // Hop to the other shard and back: two live migrations whose
            // checkpoint blobs ride the negotiated relay framing.
            let home = cluster.session_shard(id).expect("placed");
            let other = cluster
                .shard_ids()
                .into_iter()
                .find(|&s| s != home)
                .expect("two shards");
            cluster.migrate_session(id, other).expect("migrate out");
            for chunk in full[8..12].chunks(4) {
                preds.extend(client.ingest(id, chunk).expect("ingest").predictions);
            }
            cluster.migrate_session(id, home).expect("migrate home");
            for chunk in full[12..].chunks(4) {
                preds.extend(client.ingest(id, chunk).expect("ingest").predictions);
            }
        } else {
            for chunk in full[8..].chunks(4) {
                preds.extend(client.ingest(id, chunk).expect("ingest").predictions);
            }
        }
        predictions.push(preds);
        checkpoints.push(client.checkpoint(id).expect("checkpoint"));
    }

    let merged = scrape(&mut client, "cluster-metrics");
    let relay_p2 = merged.counter("cluster.relay.p2.tx_bytes");
    let counters = filtered_counters(&merged);
    let client_rx = merged.counter(&format!(
        "cluster.wire.p{}.tx_bytes",
        if proto >= PROTO_V2 { 2 } else { 1 }
    ));
    assert!(
        client_rx > 0,
        "the router counted its client-facing proto {proto} traffic"
    );
    for id in ["fixed", "moved"] {
        client.close(id).expect("close");
    }
    cluster.shutdown();
    (predictions, checkpoints, counters, relay_p2)
}

#[test]
fn cluster_workload_with_migration_is_identical_across_protocols() {
    let (preds_1, ckpts_1, counters_1, relay_1) = run_cluster_workload(PROTO_VERSION);
    let (preds_2, ckpts_2, counters_2, relay_2) = run_cluster_workload(PROTO_V2);

    assert_eq!(preds_1, preds_2, "predictions must match across protocols");
    assert_eq!(
        ckpts_1, ckpts_2,
        "post-migration checkpoints must be byte-identical"
    );
    assert_eq!(
        counters_1, counters_2,
        "filtered merged metrics deltas must be identical"
    );
    // The relay negotiates proto 2 regardless of what the *client*
    // speaks: migration blobs crossed the router↔shard wire as binary
    // frames in both runs.
    assert!(relay_1 > 0, "proto 1 client still rides a proto 2 relay");
    assert!(relay_2 > 0, "proto 2 relay carried the migration blobs");
}

/// Ingests a chunk, retrying through a failover window against a hard
/// deadline.
fn ingest_through_failover(client: &mut ServeClient, id: &str, chunk: &[Image]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.ingest(id, chunk) {
            Ok(_) => return,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("session {id} never recovered: {e}"),
        }
    }
}

#[test]
fn proto2_sessions_survive_a_shard_kill_bit_exact() {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_millis(40),
                probes_to_kill: 2,
                shadow_interval: Some(Duration::from_millis(25)),
                ..ClusterLimits::default()
            },
        },
    )
    .expect("cluster");
    cluster.spawn_shard(ServerConfig::default()).expect("shard");
    // The victim runs outside the cluster so the test can kill it
    // behind the router's back.
    let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("victim");
    let victim = cluster.attach_shard(external.local_addr()).expect("attach");

    let n_sessions = 3u64;
    let mut client =
        ServeClient::connect_with_proto(cluster.local_addr(), PROTO_V2).expect("connect");
    for s in 0..n_sessions {
        client.open(&format!("k-{s}"), tiny_spec(s)).expect("open");
    }
    if !(0..n_sessions).any(|s| cluster.session_shard(&format!("k-{s}")) == Some(victim)) {
        cluster.migrate_session("k-0", victim).expect("seed victim");
    }
    for s in 0..n_sessions {
        client
            .ingest(&format!("k-{s}"), &stream(s, 16)[..8])
            .expect("first half");
    }

    // Park every victim-resident shadow at exactly seq 8, then kill.
    let doomed: Vec<String> = (0..n_sessions)
        .map(|s| format!("k-{s}"))
        .filter(|id| cluster.session_shard(id) == Some(victim))
        .collect();
    assert!(!doomed.is_empty(), "the victim hosts at least one session");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !doomed
        .iter()
        .all(|id| cluster.session_shadow(id).map(|(_, seq)| seq) == Some(8))
    {
        assert!(Instant::now() < deadline, "shadower never parked seq 8");
        std::thread::sleep(Duration::from_millis(10));
    }
    external.shutdown();

    for s in 0..n_sessions {
        ingest_through_failover(&mut client, &format!("k-{s}"), &stream(s, 16)[8..]);
    }
    for id in &doomed {
        let now = cluster.session_shard(id);
        assert!(
            now.is_some() && now != Some(victim),
            "{id} must fail over, not drop"
        );
    }
    // Bit-exact against a single-process learner with the same ingest
    // partitioning — the kill (and the binary framing that carried the
    // shadow and restore blobs) changed nothing the learner can see.
    for s in 0..n_sessions {
        let id = format!("k-{s}");
        let full = stream(s, 16);
        let mut reference = snn_online::OnlineLearner::new(tiny_spec(s).online_config());
        reference.ingest_batch(&full[..8]).expect("reference");
        reference.ingest_batch(&full[8..]).expect("reference");
        assert_eq!(
            client.checkpoint(&id).expect("checkpoint"),
            reference.checkpoint().to_bytes(),
            "{id}: checkpoint must be bit-identical across the kill"
        );
    }

    let merged = scrape(&mut client, "cluster-metrics");
    assert_eq!(merged.counter("cluster.failovers"), doomed.len() as u64);
    assert!(
        merged.counter("cluster.relay.p2.tx_bytes") > 0,
        "shadow and restore blobs rode the binary relay"
    );
    assert!(
        merged.counter("cluster.wire.p2.rx_bytes") > 0,
        "the client side of the failover spoke proto 2 throughout"
    );
    for s in 0..n_sessions {
        client.close(&format!("k-{s}")).expect("close");
    }
    cluster.shutdown();
}
