//! Determinism guarantees of the batched runtime, end to end.
//!
//! The workspace promises: same seeds → same results, bit for bit,
//! regardless of how many worker threads the engine fans out to. These
//! tests pin that promise at three levels — data streams, engine batches,
//! and the full dynamic-environment protocol.

use snn_core::config::PresentConfig;
use snn_core::network::SnnConfig;
use snn_data::{batches, dynamic_stream, eval_set, non_dynamic_stream, Image, SyntheticDigits};
use snn_runtime::{Engine, EngineConfig};
use spikedyn::{run_dynamic, Method, ProtocolConfig};

fn test_images(n: u64) -> Vec<Image> {
    let gen = SyntheticDigits::new(33);
    (0..n)
        .map(|i| gen.sample((i % 10) as u8, i).downsample(2))
        .collect()
}

fn fast_engine() -> Engine {
    Engine::new(
        EngineConfig::new(SnnConfig::direct_lateral(196, 10), 77)
            .with_present(PresentConfig {
                t_rest_ms: 0.0,
                retry: None,
                ..PresentConfig::fast()
            })
            .with_max_rate(255.0),
    )
}

/// Serialises every `RAYON_NUM_THREADS` mutation: the test harness runs
/// tests in this binary concurrently, and the env var is process-global,
/// so without this lock one test's setting could land mid-run of another
/// and the intended thread counts would not be reliably exercised.
static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs `f` under an explicit `RAYON_NUM_THREADS` setting, restoring the
/// previous value afterwards.
fn with_thread_count<T>(threads: Option<&str>, f: impl FnOnce() -> T) -> T {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let saved = std::env::var("RAYON_NUM_THREADS").ok();
    match threads {
        Some(n) => std::env::set_var("RAYON_NUM_THREADS", n),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let out = f();
    match saved {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    out
}

#[test]
fn streams_are_identical_across_runs() {
    let gen_a = SyntheticDigits::new(5);
    let gen_b = SyntheticDigits::new(5);
    assert_eq!(
        dynamic_stream(&gen_a, &[0, 3, 7], 6, 0),
        dynamic_stream(&gen_b, &[0, 3, 7], 6, 0)
    );
    let classes: Vec<u8> = (0..10).collect();
    assert_eq!(
        non_dynamic_stream(&gen_a, &classes, 40, 9, 0),
        non_dynamic_stream(&gen_b, &classes, 40, 9, 0)
    );
    assert_eq!(
        eval_set(&gen_a, &classes, 3, 1_000_000, 9),
        eval_set(&gen_b, &classes, 3, 1_000_000, 9)
    );
}

#[test]
fn engine_batches_are_identical_across_thread_counts() {
    let engine = fast_engine();
    let images = test_images(17);
    let default_threads = with_thread_count(None, || engine.infer_batch(&images, 42));
    let one_thread = with_thread_count(Some("1"), || engine.infer_batch(&images, 42));
    let three_threads = with_thread_count(Some("3"), || engine.infer_batch(&images, 42));
    assert_eq!(default_threads, one_thread);
    assert_eq!(default_threads, three_threads);
    // And the parallel paths all match the sequential reference, bit for bit.
    assert_eq!(default_threads, engine.infer_sequential(&images, 42));
}

#[test]
fn engine_ops_metering_is_identical_across_thread_counts() {
    let engine = fast_engine();
    let images = test_images(11);
    let a = with_thread_count(Some("1"), || engine.infer_batch_metered(&images, 8));
    let b = with_thread_count(Some("4"), || engine.infer_batch_metered(&images, 8));
    assert_eq!(a, b);
}

#[test]
fn batched_stream_iteration_covers_everything_once() {
    let engine = fast_engine();
    let images = test_images(10);
    // Feeding the engine batch-by-batch with a shared batch seed must see
    // every sample exactly once; seeds are per-position *within* each
    // batch, so concatenating per-batch results equals whole-batch results
    // only when batch boundaries match — pin the exact contract instead:
    // each batch of size n gets results identical to an n-sample call.
    for batch in batches(&images, 4) {
        let direct = engine.infer_batch(batch, 6);
        assert_eq!(direct.len(), batch.len());
        assert_eq!(direct, engine.infer_sequential(batch, 6));
    }
}

#[test]
fn dynamic_protocol_is_identical_across_runs_and_thread_counts() {
    let cfg = ProtocolConfig {
        samples_per_task: 3,
        assign_per_class: 2,
        eval_per_class: 2,
        tasks: vec![0, 1],
        n_exc: 10,
        ..ProtocolConfig::fast(Method::SpikeDyn, 10)
    };
    let baseline = with_thread_count(None, || run_dynamic(&cfg));
    let one_thread = with_thread_count(Some("1"), || run_dynamic(&cfg));
    let two_threads = with_thread_count(Some("2"), || run_dynamic(&cfg));
    assert_eq!(baseline.recent_task_acc, one_thread.recent_task_acc);
    assert_eq!(baseline.recent_task_acc, two_threads.recent_task_acc);
    assert_eq!(baseline.confusion, one_thread.confusion);
    assert_eq!(baseline.confusion, two_threads.confusion);
    assert_eq!(baseline.train_ops, one_thread.train_ops);
    assert_eq!(baseline.infer_sample_ops, two_threads.infer_sample_ops);
}
