//! Cross-crate integration tests: the full pipeline from synthetic data
//! through training, evaluation and energy estimation.

use neuro_energy::{BitPrecision, GpuSpec};
use snn_core::config::PresentConfig;
use snn_data::{eval_set, SyntheticDigits};
use spikedyn::eval::{run_dynamic, run_non_dynamic, ProtocolConfig};
use spikedyn::search::{search, spikedyn_memory_bytes, SearchConstraints, SearchSpec};
use spikedyn::{Method, Trainer};

fn tiny_protocol(method: Method) -> ProtocolConfig {
    let mut cfg = ProtocolConfig::fast(method, 24);
    cfg.samples_per_task = 4;
    cfg.assign_per_class = 2;
    cfg.eval_per_class = 2;
    cfg.tasks = vec![0, 1, 2];
    cfg
}

#[test]
fn full_dynamic_pipeline_runs_for_every_method() {
    for method in Method::all() {
        let report = run_dynamic(&tiny_protocol(method));
        assert_eq!(report.recent_task_acc.len(), 3, "{method}");
        assert_eq!(report.confusion.total(), 6, "{method}");
        assert!(report.train_ops.kernel_launches > 0, "{method}");
        assert!(report.train_sample_ops.total() > 0, "{method}");
    }
}

#[test]
fn dynamic_pipeline_is_bit_deterministic() {
    let a = run_dynamic(&tiny_protocol(Method::SpikeDyn));
    let b = run_dynamic(&tiny_protocol(Method::SpikeDyn));
    assert_eq!(a.recent_task_acc, b.recent_task_acc);
    assert_eq!(a.previous_tasks_acc, b.previous_tasks_acc);
    assert_eq!(a.train_ops, b.train_ops);
}

#[test]
fn different_seeds_give_different_runs() {
    let mut cfg = tiny_protocol(Method::SpikeDyn);
    let a = run_dynamic(&cfg);
    cfg.seed = 43;
    let b = run_dynamic(&cfg);
    assert_ne!(a.train_ops, b.train_ops);
}

#[test]
fn non_dynamic_pipeline_reaches_checkpoints() {
    let report = run_non_dynamic(&tiny_protocol(Method::Baseline), &[4, 8]);
    assert_eq!(report.checkpoints.len(), 2);
    assert_eq!(report.checkpoints[1].0, 8);
    for &(_, acc) in &report.checkpoints {
        assert!((0.0..=1.0).contains(&acc));
    }
}

#[test]
fn energy_ordering_matches_paper_claims() {
    // Meter each method on identical inputs; SpikeDyn must cost less than
    // ASP on every GPU model, in both phases (the paper's headline).
    let gen = SyntheticDigits::new(5);
    let images: Vec<_> = eval_set(&gen, &(0..10).collect::<Vec<_>>(), 1, 0, 5)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    let mut metered = Vec::new();
    for method in Method::all() {
        let mut t = Trainer::with_compression(method, 196, 40, PresentConfig::fast(), 150.0, 5)
            .with_max_rate(255.0);
        t.train_on(&images);
        for img in &images {
            t.infer_image(img);
        }
        metered.push((t.avg_train_sample_ops(), t.avg_infer_sample_ops()));
    }
    for gpu in [
        GpuSpec::jetson_nano(),
        GpuSpec::gtx_1080_ti(),
        GpuSpec::rtx_2080_ti(),
    ] {
        let train: Vec<f64> = metered.iter().map(|(t, _)| gpu.energy_j(t)).collect();
        let infer: Vec<f64> = metered.iter().map(|(_, i)| gpu.energy_j(i)).collect();
        // Order: [Baseline, Asp, SpikeDyn].
        assert!(train[2] < train[1], "{}: SpikeDyn < ASP training", gpu.name);
        assert!(
            train[2] < train[0],
            "{}: SpikeDyn < Baseline training",
            gpu.name
        );
        assert!(
            infer[2] < infer[1],
            "{}: SpikeDyn < ASP inference",
            gpu.name
        );
        assert!(
            train[1] > train[0],
            "{}: ASP costs more than Baseline",
            gpu.name
        );
    }
}

#[test]
fn search_selects_within_budget_end_to_end() {
    let spec = SearchSpec {
        n_input: 196,
        n_add: 10,
        n_train: 500,
        n_infer: 50,
        bp: BitPrecision::FP32,
        present: PresentConfig {
            dt_ms: 1.0,
            t_present_ms: 20.0,
            t_rest_ms: 5.0,
            retry: None,
        },
        seed: 11,
    };
    let constraints = SearchConstraints {
        mem_bytes: spikedyn_memory_bytes(196, 30, BitPrecision::FP32),
        e_train_j: f64::INFINITY,
        e_infer_j: f64::INFINITY,
    };
    let result = search(&spec, &constraints, &GpuSpec::jetson_nano());
    let selected = result.selected.expect("a model fits");
    assert!(selected.mem_bytes <= constraints.mem_bytes);
    assert!(selected.n_exc <= 30);
    assert!(result.speedup() > 10.0);
}

#[test]
fn inference_preserves_all_learned_state() {
    let gen = SyntheticDigits::new(9);
    let train: Vec<_> = eval_set(&gen, &[3], 4, 0, 9)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    for method in Method::all() {
        let mut t = Trainer::with_compression(method, 196, 16, PresentConfig::fast(), 150.0, 9)
            .with_max_rate(255.0);
        t.train_on(&train);
        let weights = t.net.weights.clone();
        let thetas = t.net.exc.thetas().to_vec();
        t.infer_image(&train[0]);
        assert_eq!(
            t.net.weights, weights,
            "{method}: weights frozen at inference"
        );
        assert_eq!(
            t.net.exc.thetas(),
            &thetas[..],
            "{method}: θ restored after inference"
        );
    }
}

#[test]
fn real_mnist_is_used_when_present() {
    // The IDX loader integrates with the pipeline: generate a fake MNIST
    // directory, load it, and feed it through a trainer.
    use std::fs;
    let dir = std::env::temp_dir().join(format!("spikedyn-repro-mnist-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let imgs = |n: u32| -> Vec<u8> {
        let mut raw = Vec::new();
        raw.extend_from_slice(&0x0000_0803u32.to_be_bytes());
        raw.extend_from_slice(&n.to_be_bytes());
        raw.extend_from_slice(&28u32.to_be_bytes());
        raw.extend_from_slice(&28u32.to_be_bytes());
        raw.extend(std::iter::repeat_n(128u8, (n * 784) as usize));
        raw
    };
    let labs = |labels: &[u8]| -> Vec<u8> {
        let mut raw = Vec::new();
        raw.extend_from_slice(&0x0000_0801u32.to_be_bytes());
        raw.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        raw.extend_from_slice(labels);
        raw
    };
    fs::write(dir.join("train-images-idx3-ubyte"), imgs(2)).unwrap();
    fs::write(dir.join("train-labels-idx1-ubyte"), labs(&[0, 1])).unwrap();
    fs::write(dir.join("t10k-images-idx3-ubyte"), imgs(1)).unwrap();
    fs::write(dir.join("t10k-labels-idx1-ubyte"), labs(&[0])).unwrap();
    let mnist = snn_data::idx::Mnist::load(&dir).unwrap();
    let mut t = Trainer::with_compression(
        Method::SpikeDyn,
        784,
        8,
        PresentConfig {
            dt_ms: 1.0,
            t_present_ms: 20.0,
            t_rest_ms: 0.0,
            retry: None,
        },
        150.0,
        1,
    );
    t.train_on(&mnist.train);
    assert_eq!(t.train_samples_seen(), 2);
    fs::remove_dir_all(&dir).ok();
}
