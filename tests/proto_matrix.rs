//! Cross-version compatibility matrix (`DESIGN.md` §13 negotiation
//! rules).
//!
//! Every client×server protocol pairing is pinned: in-range requests
//! negotiate and serve, out-of-range requests **fail fast at `hello`**
//! with a `proto-mismatch` the client can read — never a hang, a
//! garbled stream, or a silent downgrade. A mixed cluster (one shard
//! pinned to proto 1, one speaking proto 2) keeps serving, migrating,
//! and failing over: the relay negotiates per shard.

use std::time::{Duration, Instant};

use snn_cluster::{Cluster, ClusterConfig, ClusterLimits};
use snn_data::Image;
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer, PROTO_V2, PROTO_VERSION};
use spikedyn::Method;

fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

fn stream(seed: u64, total: u64) -> Vec<Image> {
    let gen = snn_data::SyntheticDigits::new(seed);
    (0..total)
        .map(|i| {
            gen.sample((i % 10) as u8, seed.wrapping_mul(1000) + i)
                .downsample(4)
        })
        .collect()
}

fn proto1_only() -> ServerConfig {
    ServerConfig {
        max_proto: PROTO_VERSION,
        ..ServerConfig::default()
    }
}

/// Scrapes one router counter by name.
fn router_counter(client: &mut ServeClient, name: &str) -> u64 {
    let reply = client.call_raw("cluster-metrics").expect("scrape");
    let resp = snn_serve::protocol::parse_response(&reply).expect("parses");
    let hex = resp.get("data").expect("data");
    let bytes = snn_serve::protocol::hex_decode(hex).expect("hex");
    let text = String::from_utf8(bytes).expect("utf-8");
    snn_obs::Snapshot::parse(&text)
        .expect("exposition")
        .counter(name)
}

#[test]
fn proto2_client_fails_fast_against_a_proto1_only_server() {
    let server = SnnServer::start("127.0.0.1:0", proto1_only()).expect("server");
    let err = ServeClient::connect_with_proto(server.local_addr(), PROTO_V2)
        .expect_err("negotiation must be refused");
    assert_eq!(err.server_code(), Some("proto-mismatch"), "got {err}");
    // Proto 1 on the same server still works.
    let mut client =
        ServeClient::connect_with_proto(server.local_addr(), PROTO_VERSION).expect("proto 1");
    client.ping().expect("ping");
}

#[test]
fn proto1_client_fails_fast_against_a_proto2_only_server() {
    let server = SnnServer::start(
        "127.0.0.1:0",
        ServerConfig {
            min_proto: PROTO_V2,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let err = ServeClient::connect_with_proto(server.local_addr(), PROTO_VERSION)
        .expect_err("negotiation must be refused");
    assert_eq!(err.server_code(), Some("proto-mismatch"), "got {err}");
    let mut client =
        ServeClient::connect_with_proto(server.local_addr(), PROTO_V2).expect("proto 2");
    client.ping().expect("ping");
}

#[test]
fn unknown_future_protos_are_refused_by_default_servers() {
    let server = SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("server");
    let err = ServeClient::connect_with_proto(server.local_addr(), 7)
        .expect_err("future protocols must be refused, not guessed at");
    assert_eq!(err.server_code(), Some("proto-mismatch"), "got {err}");
}

#[test]
fn proto1_pinned_router_refuses_proto2_clients_but_serves_proto1() {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                max_proto: PROTO_VERSION,
                ..ClusterLimits::default()
            },
        },
    )
    .expect("cluster");
    cluster.spawn_shard(ServerConfig::default()).expect("shard");

    let err = ServeClient::connect_with_proto(cluster.local_addr(), PROTO_V2)
        .expect_err("pinned router must refuse proto 2");
    assert_eq!(err.server_code(), Some("proto-mismatch"), "got {err}");

    let mut client = ServeClient::connect(cluster.local_addr()).expect("proto 1 client");
    client.open("m", tiny_spec(1)).expect("open");
    client.ingest("m", &stream(1, 4)).expect("ingest");
    client.close("m").expect("close");
    cluster.shutdown();
}

#[test]
fn mixed_cluster_serves_and_migrates_across_a_proto1_pinned_shard() {
    let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).expect("cluster");
    let modern = cluster.spawn_shard(ServerConfig::default()).expect("shard");
    let legacy = cluster.spawn_shard(proto1_only()).expect("pinned shard");

    let mut client =
        ServeClient::connect_with_proto(cluster.local_addr(), PROTO_V2).expect("connect");
    let full = stream(5, 16);
    client.open("mix", tiny_spec(5)).expect("open");
    let mut preds = Vec::new();
    for chunk in full[..8].chunks(4) {
        preds.extend(client.ingest("mix", chunk).expect("ingest").predictions);
    }
    // Force the session through both shards: the migration checkpoint
    // crosses a proto 2 relay one way and a proto 1 relay the other.
    cluster.migrate_session("mix", legacy).expect("to legacy");
    for chunk in full[8..12].chunks(4) {
        preds.extend(client.ingest("mix", chunk).expect("ingest").predictions);
    }
    cluster.migrate_session("mix", modern).expect("to modern");
    for chunk in full[12..].chunks(4) {
        preds.extend(client.ingest("mix", chunk).expect("ingest").predictions);
    }

    // Bit-exact against a single-process learner despite the mixed
    // relay framings.
    let mut reference = snn_online::OnlineLearner::new(tiny_spec(5).online_config());
    let mut ref_preds = Vec::new();
    for chunk in full.chunks(4) {
        ref_preds.extend(reference.ingest_batch(chunk).expect("reference"));
    }
    assert_eq!(preds, ref_preds, "mixed-relay predictions");
    assert_eq!(
        client.checkpoint("mix").expect("checkpoint"),
        reference.checkpoint().to_bytes(),
        "mixed-relay checkpoint must be byte-identical"
    );

    // Both relay generations actually carried traffic.
    assert!(
        router_counter(&mut client, "cluster.relay.p1.tx_bytes") > 0,
        "the pinned shard was reached over proto 1"
    );
    assert!(
        router_counter(&mut client, "cluster.relay.p2.tx_bytes") > 0,
        "the modern shard was reached over proto 2"
    );
    client.close("mix").expect("close");
    cluster.shutdown();
}

#[test]
fn sessions_fail_over_from_a_killed_proto1_pinned_shard() {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_millis(40),
                probes_to_kill: 2,
                shadow_interval: Some(Duration::from_millis(25)),
                ..ClusterLimits::default()
            },
        },
    )
    .expect("cluster");
    cluster.spawn_shard(ServerConfig::default()).expect("shard");
    // The victim is pinned to proto 1 *and* killable: its shadows ride
    // a proto 1 relay, the failover restore rides proto 2.
    let external = SnnServer::start("127.0.0.1:0", proto1_only()).expect("victim");
    let victim = cluster.attach_shard(external.local_addr()).expect("attach");

    let mut client =
        ServeClient::connect_with_proto(cluster.local_addr(), PROTO_V2).expect("connect");
    client.open("f", tiny_spec(9)).expect("open");
    if cluster.session_shard("f") != Some(victim) {
        cluster.migrate_session("f", victim).expect("seed victim");
    }
    let full = stream(9, 16);
    client.ingest("f", &full[..8]).expect("first half");

    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.session_shadow("f").map(|(_, seq)| seq) != Some(8) {
        assert!(Instant::now() < deadline, "shadower never parked seq 8");
        std::thread::sleep(Duration::from_millis(10));
    }
    external.shutdown();

    let retry_deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match client.ingest("f", &full[8..]) {
            Ok(_) => break,
            Err(e) if Instant::now() < retry_deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("session never recovered: {e}"),
        }
    }
    let now = cluster.session_shard("f");
    assert!(
        now.is_some() && now != Some(victim),
        "the session must fail over off the dead pinned shard"
    );

    let mut reference = snn_online::OnlineLearner::new(tiny_spec(9).online_config());
    reference.ingest_batch(&full[..8]).expect("reference");
    reference.ingest_batch(&full[8..]).expect("reference");
    assert_eq!(
        client.checkpoint("f").expect("checkpoint"),
        reference.checkpoint().to_bytes(),
        "failover across protocol generations is bit-exact"
    );
    client.close("f").expect("close");
    cluster.shutdown();
}
