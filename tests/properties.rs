//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use snn_core::encoding::{BurstEncoder, PoissonEncoder, RankOrderEncoder, TtfsEncoder};
use snn_core::metrics::ConfusionMatrix;
use snn_core::neuron::{AdaptiveThreshold, LifLayer, LifParams};
use snn_core::ops::OpCounts;
use snn_core::rng::{derive_seed, seeded_rng};
use snn_core::synapse::WeightMatrix;
use snn_data::SyntheticDigits;
use snn_serve::frame::{
    decode_exact, line_to_frame, verb_code, Frame, FLAG_PUSH, MAX_FRAME_PAYLOAD, VERB_CODES,
    VERB_RAW,
};
use snn_serve::protocol::hex_encode;

proptest! {
    // --- weight matrix invariants ---

    #[test]
    fn weights_stay_clipped_under_arbitrary_nudges(
        seed in 0u64..1000,
        nudges in prop::collection::vec((0usize..6, 0usize..8, -2.0f32..2.0), 0..64),
    ) {
        let mut rng = seeded_rng(seed);
        let mut m = WeightMatrix::random_uniform(6, 8, 0.3, 1.0, &mut rng);
        for (post, pre, delta) in nudges {
            m.nudge(post, pre, delta);
        }
        for &w in m.as_slice() {
            prop_assert!((0.0..=1.0).contains(&w), "weight {w} escaped [0, w_max]");
        }
    }

    #[test]
    fn normalisation_is_idempotent(seed in 0u64..1000, target in 0.5f32..100.0) {
        let mut rng = seeded_rng(seed);
        let mut m = WeightMatrix::random_uniform(4, 16, 1.0, 1000.0, &mut rng);
        let mut ops = OpCounts::default();
        m.normalize_rows(target, &mut ops);
        let once: Vec<f32> = (0..4).map(|j| m.row_sum(j)).collect();
        m.normalize_rows(target, &mut ops);
        let twice: Vec<f32> = (0..4).map(|j| m.row_sum(j)).collect();
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn decay_never_increases_weights(seed in 0u64..1000, factor in 0.0f32..1.0) {
        let mut rng = seeded_rng(seed);
        let mut m = WeightMatrix::random_uniform(4, 8, 1.0, 1.0, &mut rng);
        let before: Vec<f32> = m.as_slice().to_vec();
        let mut ops = OpCounts::default();
        m.decay_all(factor, &mut ops);
        for (a, b) in m.as_slice().iter().zip(&before) {
            prop_assert!(a <= b);
        }
    }

    // --- op-count algebra ---

    #[test]
    fn opcounts_since_inverts_accumulate(
        a in any::<[u32; 4]>(),
        b in any::<[u32; 4]>(),
    ) {
        let mk = |v: [u32; 4]| OpCounts {
            neuron_updates: u64::from(v[0]),
            decay_mults: u64::from(v[1]),
            syn_events: u64::from(v[2]),
            weight_updates: u64::from(v[3]),
            ..Default::default()
        };
        let early = mk(a);
        let mut late = early;
        late.accumulate(&mk(b));
        prop_assert_eq!(late.since(&early), mk(b));
    }

    #[test]
    fn opcounts_scaled_is_linear(v in any::<[u16; 3]>(), k in 0u64..1000) {
        let ops = OpCounts {
            neuron_updates: u64::from(v[0]),
            exp_evals: u64::from(v[1]),
            kernel_launches: u64::from(v[2]),
            ..Default::default()
        };
        prop_assert_eq!(ops.scaled(k).total(), ops.total() * k);
    }

    // --- encoders ---

    #[test]
    fn poisson_rates_are_bounded(intensities in prop::collection::vec(-1.0f32..2.0, 1..64)) {
        let e = PoissonEncoder::new(63.75);
        for r in e.rates_hz(&intensities) {
            prop_assert!((0.0..=63.75).contains(&r));
        }
    }

    #[test]
    fn ttfs_emits_at_most_one_spike_per_channel(
        intensities in prop::collection::vec(0.0f32..1.0, 1..32),
        n_steps in 2u32..200,
    ) {
        let mut ops = OpCounts::default();
        let train = TtfsEncoder::new(n_steps).encode(&intensities, &mut ops);
        for c in 0..intensities.len() {
            prop_assert!(train.channel(c).len() <= 1);
            if let Some(&t) = train.channel(c).first() {
                prop_assert!(t < n_steps);
            }
        }
    }

    #[test]
    fn rank_order_spike_times_are_a_prefix_permutation(
        intensities in prop::collection::vec(0.0f32..1.0, 1..24),
    ) {
        let mut ops = OpCounts::default();
        let train = RankOrderEncoder.encode(&intensities, &mut ops);
        let active = intensities.iter().filter(|&&x| x > 0.0).count();
        let mut times: Vec<u32> = (0..intensities.len())
            .flat_map(|c| train.channel(c).to_vec())
            .collect();
        times.sort_unstable();
        let expected: Vec<u32> = (0..active as u32).collect();
        prop_assert_eq!(times, expected);
    }

    #[test]
    fn burst_spike_count_is_monotone_in_intensity(
        a in 0.0f32..1.0,
        b in 0.0f32..1.0,
    ) {
        let e = BurstEncoder::new(8, 2);
        let mut ops = OpCounts::default();
        let ta = e.encode(&[a], &mut ops);
        let tb = e.encode(&[b], &mut ops);
        if a <= b {
            prop_assert!(ta.channel(0).len() <= tb.channel(0).len());
        }
    }

    // --- neurons ---

    #[test]
    fn lif_never_spikes_without_input(steps in 1u32..500) {
        let mut layer = LifLayer::new(4, LifParams::excitatory(), Some(AdaptiveThreshold::default()));
        let mut ops = OpCounts::default();
        for _ in 0..steps {
            prop_assert_eq!(layer.step(0.5, &mut ops), 0);
        }
    }

    #[test]
    fn lif_voltage_stays_in_physiological_range(
        drive in prop::collection::vec(0.0f32..0.5, 1..200),
    ) {
        let p = LifParams::excitatory();
        let mut layer = LifLayer::new(1, p, None);
        let mut ops = OpCounts::default();
        for w in drive {
            layer.inject_exc(0, w);
            layer.step(0.5, &mut ops);
            let v = layer.voltages()[0];
            prop_assert!(v >= p.e_inh_mv && v <= p.v_thresh_mv + 1.0, "v = {v}");
        }
    }

    // --- metrics ---

    #[test]
    fn confusion_accuracy_is_a_probability(
        pairs in prop::collection::vec((0u8..5, prop::option::of(0u8..5)), 0..64),
    ) {
        let mut cm = ConfusionMatrix::new(5);
        for (t, p) in &pairs {
            cm.add(*t, *p);
        }
        let acc = cm.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        prop_assert_eq!(cm.total(), pairs.len() as u64);
    }

    // --- dataset determinism ---

    #[test]
    fn synthetic_digits_are_pure_functions_of_seed(
        seed in 0u64..500,
        class in 0u8..10,
        index in 0u64..50,
    ) {
        let a = SyntheticDigits::new(seed).sample(class, index);
        let b = SyntheticDigits::new(seed).sample(class, index);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn derive_seed_has_no_cheap_collisions(master in any::<u64>(), s1 in 0u64..128, s2 in 0u64..128) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(derive_seed(master, s1), derive_seed(master, s2));
    }

    // --- proto 2 frame codec (DESIGN.md §13) ---

    #[test]
    fn frame_encode_decode_is_an_identity(
        flags in 0u8..2, // FLAG_DATA is owned by line_to_frame; see below
        tag in any::<u32>(),
        head_bytes in prop::collection::vec(32u8..127, 0..96),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame {
            flags: if flags == 1 { FLAG_PUSH } else { 0 },
            verb: VERB_RAW,
            tag,
            head: String::from_utf8(head_bytes).expect("printable ASCII"),
            payload,
        };
        prop_assert_eq!(decode_exact(&frame.encode()).expect("round trip"), frame);
    }

    #[test]
    fn frame_lift_and_reinsert_is_total_for_any_verb_tag_payload(
        verb_i in 0usize..21,
        tag in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..256),
        trailing_rid in any::<bool>(),
    ) {
        // Every protocol verb code (plus raw), any tag, any payload —
        // including zero-length — survives line → frame → wire → frame →
        // line byte-identically, rid-as-final-field included.
        let verb = if verb_i == 0 { "no-such-verb" } else { VERB_CODES[verb_i - 1].1 };
        let rid = if trailing_rid { " rid=c0-42" } else { "" };
        let line = format!("{verb} id=s1 data={}{rid}", hex_encode(&data));
        let frame = line_to_frame(&line, tag, 0);
        prop_assert_eq!(frame.verb, verb_code(verb));
        prop_assert_eq!(frame.tag, tag);
        prop_assert_eq!(&frame.payload, &data);
        let wired = decode_exact(&frame.encode()).expect("round trip");
        prop_assert_eq!(wired.to_line().expect("reinsert"), line);
    }
}

/// The payload cap is inclusive: a frame carrying exactly
/// [`MAX_FRAME_PAYLOAD`] bytes round-trips, one byte past it is the
/// reject threshold (pinned in `snn-serve`'s hardening tests).
#[test]
fn frame_roundtrips_at_the_exact_payload_cap() {
    let frame = Frame {
        flags: 0,
        verb: VERB_RAW,
        tag: 7,
        head: "checkpoint id=big data=".to_string(),
        payload: vec![0xAB; MAX_FRAME_PAYLOAD as usize],
    };
    let decoded = decode_exact(&frame.encode()).expect("cap-sized frame decodes");
    assert_eq!(decoded.payload.len(), MAX_FRAME_PAYLOAD as usize);
    assert_eq!(decoded, frame);
}
