//! Workspace-level guarantees of the `snn-obs` telemetry spine:
//!
//! * **Observation never perturbs results** (the pinned invariant): a
//!   session served through an instrumented `snn-serve` server — with
//!   `metrics` scrapes interleaved mid-stream — finishes with a wire
//!   checkpoint **byte-identical** to an unobserved single-process
//!   [`snn_online::OnlineLearner`] fed the same stream. Telemetry reads
//!   clocks and bumps atomics; it never touches learner state.
//! * **Cross-tier trace stitching**: a live migration shows up in a
//!   `cluster-metrics` scrape as a `cluster.migrate` span carrying its
//!   duration, payload bytes, and originating request id — and the same
//!   rid attributes the shard-side spans the migration's forwarded
//!   `checkpoint`/`restore` lines produced, across process boundaries.
//! * **Every reply is explainable**: the rid a routed reply carries can
//!   be handed straight to `cluster-trace`, which assembles the merged
//!   router+shard trace tree — rooted at the router's accept span,
//!   bounded by the client-observed latency, with the queue/exec/write
//!   split accounted.
//!
//! Unit-level exposition tests (bucket bounds, merge algebra, hammer
//! concurrency) live in `snn-obs` itself.

use snn_cluster::{Cluster, ClusterConfig};
use snn_data::{Image, Scenario, SyntheticDigits};
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer};
use snn_slo::{Objective, Signal, SloEngine, SloPolicy};
use spikedyn::Method;

/// A tiny 7×7-input profile so streams stay fast.
fn tiny_spec(seed: u64) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

/// The scenario's deterministic stream, downsampled onto the 7×7 profile.
fn scenario_stream(scenario: Scenario, seed: u64, total: u64) -> Vec<Image> {
    let gen = SyntheticDigits::new(seed);
    let classes: Vec<u8> = (0..10).collect();
    scenario
        .stream(&gen, &classes, total, seed, 0)
        .into_iter()
        .map(|img| img.downsample(4))
        .collect()
}

#[test]
fn observed_session_is_bit_identical_to_an_unobserved_learner() {
    let server =
        SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    let mut scraper = ServeClient::connect(addr).expect("connect scraper");

    let spec = tiny_spec(70);
    let stream = scenario_stream(Scenario::GradualDrift, 70, 32);
    client.open("watched", spec.clone()).unwrap();

    // Drive the stream with a metrics scrape after every chunk — the
    // most adversarial interleaving observation can manage.
    let mut chunks = 0u64;
    for chunk in stream.chunks(spec.batch_size) {
        client.ingest("watched", chunk).unwrap();
        chunks += 1;
        let snap = scraper.metrics().expect("mid-stream scrape");
        assert_eq!(
            snap.histogram("serve.req.ingest_us").count(),
            chunks,
            "every ingest lands in its latency histogram"
        );
    }
    let wire_checkpoint = client.checkpoint("watched").unwrap();

    // The unobserved reference: a bare learner (its `obs` is never set),
    // fed the same stream in the same chunks.
    let mut reference = snn_online::OnlineLearner::new(spec.online_config());
    for chunk in stream.chunks(spec.batch_size) {
        reference.ingest_batch(chunk).unwrap();
    }
    assert_eq!(
        wire_checkpoint,
        reference.checkpoint().to_bytes(),
        "metrics collection must never perturb learner state"
    );

    // The scrape saw real traffic, attributed to this server's instance.
    let snap = scraper.metrics().unwrap();
    assert!(snap.counter("serve.requests") >= chunks);
    assert!(
        snap.spans.iter().any(|s| s.name == "serve.ingest"),
        "wire-level spans are recorded"
    );
    client.close("watched").unwrap();
    server.shutdown();
}

#[test]
fn subscribed_journaled_slo_watched_session_is_still_bit_identical() {
    let server =
        SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind an ephemeral port");
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");
    // The heaviest observation stack the stack offers, all at once: a
    // live telemetry subscription streaming frames throughout the run…
    let mut sub = ServeClient::connect(addr)
        .expect("connect subscriber")
        .subscribe(20)
        .expect("subscribe");
    // …feeding an SLO engine that evaluates every frame (journaling is
    // always-on; the flight recorder needs no opt-in).
    let mut engine = SloEngine::new(
        vec![
            Objective {
                name: "rejects".into(),
                signal: Signal::RejectRate,
                threshold: 0.01,
            },
            Objective {
                name: "ingest-p99".into(),
                signal: Signal::VerbLatencyP99Us("ingest".into()),
                threshold: 60_000_000.0,
            },
        ],
        SloPolicy::default(),
    );

    let spec = tiny_spec(72);
    let stream = scenario_stream(Scenario::NoiseBurst, 72, 32);
    client.open("triple", spec.clone()).unwrap();

    let mut frames = 0u64;
    let mut alerts = Vec::new();
    let mut journaled = Vec::new();
    for chunk in stream.chunks(spec.batch_size) {
        client.ingest("triple", chunk).unwrap();
        // Block for the next pushed frame and evaluate it — the most
        // adversarial interleaving: every ingest races a sampler scrape.
        let push = sub.next().expect("frame mid-stream");
        frames += 1;
        alerts.extend(engine.observe(&push.metrics, push.seq * 20_000));
        journaled.extend(push.journal.events);
    }
    let wire_checkpoint = client.checkpoint("triple").unwrap();

    let mut reference = snn_online::OnlineLearner::new(spec.online_config());
    for chunk in stream.chunks(spec.batch_size) {
        reference.ingest_batch(chunk).unwrap();
    }
    assert_eq!(
        wire_checkpoint,
        reference.checkpoint().to_bytes(),
        "streaming + journaling + SLO evaluation must never perturb learner state"
    );

    // The observation stack really ran: frames arrived, the engine saw
    // them, and a healthy service fired nothing.
    assert_eq!(frames, 8);
    assert!(
        alerts.is_empty(),
        "a healthy service breaches no objective: {alerts:?}"
    );
    // The journal deltas carried the session's lifecycle: exactly one
    // frame's delta holds this session's serve.open (deltas never
    // re-send events).
    assert_eq!(
        journaled
            .iter()
            .filter(|e| e.kind == "serve.open" && e.field("id") == Some("triple"))
            .count(),
        1,
        "the open event streams once across all frame deltas"
    );
    client.close("triple").unwrap();
    server.shutdown();
}

/// True when any node in the subtree carries the phase label.
fn has_phase(node: &snn_obs::TraceNode, phase: &str) -> bool {
    node.phase == phase || node.children.iter().any(|c| has_phase(c, phase))
}

#[test]
fn a_reply_rid_cluster_traces_to_the_client_observed_latency() {
    let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();

    let spec = tiny_spec(73);
    let stream = scenario_stream(Scenario::GradualDrift, 73, 16);
    client.open("traced", spec.clone()).unwrap();
    client.ingest("traced", &stream[..8]).unwrap();

    // Take the rid straight off a routed reply: every line through the
    // router carries its minted rid back on the ok reply.
    let line = snn_serve::protocol::format_request(&snn_serve::protocol::Request::Ingest {
        id: "traced".to_string(),
        images: stream[8..12].to_vec(),
    });
    let t0 = std::time::Instant::now();
    let reply = client.call_raw(&line).unwrap();
    let observed_us = t0.elapsed().as_micros() as u64;
    let resp = snn_serve::protocol::parse_response(&reply).expect("well-formed ingest reply");
    let rid = resp
        .get("rid")
        .expect("routed replies carry their rid")
        .to_string();
    assert!(rid.starts_with("c0-"), "router-minted rid: {rid}");

    // …and ask the router to explain it: the merged tree roots at the
    // router's accept span, whose duration is the request as the
    // outermost tier saw it — it cannot exceed the client-observed
    // round trip, and every shard-side phase hangs underneath.
    let tree = client.cluster_trace(&rid).unwrap();
    assert_eq!(tree.rid, rid);
    assert_eq!(tree.root.phase, "accept", "the accept span roots the tree");
    assert!(tree.root.dur_us > 0, "the root covers real time");
    assert!(
        tree.root.dur_us <= observed_us,
        "root {} µs cannot exceed the client-observed {} µs",
        tree.root.dur_us,
        observed_us
    );
    for phase in ["relay", "request", "queue_wait", "exec", "write"] {
        assert!(
            has_phase(&tree.root, phase),
            "missing `{phase}` phase in:\n{}",
            tree.render()
        );
    }
    let shares = tree.shares();
    let sum = shares.queue_share() + shares.exec_share() + shares.write_share();
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "queue+exec+write shares must account for each other: {sum}"
    );

    // The rendered document is canonical: parse ∘ render is byte-stable,
    // and re-assembling later only ever extends the tree (the trace
    // request itself is rid-attributed traffic) without moving the root.
    let rendered = tree.render();
    let reparsed = snn_obs::TraceTree::parse(&rendered).expect("trace document parses");
    assert_eq!(reparsed.render(), rendered, "render ∘ parse is byte-stable");
    let again = client.cluster_trace(&rid).unwrap();
    assert_eq!(again.root.phase, tree.root.phase);
    assert_eq!(again.root.dur_us, tree.root.dur_us);
    assert!(again.root.count() >= tree.root.count());

    // Tracing is observation like any other: the session's checkpoint
    // stays byte-identical to a bare learner fed the same stream.
    let wire_checkpoint = client.checkpoint("traced").unwrap();
    let mut reference = snn_online::OnlineLearner::new(spec.online_config());
    reference.ingest_batch(&stream[..8]).unwrap();
    reference.ingest_batch(&stream[8..12]).unwrap();
    assert_eq!(
        wire_checkpoint,
        reference.checkpoint().to_bytes(),
        "trace assembly must never perturb learner state"
    );

    client.close("traced").unwrap();
    cluster.shutdown();
}

#[test]
fn cluster_metrics_scrape_reports_migration_with_its_request_id() {
    let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    cluster.spawn_shard(ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(cluster.local_addr()).unwrap();

    let spec = tiny_spec(71);
    let stream = scenario_stream(Scenario::RecurringTasks, 71, 16);
    client.open("mover", spec.clone()).unwrap();
    client.ingest("mover", &stream[..8]).unwrap();

    let here = cluster.session_shard("mover").unwrap();
    let there = cluster
        .shard_ids()
        .into_iter()
        .find(|&s| s != here)
        .unwrap();
    cluster.migrate_session("mover", there).unwrap();
    client.ingest("mover", &stream[8..]).unwrap();

    // Scrape the whole cluster while the migrated session is live.
    let reply = client.call_raw("cluster-metrics").unwrap();
    let resp = snn_serve::protocol::parse_response(&reply).expect("well-formed reply");
    assert_eq!(resp.get("shards"), Some("2"));
    assert_eq!(resp.get("scraped"), Some("2"), "both shards answered");
    let text = String::from_utf8(
        snn_serve::protocol::hex_decode(resp.get("data").expect("data field")).unwrap(),
    )
    .unwrap();
    let merged = snn_obs::Snapshot::parse(&text).expect("merged exposition parses");

    // The migration is visible in the merged counters and histograms…
    assert_eq!(merged.counter("cluster.migrations"), 1);
    assert_eq!(merged.histogram("cluster.migrate_us").count(), 1);
    assert!(merged.histogram("cluster.migrate_bytes").mean() > 0.0);

    // …and as a span carrying duration, bytes, and the originating rid.
    let span = merged
        .spans
        .iter()
        .find(|s| s.name == "cluster.migrate")
        .expect("cluster.migrate span in the merged scrape");
    assert!(span.dur_us > 0, "migration duration recorded");
    let bytes: u64 = span.field("bytes").unwrap().parse().unwrap();
    assert!(bytes > 0, "migration payload bytes recorded");
    assert_eq!(span.field("from"), Some(here.to_string().as_str()));
    assert_eq!(span.field("to"), Some(there.to_string().as_str()));
    let rid = span.rid.clone();
    assert!(
        rid.starts_with('c'),
        "migrations are router-minted control-plane work: {rid}"
    );

    // The same rid attributes the shard-side spans produced by the
    // migration's forwarded checkpoint/restore lines — one id stitches
    // the move across process boundaries.
    for name in ["serve.checkpoint", "serve.restore"] {
        assert!(
            merged.spans.iter().any(|s| s.name == name && s.rid == rid),
            "missing shard-side {name} span under rid {rid}"
        );
    }

    // Satellite: the stats fan-out reports per-shard scrape latency.
    let raw = client.call_raw("cluster-stats").unwrap();
    assert!(
        raw.contains("s0_scrape_us=") && raw.contains("s1_scrape_us="),
        "cluster-stats must report per-shard scrape latency: {raw}"
    );

    client.close("mover").unwrap();
    cluster.shutdown();
}
