//! Quickstart: train a small SpikeDyn network on two digit classes and
//! classify held-out samples.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use snn_core::config::PresentConfig;
use snn_data::{eval_set, SyntheticDigits};
use spikedyn::{Method, Trainer};

fn main() {
    // 14×14 synthetic digits keep the example fast; see DESIGN.md §2 for
    // why the procedural dataset stands in for MNIST.
    let gen = SyntheticDigits::new(42);
    let prep = |v: Vec<snn_data::Image>| -> Vec<snn_data::Image> {
        v.into_iter().map(|img| img.downsample(2)).collect()
    };
    let classes = [0u8, 1];

    // A SpikeDyn trainer: direct lateral inhibition + Alg. 2 learning,
    // time constants compressed for this short run (DESIGN.md §2).
    let mut trainer =
        Trainer::with_compression(Method::SpikeDyn, 196, 30, PresentConfig::fast(), 150.0, 42)
            .with_max_rate(255.0);

    // Unsupervised training: labels are never shown to the network.
    let train = prep(eval_set(&gen, &classes, 20, 0, 42));
    println!("training on {} unlabeled samples …", train.len());
    trainer.train_on(&train);

    // Assign each neuron to the class it responds to most, then evaluate.
    let assign = prep(eval_set(&gen, &classes, 5, 1_000_000, 42));
    let assignment = trainer.fit_assignment(&assign, 10);
    let test = prep(eval_set(&gen, &classes, 10, 2_000_000, 42));
    let confusion = trainer.evaluate(&assignment, &test);

    println!("\nconfusion matrix (rows = true class):");
    println!("{}", confusion.to_table());
    println!("accuracy: {:.1}%", confusion.accuracy() * 100.0);
    println!(
        "ops metered: {} kernel launches for training, {} for inference",
        trainer.train_ops.kernel_launches, trainer.infer_ops.kernel_launches
    );
}
