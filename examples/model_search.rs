//! The memory- and energy-aware model search (paper Alg. 1): find the
//! largest SNN that fits an embedded deployment budget, using analytical
//! estimates instead of full training runs.
//!
//! ```sh
//! cargo run --release --example model_search
//! ```

use neuro_energy::{BitPrecision, GpuSpec};
use snn_core::config::PresentConfig;
use spikedyn::search::{search, SearchConstraints, SearchSpec};

fn main() {
    // Deployment: a Jetson Nano processing 60k training and 10k inference
    // samples, with 640 KiB of model memory and a 260 kJ / 26 kJ energy
    // budget.
    let gpu = GpuSpec::jetson_nano();
    let spec = SearchSpec {
        n_input: 196,
        n_add: 50,
        n_train: 60_000,
        n_infer: 10_000,
        bp: BitPrecision::FP32,
        present: PresentConfig::fast(),
        seed: 7,
    };
    let constraints = SearchConstraints {
        mem_bytes: 640 * 1024,
        e_train_j: 260_000.0,
        e_infer_j: 26_000.0,
    };
    println!(
        "searching on {} (budget: {} KiB, {:.0} kJ train, {:.0} kJ infer)\n",
        gpu.name,
        constraints.mem_bytes / 1024,
        constraints.e_train_j / 1e3,
        constraints.e_infer_j / 1e3
    );
    let result = search(&spec, &constraints, &gpu);
    println!("explored candidates:");
    for c in &result.explored {
        println!(
            "  n_exc={:4}  mem={:4} KiB  Et={:8.1} kJ  Ei={:7.1} kJ  {}",
            c.n_exc,
            c.mem_bytes / 1024,
            c.e_train_j / 1e3,
            c.e_infer_j / 1e3,
            if c.feasible {
                "feasible"
            } else {
                "violates budget"
            }
        );
    }
    match result.selected {
        Some(c) => println!("\nselected model: {} excitatory neurons", c.n_exc),
        None => println!("\nno model satisfies the constraints"),
    }
    println!(
        "exploration cost: {:.2} s of modelled GPU time vs {:.0} s for exhaustive runs ({}x faster)",
        result.search_cost_s,
        result.exhaustive_cost_s,
        result.speedup() as u64
    );
}
