//! Energy comparison across methods and GPUs (the paper's Fig. 11 in
//! miniature): meter the per-sample operations of each method and price
//! them on the three device models of Table I.
//!
//! ```sh
//! cargo run --release --example energy_comparison
//! ```

use neuro_energy::all_gpus;
use snn_core::config::PresentConfig;
use snn_data::{eval_set, SyntheticDigits};
use spikedyn::{Method, Trainer};

fn main() {
    let gen = SyntheticDigits::new(42);
    let images: Vec<_> = eval_set(&gen, &(0..10).collect::<Vec<_>>(), 1, 0, 42)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();

    println!("per-sample training energy [mJ] (N100, fast profile):\n");
    print!("{:12}", "gpu");
    for m in Method::all() {
        print!("{:>10}", m.label());
    }
    println!();
    let mut per_method = Vec::new();
    for method in Method::all() {
        let mut trainer =
            Trainer::with_compression(method, 196, 100, PresentConfig::fast(), 150.0, 42)
                .with_max_rate(255.0);
        trainer.train_on(&images);
        per_method.push(trainer.avg_train_sample_ops());
    }
    for gpu in all_gpus() {
        print!("{:12}", gpu.name);
        for ops in &per_method {
            print!("{:>10.2}", gpu.energy_j(ops) * 1e3);
        }
        println!();
    }
    println!(
        "\nSpikeDyn runs without the inhibitory layer and gates its weight updates,\n\
         so it launches fewer kernels per step than the baseline, while ASP pays\n\
         for extra traces and per-neuron exponentials (paper §III-B, Fig. 11)."
    );
}
