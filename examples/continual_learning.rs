//! Continual learning as a *stream*: digit tasks arrive and recur while an
//! `snn-online` learner trains, detects drift, and periodically writes
//! durable checkpoints — then gets killed mid-stream and warm-started from
//! its last snapshot, finishing with results bit-identical to a learner
//! that never stopped.
//!
//! ```sh
//! cargo run --release --example continual_learning
//! ```

use snn_data::{Scenario, SyntheticDigits};
use snn_online::{ModelSnapshot, OnlineConfig, OnlineLearner};
use spikedyn::Method;

fn main() {
    let gen = SyntheticDigits::new(42);
    let classes: Vec<u8> = (0..6).collect();
    let total = 144u64;
    let scenario = Scenario::RecurringTasks;
    let stream: Vec<_> = scenario
        .stream(&gen, &classes, total, 42, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    println!(
        "streaming scenario `{scenario}`: {total} samples over tasks {classes:?}, \
         checkpoint every 48 samples\n"
    );

    let ckpt_dir = std::path::PathBuf::from("target/online-example");
    std::fs::create_dir_all(&ckpt_dir).expect("create checkpoint dir");

    for method in [Method::SpikeDyn, Method::Asp, Method::Baseline] {
        let mut cfg = OnlineConfig::fast(method, 48);
        cfg.batch_size = 8;
        cfg.drift.window = 16;

        // Stream in, periodic checkpoint out.
        let mut learner = OnlineLearner::new(cfg);
        let ckpt_path = ckpt_dir.join(format!("{}.sdyn", method.label().to_lowercase()));
        let mut ckpt_size = 0usize;
        for (i, chunk) in stream.chunks(8).enumerate() {
            learner.ingest_batch(chunk).expect("stream matches config");
            if (i + 1) % 6 == 0 {
                let snapshot = learner.checkpoint();
                ckpt_size = snapshot.to_bytes().len();
                snapshot.save(&ckpt_path).expect("write checkpoint");
            }
        }
        let report = learner.report();
        let accs: Vec<String> = report
            .per_task_accuracy
            .iter()
            .take(classes.len())
            .map(|a| a.map_or("  -".into(), |a| format!("{:3.0}", a * 100.0)))
            .collect();
        println!(
            "{:9}  windowed accuracy {:3.0}%  per-task [{}]%  forgetting {:4.1}%  \
             drift events {}  checkpoint {:.1} KiB",
            method.label(),
            report.accuracy * 100.0,
            accs.join(" "),
            report.mean_forgetting * 100.0,
            report.drift_events.len(),
            ckpt_size as f64 / 1024.0,
        );
    }

    // Kill/warm-start drill on SpikeDyn: run half, die, resume from the
    // snapshot, finish — and verify against the uninterrupted learner.
    println!("\nwarm-start drill (SpikeDyn): pause at sample 72, reload, finish");
    let mut cfg = OnlineConfig::fast(Method::SpikeDyn, 48);
    cfg.batch_size = 8;
    cfg.drift.window = 16;

    let mut uninterrupted = OnlineLearner::new(cfg.clone());
    for chunk in stream.chunks(8) {
        uninterrupted.ingest_batch(chunk).unwrap();
    }

    let mut first_half = OnlineLearner::new(cfg);
    for chunk in stream[..72].chunks(8) {
        first_half.ingest_batch(chunk).unwrap();
    }
    let path = ckpt_dir.join("paused.sdyn");
    first_half
        .checkpoint()
        .save(&path)
        .expect("save checkpoint");
    drop(first_half); // the "crash"

    let snapshot = ModelSnapshot::load(&path).expect("reload checkpoint");
    let mut resumed = OnlineLearner::resume(snapshot).expect("warm start");
    for chunk in stream[72..].chunks(8) {
        resumed.ingest_batch(chunk).unwrap();
    }
    let identical = resumed.checkpoint().to_bytes() == uninterrupted.checkpoint().to_bytes();
    println!(
        "resumed learner: {} samples, windowed accuracy {:3.0}%, final checkpoint \
         bit-identical to uninterrupted run: {identical}",
        resumed.samples_seen(),
        resumed.report().accuracy * 100.0,
    );
    assert!(identical, "determinism contract violated");
    println!(
        "\nEach method keeps learning as tasks recur (task-change drift events above);\n\
         SpikeDyn does it on the cheaper architecture with gated updates and adaptive\n\
         responses (paper §III). The learner's full state — weights, θ, RNG cursors,\n\
         metrics, drift detector — survives process death via versioned snapshots\n\
         (the snn-online layer, DESIGN.md)."
    );
}
