//! Continual learning in a dynamic environment: digit classes arrive one
//! after another and are never re-fed (the paper's §IV protocol). The
//! example compares all three methods on the most-recently-learned-task
//! metric and shows SpikeDyn's retention advantage.
//!
//! ```sh
//! cargo run --release --example continual_learning
//! ```

use spikedyn::eval::{run_dynamic, ProtocolConfig};
use spikedyn::Method;

fn main() {
    println!("dynamic environment: tasks 0..6 presented consecutively, never re-fed\n");
    for method in Method::all() {
        let mut cfg = ProtocolConfig::fast(method, 60);
        cfg.tasks = (0..6).collect();
        cfg.samples_per_task = 25;
        cfg.eval_per_class = 8;
        let report = run_dynamic(&cfg);
        let accs: Vec<String> = report
            .recent_task_acc
            .iter()
            .map(|a| format!("{:3.0}", a * 100.0))
            .collect();
        println!(
            "{:9}  per-task accuracy after learning it: [{}]%  (avg {:.0}%)",
            method.label(),
            accs.join(" "),
            report.avg_recent() * 100.0
        );
        println!(
            "           retention of all tasks at the end: {:.0}%",
            report.avg_previous() * 100.0
        );
    }
    println!(
        "\nThe baseline's synapses saturate on early tasks (catastrophic forgetting);\n\
         ASP's weight leak frees capacity; SpikeDyn adds gated updates, adaptive\n\
         rates and threshold balancing on a cheaper architecture (paper §III)."
    );
}
