//! # spikedyn-repro — umbrella crate for the SpikeDyn reproduction
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use one coherent namespace:
//!
//! * [`core`](snn_core) — the clock-driven SNN simulator substrate,
//! * [`data`](snn_data) — synthetic MNIST-like digits, IDX parsing, task streams,
//! * [`baselines`](snn_baselines) — Diehl & Cook and ASP comparison partners,
//! * [`energy`](neuro_energy) — GPU cost models and the paper's analytical estimators,
//! * [`runtime`](snn_runtime) — the batched, sample-parallel execution engine,
//! * [`spikedyn`] — the paper's contribution: architecture, Alg. 1 search, Alg. 2 learning,
//! * [`online`](snn_online) — the streaming continual learner with durable checkpoints,
//! * [`serve`](snn_serve) — the multi-session TCP serving layer over `snn-online`,
//! * [`cluster`](snn_cluster) — the consistent-hash session router sharding
//!   `snn-serve` with checkpoint-based live migration, replica shadowing,
//!   and restore-from-shadow failover,
//! * [`heal`](snn_heal) — the self-healing control plane: a hysteresis
//!   autoscaler growing and draining the shard pool from load snapshots,
//!   in-process or wire-driven,
//! * [`obs`](snn_obs) — the telemetry spine: metrics, trace spans, and the
//!   always-on flight-recorder journal,
//! * [`slo`](snn_slo) — declarative SLOs with burn-rate alerting over
//!   streamed telemetry windows.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]

pub use neuro_energy;
pub use snn_baselines;
pub use snn_cluster;
pub use snn_core;
pub use snn_data;
pub use snn_heal;
pub use snn_obs;
pub use snn_online;
pub use snn_runtime;
pub use snn_serve;
pub use snn_slo;
pub use spikedyn;
