//! Simulation timing configuration.
//!
//! The paper presents each input sample for a fixed simulation window
//! (`tsim`, 350 ms in the Diehl & Cook protocol it builds on) followed by a
//! rest window that lets conductances and membrane potentials settle before
//! the next sample. [`PresentConfig`] captures that protocol plus the
//! integration timestep.

use serde::{Deserialize, Serialize};

use crate::error::{SnnError, SnnResult};

/// Timing of one sample presentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PresentConfig {
    /// Integration timestep in milliseconds.
    pub dt_ms: f32,
    /// Presentation window in milliseconds (the paper's `tsim`).
    pub t_present_ms: f32,
    /// Rest window with zero input after each sample, in milliseconds.
    pub t_rest_ms: f32,
    /// Diehl & Cook retry policy: if the excitatory layer emits fewer than
    /// `min_spikes` spikes during the presentation, boost all input rates by
    /// `rate_boost_hz` and present again (up to `max_retries` times).
    /// `None` disables retrying.
    pub retry: Option<RetryPolicy>,
}

/// Retry policy for samples that fail to elicit enough output activity.
///
/// Diehl & Cook raise the *maximum* input rate (from 63.75 Hz by +32 Hz
/// steps) and re-present — a rescale of the intensity→rate mapping. The
/// boost must be multiplicative in each channel's rate: an additive boost
/// would lift near-zero background pixels to full strength and destroy
/// input selectivity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Minimum excitatory spikes required to accept a presentation.
    pub min_spikes: u32,
    /// Multiplicative factor applied to every channel's rate on retry.
    pub rate_scale: f32,
    /// Maximum number of boosted re-presentations.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // Diehl & Cook (2015): require 5 spikes; +32 Hz on a 63.75 Hz
        // maximum is a ×1.5 rescale.
        RetryPolicy {
            min_spikes: 5,
            rate_scale: 1.5,
            max_retries: 4,
        }
    }
}

impl Default for PresentConfig {
    /// The paper-scale protocol: 0.5 ms steps, 350 ms presentation,
    /// 150 ms rest, Diehl & Cook retries enabled.
    fn default() -> Self {
        PresentConfig {
            dt_ms: 0.5,
            t_present_ms: 350.0,
            t_rest_ms: 150.0,
            retry: Some(RetryPolicy::default()),
        }
    }
}

impl PresentConfig {
    /// A reduced-scale protocol used by tests and fast experiment runs:
    /// 1 ms steps, 100 ms presentation, 30 ms rest, no retries.
    ///
    /// Shorter windows change absolute spike counts but preserve the
    /// relative behaviour of the learning rules, which is what the
    /// reproduction compares.
    pub fn fast() -> Self {
        PresentConfig {
            dt_ms: 1.0,
            t_present_ms: 100.0,
            t_rest_ms: 30.0,
            retry: Some(RetryPolicy {
                min_spikes: 5,
                rate_scale: 1.6,
                max_retries: 6,
            }),
        }
    }

    /// Number of integration steps in the presentation window.
    pub fn present_steps(&self) -> u32 {
        (self.t_present_ms / self.dt_ms).round() as u32
    }

    /// Number of integration steps in the rest window.
    pub fn rest_steps(&self) -> u32 {
        (self.t_rest_ms / self.dt_ms).round() as u32
    }

    /// Total steps per accepted sample (presentation + rest).
    pub fn total_steps(&self) -> u32 {
        self.present_steps() + self.rest_steps()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidParameter`] if the timestep is
    /// non-positive, larger than the presentation window, or the windows are
    /// negative.
    pub fn validate(&self) -> SnnResult<()> {
        if self.dt_ms.is_nan() || self.dt_ms <= 0.0 {
            return Err(SnnError::InvalidParameter {
                name: "dt_ms",
                reason: format!("must be positive, got {}", self.dt_ms),
            });
        }
        if self.t_present_ms < self.dt_ms {
            return Err(SnnError::InvalidParameter {
                name: "t_present_ms",
                reason: format!(
                    "presentation window {} ms shorter than one timestep {} ms",
                    self.t_present_ms, self.dt_ms
                ),
            });
        }
        if self.t_rest_ms < 0.0 {
            return Err(SnnError::InvalidParameter {
                name: "t_rest_ms",
                reason: "must be non-negative".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let c = PresentConfig::default();
        assert_eq!(c.present_steps(), 700);
        assert_eq!(c.rest_steps(), 300);
        assert_eq!(c.total_steps(), 1000);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_profile_is_valid_and_small() {
        let c = PresentConfig::fast();
        assert!(c.validate().is_ok());
        assert!(c.total_steps() < PresentConfig::default().total_steps());
        assert!(c.retry.is_some(), "fast profile keeps the boost mechanism");
    }

    #[test]
    fn rejects_bad_dt() {
        let c = PresentConfig {
            dt_ms: 0.0,
            ..PresentConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(SnnError::InvalidParameter { name: "dt_ms", .. })
        ));
    }

    #[test]
    fn rejects_window_shorter_than_dt() {
        let c = PresentConfig {
            dt_ms: 10.0,
            t_present_ms: 5.0,
            ..PresentConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_negative_rest() {
        let c = PresentConfig {
            t_rest_ms: -1.0,
            ..PresentConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn steps_round_rather_than_truncate() {
        let c = PresentConfig {
            dt_ms: 0.3,
            t_present_ms: 1.0,
            t_rest_ms: 0.0,
            retry: None,
        };
        // 1.0 / 0.3 = 3.33 → rounds to 3.
        assert_eq!(c.present_steps(), 3);
    }
}
