//! The clock-driven simulation engine.
//!
//! [`run_sample`] presents one rate-coded sample to a network for the
//! configured presentation window (plus rest), invoking an optional
//! [`Plasticity`] rule each step. This is the single code path every method
//! in the reproduction goes through — baseline, ASP and SpikeDyn differ
//! only in the plasticity object and the network's inhibition wiring, so
//! energy comparisons are apples-to-apples.

use rand::Rng;
use serde::{Deserialize, Serialize};

pub use crate::config::PresentConfig;
use crate::encoding::PoissonEncoder;
use crate::network::Snn;
use crate::ops::OpCounts;
use crate::stdp::TraceSet;
use crate::synapse::WeightMatrix;

/// Everything a learning rule may touch during one simulation step.
///
/// The simulator splits the network into disjoint mutable borrows so rules
/// can update weights and thresholds while reading spikes and traces.
#[derive(Debug)]
pub struct PlasticityCtx<'a> {
    /// Plastic input → excitatory weights.
    pub weights: &'a mut WeightMatrix,
    /// Synaptic traces (read-only; the engine maintains them).
    pub traces: &'a TraceSet,
    /// Excitatory spike flags of this step.
    pub exc_spiked: &'a [bool],
    /// Input channels that spiked this step.
    pub input_spikes: &'a [u32],
    /// Per-neuron adaptation potentials `θ` (mutable: SpikeDyn rescales).
    pub thetas: &'a mut [f32],
    /// Step index within the current sample (0-based).
    pub step: u32,
    /// Integration timestep in ms.
    pub dt_ms: f32,
    /// True during the presentation window, false during rest.
    pub in_presentation: bool,
    /// Operation counters.
    pub ops: &'a mut OpCounts,
}

/// A learning rule plugged into the engine.
///
/// Implementations: plain pair STDP (baseline), ASP, SpikeDyn's Alg. 2 —
/// see the `snn-baselines` and `spikedyn` crates.
pub trait Plasticity {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;

    /// Called once before the first step of each sample.
    fn begin_sample(&mut self, n_exc: usize, n_input: usize);

    /// Called after every simulation step with fresh spike information.
    fn on_step(&mut self, ctx: &mut PlasticityCtx<'_>);

    /// Called after the last step of each sample (normalisation etc.).
    fn end_sample(&mut self, ctx: &mut PlasticityCtx<'_>);

    /// Serialises the rule's *persistent* (cross-sample) state for
    /// checkpointing. Per-sample scratch that `begin_sample` resets need
    /// not be included. Stateless rules return an empty buffer (the
    /// default).
    ///
    /// Each rule defines its own byte layout; the only contract is that
    /// [`Plasticity::import_state`] on a freshly built rule of the same
    /// configuration restores behaviour bit-exactly.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state captured by [`Plasticity::export_state`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::SnnError::DimensionMismatch`] when the buffer does
    /// not match the rule's expected layout. The default implementation
    /// (for stateless rules) accepts only an empty buffer.
    fn import_state(&mut self, bytes: &[u8]) -> crate::SnnResult<()> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(crate::SnnError::DimensionMismatch {
                expected: 0,
                got: bytes.len(),
                what: "plasticity state buffer",
            })
        }
    }
}

/// Outcome of presenting one sample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleResult {
    /// Spikes emitted by each excitatory neuron during the presentation
    /// window(s) of the accepted attempt.
    pub exc_spike_counts: Vec<u32>,
    /// Total input spikes delivered.
    pub input_spikes: u64,
    /// Number of boosted re-presentations that were needed (0 = first try).
    pub retries: u32,
    /// Total steps simulated including retries and rest.
    pub steps_run: u32,
}

impl SampleResult {
    /// Sum of excitatory spikes.
    pub fn total_exc_spikes(&self) -> u32 {
        self.exc_spike_counts.iter().sum()
    }

    /// Index of the most active excitatory neuron, `None` if silent.
    pub fn winner(&self) -> Option<usize> {
        let (idx, &max) = self
            .exc_spike_counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)?;
        if max == 0 {
            None
        } else {
            Some(idx)
        }
    }
}

/// Invokes a plasticity hook with disjoint borrows of the network state.
/// The argument list mirrors `PlasticityCtx` field by field; bundling them
/// into a struct would just move the same list one call deeper.
#[allow(clippy::too_many_arguments)]
fn call_hook(
    net: &mut Snn,
    plasticity: &mut dyn Plasticity,
    input_spikes: &[u32],
    step: u32,
    dt_ms: f32,
    in_presentation: bool,
    end_of_sample: bool,
    ops: &mut OpCounts,
) {
    let Snn {
        weights,
        traces,
        exc,
        ..
    } = net;
    let (exc_spiked, thetas) = exc.spiked_and_thetas_mut();
    let mut ctx = PlasticityCtx {
        weights,
        traces,
        exc_spiked,
        input_spikes,
        thetas,
        step,
        dt_ms,
        in_presentation,
        ops,
    };
    if end_of_sample {
        plasticity.end_sample(&mut ctx);
    } else {
        plasticity.on_step(&mut ctx);
    }
}

/// Presents one rate-coded sample to the network.
///
/// `rates_hz` gives the Poisson rate of each input channel (see
/// [`PoissonEncoder::rates_hz`]). If a [`crate::config::RetryPolicy`] is
/// configured and the excitatory layer stays too quiet, rates are boosted
/// and the presentation repeats (Diehl & Cook protocol). The rest window
/// runs with zero input after the accepted presentation.
///
/// The network is settled (membranes, conductances, traces — not weights or
/// `θ`) before the first attempt and between retries.
///
/// # Panics
///
/// Panics if `rates_hz.len()` differs from the network input size.
pub fn run_sample<R: Rng + ?Sized>(
    net: &mut Snn,
    rates_hz: &[f32],
    cfg: &PresentConfig,
    mut plasticity: Option<&mut dyn Plasticity>,
    rng: &mut R,
    ops: &mut OpCounts,
) -> SampleResult {
    assert_eq!(
        rates_hz.len(),
        net.n_input(),
        "rate vector must match network input size"
    );
    let present_steps = cfg.present_steps();
    let rest_steps = cfg.rest_steps();
    let max_retries = cfg.retry.map_or(0, |r| r.max_retries);
    let min_spikes = cfg.retry.map_or(0, |r| r.min_spikes);
    let boost = cfg.retry.map_or(1.0, |r| r.rate_scale);

    let mut boosted: Vec<f32> = rates_hz.to_vec();
    let mut attempt = 0u32;
    let mut steps_run = 0u32;
    let mut counts = vec![0u32; net.n_exc()];
    let mut input_spikes_total = 0u64;
    let mut spike_buf: Vec<u32> = Vec::with_capacity(64);

    loop {
        net.settle();
        counts.fill(0);
        let mut attempt_input_spikes = 0u64;
        if let Some(p) = plasticity.as_deref_mut() {
            p.begin_sample(net.n_exc(), net.n_input());
        }
        for step in 0..present_steps {
            PoissonEncoder::sample_step(&boosted, cfg.dt_ms, rng, &mut spike_buf, ops);
            net.deliver_input_spikes(&spike_buf, ops);
            if !spike_buf.is_empty() {
                // Batched equivalents: one weight-column gather/add kernel
                // and one pre-trace update kernel per step with input spikes.
                ops.kernel_launches += 2;
            }
            attempt_input_spikes += spike_buf.len() as u64;
            net.step(cfg.dt_ms, ops);
            for (j, &s) in net.exc.spiked().iter().enumerate() {
                if s {
                    counts[j] += 1;
                }
            }
            if let Some(p) = plasticity.as_deref_mut() {
                call_hook(net, p, &spike_buf, step, cfg.dt_ms, true, false, ops);
            }
            steps_run += 1;
        }
        input_spikes_total += attempt_input_spikes;
        let total: u32 = counts.iter().sum();
        if total >= min_spikes || attempt >= max_retries {
            // Rest window: zero input, network settles dynamically.
            spike_buf.clear();
            for step in 0..rest_steps {
                net.step(cfg.dt_ms, ops);
                if let Some(p) = plasticity.as_deref_mut() {
                    call_hook(
                        net,
                        p,
                        &spike_buf,
                        present_steps + step,
                        cfg.dt_ms,
                        false,
                        false,
                        ops,
                    );
                }
                steps_run += 1;
            }
            if let Some(p) = plasticity.as_deref_mut() {
                call_hook(
                    net,
                    p,
                    &spike_buf,
                    present_steps + rest_steps,
                    cfg.dt_ms,
                    false,
                    true,
                    ops,
                );
            }
            return SampleResult {
                exc_spike_counts: counts,
                input_spikes: input_spikes_total,
                retries: attempt,
                steps_run,
            };
        }
        attempt += 1;
        for r in &mut boosted {
            *r *= boost;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SnnConfig;
    use crate::rng::seeded_rng;

    fn tiny_net(seed: u64) -> Snn {
        let mut cfg = SnnConfig::direct_lateral(16, 4);
        cfg.norm_target = None;
        Snn::new(cfg, &mut seeded_rng(seed))
    }

    #[test]
    fn silent_input_yields_no_spikes() {
        let mut net = tiny_net(1);
        let mut ops = OpCounts::default();
        let res = run_sample(
            &mut net,
            &[0.0; 16],
            &PresentConfig::fast(),
            None,
            &mut seeded_rng(2),
            &mut ops,
        );
        assert_eq!(res.total_exc_spikes(), 0);
        assert_eq!(res.input_spikes, 0);
        assert_eq!(res.winner(), None);
    }

    #[test]
    fn strong_input_drives_spikes() {
        let mut net = tiny_net(3);
        // Make every weight strong so drive is guaranteed.
        for j in 0..4 {
            for k in 0..16 {
                net.weights.set(j, k, 0.8);
            }
        }
        let mut ops = OpCounts::default();
        let res = run_sample(
            &mut net,
            &[200.0; 16],
            &PresentConfig::fast(),
            None,
            &mut seeded_rng(4),
            &mut ops,
        );
        assert!(res.total_exc_spikes() > 0, "strong drive must cause spikes");
        assert!(res.winner().is_some());
        assert!(res.input_spikes > 0);
    }

    #[test]
    fn steps_run_matches_config_without_retry() {
        let mut net = tiny_net(5);
        let cfg = PresentConfig {
            retry: None,
            ..PresentConfig::fast()
        };
        let mut ops = OpCounts::default();
        let res = run_sample(
            &mut net,
            &[0.0; 16],
            &cfg,
            None,
            &mut seeded_rng(6),
            &mut ops,
        );
        assert_eq!(res.steps_run, cfg.total_steps());
        assert_eq!(res.retries, 0);
    }

    #[test]
    fn retry_policy_boosts_quiet_samples() {
        let mut net = tiny_net(7);
        // Weak weights + weak input: first attempt will be quiet.
        for j in 0..4 {
            for k in 0..16 {
                net.weights.set(j, k, 0.05);
            }
        }
        let cfg = PresentConfig {
            dt_ms: 1.0,
            t_present_ms: 50.0,
            t_rest_ms: 0.0,
            retry: Some(crate::config::RetryPolicy {
                min_spikes: 1,
                rate_scale: 4.0,
                max_retries: 3,
            }),
        };
        let mut ops = OpCounts::default();
        let res = run_sample(
            &mut net,
            &[5.0; 16],
            &cfg,
            None,
            &mut seeded_rng(8),
            &mut ops,
        );
        // Either it spiked eventually (retries > 0 likely) or gave up after
        // max_retries; both exercise the loop. With a 4× rate scale it
        // should fire.
        assert!(
            res.total_exc_spikes() >= 1 || res.retries == 3,
            "boosting should eventually elicit spikes"
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut net = tiny_net(10);
            let mut ops = OpCounts::default();
            run_sample(
                &mut net,
                &[100.0; 16],
                &PresentConfig::fast(),
                None,
                &mut seeded_rng(11),
                &mut ops,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn plasticity_hooks_fire() {
        #[derive(Default)]
        struct Probe {
            begun: u32,
            steps: u32,
            ended: u32,
            saw_presentation: bool,
            saw_rest: bool,
        }
        impl Plasticity for Probe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn begin_sample(&mut self, _: usize, _: usize) {
                self.begun += 1;
            }
            fn on_step(&mut self, ctx: &mut PlasticityCtx<'_>) {
                self.steps += 1;
                if ctx.in_presentation {
                    self.saw_presentation = true;
                } else {
                    self.saw_rest = true;
                }
            }
            fn end_sample(&mut self, _: &mut PlasticityCtx<'_>) {
                self.ended += 1;
            }
        }
        let mut net = tiny_net(12);
        let mut probe = Probe::default();
        let cfg = PresentConfig {
            retry: None,
            ..PresentConfig::fast()
        };
        let mut ops = OpCounts::default();
        run_sample(
            &mut net,
            &[50.0; 16],
            &cfg,
            Some(&mut probe),
            &mut seeded_rng(13),
            &mut ops,
        );
        assert_eq!(probe.begun, 1);
        assert_eq!(probe.ended, 1);
        assert_eq!(probe.steps, cfg.total_steps());
        assert!(probe.saw_presentation);
        assert!(probe.saw_rest);
    }

    #[test]
    fn inhibitory_layer_network_runs() {
        let mut cfg = SnnConfig::with_inhibitory_layer(16, 4);
        cfg.norm_target = None;
        let mut net = Snn::new(cfg, &mut seeded_rng(20));
        for j in 0..4 {
            for k in 0..16 {
                net.weights.set(j, k, 0.8);
            }
        }
        let mut ops = OpCounts::default();
        let res = run_sample(
            &mut net,
            &[200.0; 16],
            &PresentConfig::fast(),
            None,
            &mut seeded_rng(21),
            &mut ops,
        );
        assert!(res.total_exc_spikes() > 0);
        // Inhibitory population must have been stepped: with 4 inh + 4 exc
        // neurons over N steps, neuron updates exceed the exc-only count.
        let cfg2 = PresentConfig::fast();
        assert!(ops.neuron_updates >= u64::from(cfg2.total_steps()) * 8);
    }

    #[test]
    #[should_panic(expected = "rate vector")]
    fn wrong_rate_length_panics() {
        let mut net = tiny_net(30);
        let mut ops = OpCounts::default();
        let _ = run_sample(
            &mut net,
            &[0.0; 3],
            &PresentConfig::fast(),
            None,
            &mut seeded_rng(31),
            &mut ops,
        );
    }
}
