//! Fixed-point weight quantisation — the `BP` axis of the paper's memory
//! model.
//!
//! §III-C estimates memory as `mem = (Pw + Pn) · BP` where `BP` is the
//! *bit precision*; the framework targets quantised embedded deployments
//! (the authors' companion work FSpiNN \[6\] stores 8-bit fixed-point
//! weights). This module quantises a trained [`WeightMatrix`] to `B`-bit
//! unsigned fixed point over `[0, w_max]` and back, so experiments can
//! trade memory (`32 → B` bits per weight) against accuracy.
//!
//! Quantisation is uniform mid-rise: `q = round(w / w_max · (2^B − 1))`,
//! reconstructed as `ŵ = q / (2^B − 1) · w_max`. The worst-case absolute
//! reconstruction error is half a step, `w_max / (2 · (2^B − 1))`.

use serde::{Deserialize, Serialize};

use crate::error::{SnnError, SnnResult};
use crate::synapse::WeightMatrix;

/// A weight matrix stored in `B`-bit unsigned fixed point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedWeights {
    bits: u8,
    n_post: usize,
    n_pre: usize,
    w_max: f32,
    /// Quantised codes, one per synapse (stored in the smallest integer
    /// that fits; codes ≤ 16 bits cover every practical `BP`).
    codes: Vec<u16>,
}

impl QuantizedWeights {
    /// Quantises `weights` to `bits`-bit fixed point.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidParameter`] unless `1 ≤ bits ≤ 16`.
    pub fn quantize(weights: &WeightMatrix, bits: u8) -> SnnResult<Self> {
        if bits == 0 || bits > 16 {
            return Err(SnnError::InvalidParameter {
                name: "bits",
                reason: format!("supported range is 1..=16, got {bits}"),
            });
        }
        let levels = (1u32 << bits) - 1;
        let w_max = weights.w_max();
        let scale = if w_max > 0.0 {
            levels as f32 / w_max
        } else {
            0.0
        };
        let codes = weights
            .as_slice()
            .iter()
            .map(|&w| ((w.clamp(0.0, w_max) * scale).round() as u32).min(levels) as u16)
            .collect();
        Ok(QuantizedWeights {
            bits,
            n_post: weights.n_post(),
            n_pre: weights.n_pre(),
            w_max,
            codes,
        })
    }

    /// Bit precision of the stored codes.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of synapses.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the matrix has no synapses.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Memory footprint of the quantised weights in bytes (packed, i.e.
    /// `len · bits / 8` rounded up — the `Pw · BP` term of the paper's
    /// memory model).
    pub fn packed_bytes(&self) -> usize {
        (self.codes.len() * self.bits as usize).div_ceil(8)
    }

    /// Worst-case absolute reconstruction error, `w_max / (2·(2^B−1))`.
    pub fn max_error(&self) -> f32 {
        let levels = (1u32 << self.bits) - 1;
        self.w_max / (2.0 * levels as f32)
    }

    /// Reconstructs a floating-point weight matrix.
    pub fn dequantize(&self) -> WeightMatrix {
        let levels = (1u32 << self.bits) - 1;
        let scale = if levels > 0 {
            self.w_max / levels as f32
        } else {
            0.0
        };
        let data = self.codes.iter().map(|&q| f32::from(q) * scale).collect();
        WeightMatrix::from_rows(self.n_post, self.n_pre, data, self.w_max)
            .expect("dimensions preserved by construction")
    }
}

/// Quantises a network's weights in place (round-trip through `bits`-bit
/// fixed point), returning the worst observed reconstruction error. This
/// is the deployment transform the paper's memory model prices at
/// `BP = bits`.
///
/// # Errors
///
/// Propagates [`SnnError::InvalidParameter`] for unsupported bit widths.
pub fn quantize_in_place(weights: &mut WeightMatrix, bits: u8) -> SnnResult<f32> {
    let q = QuantizedWeights::quantize(weights, bits)?;
    let restored = q.dequantize();
    let mut worst = 0.0f32;
    for (w, r) in weights.as_slice().iter().zip(restored.as_slice()) {
        worst = worst.max((w - r).abs());
    }
    weights.as_mut_slice().copy_from_slice(restored.as_slice());
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn random_weights(seed: u64) -> WeightMatrix {
        WeightMatrix::random_uniform(8, 16, 1.0, 1.0, &mut seeded_rng(seed))
    }

    #[test]
    fn rejects_unsupported_widths() {
        let w = random_weights(1);
        assert!(QuantizedWeights::quantize(&w, 0).is_err());
        assert!(QuantizedWeights::quantize(&w, 17).is_err());
        assert!(QuantizedWeights::quantize(&w, 16).is_ok());
    }

    #[test]
    fn roundtrip_error_is_bounded() {
        let w = random_weights(2);
        for bits in [2u8, 4, 8, 12] {
            let q = QuantizedWeights::quantize(&w, bits).unwrap();
            let bound = q.max_error() * 1.0001; // float slack
            let restored = q.dequantize();
            for (a, b) in w.as_slice().iter().zip(restored.as_slice()) {
                assert!(
                    (a - b).abs() <= bound,
                    "{bits}-bit error {} exceeds bound {bound}",
                    (a - b).abs()
                );
            }
        }
    }

    #[test]
    fn more_bits_never_worse() {
        let w = random_weights(3);
        let err = |bits: u8| {
            let q = QuantizedWeights::quantize(&w, bits).unwrap();
            let r = q.dequantize();
            w.as_slice()
                .iter()
                .zip(r.as_slice())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max)
        };
        assert!(err(8) <= err(4));
        assert!(err(4) <= err(2));
    }

    #[test]
    fn packed_bytes_follow_bp() {
        let w = random_weights(4); // 128 synapses
        let q8 = QuantizedWeights::quantize(&w, 8).unwrap();
        let q4 = QuantizedWeights::quantize(&w, 4).unwrap();
        assert_eq!(q8.packed_bytes(), 128);
        assert_eq!(q4.packed_bytes(), 64);
        assert_eq!(q8.len(), 128);
        assert!(!q8.is_empty());
    }

    #[test]
    fn quantize_in_place_reports_worst_error() {
        let mut w = random_weights(5);
        let original = w.clone();
        let worst = quantize_in_place(&mut w, 8).unwrap();
        assert!(worst <= 1.0 / (2.0 * 255.0) * 1.0001);
        // Weights actually changed to lattice points.
        let step = 1.0 / 255.0;
        for &v in w.as_slice() {
            let k = (v / step).round();
            assert!((v - k * step).abs() < 1e-5);
        }
        // And stayed close to the originals.
        for (a, b) in original.as_slice().iter().zip(w.as_slice()) {
            assert!((a - b).abs() <= worst + 1e-6);
        }
    }

    #[test]
    fn idempotent_once_on_lattice() {
        let mut w = random_weights(6);
        quantize_in_place(&mut w, 6).unwrap();
        let once = w.clone();
        let second_err = quantize_in_place(&mut w, 6).unwrap();
        assert_eq!(w, once, "re-quantising lattice points is a no-op");
        assert!(second_err < 1e-6);
    }

    #[test]
    fn one_bit_is_binary() {
        let mut w = random_weights(7);
        quantize_in_place(&mut w, 1).unwrap();
        for &v in w.as_slice() {
            assert!(v == 0.0 || (v - 1.0).abs() < 1e-6);
        }
    }
}
