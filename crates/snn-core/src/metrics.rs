//! Evaluation metrics for unsupervised SNN classification.
//!
//! The protocol follows Diehl & Cook, which the paper inherits: after
//! (or during) unsupervised training, each excitatory neuron is assigned
//! the class for which it fired most over a labelled assignment set; a test
//! sample is then predicted as the class whose assigned neurons fired most
//! (averaged per neuron). [`ConfusionMatrix`] reproduces the analysis of
//! the paper's Fig. 10.

use serde::{Deserialize, Serialize};

/// Maps each excitatory neuron to the class it responds to most.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassAssignment {
    n_classes: usize,
    /// `assigned[j]` is the class of neuron `j`, `None` if it never fired.
    assigned: Vec<Option<u8>>,
}

impl ClassAssignment {
    /// Builds an assignment from labelled responses.
    ///
    /// `responses` yields `(label, spike_counts)` pairs — one per
    /// assignment sample — where `spike_counts[j]` is how often neuron `j`
    /// fired for that sample. A neuron is assigned the class with the
    /// highest *per-sample average* response, which prevents classes with
    /// more assignment samples from monopolising neurons.
    pub fn from_responses<'a, I>(n_neurons: usize, n_classes: usize, responses: I) -> Self
    where
        I: IntoIterator<Item = (u8, &'a [u32])>,
    {
        let mut sums = vec![0.0f64; n_neurons * n_classes];
        let mut class_samples = vec![0u64; n_classes];
        for (label, counts) in responses {
            let c = label as usize;
            assert!(c < n_classes, "label {label} out of range");
            assert_eq!(counts.len(), n_neurons, "response length mismatch");
            class_samples[c] += 1;
            for (j, &cnt) in counts.iter().enumerate() {
                sums[j * n_classes + c] += f64::from(cnt);
            }
        }
        let assigned = (0..n_neurons)
            .map(|j| {
                let mut best: Option<(u8, f64)> = None;
                for c in 0..n_classes {
                    if class_samples[c] == 0 {
                        continue;
                    }
                    let avg = sums[j * n_classes + c] / class_samples[c] as f64;
                    if avg > 0.0 && best.is_none_or(|(_, b)| avg > b) {
                        best = Some((c as u8, avg));
                    }
                }
                best.map(|(c, _)| c)
            })
            .collect();
        ClassAssignment {
            n_classes,
            assigned,
        }
    }

    /// Rebuilds an assignment from checkpointed parts (the counterpart of
    /// [`ClassAssignment::n_classes`] + [`ClassAssignment::assignments`]).
    ///
    /// # Panics
    ///
    /// Panics if any assigned class is out of range for `n_classes`.
    pub fn from_parts(n_classes: usize, assigned: Vec<Option<u8>>) -> Self {
        for a in assigned.iter().flatten() {
            assert!(
                (*a as usize) < n_classes,
                "assigned class {a} out of range for {n_classes} classes"
            );
        }
        ClassAssignment {
            n_classes,
            assigned,
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The per-neuron assignments.
    pub fn assignments(&self) -> &[Option<u8>] {
        &self.assigned
    }

    /// Number of neurons assigned to `class`.
    pub fn neurons_for(&self, class: u8) -> usize {
        self.assigned.iter().filter(|&&a| a == Some(class)).count()
    }

    /// Predicts the class of a test response: the class whose assigned
    /// neurons have the highest mean spike count. Returns `None` when no
    /// neuron fired or no neuron is assigned.
    pub fn predict(&self, counts: &[u32]) -> Option<u8> {
        assert_eq!(counts.len(), self.assigned.len());
        let mut sum = vec![0u64; self.n_classes];
        let mut n = vec![0u32; self.n_classes];
        for (j, &a) in self.assigned.iter().enumerate() {
            if let Some(c) = a {
                sum[c as usize] += u64::from(counts[j]);
                n[c as usize] += 1;
            }
        }
        let mut best: Option<(u8, f64)> = None;
        for c in 0..self.n_classes {
            if n[c] == 0 {
                continue;
            }
            let avg = sum[c] as f64 / f64::from(n[c]);
            if avg > 0.0 && best.is_none_or(|(_, b)| avg > b) {
                best = Some((c as u8, avg));
            }
        }
        best.map(|(c, _)| c)
    }
}

/// A square confusion matrix over `n_classes` classes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>, // row-major [target][predicted]
    unclassified: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new(n_classes: usize) -> Self {
        ConfusionMatrix {
            n_classes,
            counts: vec![0; n_classes * n_classes],
            unclassified: vec![0; n_classes],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Records one prediction; `None` means the network stayed silent.
    pub fn add(&mut self, target: u8, predicted: Option<u8>) {
        match predicted {
            Some(p) => {
                self.counts[target as usize * self.n_classes + p as usize] += 1;
            }
            None => self.unclassified[target as usize] += 1,
        }
    }

    /// Count in cell `(target, predicted)`.
    pub fn get(&self, target: u8, predicted: u8) -> u64 {
        self.counts[target as usize * self.n_classes + predicted as usize]
    }

    /// Samples of `target` that produced no prediction.
    pub fn unclassified(&self, target: u8) -> u64 {
        self.unclassified[target as usize]
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.unclassified.iter().sum::<u64>()
    }

    /// Overall accuracy in `[0, 1]`; unclassified samples count as wrong.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes)
            .map(|c| self.get(c as u8, c as u8))
            .sum();
        correct as f64 / total as f64
    }

    /// Per-class accuracy (recall); `None` for classes with no samples.
    pub fn per_class_accuracy(&self) -> Vec<Option<f64>> {
        (0..self.n_classes)
            .map(|c| {
                let row: u64 = (0..self.n_classes)
                    .map(|p| self.get(c as u8, p as u8))
                    .sum::<u64>()
                    + self.unclassified[c];
                if row == 0 {
                    None
                } else {
                    Some(self.get(c as u8, c as u8) as f64 / row as f64)
                }
            })
            .collect()
    }

    /// The most confused (off-diagonal) cell: `(target, predicted, count)`.
    /// This is how the paper's Fig. 10 analysis identifies the 4→9 mix-up.
    pub fn worst_confusion(&self) -> Option<(u8, u8, u64)> {
        let mut worst = None;
        for t in 0..self.n_classes {
            for p in 0..self.n_classes {
                if t == p {
                    continue;
                }
                let c = self.get(t as u8, p as u8);
                if c > 0 && worst.is_none_or(|(_, _, w)| c > w) {
                    worst = Some((t as u8, p as u8, c));
                }
            }
        }
        worst
    }

    /// Merges another matrix of the same shape into this one.
    ///
    /// # Panics
    ///
    /// Panics if the class counts differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes, other.n_classes);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.unclassified.iter_mut().zip(&other.unclassified) {
            *a += b;
        }
    }

    /// Renders the matrix as an aligned text table (targets as rows).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("tgt\\pred");
        for p in 0..self.n_classes {
            out.push_str(&format!("{p:>6}"));
        }
        out.push_str("   none\n");
        for t in 0..self.n_classes {
            out.push_str(&format!("{t:>8}"));
            for p in 0..self.n_classes {
                out.push_str(&format!("{:>6}", self.get(t as u8, p as u8)));
            }
            out.push_str(&format!("{:>7}\n", self.unclassified[t]));
        }
        out
    }
}

/// Accuracy over an already-labelled set of `(target, predicted)` pairs.
/// Convenience for quick checks; `None` predictions count as wrong.
pub fn accuracy(pairs: &[(u8, Option<u8>)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let correct = pairs.iter().filter(|(t, p)| Some(*t) == *p).count();
    correct as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_picks_strongest_class() {
        // Neuron 0 responds to class 0, neuron 1 to class 1, neuron 2 silent.
        let r0: &[u32] = &[10, 1, 0];
        let r1: &[u32] = &[2, 8, 0];
        let a = ClassAssignment::from_responses(3, 2, vec![(0u8, r0), (1u8, r1)]);
        assert_eq!(a.assignments(), &[Some(0), Some(1), None]);
        assert_eq!(a.neurons_for(0), 1);
    }

    #[test]
    fn assignment_normalises_by_class_frequency() {
        // Class 0 has 4 samples each eliciting 3 spikes from neuron 0;
        // class 1 has 1 sample eliciting 5 spikes. Average: class 1 wins
        // (5 > 3) even though the total favours class 0 (12 > 5).
        let weak: &[u32] = &[3];
        let strong: &[u32] = &[5];
        let responses = vec![
            (0u8, weak),
            (0u8, weak),
            (0u8, weak),
            (0u8, weak),
            (1u8, strong),
        ];
        let a = ClassAssignment::from_responses(1, 2, responses);
        assert_eq!(a.assignments(), &[Some(1)]);
    }

    #[test]
    fn from_parts_roundtrips_accessors() {
        let r0: &[u32] = &[10, 1, 0];
        let r1: &[u32] = &[2, 8, 0];
        let a = ClassAssignment::from_responses(3, 2, vec![(0u8, r0), (1u8, r1)]);
        let b = ClassAssignment::from_parts(a.n_classes(), a.assignments().to_vec());
        assert_eq!(a, b);
        assert_eq!(a.predict(&[5, 1, 0]), b.predict(&[5, 1, 0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_out_of_range_class() {
        let _ = ClassAssignment::from_parts(2, vec![Some(5)]);
    }

    #[test]
    fn predict_uses_mean_over_assigned_neurons() {
        let r0: &[u32] = &[10, 0, 0, 0];
        let r1: &[u32] = &[0, 5, 5, 0];
        let a = ClassAssignment::from_responses(4, 2, vec![(0u8, r0), (1u8, r1)]);
        // Test response: neuron 0 fires 4; neurons 1,2 fire 3 each.
        // class0 mean = 4, class1 mean = 3 → predict 0.
        assert_eq!(a.predict(&[4, 3, 3, 0]), Some(0));
        // class1 mean = 6 → predict 1.
        assert_eq!(a.predict(&[4, 6, 6, 0]), Some(1));
        assert_eq!(a.predict(&[0, 0, 0, 0]), None);
    }

    #[test]
    fn confusion_accuracy() {
        let mut m = ConfusionMatrix::new(3);
        m.add(0, Some(0));
        m.add(0, Some(0));
        m.add(1, Some(1));
        m.add(1, Some(2));
        m.add(2, None);
        assert_eq!(m.total(), 5);
        assert!((m.accuracy() - 3.0 / 5.0).abs() < 1e-12);
        let per = m.per_class_accuracy();
        assert_eq!(per[0], Some(1.0));
        assert_eq!(per[1], Some(0.5));
        assert_eq!(per[2], Some(0.0));
        assert_eq!(m.unclassified(2), 1);
    }

    #[test]
    fn worst_confusion_finds_hotspot() {
        let mut m = ConfusionMatrix::new(10);
        m.add(4, Some(9));
        m.add(4, Some(9));
        m.add(4, Some(9));
        m.add(7, Some(1));
        assert_eq!(m.worst_confusion(), Some((4, 9, 3)));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new(2);
        a.add(0, Some(0));
        let mut b = ConfusionMatrix::new(2);
        b.add(0, Some(1));
        b.add(1, None);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.get(0, 1), 1);
        assert_eq!(a.unclassified(1), 1);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        let m = ConfusionMatrix::new(4);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.worst_confusion(), None);
        assert!(m.per_class_accuracy().iter().all(Option::is_none));
    }

    #[test]
    fn table_rendering_contains_counts() {
        let mut m = ConfusionMatrix::new(2);
        m.add(1, Some(0));
        let table = m.to_table();
        assert!(table.contains("tgt\\pred"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn plain_accuracy_helper() {
        assert_eq!(accuracy(&[]), 0.0);
        let pairs = [(0u8, Some(0u8)), (1, Some(0)), (2, None), (3, Some(3))];
        assert!((accuracy(&pairs) - 0.5).abs() < 1e-12);
    }
}
