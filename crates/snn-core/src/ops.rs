//! Operation counting for energy/time estimation.
//!
//! The paper estimates energy as `E = E1 · N` where `E1` is the energy of
//! processing one sample (§III-C). On the authors' testbed `E1` comes from
//! GPU power measurement; here the simulator counts the arithmetic it
//! actually performs, bucketed into categories with different hardware
//! costs, and the `neuro-energy` crate converts counts into joules per
//! device model. Counting is done by the substrate (this crate) so every
//! learning rule and architecture variant is metered identically.

use serde::{Deserialize, Serialize};

/// Counters for the operation categories the energy model distinguishes.
///
/// All counters are cumulative; callers typically take a snapshot before and
/// after a phase and subtract. The categories mirror the cost discussion in
/// the paper's §I and §III-B: neuron state updates, exponential-decay
/// arithmetic, synaptic (spike-driven) events, and weight updates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Per-neuron membrane integration steps (one per neuron per timestep).
    pub neuron_updates: u64,
    /// Multiplications by a precomputed exponential decay factor
    /// (conductances, traces, adaptive thresholds). These correspond to the
    /// "complex exponential calculations" the paper charges ASP for.
    pub decay_mults: u64,
    /// Fresh `exp()` evaluations (not reusable precomputed factors).
    pub exp_evals: u64,
    /// Spike-driven synaptic conductance additions (one per target synapse
    /// per presynaptic spike).
    pub syn_events: u64,
    /// Individual synaptic weight modifications (STDP, decay, normalisation).
    pub weight_updates: u64,
    /// Synaptic trace variable updates driven by spikes.
    pub trace_updates: u64,
    /// Threshold/comparison operations (spike condition checks).
    pub comparisons: u64,
    /// Total spikes emitted (all layers).
    pub spikes: u64,
    /// Spike-encoding operations (Bernoulli draws or deterministic schedule
    /// lookups in the input layer).
    pub encode_ops: u64,
    /// Logical vectorised-kernel invocations. The paper's testbed runs
    /// BindsNET/PyTorch, where each elementwise tensor op is one GPU kernel
    /// launch; at the tensor sizes involved (≤ ~314 k elements) launches
    /// dominate wall-clock, so the time/energy models in `neuro-energy`
    /// weight this counter heavily.
    pub kernel_launches: u64,
}

impl OpCounts {
    /// Returns a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds another snapshot into `self`, saturating on overflow.
    pub fn accumulate(&mut self, other: &OpCounts) {
        self.neuron_updates = self.neuron_updates.saturating_add(other.neuron_updates);
        self.decay_mults = self.decay_mults.saturating_add(other.decay_mults);
        self.exp_evals = self.exp_evals.saturating_add(other.exp_evals);
        self.syn_events = self.syn_events.saturating_add(other.syn_events);
        self.weight_updates = self.weight_updates.saturating_add(other.weight_updates);
        self.trace_updates = self.trace_updates.saturating_add(other.trace_updates);
        self.comparisons = self.comparisons.saturating_add(other.comparisons);
        self.spikes = self.spikes.saturating_add(other.spikes);
        self.encode_ops = self.encode_ops.saturating_add(other.encode_ops);
        self.kernel_launches = self.kernel_launches.saturating_add(other.kernel_launches);
    }

    /// Difference `self - earlier`, useful for metering a phase.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has any counter larger than
    /// `self` (i.e. it is not actually an earlier snapshot); saturates to
    /// zero in release builds.
    pub fn since(&self, earlier: &OpCounts) -> OpCounts {
        debug_assert!(self.total() >= earlier.total(), "snapshot order reversed");
        OpCounts {
            neuron_updates: self.neuron_updates.saturating_sub(earlier.neuron_updates),
            decay_mults: self.decay_mults.saturating_sub(earlier.decay_mults),
            exp_evals: self.exp_evals.saturating_sub(earlier.exp_evals),
            syn_events: self.syn_events.saturating_sub(earlier.syn_events),
            weight_updates: self.weight_updates.saturating_sub(earlier.weight_updates),
            trace_updates: self.trace_updates.saturating_sub(earlier.trace_updates),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            spikes: self.spikes.saturating_sub(earlier.spikes),
            encode_ops: self.encode_ops.saturating_sub(earlier.encode_ops),
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
        }
    }

    /// Sum of all element-wise arithmetic categories (excludes the `spikes`
    /// event count and `kernel_launches`, which are structural rather than
    /// per-element work).
    pub fn total(&self) -> u64 {
        self.neuron_updates
            + self.decay_mults
            + self.exp_evals
            + self.syn_events
            + self.weight_updates
            + self.trace_updates
            + self.comparisons
            + self.encode_ops
    }

    /// Integer-divides every counter by `n` — the per-sample average
    /// (`E1` of the paper's `E = E1 · N` model) of an `n`-sample run.
    /// Returns a zeroed snapshot when `n` is zero.
    pub fn averaged_over(&self, n: u64) -> OpCounts {
        if n == 0 {
            return OpCounts::default();
        }
        OpCounts {
            neuron_updates: self.neuron_updates / n,
            decay_mults: self.decay_mults / n,
            exp_evals: self.exp_evals / n,
            syn_events: self.syn_events / n,
            weight_updates: self.weight_updates / n,
            trace_updates: self.trace_updates / n,
            comparisons: self.comparisons / n,
            spikes: self.spikes / n,
            encode_ops: self.encode_ops / n,
            kernel_launches: self.kernel_launches / n,
        }
    }

    /// Scales every counter by `factor`, used when extrapolating a
    /// single-sample measurement to `N` samples exactly as the paper's
    /// `E = E1 · N` model does.
    pub fn scaled(&self, factor: u64) -> OpCounts {
        OpCounts {
            neuron_updates: self.neuron_updates.saturating_mul(factor),
            decay_mults: self.decay_mults.saturating_mul(factor),
            exp_evals: self.exp_evals.saturating_mul(factor),
            syn_events: self.syn_events.saturating_mul(factor),
            weight_updates: self.weight_updates.saturating_mul(factor),
            trace_updates: self.trace_updates.saturating_mul(factor),
            comparisons: self.comparisons.saturating_mul(factor),
            spikes: self.spikes.saturating_mul(factor),
            encode_ops: self.encode_ops.saturating_mul(factor),
            kernel_launches: self.kernel_launches.saturating_mul(factor),
        }
    }
}

impl std::ops::Add for OpCounts {
    type Output = OpCounts;

    fn add(self, rhs: OpCounts) -> OpCounts {
        let mut out = self;
        out.accumulate(&rhs);
        out
    }
}

impl std::iter::Sum for OpCounts {
    fn sum<I: Iterator<Item = OpCounts>>(iter: I) -> Self {
        iter.fold(OpCounts::default(), |acc, x| acc + x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpCounts {
        OpCounts {
            neuron_updates: 10,
            decay_mults: 20,
            exp_evals: 3,
            syn_events: 40,
            weight_updates: 5,
            trace_updates: 6,
            comparisons: 10,
            spikes: 2,
            encode_ops: 9,
            kernel_launches: 7,
        }
    }

    #[test]
    fn accumulate_adds_fieldwise() {
        let mut a = sample();
        a.accumulate(&sample());
        assert_eq!(a.neuron_updates, 20);
        assert_eq!(a.syn_events, 80);
        assert_eq!(a.spikes, 4);
    }

    #[test]
    fn since_subtracts() {
        let early = sample();
        let mut late = sample();
        late.accumulate(&sample());
        let delta = late.since(&early);
        assert_eq!(delta, sample());
    }

    #[test]
    fn total_excludes_spikes() {
        let c = sample();
        assert_eq!(c.total(), 10 + 20 + 3 + 40 + 5 + 6 + 10 + 9);
    }

    #[test]
    fn averaged_over_divides_and_handles_zero() {
        let total = sample().scaled(4);
        assert_eq!(total.averaged_over(4), sample());
        assert_eq!(total.averaged_over(0), OpCounts::default());
    }

    #[test]
    fn scaled_multiplies() {
        let c = sample().scaled(3);
        assert_eq!(c.neuron_updates, 30);
        assert_eq!(c.exp_evals, 9);
        assert_eq!(c.kernel_launches, 21);
    }

    #[test]
    fn sum_over_iterator() {
        let total: OpCounts = (0..4).map(|_| sample()).sum();
        assert_eq!(total.neuron_updates, 40);
    }

    #[test]
    fn add_operator_matches_accumulate() {
        let a = sample() + sample();
        let mut b = sample();
        b.accumulate(&sample());
        assert_eq!(a, b);
    }
}
