//! Spike encoding schemes.
//!
//! The paper's §II surveys rate, temporal, rank-order, phase and burst
//! coding and picks **rate coding** ("it has demonstrated high accuracy in
//! unsupervised SNNs"): each pixel becomes a Poisson spike train whose rate
//! is proportional to intensity. [`PoissonEncoder`] implements that; the
//! other cited schemes are provided as deterministic [`SpikeTrain`]
//! generators so downstream users can swap coding strategies and so the
//! benchmark suite can compare encoder costs.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ops::OpCounts;
use crate::spikes::SpikeTrain;

/// Poisson rate coding: intensity `x ∈ [0, 1]` maps to rate `x · max_rate`.
///
/// Diehl & Cook scale MNIST's 0–255 pixels to a maximum of 63.75 Hz
/// (intensity / 4); the same convention is used here on normalised
/// intensities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoissonEncoder {
    max_rate_hz: f32,
}

impl PoissonEncoder {
    /// Creates an encoder with the given full-intensity rate.
    pub fn new(max_rate_hz: f32) -> Self {
        PoissonEncoder { max_rate_hz }
    }

    /// The rate assigned to a full-intensity pixel.
    pub fn max_rate_hz(&self) -> f32 {
        self.max_rate_hz
    }

    /// Converts normalised intensities to per-channel rates in Hz.
    pub fn rates_hz(&self, intensities: &[f32]) -> Vec<f32> {
        intensities
            .iter()
            .map(|&x| x.clamp(0.0, 1.0) * self.max_rate_hz)
            .collect()
    }

    /// Samples which channels spike in one timestep of `dt_ms`, appending
    /// spiking channel indices to `out`.
    ///
    /// A channel with rate `r` Hz spikes with probability `r · dt` per step
    /// (the Bernoulli approximation of a Poisson process, exact in the
    /// `dt → 0` limit the simulator operates in).
    pub fn sample_step<R: Rng + ?Sized>(
        rates_hz: &[f32],
        dt_ms: f32,
        rng: &mut R,
        out: &mut Vec<u32>,
        ops: &mut OpCounts,
    ) {
        out.clear();
        let dt_s = dt_ms / 1000.0;
        for (k, &r) in rates_hz.iter().enumerate() {
            if r > 0.0 && rng.gen::<f32>() < r * dt_s {
                out.push(k as u32);
            }
        }
        ops.encode_ops += rates_hz.len() as u64;
        ops.kernel_launches += 1; // one Bernoulli-mask kernel per step
    }
}

impl Default for PoissonEncoder {
    /// The MNIST convention: 63.75 Hz at full intensity.
    fn default() -> Self {
        PoissonEncoder::new(63.75)
    }
}

/// Time-to-first-spike (temporal) coding: each channel emits exactly one
/// spike, earlier for higher intensity. A zero-intensity channel stays
/// silent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TtfsEncoder {
    /// Horizon (in steps) into which intensities are mapped.
    pub n_steps: u32,
}

impl TtfsEncoder {
    /// Creates an encoder that spreads first-spike times over `n_steps`.
    pub fn new(n_steps: u32) -> Self {
        TtfsEncoder { n_steps }
    }

    /// Encodes intensities into a deterministic spike train.
    pub fn encode(&self, intensities: &[f32], ops: &mut OpCounts) -> SpikeTrain {
        let mut train = SpikeTrain::new(intensities.len());
        for (c, &x) in intensities.iter().enumerate() {
            let x = x.clamp(0.0, 1.0);
            if x > 0.0 {
                // Brighter pixels fire earlier: t = (1 - x) · (n_steps - 1).
                let t = ((1.0 - x) * (self.n_steps.saturating_sub(1)) as f32).round() as u32;
                train.push(c, t);
            }
        }
        ops.encode_ops += intensities.len() as u64;
        train
    }
}

/// Rank-order coding: channels fire once, ordered by descending intensity,
/// one per step starting at step 0. Carries only the intensity *ranking*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankOrderEncoder;

impl RankOrderEncoder {
    /// Encodes intensities into a one-spike-per-step rank train. Channels
    /// with zero intensity are silent.
    pub fn encode(&self, intensities: &[f32], ops: &mut OpCounts) -> SpikeTrain {
        let mut order: Vec<usize> = (0..intensities.len())
            .filter(|&c| intensities[c] > 0.0)
            .collect();
        order.sort_by(|&a, &b| {
            intensities[b]
                .partial_cmp(&intensities[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut train = SpikeTrain::new(intensities.len());
        for (rank, &c) in order.iter().enumerate() {
            train.push(c, rank as u32);
        }
        ops.encode_ops +=
            (intensities.len() as f64 * (intensities.len() as f64).log2().max(1.0)) as u64; // sorting cost
        train
    }
}

/// Phase coding: each channel fires periodically with a phase offset
/// proportional to intensity (brighter → earlier phase within each cycle).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseEncoder {
    /// Cycle length in steps.
    pub period_steps: u32,
    /// Number of cycles to emit.
    pub n_cycles: u32,
}

impl PhaseEncoder {
    /// Creates a phase encoder with the given period and cycle count.
    pub fn new(period_steps: u32, n_cycles: u32) -> Self {
        PhaseEncoder {
            period_steps,
            n_cycles,
        }
    }

    /// Encodes intensities into a periodic phase-offset train.
    pub fn encode(&self, intensities: &[f32], ops: &mut OpCounts) -> SpikeTrain {
        let mut train = SpikeTrain::new(intensities.len());
        for (c, &x) in intensities.iter().enumerate() {
            let x = x.clamp(0.0, 1.0);
            if x == 0.0 {
                continue;
            }
            let phase = ((1.0 - x) * (self.period_steps.saturating_sub(1)) as f32).round() as u32;
            for cycle in 0..self.n_cycles {
                train.push(c, cycle * self.period_steps + phase);
            }
        }
        ops.encode_ops += (intensities.len() as u64) * u64::from(self.n_cycles);
        train
    }
}

/// Burst coding: intensity maps to the *number* of spikes in a short burst
/// with fixed inter-spike interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstEncoder {
    /// Maximum burst length (spikes) at full intensity.
    pub max_spikes: u32,
    /// Inter-spike interval inside a burst, in steps.
    pub isi_steps: u32,
}

impl BurstEncoder {
    /// Creates a burst encoder.
    pub fn new(max_spikes: u32, isi_steps: u32) -> Self {
        BurstEncoder {
            max_spikes,
            isi_steps: isi_steps.max(1),
        }
    }

    /// Encodes intensities into bursts starting at step 0.
    pub fn encode(&self, intensities: &[f32], ops: &mut OpCounts) -> SpikeTrain {
        let mut train = SpikeTrain::new(intensities.len());
        for (c, &x) in intensities.iter().enumerate() {
            let x = x.clamp(0.0, 1.0);
            let n = (x * self.max_spikes as f32).round() as u32;
            for i in 0..n {
                train.push(c, i * self.isi_steps);
            }
        }
        ops.encode_ops += intensities.len() as u64;
        train
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn poisson_rates_scale_linearly() {
        let e = PoissonEncoder::new(100.0);
        let rates = e.rates_hz(&[0.0, 0.5, 1.0, 2.0]);
        assert_eq!(rates, vec![0.0, 50.0, 100.0, 100.0]); // clamped at 1.0
    }

    #[test]
    fn poisson_sampling_matches_expected_rate() {
        let e = PoissonEncoder::new(100.0);
        let rates = e.rates_hz(&[1.0]);
        let mut rng = seeded_rng(11);
        let mut out = Vec::new();
        let mut ops = OpCounts::default();
        let mut spikes = 0usize;
        let steps = 20_000;
        for _ in 0..steps {
            PoissonEncoder::sample_step(&rates, 1.0, &mut rng, &mut out, &mut ops);
            spikes += out.len();
        }
        // Expected 100 Hz × 20 s = 2000 spikes; allow 10 % statistical slack.
        let expected = 2000.0;
        assert!(
            (spikes as f32 - expected).abs() < expected * 0.1,
            "got {spikes} spikes, expected ≈{expected}"
        );
        assert_eq!(ops.encode_ops, steps);
    }

    #[test]
    fn poisson_zero_rate_never_spikes() {
        let rates = vec![0.0; 10];
        let mut rng = seeded_rng(5);
        let mut out = Vec::new();
        let mut ops = OpCounts::default();
        for _ in 0..1000 {
            PoissonEncoder::sample_step(&rates, 1.0, &mut rng, &mut out, &mut ops);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn ttfs_brighter_fires_earlier() {
        let e = TtfsEncoder::new(100);
        let mut ops = OpCounts::default();
        let train = e.encode(&[1.0, 0.5, 0.1, 0.0], &mut ops);
        let t_bright = train.channel(0)[0];
        let t_mid = train.channel(1)[0];
        let t_dim = train.channel(2)[0];
        assert!(t_bright < t_mid && t_mid < t_dim);
        assert!(train.channel(3).is_empty(), "zero intensity is silent");
        assert_eq!(train.channel(0).len(), 1, "exactly one spike per channel");
    }

    #[test]
    fn rank_order_is_a_permutation_of_active_channels() {
        let e = RankOrderEncoder;
        let mut ops = OpCounts::default();
        let train = e.encode(&[0.2, 0.9, 0.0, 0.5], &mut ops);
        // Channel 1 (0.9) first, then 3 (0.5), then 0 (0.2); channel 2 silent.
        assert_eq!(train.channel(1), &[0]);
        assert_eq!(train.channel(3), &[1]);
        assert_eq!(train.channel(0), &[2]);
        assert!(train.channel(2).is_empty());
    }

    #[test]
    fn rank_order_ties_break_by_index() {
        let e = RankOrderEncoder;
        let mut ops = OpCounts::default();
        let train = e.encode(&[0.5, 0.5], &mut ops);
        assert_eq!(train.channel(0), &[0]);
        assert_eq!(train.channel(1), &[1]);
    }

    #[test]
    fn phase_encoder_repeats_each_cycle() {
        let e = PhaseEncoder::new(10, 3);
        let mut ops = OpCounts::default();
        let train = e.encode(&[1.0], &mut ops);
        assert_eq!(train.channel(0), &[0, 10, 20]);
    }

    #[test]
    fn burst_count_scales_with_intensity() {
        let e = BurstEncoder::new(4, 2);
        let mut ops = OpCounts::default();
        let train = e.encode(&[1.0, 0.5, 0.0], &mut ops);
        assert_eq!(train.channel(0), &[0, 2, 4, 6]);
        assert_eq!(train.channel(1), &[0, 2]);
        assert!(train.channel(2).is_empty());
    }

    #[test]
    fn burst_isi_zero_is_promoted_to_one() {
        let e = BurstEncoder::new(2, 0);
        let mut ops = OpCounts::default();
        let train = e.encode(&[1.0], &mut ops);
        assert_eq!(train.channel(0), &[0, 1]);
    }
}
