//! Deterministic random number generation helpers.
//!
//! Every stochastic component in the reproduction (weight initialisation,
//! Poisson encoding, data-set jitter, stream shuffling) draws from an
//! explicitly seeded generator so that experiments are bit-reproducible.
//! This module centralises seeding so different subsystems can derive
//! independent streams from a single experiment seed.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a [`StdRng`] from a 64-bit seed.
///
/// ```
/// use rand::Rng;
/// let mut a = snn_core::rng::seeded_rng(42);
/// let mut b = snn_core::rng::seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-stream seed from a master seed and a label.
///
/// Uses the SplitMix64 finaliser, which is a bijective avalanche mixer, so
/// distinct `(seed, stream)` pairs map to well-separated seeds. This lets an
/// experiment use one master seed while giving, say, weight initialisation
/// and Poisson encoding unrelated streams:
///
/// ```
/// use snn_core::rng::{derive_seed, seeded_rng};
/// let master = 1234;
/// let weights_rng = seeded_rng(derive_seed(master, 0));
/// let encoder_rng = seeded_rng(derive_seed(master, 1));
/// # let _ = (weights_rng, encoder_rng);
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    splitmix64(master ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// The SplitMix64 finalising mix function.
///
/// Public because property tests on determinism elsewhere in the workspace
/// want to reference the exact mixing used here.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_seed_separates_streams() {
        let s0 = derive_seed(99, 0);
        let s1 = derive_seed(99, 1);
        let s2 = derive_seed(100, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(0), splitmix64(0));
        // Known non-zero avalanche: consecutive inputs map far apart.
        assert_ne!(splitmix64(1) ^ splitmix64(2), 0);
    }

    #[test]
    fn derive_seed_is_stable_across_runs() {
        // Pin the exact values: experiments recorded in EXPERIMENTS.md rely
        // on these derivations never silently changing.
        assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
        let first = derive_seed(42, 1);
        let again = derive_seed(42, 1);
        assert_eq!(first, again);
    }
}
