//! # snn-core — a clock-driven spiking neural network simulator
//!
//! This crate is the simulation substrate for the SpikeDyn reproduction
//! (Putra & Shafique, DAC 2021). The paper evaluates its contribution on a
//! Python/BindsNET simulator; no equivalent exists in the offline Rust crate
//! universe, so this crate implements the required pieces from scratch:
//!
//! * [`neuron`] — Leaky Integrate-and-Fire neurons with conductance-based
//!   synaptic input and an optional adaptive threshold (homeostasis), plus
//!   the simpler non-leaky IF model for comparison.
//! * [`synapse`] — dense weight matrices and conductance bookkeeping.
//! * [`encoding`] — spike encoders: Poisson rate coding (used by the paper)
//!   and the other schemes its background section cites (time-to-first-spike,
//!   rank-order, phase, burst).
//! * [`stdp`] — exponentially decaying pre/post synaptic traces and a
//!   pair-based STDP helper, the building block for every learning rule in
//!   the reproduction.
//! * [`network`] — the two-layer architecture family used by the paper:
//!   input → excitatory with either an explicit inhibitory layer
//!   (Diehl & Cook style) or SpikeDyn's direct lateral inhibition.
//! * [`sim`] — the clock-driven engine that presents one encoded sample to a
//!   network, with hooks for plasticity rules and operation counting.
//! * [`metrics`] — neuron-to-class assignment, accuracy and confusion
//!   matrices for the unsupervised evaluation protocol.
//! * [`ops`] — operation counters consumed by the `neuro-energy` crate to
//!   estimate energy the way the paper does (§III-C analytical models).
//! * [`quantize`] — fixed-point weight quantisation, the `BP` axis of the
//!   paper's `mem = (Pw + Pn) · BP` memory model.
//!
//! ## Quick example
//!
//! ```
//! use snn_core::network::{Snn, SnnConfig};
//! use snn_core::sim::{run_sample, PresentConfig};
//! use snn_core::encoding::PoissonEncoder;
//! use snn_core::ops::OpCounts;
//! use snn_core::rng::seeded_rng;
//!
//! // A tiny network: 9 inputs, 4 excitatory neurons, direct lateral inhibition.
//! let cfg = SnnConfig::direct_lateral(9, 4);
//! let mut net = Snn::new(cfg, &mut seeded_rng(7));
//! let encoder = PoissonEncoder::new(63.75);
//! let image = vec![0.8_f32; 9];
//! let mut ops = OpCounts::default();
//! let result = run_sample(
//!     &mut net,
//!     &encoder.rates_hz(&image),
//!     &PresentConfig::default(),
//!     None,
//!     &mut seeded_rng(8),
//!     &mut ops,
//! );
//! assert_eq!(result.exc_spike_counts.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod encoding;
pub mod error;
pub mod metrics;
pub mod network;
pub mod neuron;
pub mod ops;
pub mod quantize;
pub mod rng;
pub mod sim;
pub mod spikes;
pub mod stdp;
pub mod synapse;

pub use config::PresentConfig;
pub use error::{SnnError, SnnResult};
pub use network::{Inhibition, Snn, SnnConfig};
pub use ops::OpCounts;
pub use sim::{run_sample, SampleResult};
