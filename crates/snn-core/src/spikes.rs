//! Spike trains and recording utilities.
//!
//! Deterministic encoders ([`crate::encoding`]) produce [`SpikeTrain`]s —
//! per-channel lists of spike step indices — and experiment harnesses use
//! [`SpikeRecord`] to capture raster data for debugging and for the
//! spurious-update analysis (paper Fig. 7 illustrates pre/post rasters).

use serde::{Deserialize, Serialize};

/// Spike times for a set of channels, as integer step indices.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeTrain {
    /// `times[c]` holds the sorted spike step indices of channel `c`.
    times: Vec<Vec<u32>>,
}

impl SpikeTrain {
    /// Creates an empty train with `n_channels` channels.
    pub fn new(n_channels: usize) -> Self {
        SpikeTrain {
            times: vec![Vec::new(); n_channels],
        }
    }

    /// Number of channels.
    pub fn n_channels(&self) -> usize {
        self.times.len()
    }

    /// Records a spike of channel `c` at step `t`. Steps must be pushed in
    /// non-decreasing order per channel.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `t` is earlier than the channel's last
    /// recorded spike.
    pub fn push(&mut self, c: usize, t: u32) {
        debug_assert!(
            self.times[c].last().is_none_or(|&last| t >= last),
            "spike times must be non-decreasing"
        );
        self.times[c].push(t);
    }

    /// Spike steps of channel `c`.
    pub fn channel(&self, c: usize) -> &[u32] {
        &self.times[c]
    }

    /// Total spikes across all channels.
    pub fn total_spikes(&self) -> usize {
        self.times.iter().map(Vec::len).sum()
    }

    /// Spike count per channel.
    pub fn counts(&self) -> Vec<u32> {
        self.times.iter().map(|t| t.len() as u32).collect()
    }

    /// Mean firing rate in Hz given the step size and horizon.
    pub fn mean_rate_hz(&self, dt_ms: f32, n_steps: u32) -> f32 {
        if self.times.is_empty() || n_steps == 0 {
            return 0.0;
        }
        let total = self.total_spikes() as f32;
        let duration_s = (n_steps as f32 * dt_ms) / 1000.0;
        total / (self.times.len() as f32 * duration_s)
    }

    /// Iterates `(channel, step)` pairs in channel order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.times
            .iter()
            .enumerate()
            .flat_map(|(c, ts)| ts.iter().map(move |&t| (c, t)))
    }
}

/// A per-step raster recording of a population, used by harness diagnostics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SpikeRecord {
    n_channels: usize,
    events: Vec<(u32, u32)>, // (step, channel)
}

impl SpikeRecord {
    /// Creates an empty record for `n_channels` channels.
    pub fn new(n_channels: usize) -> Self {
        SpikeRecord {
            n_channels,
            events: Vec::new(),
        }
    }

    /// Number of channels being recorded.
    pub fn n_channels(&self) -> usize {
        self.n_channels
    }

    /// Appends the spikes of one simulation step from a flag slice.
    pub fn record_step(&mut self, step: u32, spiked: &[bool]) {
        for (c, &s) in spiked.iter().enumerate() {
            if s {
                self.events.push((step, c as u32));
            }
        }
    }

    /// All `(step, channel)` events in insertion order.
    pub fn events(&self) -> &[(u32, u32)] {
        &self.events
    }

    /// Total recorded spikes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Spike count per channel.
    pub fn counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_channels];
        for &(_, c) in &self.events {
            counts[c as usize] += 1;
        }
        counts
    }

    /// Number of spikes within the step window `[from, to)`.
    pub fn spikes_in_window(&self, from: u32, to: u32) -> usize {
        self.events
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .count()
    }

    /// Clears the record for reuse.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut t = SpikeTrain::new(3);
        t.push(0, 1);
        t.push(0, 5);
        t.push(2, 3);
        assert_eq!(t.total_spikes(), 3);
        assert_eq!(t.counts(), vec![2, 0, 1]);
        assert_eq!(t.channel(0), &[1, 5]);
    }

    #[test]
    fn mean_rate_is_in_hz() {
        let mut t = SpikeTrain::new(2);
        // 10 spikes per channel over 1000 steps of 1 ms = 1 s → 10 Hz.
        for c in 0..2 {
            for i in 0..10 {
                t.push(c, i * 100);
            }
        }
        assert!((t.mean_rate_hz(1.0, 1000) - 10.0).abs() < 1e-4);
    }

    #[test]
    fn empty_train_rate_is_zero() {
        let t = SpikeTrain::new(0);
        assert_eq!(t.mean_rate_hz(1.0, 100), 0.0);
    }

    #[test]
    fn iter_yields_all_events() {
        let mut t = SpikeTrain::new(2);
        t.push(1, 4);
        t.push(0, 2);
        let events: Vec<_> = t.iter().collect();
        assert_eq!(events, vec![(0, 2), (1, 4)]);
    }

    #[test]
    fn record_step_collects_flags() {
        let mut r = SpikeRecord::new(4);
        r.record_step(0, &[true, false, false, true]);
        r.record_step(1, &[false, true, false, false]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.counts(), vec![1, 1, 0, 1]);
        assert_eq!(r.spikes_in_window(0, 1), 2);
        assert_eq!(r.spikes_in_window(1, 2), 1);
    }

    #[test]
    fn clear_resets() {
        let mut r = SpikeRecord::new(1);
        r.record_step(0, &[true]);
        assert!(!r.is_empty());
        r.clear();
        assert!(r.is_empty());
    }
}
