//! Synaptic traces and pair-based STDP.
//!
//! Every learning rule in the reproduction (Diehl & Cook baseline, ASP,
//! SpikeDyn's Eq. 2) is built from exponentially decaying *spike traces*:
//! `x_pre[k]` tracks recent activity of input channel `k` and `x_post[j]`
//! of excitatory neuron `j`. A presynaptic spike sets (or increments) the
//! pre trace; potentiation reads it on postsynaptic events, and vice versa.
//! [`TraceSet`] owns the trace vectors; [`PairStdp`] packages the classic
//! rule used by the baseline.

use serde::{Deserialize, Serialize};

use crate::ops::OpCounts;
use crate::synapse::WeightMatrix;

/// How a spike modifies its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// Trace jumps to 1 on a spike (bounded, "all-to-one" interaction).
    SetToOne,
    /// Trace increments by 1 on a spike (unbounded, "all-to-all").
    Additive,
}

/// Parameters of a pre/post trace pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceParams {
    /// Presynaptic trace time constant (ms).
    pub tau_pre_ms: f32,
    /// Postsynaptic trace time constant (ms).
    pub tau_post_ms: f32,
    /// Spike-to-trace interaction mode.
    pub mode: TraceMode,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            tau_pre_ms: 20.0,
            tau_post_ms: 20.0,
            mode: TraceMode::SetToOne,
        }
    }
}

/// Exponentially decaying pre- and post-synaptic trace vectors.
#[derive(Debug, Clone)]
pub struct TraceSet {
    params: TraceParams,
    x_pre: Vec<f32>,
    x_post: Vec<f32>,
    cached_dt: f32,
    f_pre: f32,
    f_post: f32,
}

impl TraceSet {
    /// Creates zeroed traces for `n_pre` input channels and `n_post`
    /// postsynaptic neurons.
    pub fn new(n_pre: usize, n_post: usize, params: TraceParams) -> Self {
        TraceSet {
            params,
            x_pre: vec![0.0; n_pre],
            x_post: vec![0.0; n_post],
            cached_dt: f32::NAN,
            f_pre: 0.0,
            f_post: 0.0,
        }
    }

    /// Trace parameters.
    pub fn params(&self) -> &TraceParams {
        &self.params
    }

    /// Presynaptic traces.
    pub fn x_pre(&self) -> &[f32] {
        &self.x_pre
    }

    /// Postsynaptic traces.
    pub fn x_post(&self) -> &[f32] {
        &self.x_post
    }

    /// Decays both trace vectors by one timestep.
    pub fn decay(&mut self, dt: f32, ops: &mut OpCounts) {
        if dt != self.cached_dt {
            self.cached_dt = dt;
            self.f_pre = (-dt / self.params.tau_pre_ms).exp();
            self.f_post = (-dt / self.params.tau_post_ms).exp();
        }
        for x in &mut self.x_pre {
            *x *= self.f_pre;
        }
        for x in &mut self.x_post {
            *x *= self.f_post;
        }
        ops.decay_mults += (self.x_pre.len() + self.x_post.len()) as u64;
        ops.kernel_launches += 2; // one decay kernel per trace vector
    }

    /// Registers a presynaptic spike on channel `k`.
    #[inline]
    pub fn on_pre_spike(&mut self, k: usize, ops: &mut OpCounts) {
        match self.params.mode {
            TraceMode::SetToOne => self.x_pre[k] = 1.0,
            TraceMode::Additive => self.x_pre[k] += 1.0,
        }
        ops.trace_updates += 1;
    }

    /// Registers a postsynaptic spike on neuron `j`.
    #[inline]
    pub fn on_post_spike(&mut self, j: usize, ops: &mut OpCounts) {
        match self.params.mode {
            TraceMode::SetToOne => self.x_post[j] = 1.0,
            TraceMode::Additive => self.x_post[j] += 1.0,
        }
        ops.trace_updates += 1;
    }

    /// Clears all traces (between samples).
    pub fn reset(&mut self) {
        self.x_pre.fill(0.0);
        self.x_post.fill(0.0);
    }
}

/// The classic pair-based STDP rule with soft weight dependence, as used by
/// the Diehl & Cook baseline:
///
/// * on a **presynaptic** spike at synapse `(j, k)`:
///   `Δw = -η_pre · x_post[j]` (depression),
/// * on a **postsynaptic** spike of neuron `j`:
///   `Δw = η_post · x_pre[k] · (w_max - w)^µ` (potentiation)
///   for every incoming synapse `k`.
///
/// This updates on *every* spike event — the paper's §I calls these
/// per-event updates a source of "spurious updates" that SpikeDyn's
/// timestep-gated rule (in the `spikedyn` crate) avoids.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStdp {
    /// Learning rate applied on presynaptic spikes (depression).
    pub eta_pre: f32,
    /// Learning rate applied on postsynaptic spikes (potentiation).
    pub eta_post: f32,
    /// Soft-bound exponent µ on `(w_max - w)` for potentiation.
    pub mu: f32,
}

impl Default for PairStdp {
    fn default() -> Self {
        PairStdp {
            eta_pre: 1.0e-4,
            eta_post: 1.0e-2,
            mu: 1.0,
        }
    }
}

impl PairStdp {
    /// Applies depression to the synapses of all postsynaptic neurons for a
    /// presynaptic spike on channel `k`.
    pub fn apply_pre_spike(
        &self,
        weights: &mut WeightMatrix,
        traces: &TraceSet,
        k: usize,
        ops: &mut OpCounts,
    ) {
        let n_post = weights.n_post();
        for j in 0..n_post {
            let x = traces.x_post()[j];
            if x > 0.0 {
                weights.nudge(j, k, -self.eta_pre * x);
            }
        }
        ops.weight_updates += n_post as u64;
    }

    /// Applies potentiation to every incoming synapse of postsynaptic
    /// neuron `j` on its spike.
    pub fn apply_post_spike(
        &self,
        weights: &mut WeightMatrix,
        traces: &TraceSet,
        j: usize,
        ops: &mut OpCounts,
    ) {
        let w_max = weights.w_max();
        let mu = self.mu;
        let eta = self.eta_post;
        let x_pre = traces.x_pre();
        let row = weights.row_mut(j);
        for (k, w) in row.iter_mut().enumerate() {
            let x = x_pre[k];
            if x > 0.0 {
                let bound = if mu == 1.0 {
                    w_max - *w
                } else {
                    (w_max - *w).max(0.0).powf(mu)
                };
                *w = (*w + eta * x * bound).clamp(0.0, w_max);
            }
        }
        ops.weight_updates += row.len() as u64;
        if mu != 1.0 {
            ops.exp_evals += row.len() as u64; // powf costs a transcendental
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_decay_exponentially() {
        let mut t = TraceSet::new(1, 1, TraceParams::default());
        let mut ops = OpCounts::default();
        t.on_pre_spike(0, &mut ops);
        assert_eq!(t.x_pre()[0], 1.0);
        // After one tau (20 ms at 1 ms steps) the trace is ~e^-1.
        for _ in 0..20 {
            t.decay(1.0, &mut ops);
        }
        assert!((t.x_pre()[0] - (-1.0f32).exp()).abs() < 1e-3);
    }

    #[test]
    fn additive_mode_accumulates() {
        let params = TraceParams {
            mode: TraceMode::Additive,
            ..Default::default()
        };
        let mut t = TraceSet::new(1, 1, params);
        let mut ops = OpCounts::default();
        t.on_pre_spike(0, &mut ops);
        t.on_pre_spike(0, &mut ops);
        assert_eq!(t.x_pre()[0], 2.0);
    }

    #[test]
    fn set_to_one_saturates() {
        let mut t = TraceSet::new(1, 1, TraceParams::default());
        let mut ops = OpCounts::default();
        t.on_pre_spike(0, &mut ops);
        t.on_pre_spike(0, &mut ops);
        assert_eq!(t.x_pre()[0], 1.0);
    }

    #[test]
    fn post_spike_potentiates_toward_wmax() {
        let mut w = WeightMatrix::constant(1, 2, 0.5, 1.0);
        let mut t = TraceSet::new(2, 1, TraceParams::default());
        let mut ops = OpCounts::default();
        t.on_pre_spike(0, &mut ops); // channel 0 recently active
        let rule = PairStdp {
            eta_post: 0.1,
            ..Default::default()
        };
        rule.apply_post_spike(&mut w, &t, 0, &mut ops);
        assert!(w.get(0, 0) > 0.5, "active channel must potentiate");
        assert_eq!(w.get(0, 1), 0.5, "inactive channel must not change");
    }

    #[test]
    fn pre_spike_depresses_active_posts() {
        let mut w = WeightMatrix::constant(2, 1, 0.5, 1.0);
        let mut t = TraceSet::new(1, 2, TraceParams::default());
        let mut ops = OpCounts::default();
        t.on_post_spike(1, &mut ops); // neuron 1 recently fired
        let rule = PairStdp {
            eta_pre: 0.1,
            ..Default::default()
        };
        rule.apply_pre_spike(&mut w, &t, 0, &mut ops);
        assert_eq!(w.get(0, 0), 0.5, "quiet neuron untouched");
        assert!(w.get(1, 0) < 0.5, "recently active neuron depressed");
    }

    #[test]
    fn potentiation_never_exceeds_wmax() {
        let mut w = WeightMatrix::constant(1, 1, 0.99, 1.0);
        let mut t = TraceSet::new(1, 1, TraceParams::default());
        let mut ops = OpCounts::default();
        t.on_pre_spike(0, &mut ops);
        let rule = PairStdp {
            eta_post: 10.0,
            ..Default::default()
        };
        for _ in 0..10 {
            rule.apply_post_spike(&mut w, &t, 0, &mut ops);
        }
        assert!(w.get(0, 0) <= 1.0);
    }

    #[test]
    fn reset_clears_traces() {
        let mut t = TraceSet::new(2, 2, TraceParams::default());
        let mut ops = OpCounts::default();
        t.on_pre_spike(1, &mut ops);
        t.on_post_spike(0, &mut ops);
        t.reset();
        assert!(t.x_pre().iter().all(|&x| x == 0.0));
        assert!(t.x_post().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn decay_counts_ops() {
        let mut t = TraceSet::new(3, 2, TraceParams::default());
        let mut ops = OpCounts::default();
        t.decay(1.0, &mut ops);
        assert_eq!(ops.decay_mults, 5);
    }
}
