//! Neuron models.
//!
//! The paper uses the Leaky Integrate-and-Fire (LIF) model "since it has the
//! lowest computational complexity among the existing neuron models" (§II),
//! with conductance-based synapses and an adaptive threshold
//! `Vth + θ` where the adaptation potential `θ` grows on every spike and
//! otherwise decays. [`LifLayer`] implements a whole population of such
//! neurons in structure-of-arrays form for cache-friendly simulation; the
//! non-leaky [`IfLayer`] exists as a complexity comparison point.

use serde::{Deserialize, Serialize};

use crate::error::{SnnError, SnnResult};
use crate::ops::OpCounts;

/// Parameters of a conductance-based LIF population.
///
/// Voltages are in millivolts, times in milliseconds. Defaults follow the
/// excitatory population of Diehl & Cook (2015), the configuration the
/// paper's baseline \[2\] uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Resting membrane potential.
    pub v_rest_mv: f32,
    /// Potential the membrane is clamped to after a spike.
    pub v_reset_mv: f32,
    /// Base firing threshold (before adaptation).
    pub v_thresh_mv: f32,
    /// Membrane time constant.
    pub tau_m_ms: f32,
    /// Absolute refractory period.
    pub refrac_ms: f32,
    /// Excitatory synaptic reversal potential.
    pub e_exc_mv: f32,
    /// Inhibitory synaptic reversal potential.
    pub e_inh_mv: f32,
    /// Excitatory conductance time constant.
    pub tau_ge_ms: f32,
    /// Inhibitory conductance time constant.
    pub tau_gi_ms: f32,
}

impl LifParams {
    /// Diehl & Cook excitatory-population parameters.
    pub fn excitatory() -> Self {
        LifParams {
            v_rest_mv: -65.0,
            v_reset_mv: -65.0,
            v_thresh_mv: -52.0,
            tau_m_ms: 100.0,
            refrac_ms: 5.0,
            e_exc_mv: 0.0,
            e_inh_mv: -100.0,
            tau_ge_ms: 1.0,
            tau_gi_ms: 2.0,
        }
    }

    /// Diehl & Cook inhibitory-population parameters. Note the different
    /// constants from [`LifParams::excitatory`] — the paper's §III-B points
    /// out that storing this second parameter set is part of the memory cost
    /// of the explicit inhibitory layer.
    pub fn inhibitory() -> Self {
        LifParams {
            v_rest_mv: -60.0,
            v_reset_mv: -45.0,
            v_thresh_mv: -40.0,
            tau_m_ms: 10.0,
            refrac_ms: 2.0,
            e_exc_mv: 0.0,
            e_inh_mv: -85.0,
            tau_ge_ms: 1.0,
            tau_gi_ms: 2.0,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::InvalidParameter`] for non-positive time
    /// constants or a threshold at/below the reset potential.
    pub fn validate(&self) -> SnnResult<()> {
        for (name, v) in [
            ("tau_m_ms", self.tau_m_ms),
            ("tau_ge_ms", self.tau_ge_ms),
            ("tau_gi_ms", self.tau_gi_ms),
        ] {
            if v.is_nan() || v <= 0.0 {
                return Err(SnnError::InvalidParameter {
                    name,
                    reason: format!("time constant must be positive, got {v}"),
                });
            }
        }
        if self.refrac_ms < 0.0 {
            return Err(SnnError::InvalidParameter {
                name: "refrac_ms",
                reason: "must be non-negative".into(),
            });
        }
        if self.v_thresh_mv <= self.v_reset_mv {
            return Err(SnnError::InvalidParameter {
                name: "v_thresh_mv",
                reason: format!(
                    "threshold {} mV must exceed reset {} mV",
                    self.v_thresh_mv, self.v_reset_mv
                ),
            });
        }
        Ok(())
    }

    /// Number of per-neuron state variables this model keeps (used by the
    /// analytical memory model: `Pn` in `mem = (Pw + Pn) · BP`).
    pub fn state_vars_per_neuron(adaptive: bool) -> usize {
        // v, ge, gi, refractory counter (+ theta when adaptive).
        if adaptive {
            5
        } else {
            4
        }
    }
}

/// Adaptive-threshold (homeostasis) parameters.
///
/// On every spike the neuron's `θ` increases by `theta_plus_mv`; between
/// spikes it decays exponentially with time constant `tau_theta_ms`. The
/// effective firing threshold is `v_thresh_mv + θ`. SpikeDyn's §III-D tunes
/// `theta_plus` as `θ = cθ · θdecay · tsim`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveThreshold {
    /// Increment added to `θ` when the neuron fires.
    pub theta_plus_mv: f32,
    /// Exponential decay time constant of `θ`.
    pub tau_theta_ms: f32,
}

impl Default for AdaptiveThreshold {
    /// Diehl & Cook homeostasis: +0.05 mV per spike, very slow decay.
    fn default() -> Self {
        AdaptiveThreshold {
            theta_plus_mv: 0.05,
            tau_theta_ms: 1.0e7,
        }
    }
}

impl AdaptiveThreshold {
    /// Rescales the homeostasis for a temporally compressed experiment
    /// with `compression`× fewer samples per task.
    ///
    /// The scaling is sub-linear (`√compression`): per-event STDP rules
    /// already adapt faster per sample under compression (higher input
    /// rates, boosted retries), so a linear θ scaling would rotate winners
    /// out before they consolidate. The √ mapping was calibrated so the
    /// Diehl & Cook baseline reproduces the paper's Fig. 1(c) forgetting
    /// profile at the harness scale; see `DESIGN.md` §2.
    pub fn compressed(mut self, compression: f32) -> Self {
        let c = compression.max(1.0).sqrt();
        self.theta_plus_mv *= c;
        self.tau_theta_ms /= c;
        self
    }
}

/// A population of conductance-based LIF neurons with optional adaptive
/// thresholds, stored structure-of-arrays.
#[derive(Debug, Clone)]
pub struct LifLayer {
    params: LifParams,
    adapt: Option<AdaptiveThreshold>,
    n: usize,
    v: Vec<f32>,
    theta: Vec<f32>,
    ge: Vec<f32>,
    gi: Vec<f32>,
    refrac_left_ms: Vec<f32>,
    spiked: Vec<bool>,
    // Cached decay factors for the last-seen dt.
    cached_dt: f32,
    f_ge: f32,
    f_gi: f32,
    f_theta: f32,
}

impl LifLayer {
    /// Creates a population of `n` neurons at rest.
    pub fn new(n: usize, params: LifParams, adapt: Option<AdaptiveThreshold>) -> Self {
        let mut layer = LifLayer {
            params,
            adapt,
            n,
            v: vec![params.v_rest_mv; n],
            theta: vec![0.0; n],
            ge: vec![0.0; n],
            gi: vec![0.0; n],
            refrac_left_ms: vec![0.0; n],
            spiked: vec![false; n],
            cached_dt: f32::NAN,
            f_ge: 0.0,
            f_gi: 0.0,
            f_theta: 0.0,
        };
        layer.refresh_decay_factors(1.0);
        layer
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Model parameters.
    pub fn params(&self) -> &LifParams {
        &self.params
    }

    /// Adaptive threshold configuration, if homeostasis is enabled.
    pub fn adaptive(&self) -> Option<&AdaptiveThreshold> {
        self.adapt.as_ref()
    }

    /// Replaces the adaptive threshold configuration. Existing per-neuron
    /// `θ` values are kept (SpikeDyn adjusts the increment/decay online
    /// without resetting accumulated adaptation).
    pub fn set_adaptive(&mut self, adapt: Option<AdaptiveThreshold>) {
        self.adapt = adapt;
        self.cached_dt = f32::NAN; // force factor refresh
    }

    /// Membrane potentials (mV).
    pub fn voltages(&self) -> &[f32] {
        &self.v
    }

    /// Adaptation potentials `θ` (mV).
    pub fn thetas(&self) -> &[f32] {
        &self.theta
    }

    /// Mutable adaptation potentials, for learning rules that rescale `θ`.
    pub fn thetas_mut(&mut self) -> &mut [f32] {
        &mut self.theta
    }

    /// Spike flags from the most recent [`LifLayer::step`].
    pub fn spiked(&self) -> &[bool] {
        &self.spiked
    }

    /// Adds excitatory conductance to neuron `j` (a presynaptic spike
    /// arriving through a synapse of weight `w`).
    #[inline]
    pub fn inject_exc(&mut self, j: usize, w: f32) {
        self.ge[j] += w;
    }

    /// Adds inhibitory conductance to neuron `j`.
    #[inline]
    pub fn inject_inh(&mut self, j: usize, w: f32) {
        self.gi[j] += w;
    }

    /// Mutable view of the excitatory conductances, for sparse delivery
    /// kernels that accumulate many presynaptic events per neuron in one
    /// pass (see [`crate::synapse::WeightMatrix::gather_active_into`]).
    #[inline]
    pub fn exc_conductances_mut(&mut self) -> &mut [f32] {
        &mut self.ge
    }

    /// Adds inhibitory conductance to every neuron except `except`, the
    /// direct lateral inhibition primitive of SpikeDyn's §III-B.
    pub fn inject_inh_all_but(&mut self, except: usize, w: f32, ops: &mut OpCounts) {
        for (j, gi) in self.gi.iter_mut().enumerate() {
            if j != except {
                *gi += w;
            }
        }
        ops.syn_events += (self.n as u64).saturating_sub(1);
    }

    fn refresh_decay_factors(&mut self, dt: f32) {
        if dt == self.cached_dt {
            return;
        }
        self.cached_dt = dt;
        self.f_ge = (-dt / self.params.tau_ge_ms).exp();
        self.f_gi = (-dt / self.params.tau_gi_ms).exp();
        self.f_theta = match &self.adapt {
            Some(a) => (-dt / a.tau_theta_ms).exp(),
            None => 1.0,
        };
    }

    /// Advances the population by one timestep of `dt` milliseconds.
    ///
    /// Conductances decay exponentially, membranes integrate the
    /// conductance-weighted reversal-potential drive, and neurons whose
    /// potential crosses `v_thresh + θ` fire (recorded in
    /// [`LifLayer::spiked`]) and are clamped to reset + refractory.
    ///
    /// Returns the number of spikes emitted this step. Operation counts are
    /// accumulated into `ops`.
    pub fn step(&mut self, dt: f32, ops: &mut OpCounts) -> u32 {
        self.refresh_decay_factors(dt);
        // Three fresh exponentials only when dt changes; steady-state steps
        // reuse cached factors, which is what a vectorised simulator does.
        let p = self.params;
        let adaptive = self.adapt.is_some();
        let mut spikes = 0u32;
        for j in 0..self.n {
            // Conductance decay.
            self.ge[j] *= self.f_ge;
            self.gi[j] *= self.f_gi;
            if adaptive {
                self.theta[j] *= self.f_theta;
            }
            if self.refrac_left_ms[j] > 0.0 {
                self.refrac_left_ms[j] -= dt;
                self.v[j] = p.v_reset_mv;
                self.spiked[j] = false;
                continue;
            }
            // Conductance-based membrane integration (Euler).
            let dv = (p.v_rest_mv - self.v[j])
                + self.ge[j] * (p.e_exc_mv - self.v[j])
                + self.gi[j] * (p.e_inh_mv - self.v[j]);
            self.v[j] += dv * (dt / p.tau_m_ms);
            let thresh = p.v_thresh_mv + self.theta[j];
            if self.v[j] >= thresh {
                self.spiked[j] = true;
                self.v[j] = p.v_reset_mv;
                self.refrac_left_ms[j] = p.refrac_ms;
                if let Some(a) = &self.adapt {
                    self.theta[j] += a.theta_plus_mv;
                }
                spikes += 1;
            } else {
                self.spiked[j] = false;
            }
        }
        let n = self.n as u64;
        ops.neuron_updates += n;
        ops.decay_mults += n * if adaptive { 3 } else { 2 };
        ops.comparisons += n;
        ops.spikes += u64::from(spikes);
        // Vectorised equivalents: ge decay, gi decay, (theta decay),
        // integrate, threshold+reset.
        ops.kernel_launches += if adaptive { 5 } else { 4 };
        spikes
    }

    /// Resets dynamic state (voltage, conductances, refractory timers) to
    /// rest while keeping the learned adaptation `θ`. Called between
    /// samples: homeostasis is long-term state, membrane dynamics are not.
    pub fn settle(&mut self) {
        self.v.fill(self.params.v_rest_mv);
        self.ge.fill(0.0);
        self.gi.fill(0.0);
        self.refrac_left_ms.fill(0.0);
        self.spiked.fill(false);
    }

    /// Full reset including adaptation, returning the layer to its
    /// just-constructed state.
    pub fn reset(&mut self) {
        self.settle();
        self.theta.fill(0.0);
    }

    /// Per-neuron state-variable count for the analytical memory model.
    pub fn state_vars(&self) -> usize {
        LifParams::state_vars_per_neuron(self.adapt.is_some())
    }

    /// Splits the layer into its spike flags (shared) and adaptation
    /// potentials (mutable) in one borrow, so a learning rule can read
    /// spikes while rescaling `θ`.
    pub fn spiked_and_thetas_mut(&mut self) -> (&[bool], &mut [f32]) {
        (&self.spiked, &mut self.theta)
    }
}

/// A population of non-leaky integrate-and-fire neurons.
///
/// Provided as the complexity floor the paper alludes to when motivating
/// LIF: an IF neuron only accumulates weighted input and compares against a
/// threshold. Used in unit tests and the op-count ablations.
#[derive(Debug, Clone)]
pub struct IfLayer {
    n: usize,
    v: Vec<f32>,
    v_thresh: f32,
    v_reset: f32,
    spiked: Vec<bool>,
}

impl IfLayer {
    /// Creates `n` IF neurons with the given threshold and reset.
    pub fn new(n: usize, v_thresh: f32, v_reset: f32) -> Self {
        IfLayer {
            n,
            v: vec![v_reset; n],
            v_thresh,
            v_reset,
            spiked: vec![false; n],
        }
    }

    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds input drive to neuron `j`.
    #[inline]
    pub fn inject(&mut self, j: usize, w: f32) {
        self.v[j] += w;
    }

    /// Advances one step: thresholds and resets. Returns spike count.
    pub fn step(&mut self, ops: &mut OpCounts) -> u32 {
        let mut spikes = 0;
        for j in 0..self.n {
            if self.v[j] >= self.v_thresh {
                self.spiked[j] = true;
                self.v[j] = self.v_reset;
                spikes += 1;
            } else {
                self.spiked[j] = false;
            }
        }
        ops.neuron_updates += self.n as u64;
        ops.comparisons += self.n as u64;
        ops.spikes += u64::from(spikes);
        ops.kernel_launches += 2; // threshold + reset
        spikes
    }

    /// Spike flags from the most recent step.
    pub fn spiked(&self) -> &[bool] {
        &self.spiked
    }

    /// Resets all membranes.
    pub fn reset(&mut self) {
        self.v.fill(self.v_reset);
        self.spiked.fill(false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_ops() -> OpCounts {
        OpCounts::default()
    }

    #[test]
    fn excitatory_params_validate() {
        assert!(LifParams::excitatory().validate().is_ok());
        assert!(LifParams::inhibitory().validate().is_ok());
    }

    #[test]
    fn bad_tau_rejected() {
        let mut p = LifParams::excitatory();
        p.tau_m_ms = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn threshold_below_reset_rejected() {
        let mut p = LifParams::excitatory();
        p.v_thresh_mv = p.v_reset_mv - 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn resting_neuron_stays_at_rest() {
        let mut l = LifLayer::new(3, LifParams::excitatory(), None);
        let mut ops = quiet_ops();
        for _ in 0..100 {
            assert_eq!(l.step(0.5, &mut ops), 0);
        }
        for &v in l.voltages() {
            assert!((v - LifParams::excitatory().v_rest_mv).abs() < 1e-3);
        }
    }

    #[test]
    fn strong_excitation_causes_spike() {
        let mut l = LifLayer::new(1, LifParams::excitatory(), None);
        let mut ops = quiet_ops();
        let mut spiked = false;
        for _ in 0..200 {
            l.inject_exc(0, 0.5); // sustained strong drive
            if l.step(0.5, &mut ops) > 0 {
                spiked = true;
                break;
            }
        }
        assert!(spiked, "sustained strong excitation must elicit a spike");
        assert!(ops.spikes >= 1);
    }

    #[test]
    fn refractory_period_blocks_immediate_respike() {
        let p = LifParams::excitatory();
        let mut l = LifLayer::new(1, p, None);
        let mut ops = quiet_ops();
        // Drive until first spike.
        loop {
            l.inject_exc(0, 1.0);
            if l.step(0.5, &mut ops) > 0 {
                break;
            }
        }
        // During the 5 ms refractory window (10 steps at 0.5 ms) no spike
        // can occur regardless of drive.
        for _ in 0..9 {
            l.inject_exc(0, 5.0);
            assert_eq!(l.step(0.5, &mut ops), 0, "spiked inside refractory");
        }
    }

    #[test]
    fn theta_grows_on_spike_and_decays() {
        let adapt = AdaptiveThreshold {
            theta_plus_mv: 1.0,
            tau_theta_ms: 10.0, // fast decay so the test can see it
        };
        let mut l = LifLayer::new(1, LifParams::excitatory(), Some(adapt));
        let mut ops = quiet_ops();
        loop {
            l.inject_exc(0, 1.0);
            if l.step(0.5, &mut ops) > 0 {
                break;
            }
        }
        let after_spike = l.thetas()[0];
        assert!(after_spike >= 1.0);
        for _ in 0..100 {
            l.step(0.5, &mut ops);
        }
        assert!(
            l.thetas()[0] < after_spike * 0.1,
            "theta should decay substantially: {} -> {}",
            after_spike,
            l.thetas()[0]
        );
    }

    #[test]
    fn inhibition_lowers_voltage() {
        let mut l = LifLayer::new(1, LifParams::excitatory(), None);
        let mut ops = quiet_ops();
        l.inject_inh(0, 1.0);
        for _ in 0..20 {
            l.step(0.5, &mut ops);
        }
        assert!(l.voltages()[0] < LifParams::excitatory().v_rest_mv);
    }

    #[test]
    fn inject_all_but_skips_source() {
        let mut l = LifLayer::new(4, LifParams::excitatory(), None);
        let mut ops = quiet_ops();
        l.inject_inh_all_but(2, 1.0, &mut ops);
        let before = l.voltages().to_vec();
        for _ in 0..10 {
            l.step(0.5, &mut ops);
        }
        // Neuron 2 saw no inhibition so it stays at rest; others dip below.
        assert!((l.voltages()[2] - before[2]).abs() < 1e-4);
        for j in [0usize, 1, 3] {
            assert!(l.voltages()[j] < before[j]);
        }
        assert_eq!(ops.syn_events, 3);
    }

    #[test]
    fn settle_keeps_theta_reset_clears_it() {
        let adapt = AdaptiveThreshold::default();
        let mut l = LifLayer::new(1, LifParams::excitatory(), Some(adapt));
        let mut ops = quiet_ops();
        loop {
            l.inject_exc(0, 1.0);
            if l.step(0.5, &mut ops) > 0 {
                break;
            }
        }
        assert!(l.thetas()[0] > 0.0);
        l.settle();
        assert!(l.thetas()[0] > 0.0, "settle must preserve homeostasis");
        assert_eq!(l.voltages()[0], LifParams::excitatory().v_rest_mv);
        l.reset();
        assert_eq!(l.thetas()[0], 0.0);
    }

    #[test]
    fn op_counts_scale_with_population() {
        let mut l = LifLayer::new(10, LifParams::excitatory(), None);
        let mut ops = quiet_ops();
        l.step(0.5, &mut ops);
        assert_eq!(ops.neuron_updates, 10);
        assert_eq!(ops.decay_mults, 20); // ge + gi, no theta
        let mut l2 = LifLayer::new(10, LifParams::excitatory(), Some(Default::default()));
        let mut ops2 = quiet_ops();
        l2.step(0.5, &mut ops2);
        assert_eq!(ops2.decay_mults, 30); // ge + gi + theta
    }

    #[test]
    fn if_layer_thresholds() {
        let mut l = IfLayer::new(2, 1.0, 0.0);
        let mut ops = quiet_ops();
        l.inject(0, 1.5);
        let spikes = l.step(&mut ops);
        assert_eq!(spikes, 1);
        assert!(l.spiked()[0]);
        assert!(!l.spiked()[1]);
        // Membrane reset: no second spike without new input.
        assert_eq!(l.step(&mut ops), 0);
    }

    #[test]
    fn state_var_counts() {
        assert_eq!(LifParams::state_vars_per_neuron(false), 4);
        assert_eq!(LifParams::state_vars_per_neuron(true), 5);
        let l = LifLayer::new(1, LifParams::excitatory(), Some(Default::default()));
        assert_eq!(l.state_vars(), 5);
    }
}
