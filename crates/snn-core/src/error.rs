//! Error types shared across the simulator.

use std::fmt;

/// Result alias used by fallible `snn-core` APIs.
pub type SnnResult<T> = Result<T, SnnError>;

/// Errors produced while building or running a spiking network.
#[derive(Debug, Clone, PartialEq)]
pub enum SnnError {
    /// A dimension did not match what the network expects
    /// (e.g. an input vector shorter than the input layer).
    DimensionMismatch {
        /// What the API expected.
        expected: usize,
        /// What the caller provided.
        got: usize,
        /// Human-readable description of the mismatching quantity.
        what: &'static str,
    },
    /// A parameter was outside its valid domain (e.g. a non-positive time
    /// constant).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Why the value was rejected.
        reason: String,
    },
    /// A network was asked to do something its topology does not support.
    UnsupportedTopology(String),
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::DimensionMismatch {
                expected,
                got,
                what,
            } => write!(
                f,
                "dimension mismatch for {what}: expected {expected}, got {got}"
            ),
            SnnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            SnnError::UnsupportedTopology(msg) => write!(f, "unsupported topology: {msg}"),
        }
    }
}

impl std::error::Error for SnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SnnError::DimensionMismatch {
            expected: 784,
            got: 10,
            what: "input image",
        };
        let msg = err.to_string();
        assert!(msg.contains("784"));
        assert!(msg.contains("10"));
        assert!(msg.contains("input image"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnnError>();
    }

    #[test]
    fn invalid_parameter_display() {
        let err = SnnError::InvalidParameter {
            name: "tau_m_ms",
            reason: "must be positive".into(),
        };
        assert_eq!(
            err.to_string(),
            "invalid parameter `tau_m_ms`: must be positive"
        );
    }
}
