//! Dense synaptic weight storage.
//!
//! The architectures in the paper are fully connected (input → excitatory),
//! so weights live in a dense row-major matrix: row `j` holds the incoming
//! weights of postsynaptic neuron `j`. Row-major-by-post keeps the hot
//! learning-rule operations (per-winner potentiation, per-row normalisation,
//! whole-matrix decay) contiguous.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::{SnnError, SnnResult};
use crate::ops::OpCounts;

/// A dense `n_post × n_pre` weight matrix, row-major by postsynaptic neuron.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightMatrix {
    n_post: usize,
    n_pre: usize,
    data: Vec<f32>,
    w_max: f32,
}

impl WeightMatrix {
    /// Creates a matrix with every weight drawn uniformly from
    /// `[0, w_init_max)`, the initialisation used by Diehl & Cook.
    pub fn random_uniform<R: Rng + ?Sized>(
        n_post: usize,
        n_pre: usize,
        w_init_max: f32,
        w_max: f32,
        rng: &mut R,
    ) -> Self {
        let data = (0..n_post * n_pre)
            .map(|_| rng.gen::<f32>() * w_init_max)
            .collect();
        WeightMatrix {
            n_post,
            n_pre,
            data,
            w_max,
        }
    }

    /// Creates a matrix filled with a constant weight.
    pub fn constant(n_post: usize, n_pre: usize, w: f32, w_max: f32) -> Self {
        WeightMatrix {
            n_post,
            n_pre,
            data: vec![w; n_post * n_pre],
            w_max,
        }
    }

    /// Builds a matrix from an explicit row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SnnError::DimensionMismatch`] when `data.len()` is not
    /// `n_post * n_pre`.
    pub fn from_rows(n_post: usize, n_pre: usize, data: Vec<f32>, w_max: f32) -> SnnResult<Self> {
        if data.len() != n_post * n_pre {
            return Err(SnnError::DimensionMismatch {
                expected: n_post * n_pre,
                got: data.len(),
                what: "weight buffer",
            });
        }
        Ok(WeightMatrix {
            n_post,
            n_pre,
            data,
            w_max,
        })
    }

    /// Number of postsynaptic neurons (rows).
    pub fn n_post(&self) -> usize {
        self.n_post
    }

    /// Number of presynaptic channels (columns).
    pub fn n_pre(&self) -> usize {
        self.n_pre
    }

    /// Total number of synapses.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no synapses.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Upper clip bound for weights.
    pub fn w_max(&self) -> f32 {
        self.w_max
    }

    /// Weight of the synapse from presynaptic `pre` to postsynaptic `post`.
    #[inline]
    pub fn get(&self, post: usize, pre: usize) -> f32 {
        self.data[post * self.n_pre + pre]
    }

    /// Sets one weight (clipped to `[0, w_max]`).
    #[inline]
    pub fn set(&mut self, post: usize, pre: usize, w: f32) {
        self.data[post * self.n_pre + pre] = w.clamp(0.0, self.w_max);
    }

    /// Incoming weight row of postsynaptic neuron `post`.
    #[inline]
    pub fn row(&self, post: usize) -> &[f32] {
        &self.data[post * self.n_pre..(post + 1) * self.n_pre]
    }

    /// Mutable incoming weight row of postsynaptic neuron `post`.
    #[inline]
    pub fn row_mut(&mut self, post: usize) -> &mut [f32] {
        &mut self.data[post * self.n_pre..(post + 1) * self.n_pre]
    }

    /// The full row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the full row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Adds `delta` to one weight and clips to `[0, w_max]`.
    #[inline]
    pub fn nudge(&mut self, post: usize, pre: usize, delta: f32) {
        let idx = post * self.n_pre + pre;
        self.data[idx] = (self.data[idx] + delta).clamp(0.0, self.w_max);
    }

    /// Multiplies every weight by `factor` (exponential decay step),
    /// counting one weight update per synapse.
    pub fn decay_all(&mut self, factor: f32, ops: &mut OpCounts) {
        for w in &mut self.data {
            *w *= factor;
        }
        ops.weight_updates += self.data.len() as u64;
        ops.kernel_launches += 1;
    }

    /// Normalises each postsynaptic row so its weights sum to `target_sum`
    /// (Diehl & Cook's per-neuron weight normalisation). Rows whose sum is
    /// zero are left untouched.
    pub fn normalize_rows(&mut self, target_sum: f32, ops: &mut OpCounts) {
        for post in 0..self.n_post {
            let row = self.row_mut(post);
            let sum: f32 = row.iter().sum();
            if sum > f32::EPSILON {
                let scale = target_sum / sum;
                for w in row.iter_mut() {
                    *w *= scale;
                }
            }
        }
        ops.weight_updates += self.data.len() as u64;
        ops.kernel_launches += 2; // row-sum reduction + scale
    }

    /// Sparse event-driven propagation kernel: for every postsynaptic
    /// neuron, accumulates the weights of the *active* presynaptic channels
    /// into `acc` (one slot per postsynaptic neuron).
    ///
    /// This is the shared hot path of the scalar and batched simulation
    /// engines. Compared with delivering one presynaptic spike at a time
    /// (a strided column walk per spike), it visits each contiguous
    /// postsynaptic row once and gathers all active columns from it — the
    /// row fits in L1, so the pass is bounded by one sequential sweep of
    /// the matrix instead of `spikes × n_post` cache misses.
    ///
    /// Floating-point note: per accumulator slot the additions happen in
    /// ascending-`active` order, the same order as repeated single-spike
    /// delivery, so results are bit-identical to the event-at-a-time path.
    ///
    /// # Panics
    ///
    /// Panics if `acc.len() != n_post` or any channel index is out of
    /// range.
    pub fn gather_active_into(&self, active_pre: &[u32], acc: &mut [f32]) {
        assert_eq!(
            acc.len(),
            self.n_post,
            "accumulator must have one slot per postsynaptic neuron"
        );
        if active_pre.is_empty() {
            return;
        }
        for (slot, row) in acc.iter_mut().zip(self.data.chunks_exact(self.n_pre)) {
            for &k in active_pre {
                *slot += row[k as usize];
            }
        }
    }

    /// Sum of the incoming weights of `post`.
    pub fn row_sum(&self, post: usize) -> f32 {
        self.row(post).iter().sum()
    }

    /// Mean weight across the whole matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Fraction of synapses whose weight is below `threshold` — the paper's
    /// weight decay argues weak connections "get more disconnected over the
    /// training period"; this measures that.
    pub fn fraction_below(&self, threshold: f32) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let n = self.data.iter().filter(|&&w| w < threshold).count();
        n as f32 / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn random_init_within_bounds() {
        let mut rng = seeded_rng(1);
        let m = WeightMatrix::random_uniform(4, 8, 0.3, 1.0, &mut rng);
        assert_eq!(m.len(), 32);
        for &w in m.as_slice() {
            assert!((0.0..0.3).contains(&w));
        }
    }

    #[test]
    fn from_rows_validates_len() {
        assert!(WeightMatrix::from_rows(2, 3, vec![0.0; 5], 1.0).is_err());
        assert!(WeightMatrix::from_rows(2, 3, vec![0.0; 6], 1.0).is_ok());
    }

    #[test]
    fn get_set_roundtrip_and_clip() {
        let mut m = WeightMatrix::constant(3, 3, 0.5, 1.0);
        m.set(1, 2, 0.7);
        assert_eq!(m.get(1, 2), 0.7);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 1.0, "set must clip to w_max");
        m.nudge(1, 2, -10.0);
        assert_eq!(m.get(1, 2), 0.0, "nudge must clip to zero");
    }

    #[test]
    fn row_is_contiguous_and_correct() {
        let data: Vec<f32> = (0..6).map(|x| x as f32).collect();
        let m = WeightMatrix::from_rows(2, 3, data, 10.0).unwrap();
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn decay_shrinks_all_weights() {
        let mut m = WeightMatrix::constant(2, 2, 0.8, 1.0);
        let mut ops = OpCounts::default();
        m.decay_all(0.5, &mut ops);
        for &w in m.as_slice() {
            assert!((w - 0.4).abs() < 1e-6);
        }
        assert_eq!(ops.weight_updates, 4);
    }

    #[test]
    fn normalize_rows_hits_target() {
        let mut rng = seeded_rng(3);
        let mut m = WeightMatrix::random_uniform(5, 20, 1.0, 10.0, &mut rng);
        let mut ops = OpCounts::default();
        m.normalize_rows(78.4, &mut ops);
        for post in 0..5 {
            assert!((m.row_sum(post) - 78.4).abs() < 1e-2);
        }
    }

    #[test]
    fn normalize_skips_zero_rows() {
        let mut m = WeightMatrix::constant(2, 4, 0.0, 1.0);
        let mut ops = OpCounts::default();
        m.normalize_rows(10.0, &mut ops);
        assert_eq!(m.row_sum(0), 0.0);
    }

    #[test]
    fn fraction_below_counts() {
        let m = WeightMatrix::from_rows(1, 4, vec![0.1, 0.2, 0.6, 0.9], 1.0).unwrap();
        assert!((m.fraction_below(0.5) - 0.5).abs() < 1e-6);
        assert_eq!(m.fraction_below(0.05), 0.0);
        assert_eq!(m.fraction_below(1.0), 1.0);
    }

    #[test]
    fn gather_active_matches_column_at_a_time_delivery() {
        let mut rng = seeded_rng(11);
        let m = WeightMatrix::random_uniform(7, 13, 0.3, 1.0, &mut rng);
        let active = [2u32, 3, 5, 11];
        // Reference: deliver one spike at a time, column walk per spike.
        let mut reference = [0.125f32; 7];
        for &k in &active {
            for (j, slot) in reference.iter_mut().enumerate() {
                *slot += m.get(j, k as usize);
            }
        }
        let mut gathered = [0.125f32; 7];
        m.gather_active_into(&active, &mut gathered);
        assert_eq!(
            reference.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            gathered.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
            "sparse gather must be bit-identical to per-spike delivery"
        );
    }

    #[test]
    fn gather_active_with_no_spikes_is_a_noop() {
        let m = WeightMatrix::constant(3, 4, 0.5, 1.0);
        let mut acc = vec![1.0f32; 3];
        m.gather_active_into(&[], &mut acc);
        assert_eq!(acc, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "one slot per postsynaptic neuron")]
    fn gather_active_validates_accumulator_len() {
        let m = WeightMatrix::constant(3, 4, 0.5, 1.0);
        let mut acc = vec![0.0f32; 2];
        m.gather_active_into(&[0], &mut acc);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let m = WeightMatrix::constant(0, 0, 0.0, 1.0);
        assert_eq!(m.mean(), 0.0);
        assert!(m.is_empty());
    }
}
