//! The two-layer SNN architecture family used in the paper.
//!
//! Both architectures share an input layer (spike channels, e.g. 784 MNIST
//! pixels) fully connected by plastic weights to an excitatory layer where
//! "each excitatory neuron is expected to recognize a class" (§II). They
//! differ in how winner-take-all competition is implemented:
//!
//! * [`Inhibition::InhibitoryLayer`] — the baseline/ASP architecture
//!   (Fig. 1a): every excitatory neuron drives a paired inhibitory neuron
//!   one-to-one, and each inhibitory neuron inhibits *all other* excitatory
//!   neurons. The inhibitory population has its own parameter set and its
//!   own per-step dynamics — the memory and energy cost SpikeDyn removes.
//! * [`Inhibition::DirectLateral`] — SpikeDyn's §III-B optimisation
//!   (Fig. 4a): an excitatory spike directly injects inhibitory conductance
//!   into all other excitatory neurons. No inhibitory neurons exist.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SnnResult;
use crate::neuron::{AdaptiveThreshold, LifLayer, LifParams};
use crate::ops::OpCounts;
use crate::stdp::{TraceParams, TraceSet};
use crate::synapse::WeightMatrix;

/// Winner-take-all wiring style.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inhibition {
    /// Explicit inhibitory population (baseline \[2\] / ASP \[7\] architecture).
    InhibitoryLayer {
        /// Weight of the one-to-one excitatory → inhibitory synapses.
        w_exc_inh: f32,
        /// Weight of the all-but-one inhibitory → excitatory synapses.
        w_inh_exc: f32,
        /// Parameter set of the inhibitory LIF population.
        params: LifParams,
    },
    /// SpikeDyn's direct lateral inhibition: an excitatory spike adds
    /// `g_inh` inhibitory conductance to every other excitatory neuron.
    DirectLateral {
        /// Inhibitory conductance injected per lateral event.
        g_inh: f32,
    },
    /// No competition (used by unit tests and ablations).
    None,
}

impl Inhibition {
    /// Default explicit-layer wiring (Diehl & Cook constants).
    pub fn inhibitory_layer() -> Self {
        Inhibition::InhibitoryLayer {
            w_exc_inh: 10.4,
            w_inh_exc: 17.0,
            params: LifParams::inhibitory(),
        }
    }

    /// Default direct lateral wiring with an inhibition strength chosen to
    /// produce a competition profile similar to the explicit layer
    /// (paper Fig. 4d: "similar accuracy profile"). The conductance is
    /// weaker than the explicit layer's `w_inh_exc` because the lateral
    /// path skips the inhibitory neuron's threshold/delay: an instant
    /// full-strength clamp would turn the soft winner-take-all into a
    /// hard one and destroy the graded spike counts the class-assignment
    /// readout needs.
    pub fn direct_lateral() -> Self {
        Inhibition::DirectLateral { g_inh: 12.0 }
    }
}

/// Full configuration of a two-layer SNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnnConfig {
    /// Number of input channels (pixels).
    pub n_input: usize,
    /// Number of excitatory neurons (`nexc` in the paper).
    pub n_exc: usize,
    /// Competition wiring.
    pub inhibition: Inhibition,
    /// Excitatory LIF parameters.
    pub exc_params: LifParams,
    /// Homeostatic threshold adaptation (the paper's `θ`), `None` disables.
    pub adapt: Option<AdaptiveThreshold>,
    /// Upper bound for initial random weights.
    pub w_init_max: f32,
    /// Hard upper clip for weights.
    pub w_max: f32,
    /// Synaptic trace configuration.
    pub traces: TraceParams,
    /// Per-row weight normalisation target (Diehl & Cook use 78.4);
    /// `None` disables normalisation.
    pub norm_target: Option<f32>,
}

impl SnnConfig {
    /// Baseline architecture (explicit inhibitory layer) for `n_input`
    /// channels and `n_exc` excitatory neurons.
    pub fn with_inhibitory_layer(n_input: usize, n_exc: usize) -> Self {
        SnnConfig {
            n_input,
            n_exc,
            inhibition: Inhibition::inhibitory_layer(),
            exc_params: LifParams::excitatory(),
            adapt: Some(AdaptiveThreshold::default()),
            w_init_max: 0.3,
            w_max: 1.0,
            traces: TraceParams::default(),
            norm_target: Some(n_input as f32 * 0.1),
        }
    }

    /// SpikeDyn's optimised architecture (direct lateral inhibition).
    pub fn direct_lateral(n_input: usize, n_exc: usize) -> Self {
        SnnConfig {
            inhibition: Inhibition::direct_lateral(),
            ..Self::with_inhibitory_layer(n_input, n_exc)
        }
    }

    /// Validates all nested parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::SnnError::InvalidParameter`] from the neuron
    /// parameter sets.
    pub fn validate(&self) -> SnnResult<()> {
        self.exc_params.validate()?;
        if let Inhibition::InhibitoryLayer { params, .. } = &self.inhibition {
            params.validate()?;
        }
        Ok(())
    }

    /// Number of plastic weights `Pw` for the analytical memory model.
    ///
    /// The explicit-layer architecture additionally stores the fixed
    /// exc→inh (one-to-one) and inh→exc (all-but-one) connection weights;
    /// direct lateral inhibition stores a single scalar.
    pub fn weight_count(&self) -> usize {
        let plastic = self.n_input * self.n_exc;
        match self.inhibition {
            Inhibition::InhibitoryLayer { .. } => {
                plastic + self.n_exc + self.n_exc * self.n_exc.saturating_sub(1)
            }
            Inhibition::DirectLateral { .. } => plastic + 1,
            Inhibition::None => plastic,
        }
    }

    /// Number of neuron state parameters `Pn` for the analytical memory
    /// model: excitatory state vars plus, for the explicit-layer
    /// architecture, a second population with its own state.
    pub fn neuron_param_count(&self) -> usize {
        let exc_vars = LifParams::state_vars_per_neuron(self.adapt.is_some());
        let exc = self.n_exc * exc_vars;
        match self.inhibition {
            Inhibition::InhibitoryLayer { .. } => {
                exc + self.n_exc * LifParams::state_vars_per_neuron(false)
            }
            _ => exc,
        }
    }
}

/// A constructed two-layer spiking network.
///
/// Fields are public: the simulation loop, learning rules and experiment
/// harnesses all need structured access to disjoint parts of the state
/// (weights vs. traces vs. layer internals) which accessor methods cannot
/// lend simultaneously.
#[derive(Debug, Clone)]
pub struct Snn {
    /// The configuration this network was built from.
    pub config: SnnConfig,
    /// Excitatory population.
    pub exc: LifLayer,
    /// Inhibitory population (only for [`Inhibition::InhibitoryLayer`]).
    pub inh: Option<LifLayer>,
    /// Plastic input → excitatory weights.
    pub weights: WeightMatrix,
    /// Pre/post synaptic traces over the plastic projection.
    pub traces: TraceSet,
}

impl Snn {
    /// Builds a network with randomly initialised weights.
    pub fn new<R: Rng + ?Sized>(config: SnnConfig, rng: &mut R) -> Self {
        let exc = LifLayer::new(config.n_exc, config.exc_params, config.adapt);
        let inh = match &config.inhibition {
            Inhibition::InhibitoryLayer { params, .. } => {
                Some(LifLayer::new(config.n_exc, *params, None))
            }
            _ => None,
        };
        let weights = WeightMatrix::random_uniform(
            config.n_exc,
            config.n_input,
            config.w_init_max,
            config.w_max,
            rng,
        );
        let traces = TraceSet::new(config.n_input, config.n_exc, config.traces);
        Snn {
            config,
            exc,
            inh,
            weights,
            traces,
        }
    }

    /// Rebuilds a network from checkpointed learned state: the original
    /// configuration, the plastic weight buffer (row-major by postsynaptic
    /// neuron) and the per-neuron adaptation potentials `θ`.
    ///
    /// Dynamic state (membranes, conductances, traces, refractory timers)
    /// starts settled, which matches the state of a live network between
    /// samples — the only points at which the workspace checkpoints.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SnnError::DimensionMismatch`] when the weight
    /// buffer or `θ` vector does not match the configured shape.
    pub fn from_parts(config: SnnConfig, weights: Vec<f32>, thetas: &[f32]) -> SnnResult<Self> {
        if thetas.len() != config.n_exc {
            return Err(crate::SnnError::DimensionMismatch {
                expected: config.n_exc,
                got: thetas.len(),
                what: "theta vector",
            });
        }
        let weights = WeightMatrix::from_rows(config.n_exc, config.n_input, weights, config.w_max)?;
        let mut exc = LifLayer::new(config.n_exc, config.exc_params, config.adapt);
        exc.thetas_mut().copy_from_slice(thetas);
        let inh = match &config.inhibition {
            Inhibition::InhibitoryLayer { params, .. } => {
                Some(LifLayer::new(config.n_exc, *params, None))
            }
            _ => None,
        };
        let traces = TraceSet::new(config.n_input, config.n_exc, config.traces);
        Ok(Snn {
            config,
            exc,
            inh,
            weights,
            traces,
        })
    }

    /// Number of input channels.
    pub fn n_input(&self) -> usize {
        self.config.n_input
    }

    /// Number of excitatory neurons.
    pub fn n_exc(&self) -> usize {
        self.config.n_exc
    }

    /// Delivers one presynaptic input spike on channel `k`: adds the
    /// corresponding weight column to every excitatory conductance and
    /// updates the pre trace.
    pub fn deliver_input_spike(&mut self, k: usize, ops: &mut OpCounts) {
        self.deliver_input_spikes(&[k as u32], ops);
    }

    /// Delivers one timestep's worth of presynaptic input spikes through
    /// the sparse event-driven kernel: only the channels listed in `spikes`
    /// are touched (one weight-row gather over the excitatory population),
    /// then each spiking channel's pre trace is bumped.
    ///
    /// State effects (conductances, traces, op counts) are bit-identical to
    /// calling [`Snn::deliver_input_spike`] once per listed channel; both
    /// the scalar [`crate::sim::run_sample`] loop and the batched
    /// `snn-runtime` engine go through this path.
    ///
    /// # Panics
    ///
    /// Panics if any channel index is out of range.
    pub fn deliver_input_spikes(&mut self, spikes: &[u32], ops: &mut OpCounts) {
        if spikes.is_empty() {
            return;
        }
        self.weights
            .gather_active_into(spikes, self.exc.exc_conductances_mut());
        for &k in spikes {
            self.traces.on_pre_spike(k as usize, ops);
        }
        ops.syn_events += (self.config.n_exc * spikes.len()) as u64;
    }

    /// Advances all populations by one timestep and routes competition.
    ///
    /// Order of events within a step:
    /// 1. excitatory layer integrates and fires,
    /// 2. excitatory spikes update post traces and trigger inhibition
    ///    (directly or through the inhibitory layer),
    /// 3. the inhibitory layer (if present) integrates and fires,
    ///    feeding back `all-but-source` inhibition.
    ///
    /// Returns the number of excitatory spikes this step; the spike flags
    /// remain readable via `self.exc.spiked()`.
    pub fn step(&mut self, dt_ms: f32, ops: &mut OpCounts) -> u32 {
        let exc_spikes = self.exc.step(dt_ms, ops);
        if exc_spikes > 0 {
            // Collect indices first: routing mutates `self.exc`.
            let spiked: Vec<usize> = self
                .exc
                .spiked()
                .iter()
                .enumerate()
                .filter_map(|(j, &s)| if s { Some(j) } else { None })
                .collect();
            for &j in &spiked {
                self.traces.on_post_spike(j, ops);
            }
            ops.kernel_launches += 1; // batched post-trace update
            match self.config.inhibition {
                Inhibition::DirectLateral { g_inh } => {
                    for &j in &spiked {
                        self.exc.inject_inh_all_but(j, g_inh, ops);
                    }
                    ops.kernel_launches += 1; // lateral inhibition scatter
                }
                Inhibition::InhibitoryLayer { w_exc_inh, .. } => {
                    let inh = self
                        .inh
                        .as_mut()
                        .expect("inhibitory layer exists for InhibitoryLayer wiring");
                    for &j in &spiked {
                        inh.inject_exc(j, w_exc_inh);
                        ops.syn_events += 1;
                    }
                    ops.kernel_launches += 1; // exc→inh scatter
                }
                Inhibition::None => {}
            }
        }
        // Inhibitory population dynamics run every step (their cost is the
        // point of the §III-B comparison), firing back into the excitatory
        // layer.
        if let Some(inh) = self.inh.as_mut() {
            let inh_spikes = inh.step(dt_ms, ops);
            if inh_spikes > 0 {
                if let Inhibition::InhibitoryLayer { w_inh_exc, .. } = self.config.inhibition {
                    let spiked: Vec<usize> = inh
                        .spiked()
                        .iter()
                        .enumerate()
                        .filter_map(|(i, &s)| if s { Some(i) } else { None })
                        .collect();
                    for i in spiked {
                        self.exc.inject_inh_all_but(i, w_inh_exc, ops);
                    }
                    ops.kernel_launches += 1; // inh→exc scatter
                }
            }
        }
        self.traces.decay(dt_ms, ops);
        exc_spikes
    }

    /// Settles dynamic state between samples (keeps weights and `θ`).
    pub fn settle(&mut self) {
        self.exc.settle();
        if let Some(inh) = self.inh.as_mut() {
            inh.settle();
        }
        self.traces.reset();
    }

    /// Applies per-row weight normalisation if the config enables it.
    pub fn normalize_weights(&mut self, ops: &mut OpCounts) {
        if let Some(target) = self.config.norm_target {
            self.weights.normalize_rows(target, ops);
        }
    }

    /// Actual resident memory of the model state in bytes: weights, neuron
    /// state, traces. This is the "actual run" quantity the paper's Fig. 5a
    /// validates the analytical model against.
    pub fn actual_memory_bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        let mut bytes = self.weights.len() * f;
        bytes += self.exc.len() * self.exc.state_vars() * f;
        if let Some(inh) = &self.inh {
            bytes += inh.len() * inh.state_vars() * f;
            // Fixed inter-population weights of the explicit architecture.
            bytes += (self.n_exc() + self.n_exc() * (self.n_exc() - 1)) * f;
        }
        bytes += (self.traces.x_pre().len() + self.traces.x_post().len()) * f;
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn config_validates() {
        assert!(SnnConfig::with_inhibitory_layer(784, 100)
            .validate()
            .is_ok());
        assert!(SnnConfig::direct_lateral(784, 100).validate().is_ok());
    }

    #[test]
    fn explicit_layer_network_has_inh_population() {
        let mut rng = seeded_rng(2);
        let net = Snn::new(SnnConfig::with_inhibitory_layer(16, 4), &mut rng);
        assert!(net.inh.is_some());
        assert_eq!(net.inh.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn direct_lateral_network_has_no_inh_population() {
        let mut rng = seeded_rng(2);
        let net = Snn::new(SnnConfig::direct_lateral(16, 4), &mut rng);
        assert!(net.inh.is_none());
    }

    #[test]
    fn weight_count_reflects_architecture() {
        let with_inh = SnnConfig::with_inhibitory_layer(784, 400);
        let lateral = SnnConfig::direct_lateral(784, 400);
        assert_eq!(
            with_inh.weight_count(),
            784 * 400 + 400 + 400 * 399,
            "plastic + one-to-one + all-but-one"
        );
        assert_eq!(lateral.weight_count(), 784 * 400 + 1);
        assert!(lateral.weight_count() < with_inh.weight_count());
    }

    #[test]
    fn neuron_param_count_reflects_architecture() {
        let with_inh = SnnConfig::with_inhibitory_layer(784, 400);
        let lateral = SnnConfig::direct_lateral(784, 400);
        assert!(lateral.neuron_param_count() < with_inh.neuron_param_count());
        assert_eq!(lateral.neuron_param_count(), 400 * 5);
        assert_eq!(with_inh.neuron_param_count(), 400 * 5 + 400 * 4);
    }

    #[test]
    fn input_spike_raises_conductance_everywhere() {
        let mut rng = seeded_rng(3);
        let mut net = Snn::new(SnnConfig::direct_lateral(4, 3), &mut rng);
        let mut ops = OpCounts::default();
        let v_before = net.exc.voltages().to_vec();
        net.deliver_input_spike(0, &mut ops);
        net.step(0.5, &mut ops);
        // At least one neuron's voltage should move up (weights are random
        // but non-negative, and at least one is > 0 with this seed).
        let moved = net
            .exc
            .voltages()
            .iter()
            .zip(&v_before)
            .any(|(&a, &b)| a > b);
        assert!(moved);
        assert_eq!(ops.syn_events, 3);
    }

    #[test]
    fn direct_lateral_inhibits_competitors() {
        let mut rng = seeded_rng(4);
        let mut cfg = SnnConfig::direct_lateral(2, 2);
        cfg.adapt = None;
        cfg.norm_target = None;
        let mut net = Snn::new(cfg, &mut rng);
        // Hand-craft weights: neuron 0 strongly driven, neuron 1 weakly.
        net.weights.set(0, 0, 1.0);
        net.weights.set(1, 0, 0.2);
        let mut ops = OpCounts::default();
        let mut fired0 = false;
        for _ in 0..400 {
            net.deliver_input_spike(0, &mut ops);
            net.step(0.5, &mut ops);
            if net.exc.spiked()[0] {
                fired0 = true;
                break;
            }
        }
        assert!(fired0, "strongly driven neuron must fire");
        // After neuron 0 fires, neuron 1 receives inhibitory conductance:
        // its voltage must dip below what pure excitation would give.
        let v1 = net.exc.voltages()[1];
        net.step(0.5, &mut ops);
        assert!(net.exc.voltages()[1] <= v1 + 1.0);
    }

    #[test]
    fn sparse_delivery_matches_per_spike_delivery_bitwise() {
        let mut rng = seeded_rng(40);
        let cfg = SnnConfig::direct_lateral(12, 5);
        let mut a = Snn::new(cfg, &mut rng);
        let mut b = a.clone();
        let spikes = [1u32, 4, 7, 10];
        let mut ops_a = OpCounts::default();
        let mut ops_b = OpCounts::default();
        for &k in &spikes {
            a.deliver_input_spike(k as usize, &mut ops_a);
        }
        b.deliver_input_spikes(&spikes, &mut ops_b);
        // Identical conductance evolution: step both and compare voltages
        // bit for bit over a few steps.
        for _ in 0..20 {
            a.step(0.5, &mut ops_a);
            b.step(0.5, &mut ops_b);
            let va: Vec<u32> = a.exc.voltages().iter().map(|v| v.to_bits()).collect();
            let vb: Vec<u32> = b.exc.voltages().iter().map(|v| v.to_bits()).collect();
            assert_eq!(va, vb);
        }
        assert_eq!(ops_a, ops_b, "op metering must not depend on the path");
        assert_eq!(a.traces.x_pre(), b.traces.x_pre());
    }

    #[test]
    fn from_parts_reproduces_learned_state() {
        let mut rng = seeded_rng(41);
        let mut net = Snn::new(SnnConfig::direct_lateral(12, 5), &mut rng);
        net.exc.thetas_mut()[2] = 3.5;
        let rebuilt = Snn::from_parts(
            net.config.clone(),
            net.weights.as_slice().to_vec(),
            net.exc.thetas(),
        )
        .unwrap();
        assert_eq!(rebuilt.weights, net.weights);
        assert_eq!(rebuilt.exc.thetas(), net.exc.thetas());
        // Identical state must simulate identically.
        let mut ops_a = OpCounts::default();
        let mut ops_b = OpCounts::default();
        let mut a = net.clone();
        let mut b = rebuilt;
        a.settle();
        for _ in 0..10 {
            a.deliver_input_spike(1, &mut ops_a);
            b.deliver_input_spike(1, &mut ops_b);
            a.step(0.5, &mut ops_a);
            b.step(0.5, &mut ops_b);
            let va: Vec<u32> = a.exc.voltages().iter().map(|v| v.to_bits()).collect();
            let vb: Vec<u32> = b.exc.voltages().iter().map(|v| v.to_bits()).collect();
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn from_parts_validates_dimensions() {
        let cfg = SnnConfig::direct_lateral(4, 3);
        assert!(Snn::from_parts(cfg.clone(), vec![0.0; 11], &[0.0; 3]).is_err());
        assert!(Snn::from_parts(cfg.clone(), vec![0.0; 12], &[0.0; 2]).is_err());
        assert!(Snn::from_parts(cfg, vec![0.0; 12], &[0.0; 3]).is_ok());
    }

    #[test]
    fn settle_preserves_weights() {
        let mut rng = seeded_rng(5);
        let mut net = Snn::new(SnnConfig::direct_lateral(8, 4), &mut rng);
        let w_before = net.weights.clone();
        let mut ops = OpCounts::default();
        net.deliver_input_spike(3, &mut ops);
        net.step(0.5, &mut ops);
        net.settle();
        assert_eq!(net.weights, w_before);
        assert!(net.traces.x_pre().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn actual_memory_direct_lateral_is_smaller() {
        let mut rng = seeded_rng(6);
        let a = Snn::new(SnnConfig::with_inhibitory_layer(784, 200), &mut rng);
        let b = Snn::new(SnnConfig::direct_lateral(784, 200), &mut rng);
        assert!(
            b.actual_memory_bytes() < a.actual_memory_bytes(),
            "direct lateral must save memory: {} vs {}",
            b.actual_memory_bytes(),
            a.actual_memory_bytes()
        );
    }

    #[test]
    fn normalize_respects_config() {
        let mut rng = seeded_rng(7);
        let mut cfg = SnnConfig::direct_lateral(10, 2);
        cfg.norm_target = Some(5.0);
        let mut net = Snn::new(cfg, &mut rng);
        let mut ops = OpCounts::default();
        net.normalize_weights(&mut ops);
        assert!((net.weights.row_sum(0) - 5.0).abs() < 1e-3);
    }
}
