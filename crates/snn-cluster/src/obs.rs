//! Router-side observability: one [`snn_obs::Registry`] per [`crate::Cluster`]
//! plus cached handles for every control-plane metric, so recording is
//! always a lock-free atomic op (handle lookup happens once, here).
//!
//! The registry is per-router, never process-global, for the same reason
//! `snn-serve`'s is per-manager: the test and experiment harnesses run a
//! router *and* its in-process shards in one process, and the
//! `cluster-metrics` fan-out must see each registry separately before
//! merging them itself.
//!
//! Metric names follow the `DESIGN.md` §10 scheme
//! (`<layer>.<subsystem>.<metric>[_unit]`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use snn_obs::{Counter, Gauge, Histogram, Registry};

/// Process-wide instance sequence: each router gets a distinct rid
/// prefix (`c0`, `c1`, …), disjoint from the `s<n>` prefixes shards
/// mint, so a rid names its minting tier unambiguously.
static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Cached metric handles of one cluster router.
#[derive(Debug)]
pub(crate) struct ClusterObs {
    pub(crate) registry: Arc<Registry>,
    /// `cluster.relays` — request lines forwarded to a shard (any verb).
    pub(crate) relays: Arc<Counter>,
    /// `cluster.relay_us` — wall time of one relayed round trip,
    /// including routing, budget enforcement, and the shard's work.
    pub(crate) relay_us: Arc<Histogram>,
    /// `cluster.probe.ok` / `.fail` — health-probe outcomes.
    pub(crate) probe_ok: Arc<Counter>,
    /// See [`ClusterObs::probe_ok`].
    pub(crate) probe_fail: Arc<Counter>,
    /// `cluster.shard_down` — shards declared dead after
    /// [`crate::router`]'s strike limit of failed probes.
    pub(crate) shard_down: Arc<Counter>,
    /// `cluster.rebalances` — ring-driven rebalance passes run.
    pub(crate) rebalances: Arc<Counter>,
    /// `cluster.sessions_moved` — sessions live-migrated by rebalances.
    pub(crate) sessions_moved: Arc<Counter>,
    /// `cluster.migrations` / `.migration_fail` — live migration
    /// outcomes (any trigger: rebalance, drain, or the ops hook).
    pub(crate) migrations: Arc<Counter>,
    /// See [`ClusterObs::migrations`].
    pub(crate) migration_fail: Arc<Counter>,
    /// `cluster.migrate_us` — wall time of one completed migration
    /// (checkpoint → restore → close).
    pub(crate) migrate_us: Arc<Histogram>,
    /// `cluster.migrate_bytes` — decoded snapshot payload per migration.
    pub(crate) migrate_bytes: Arc<Histogram>,
    /// `cluster.scrape_us` — per-shard wall time of `stats`/`metrics`
    /// fan-out scrapes (each bounded by the scrape deadline).
    pub(crate) scrape_us: Arc<Histogram>,
    /// `cluster.scrape_fail` — fan-out scrapes of a live shard that
    /// timed out or answered garbage. Each failure also ticks a dynamic
    /// per-shard counter (`cluster.scrape_fail.s<id>`) and a journal
    /// event naming the shard, so the culprit is never anonymous.
    pub(crate) scrape_fail: Arc<Counter>,
    /// `cluster.subscribe.drops` — `push` frames dropped because a
    /// router subscriber drained slower than the sampling interval (the
    /// stream never blocks the sampler; subscribers detect the loss by
    /// `seq` gaps).
    pub(crate) subscribe_drops: Arc<Counter>,
    /// `cluster.shadows_pushed` / `.shadow_push_fail` — shadow-replica
    /// pushes by the shadower sweep (checkpoint on the home shard →
    /// `shadow` store on the ring successor).
    pub(crate) shadows_pushed: Arc<Counter>,
    /// See [`ClusterObs::shadows_pushed`].
    pub(crate) shadow_push_fail: Arc<Counter>,
    /// `cluster.shadow_bytes` — decoded snapshot payload per shadow push.
    pub(crate) shadow_bytes: Arc<Histogram>,
    /// `cluster.shadow_lag` — worst per-session gap, in samples, between
    /// what a session has ingested and what its shadow replica holds
    /// (refreshed by each shadower sweep; this is exactly what a
    /// failover at that instant would report as `replay_gap`).
    pub(crate) shadow_lag: Arc<Gauge>,
    /// `cluster.failovers` / `.failover_fail` — restore-from-shadow
    /// outcomes when a shard is declared dead. A failed failover falls
    /// back to the fail-fast drop the cluster always did.
    pub(crate) failovers: Arc<Counter>,
    /// See [`ClusterObs::failovers`].
    pub(crate) failover_fail: Arc<Counter>,
    /// `cluster.failover_us` — wall time of one completed failover
    /// (shadow fetch → restore → route re-point).
    pub(crate) failover_us: Arc<Histogram>,
    /// `cluster.failover_bytes` — decoded snapshot payload per failover.
    pub(crate) failover_bytes: Arc<Histogram>,
    /// `cluster.wire.p2.tags_in_flight` — request frames the router's
    /// proto 2 demux has admitted but not yet answered (flow-control
    /// window occupancy, capped by the mux inflight limit).
    pub(crate) tags_in_flight: Arc<Gauge>,
    /// `cluster.wire.p2.writer_queue` — reply/push frames queued behind
    /// the router's shared proto 2 writer thread.
    pub(crate) writer_queue: Arc<Gauge>,
    /// Subscriber sequence: each router subscription stream gets a
    /// distinct per-subscriber drop counter
    /// (`cluster.subscribe.drops.sub<N>`), so one slow consumer is
    /// attributable instead of anonymous in the aggregate.
    sub_seq: AtomicU64,
    /// `cluster.wire.p{1,2}.rx_bytes` / `.tx_bytes` — client-facing
    /// bytes on the wire per protocol generation (proto 1 counts line
    /// bytes, proto 2 counts whole frames).
    pub(crate) wire: WireObs,
    /// `cluster.relay.p{1,2}.rx_bytes` / `.tx_bytes` — shard-facing
    /// bytes moved by the relay path, per negotiated backend protocol.
    /// This pair is what the proto 2 rollout's payload-reduction claim
    /// is measured on.
    pub(crate) relay_wire: WireObs,
}

/// Shared handles for one per-protocol byte-counter pair, cloned into
/// every [`crate::backend::Backend`] so the relay path can count bytes
/// where they actually move.
#[derive(Debug, Clone)]
pub(crate) struct WireObs {
    rx: [Arc<Counter>; 2],
    tx: [Arc<Counter>; 2],
    /// `<prefix>.p{1,2}.payload_bytes` — bytes the `data=` payloads
    /// themselves occupied on the wire (hex characters under proto 1,
    /// raw bytes under proto 2). Only the relay family tracks this; it
    /// is the denominator-free form of the framing rollout's "proto 2
    /// moves ≥2× fewer payload bytes" claim.
    payload: Option<[Arc<Counter>; 2]>,
}

impl WireObs {
    /// Pre-creates `<prefix>.p{1,2}.rx_bytes` / `.tx_bytes`, plus
    /// `.payload_bytes` when the caller tracks payload economics.
    fn new(registry: &Registry, prefix: &str, with_payload: bool) -> Self {
        WireObs {
            rx: [1u32, 2].map(|p| registry.counter(&format!("{prefix}.p{p}.rx_bytes"))),
            tx: [1u32, 2].map(|p| registry.counter(&format!("{prefix}.p{p}.tx_bytes"))),
            payload: with_payload.then(|| {
                [1u32, 2].map(|p| registry.counter(&format!("{prefix}.p{p}.payload_bytes")))
            }),
        }
    }

    /// Counts one exchange's bytes under its protocol generation
    /// (everything at or above proto 2 shares the binary-framing
    /// bucket).
    pub(crate) fn count(&self, proto: u32, rx_bytes: u64, tx_bytes: u64) {
        let i = usize::from(proto >= 2);
        self.rx[i].add(rx_bytes);
        self.tx[i].add(tx_bytes);
    }

    /// Counts one exchange's payload-on-the-wire bytes (no-op for
    /// families created without payload tracking).
    pub(crate) fn count_payload(&self, proto: u32, payload_bytes: u64) {
        if let Some(payload) = &self.payload {
            payload[usize::from(proto >= 2)].add(payload_bytes);
        }
    }
}

impl ClusterObs {
    /// A fresh registry with every control-plane handle pre-created, so
    /// a scrape of an idle router already shows the full schema.
    pub(crate) fn new() -> Self {
        let instance = format!("c{}", INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed));
        let registry = Arc::new(Registry::new(&instance));
        ClusterObs {
            relays: registry.counter("cluster.relays"),
            relay_us: registry.histogram("cluster.relay_us"),
            probe_ok: registry.counter("cluster.probe.ok"),
            probe_fail: registry.counter("cluster.probe.fail"),
            shard_down: registry.counter("cluster.shard_down"),
            rebalances: registry.counter("cluster.rebalances"),
            sessions_moved: registry.counter("cluster.sessions_moved"),
            migrations: registry.counter("cluster.migrations"),
            migration_fail: registry.counter("cluster.migration_fail"),
            migrate_us: registry.histogram("cluster.migrate_us"),
            migrate_bytes: registry.histogram("cluster.migrate_bytes"),
            scrape_us: registry.histogram("cluster.scrape_us"),
            scrape_fail: registry.counter("cluster.scrape_fail"),
            subscribe_drops: registry.counter("cluster.subscribe.drops"),
            shadows_pushed: registry.counter("cluster.shadows_pushed"),
            shadow_push_fail: registry.counter("cluster.shadow_push_fail"),
            shadow_bytes: registry.histogram("cluster.shadow_bytes"),
            shadow_lag: registry.gauge("cluster.shadow_lag"),
            failovers: registry.counter("cluster.failovers"),
            failover_fail: registry.counter("cluster.failover_fail"),
            failover_us: registry.histogram("cluster.failover_us"),
            failover_bytes: registry.histogram("cluster.failover_bytes"),
            tags_in_flight: registry.gauge("cluster.wire.p2.tags_in_flight"),
            writer_queue: registry.gauge("cluster.wire.p2.writer_queue"),
            sub_seq: AtomicU64::new(0),
            wire: WireObs::new(&registry, "cluster.wire", false),
            relay_wire: WireObs::new(&registry, "cluster.relay", true),
            registry,
        }
    }

    /// Registers one subscription stream: its sequence number and its
    /// dedicated drop counter (`cluster.subscribe.drops.sub<N>`). The
    /// aggregate `cluster.subscribe.drops` keeps counting every drop;
    /// the per-subscriber counter pins which stream lost frames.
    pub(crate) fn subscriber(&self) -> (u64, Arc<Counter>) {
        let seq = self.sub_seq.fetch_add(1, Ordering::Relaxed);
        (seq, self.sub_drop_counter(seq))
    }

    /// The drop counter of subscription stream `seq`.
    pub(crate) fn sub_drop_counter(&self, seq: u64) -> Arc<Counter> {
        self.registry
            .counter(&format!("cluster.subscribe.drops.sub{seq}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routers_get_distinct_cluster_rid_prefixes() {
        let a = ClusterObs::new();
        let b = ClusterObs::new();
        assert_ne!(a.registry.instance(), b.registry.instance());
        assert!(a.registry.instance().starts_with('c'));
        assert!(a.registry.mint_rid().starts_with("c"));
    }

    #[test]
    fn schema_is_fixed_before_any_traffic() {
        let obs = ClusterObs::new();
        let snap = obs.registry.snapshot();
        for name in [
            "cluster.relays",
            "cluster.probe.ok",
            "cluster.probe.fail",
            "cluster.shard_down",
            "cluster.rebalances",
            "cluster.sessions_moved",
            "cluster.migrations",
            "cluster.migration_fail",
            "cluster.scrape_fail",
            "cluster.subscribe.drops",
            "cluster.shadows_pushed",
            "cluster.shadow_push_fail",
            "cluster.failovers",
            "cluster.failover_fail",
            "cluster.wire.p1.rx_bytes",
            "cluster.wire.p1.tx_bytes",
            "cluster.wire.p2.rx_bytes",
            "cluster.wire.p2.tx_bytes",
            "cluster.relay.p1.rx_bytes",
            "cluster.relay.p1.tx_bytes",
            "cluster.relay.p2.rx_bytes",
            "cluster.relay.p2.tx_bytes",
            "cluster.relay.p1.payload_bytes",
            "cluster.relay.p2.payload_bytes",
        ] {
            assert!(snap.counters.contains_key(name), "missing {name}");
        }
        for name in [
            "cluster.relay_us",
            "cluster.migrate_us",
            "cluster.migrate_bytes",
            "cluster.scrape_us",
            "cluster.shadow_bytes",
            "cluster.failover_us",
            "cluster.failover_bytes",
        ] {
            assert!(snap.histograms.contains_key(name), "missing {name}");
        }
        for name in [
            "cluster.shadow_lag",
            "cluster.wire.p2.tags_in_flight",
            "cluster.wire.p2.writer_queue",
        ] {
            assert!(snap.gauges.contains_key(name), "missing {name}");
        }
    }

    #[test]
    fn subscribers_get_distinct_drop_counters() {
        let obs = ClusterObs::new();
        let (a, drops_a) = obs.subscriber();
        let (b, drops_b) = obs.subscriber();
        assert_ne!(a, b);
        drops_a.inc();
        drops_a.inc();
        drops_b.inc();
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counters[&format!("cluster.subscribe.drops.sub{a}")], 2);
        assert_eq!(snap.counters[&format!("cluster.subscribe.drops.sub{b}")], 1);
    }
}
