//! Self-healing primitives: shadow replication and restore-from-shadow
//! failover.
//!
//! ## Shadowing
//!
//! The router's shadower sweep periodically replicates each session's
//! checkpoint to a *different* shard than the one serving it — the
//! session's ring successor ([`crate::ring::HashRing::successor`]). The
//! push reuses the migration plumbing: `checkpoint` on the home shard,
//! then the PR 7 `shadow` verb on the holder, which parks the blob in a
//! bounded store without opening a live session.
//!
//! The caller holds the session's route lock for the whole push, so no
//! client request can interleave: the checkpoint is taken at *exactly*
//! the sample count the router has observed on relayed replies
//! (`Route::samples_seen`), which is why the push needs no snapshot
//! decode — the sequence number it stamps on the wire is provably the
//! blob's `samples_seen`, and the holder re-validates that invariant
//! before accepting ([`snn_serve::SessionManager::store_shadow`]).
//!
//! ## Failover
//!
//! When the health loop declares a shard dead, each affected session is
//! restored from its shadow onto a live shard — under the same route
//! lock, so the first post-failover request already lands on the new
//! copy. The failover replays nothing it cannot prove: the holder's
//! sequence must equal the one the router parked
//! ([`ClusterError::ShadowStale`] otherwise), and on any failure the
//! session falls back to the fail-fast drop the cluster always did.
//! Samples the client ingested *after* the shadowed checkpoint are lost
//! by design (their shard died holding them) and are reported to the
//! client as `replay_gap=` on the next relayed reply — never silently
//! dropped.
//!
//! Every forwarded line carries the operation's `rid` as its final
//! field, so the home shard's `serve.exec.checkpoint` span, the holder's
//! store, the target's `serve.exec.restore` span and the router's
//! `cluster.shadow` / `cluster.failover` spans all stitch together by
//! request id in a `cluster-metrics` scrape.

use std::time::Instant;

use snn_serve::protocol::{parse_response, Response};

use crate::backend::Backend;
use crate::migrate::fetch_checkpoint_hex;
use crate::obs::ClusterObs;
use crate::ClusterError;

/// Pushes one shadow of session `id` (served by `home`, at exactly
/// `seq` samples) onto `holder`. Caller holds the route lock, which is
/// what makes `seq` provably the checkpoint's `samples_seen`.
pub(crate) fn shadow_locked(
    id: &str,
    seq: u64,
    home: &Backend,
    holder: &Backend,
    rid: &str,
    obs: &ClusterObs,
) -> Result<(), ClusterError> {
    let t0 = Instant::now();
    match shadow_inner(id, seq, home, holder, rid) {
        Ok(bytes) => {
            let dur = t0.elapsed();
            obs.shadows_pushed.inc();
            obs.shadow_bytes.record(bytes);
            obs.registry.span(
                "cluster.shadow",
                rid,
                dur,
                &[
                    ("id", id.to_string()),
                    ("home", home.id.to_string()),
                    ("holder", holder.id.to_string()),
                    ("seq", seq.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            );
            Ok(())
        }
        Err(e) => {
            obs.shadow_push_fail.inc();
            Err(e)
        }
    }
}

/// The push itself, returning the decoded snapshot size in bytes.
fn shadow_inner(
    id: &str,
    seq: u64,
    home: &Backend,
    holder: &Backend,
    rid: &str,
) -> Result<u64, ClusterError> {
    let snapshot_hex = fetch_checkpoint_hex(id, home, rid)?;
    let bytes = (snapshot_hex.len() / 2) as u64;
    // Storing a shadow is idempotent at equal sequence, so a stale
    // pooled connection may safely retry.
    let line = format!("shadow id={id} seq={seq} data={snapshot_hex} rid={rid}");
    let reply = holder.call_raw(&line, true)?;
    match parse_response(&reply) {
        Ok(Response::Ok(_)) => Ok(bytes),
        Ok(Response::Err { code, msg }) => Err(ClusterError::ShadowStale {
            id: id.to_string(),
            detail: format!("holder shard {} refused shadow [{code}]: {msg}", holder.id),
        }),
        Err(e) => Err(ClusterError::Backend {
            shard: holder.id,
            detail: format!("holder answered garbage to shadow store: {e}"),
        }),
    }
}

/// Restores session `id` from its shadow on `holder` onto the live
/// shard `target`. Caller holds the route lock (its shard is dead, so
/// no request can be in flight, but the lock still fences concurrent
/// failover/reconcile passes). `expect_seq` is the sequence the router
/// parked last; a holder answering any other sequence — or no shadow at
/// all — fails the session fast rather than resuming unprovable state.
///
/// Returns the restored sequence on success.
pub(crate) fn failover_locked(
    id: &str,
    expect_seq: u64,
    holder: &Backend,
    target: &Backend,
    rid: &str,
    obs: &ClusterObs,
) -> Result<u64, ClusterError> {
    let t0 = Instant::now();
    match failover_inner(id, expect_seq, holder, target, rid) {
        Ok(bytes) => {
            let dur = t0.elapsed();
            obs.failovers.inc();
            obs.failover_us.record_duration(dur);
            obs.failover_bytes.record(bytes);
            obs.registry.span(
                "cluster.failover",
                rid,
                dur,
                &[
                    ("id", id.to_string()),
                    ("holder", holder.id.to_string()),
                    ("to", target.id.to_string()),
                    ("seq", expect_seq.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            );
            Ok(expect_seq)
        }
        Err(e) => {
            obs.failover_fail.inc();
            Err(e)
        }
    }
}

/// The restore itself, returning the decoded snapshot size in bytes.
fn failover_inner(
    id: &str,
    expect_seq: u64,
    holder: &Backend,
    target: &Backend,
    rid: &str,
) -> Result<u64, ClusterError> {
    // Fetch the shadow (idempotent: a pure read).
    let reply = holder.call_raw(&format!("shadow id={id} rid={rid}"), true)?;
    let resp = match parse_response(&reply) {
        Ok(resp @ Response::Ok(_)) => resp,
        Ok(Response::Err { code, msg }) => {
            return Err(ClusterError::ShadowStale {
                id: id.to_string(),
                detail: format!("holder shard {} has no shadow [{code}]: {msg}", holder.id),
            })
        }
        Err(e) => {
            return Err(ClusterError::Backend {
                shard: holder.id,
                detail: format!("holder answered garbage to shadow fetch: {e}"),
            })
        }
    };
    let seq = resp
        .get("seq")
        .and_then(|v| v.parse::<u64>().ok())
        .ok_or_else(|| ClusterError::Backend {
            shard: holder.id,
            detail: "shadow fetch reply carries no seq".to_string(),
        })?;
    if seq != expect_seq {
        return Err(ClusterError::ShadowStale {
            id: id.to_string(),
            detail: format!(
                "holder shard {} is at seq {seq}, expected {expect_seq}",
                holder.id
            ),
        });
    }
    let snapshot_hex = resp.get("data").ok_or_else(|| ClusterError::Backend {
        shard: holder.id,
        detail: "shadow fetch reply carries no data".to_string(),
    })?;
    let bytes = (snapshot_hex.len() / 2) as u64;

    // Restore on the target — the same non-idempotent discipline as a
    // migration's restore leg, including the best-effort close that
    // undoes a possibly-applied restore behind a lost reply.
    let restore_line = format!("restore id={id} data={snapshot_hex} rid={rid}");
    let reply = match target.call_raw(&restore_line, false) {
        Ok(reply) => reply,
        Err(e) => {
            let _ = target.call_raw(&format!("close id={id} rid={rid}"), false);
            return Err(e);
        }
    };
    match parse_response(&reply) {
        Ok(Response::Ok(_)) => Ok(bytes),
        Ok(Response::Err { code, msg }) => Err(ClusterError::Migration {
            id: id.to_string(),
            detail: format!("target shard {} refused restore [{code}]: {msg}", target.id),
        }),
        Err(e) => Err(ClusterError::Migration {
            id: id.to_string(),
            detail: format!("target shard {} answered garbage: {e}", target.id),
        }),
    }
}
