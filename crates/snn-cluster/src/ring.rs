//! The consistent-hash ring that places session ids onto shards.
//!
//! Each shard contributes `replicas` virtual points to a ring of 64-bit
//! hash values; a session id maps to the shard owning the first point at
//! or after the id's hash (wrapping). The two properties the cluster
//! relies on — pinned by this module's tests — are:
//!
//! * **Uniformity**: with enough virtual points, session load spreads
//!   evenly across shards.
//! * **Minimal reshuffle**: adding a shard only moves keys *onto* the new
//!   shard (roughly a fair share), and removing one only moves the keys
//!   it owned — every other placement is untouched, which is what makes
//!   join/leave rebalancing a bounded number of live migrations.

/// Identifier of one backend shard within a cluster.
pub type ShardId = u64;

/// FNV-1a over `bytes`, finished with a splitmix64 avalanche so short
/// keys (session ids, shard labels) still spread over the whole ring.
fn point_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring with virtual nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    replicas: usize,
    /// `(point, shard)` pairs sorted by point.
    points: Vec<(u64, ShardId)>,
}

impl HashRing {
    /// Creates an empty ring where every shard contributes `replicas`
    /// virtual points (more points → smoother balance; 64–128 is plenty
    /// for a handful of shards).
    pub fn new(replicas: usize) -> Self {
        HashRing {
            replicas: replicas.max(1),
            points: Vec::new(),
        }
    }

    /// Adds a shard's virtual points. Adding a present shard is a no-op.
    pub fn add(&mut self, shard: ShardId) {
        if self.contains(shard) {
            return;
        }
        for replica in 0..self.replicas {
            let key = format!("shard:{shard}:vnode:{replica}");
            self.points.push((point_hash(key.as_bytes()), shard));
        }
        self.points.sort_unstable();
    }

    /// Removes a shard's virtual points. Removing an absent shard is a
    /// no-op.
    pub fn remove(&mut self, shard: ShardId) {
        self.points.retain(|&(_, s)| s != shard);
    }

    /// Whether the shard is on the ring.
    pub fn contains(&self, shard: ShardId) -> bool {
        self.points.iter().any(|&(_, s)| s == shard)
    }

    /// The shard owning `key`, or `None` on an empty ring.
    pub fn shard_for(&self, key: &str) -> Option<ShardId> {
        if self.points.is_empty() {
            return None;
        }
        let h = point_hash(key.as_bytes());
        let idx = self
            .points
            .partition_point(|&(point, _)| point < h)
            // Wrap past the highest point back to the first.
            % self.points.len();
        Some(self.points[idx].1)
    }

    /// The ring *successor* of `key`: the first shard, walking the ring
    /// forward (wrapping) from the point that owns `key`, that is a
    /// **different** shard than the owner. This is where a session's
    /// shadow checkpoint lives — deterministic for a fixed membership,
    /// never the home shard, and (like ownership itself) minimally
    /// re-resolved when shards join or leave. `None` when the ring holds
    /// fewer than two distinct shards.
    pub fn successor(&self, key: &str) -> Option<ShardId> {
        if self.points.is_empty() {
            return None;
        }
        let h = point_hash(key.as_bytes());
        let start = self.points.partition_point(|&(point, _)| point < h) % self.points.len();
        let owner = self.points[start].1;
        for step in 1..self.points.len() {
            let (_, shard) = self.points[(start + step) % self.points.len()];
            if shard != owner {
                return Some(shard);
            }
        }
        None
    }

    /// The distinct shards on the ring, ascending.
    pub fn shards(&self) -> Vec<ShardId> {
        let mut ids: Vec<ShardId> = self.points.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("session-{i}")).collect()
    }

    fn placements(ring: &HashRing, keys: &[String]) -> HashMap<String, ShardId> {
        keys.iter()
            .map(|k| (k.clone(), ring.shard_for(k).expect("non-empty ring")))
            .collect()
    }

    #[test]
    fn empty_ring_places_nothing() {
        let ring = HashRing::new(64);
        assert!(ring.is_empty());
        assert_eq!(ring.shard_for("anything"), None);
        assert!(ring.shards().is_empty());
    }

    #[test]
    fn placement_is_deterministic() {
        let mut a = HashRing::new(64);
        let mut b = HashRing::new(64);
        for s in 0..4 {
            a.add(s);
            b.add(s);
        }
        for k in keys(200) {
            assert_eq!(a.shard_for(&k), b.shard_for(&k));
        }
    }

    #[test]
    fn load_spreads_roughly_uniformly() {
        let mut ring = HashRing::new(128);
        for s in 0..4 {
            ring.add(s);
        }
        let mut counts: HashMap<ShardId, usize> = HashMap::new();
        let keys = keys(2000);
        for k in &keys {
            *counts.entry(ring.shard_for(k).unwrap()).or_default() += 1;
        }
        for s in 0..4 {
            let share = counts.get(&s).copied().unwrap_or(0) as f64 / keys.len() as f64;
            assert!(
                (0.10..=0.45).contains(&share),
                "shard {s} owns {share:.2} of keys — too far from the 0.25 fair share"
            );
        }
    }

    #[test]
    fn join_moves_only_a_fair_share_and_only_onto_the_new_shard() {
        let mut ring = HashRing::new(128);
        for s in 0..3 {
            ring.add(s);
        }
        let keys = keys(1500);
        let before = placements(&ring, &keys);
        ring.add(3);
        let after = placements(&ring, &keys);
        let mut moved = 0usize;
        for k in &keys {
            if before[k] != after[k] {
                moved += 1;
                assert_eq!(
                    after[k], 3,
                    "a key that moved on join must land on the joining shard"
                );
            }
        }
        let fair = keys.len() / 4;
        assert!(moved > 0, "the new shard must take some keys");
        assert!(
            moved <= fair * 2,
            "join moved {moved} keys; expected about the fair share {fair}"
        );
    }

    #[test]
    fn leave_moves_only_the_departing_shards_keys() {
        let mut ring = HashRing::new(128);
        for s in 0..4 {
            ring.add(s);
        }
        let keys = keys(1500);
        let before = placements(&ring, &keys);
        ring.remove(2);
        assert!(!ring.contains(2));
        let after = placements(&ring, &keys);
        for k in &keys {
            if before[k] != 2 {
                assert_eq!(before[k], after[k], "keys off the departing shard stay put");
            } else {
                assert_ne!(after[k], 2, "orphaned keys must be re-homed");
            }
        }
    }

    #[test]
    fn successor_is_deterministic_and_never_the_home_shard() {
        let mut ring = HashRing::new(64);
        for s in 0..4 {
            ring.add(s);
        }
        let clone = ring.clone();
        for k in keys(500) {
            let home = ring.shard_for(&k).unwrap();
            let succ = ring.successor(&k).expect("4-shard ring has successors");
            assert_ne!(succ, home, "shadow target must differ from home for {k}");
            assert_eq!(ring.successor(&k), clone.successor(&k), "deterministic");
        }
    }

    #[test]
    fn successor_needs_two_distinct_shards() {
        let mut ring = HashRing::new(64);
        assert_eq!(ring.successor("k"), None, "empty ring");
        ring.add(1);
        assert_eq!(ring.successor("k"), None, "single shard has no successor");
        ring.add(2);
        assert!(ring.successor("k").is_some());
    }

    #[test]
    fn successor_re_resolves_minimally_on_join_and_leave() {
        let mut ring = HashRing::new(128);
        for s in 0..3 {
            ring.add(s);
        }
        let keys = keys(1500);
        let before: HashMap<&String, ShardId> = keys
            .iter()
            .map(|k| (k, ring.successor(k).unwrap()))
            .collect();
        // Join: a successor only changes when the new shard inserts a
        // point between the key's owner run and its old successor — i.e.
        // every changed successor now names the joining shard. Some keys
        // also change because their *owner* changed; skip those (their
        // shadow moves with the session anyway).
        let owners_before: HashMap<&String, ShardId> = keys
            .iter()
            .map(|k| (k, ring.shard_for(k).unwrap()))
            .collect();
        ring.add(3);
        let mut moved = 0usize;
        for k in &keys {
            if ring.shard_for(k).unwrap() != owners_before[k] {
                continue;
            }
            let now = ring.successor(k).unwrap();
            if now != before[k] {
                moved += 1;
                assert_eq!(now, 3, "a re-resolved shadow must target the joiner");
            }
        }
        assert!(
            moved <= keys.len() / 2,
            "join re-resolved {moved} of {} shadows — not minimal",
            keys.len()
        );
        // Leave: only keys whose shadow sat on the departing shard (or
        // whose owner changed) re-resolve.
        let owners_mid: HashMap<&String, ShardId> = keys
            .iter()
            .map(|k| (k, ring.shard_for(k).unwrap()))
            .collect();
        let mid: HashMap<&String, ShardId> = keys
            .iter()
            .map(|k| (k, ring.successor(k).unwrap()))
            .collect();
        ring.remove(2);
        for k in &keys {
            if ring.shard_for(k).unwrap() != owners_mid[k] {
                continue;
            }
            let now = ring.successor(k).unwrap();
            if mid[k] != 2 {
                assert_eq!(now, mid[k], "shadows off the departing shard stay put");
            } else {
                assert_ne!(now, 2, "orphaned shadows must re-home");
            }
        }
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = HashRing::new(16);
        ring.add(7);
        let points = ring.shards();
        ring.add(7);
        assert_eq!(ring.shards(), points, "double add is a no-op");
        ring.remove(9);
        assert_eq!(ring.shards(), points, "removing an absent shard is a no-op");
    }
}
