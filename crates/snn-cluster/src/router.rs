//! The front-tier router: a thread-per-connection TCP server speaking
//! the `snn-serve` line protocol to clients and forwarding raw request
//! lines to the backend shard that owns each session.
//!
//! ## Routing rules
//!
//! * `open`/`restore` place the session via the consistent-hash ring
//!   ([`crate::ring::HashRing`]), subject to the cluster-wide session
//!   cap; the session table then pins the placement (migrations update
//!   it, the ring only decides *new* placements).
//! * Session verbs forward to the pinned shard. Requests for a session
//!   on a dead shard fail fast with `err code=shard-down` (and release
//!   the id — the shard took the state with it).
//! * `hello`/`ping`/`stats`/`cluster-stats`/`metrics`/`cluster-metrics`
//!   are answered by the router itself; `stats` aggregates the shards
//!   into the exact field set `snn-serve` emits, so any protocol client
//!   works unchanged against a cluster. `metrics` exposes the router's
//!   own registry, `cluster-metrics` scrapes and merges every live
//!   shard's exposition (see `DESIGN.md` §10).
//! * Relayed lines carry a request id as their **final** field
//!   (`… rid=c0-17`): the client's if it sent one, a minted one
//!   otherwise. Shards attribute their spans to it, so one id follows a
//!   request across tiers.
//!
//! ## Locking discipline
//!
//! Two levels: the cluster table (`Inner`) and one mutex per session
//! route (`Slot`). The table lock is never held while acquiring a route
//! lock or doing network I/O; route locks are held across the forwarded
//! round trip (serialising a *single* session's requests — the backend
//! does that anyway) and may briefly take the table lock. This order is
//! what lets a migration atomically re-point a session mid-stream.

use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snn_obs::{valid_rid, JournalSnapshot, Snapshot, TraceTree};
use snn_serve::protocol::{
    self, extract_rid, format_response, hex_decode, hex_encode, parse_response, Response,
    MAX_LINE_BYTES, PROTO_VERSION,
};
use snn_serve::{run_mux, MuxHost, ServerConfig, PROTO_V2};

use crate::backend::Backend;
use crate::heal::{failover_locked, shadow_locked};
use crate::migrate::migrate_locked;
use crate::obs::ClusterObs;
use crate::ring::{HashRing, ShardId};
use crate::ClusterError;

/// Admission and health knobs of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterLimits {
    /// Cluster-wide cap on concurrently routed sessions.
    pub max_sessions: usize,
    /// Virtual points per shard on the hash ring.
    pub replicas: usize,
    /// How often the health thread pings every shard.
    pub health_interval: Duration,
    /// Consecutive failed probes before a shard is declared dead.
    /// Declaring death destroys (or fails over) every session routed to
    /// the shard, so one transient probe failure (full accept backlog,
    /// ephemeral connect error) must not be enough.
    pub probes_to_kill: u32,
    /// How often the shadower sweep replicates each session's
    /// checkpoint to its ring-successor shard. `None` (the default)
    /// disables shadowing — a dead shard then fails its sessions fast,
    /// exactly as before PR 7. `Some(_)` additionally arms
    /// restore-from-shadow failover.
    pub shadow_interval: Option<Duration>,
    /// Bound on every data-plane read/write to a shard (`None` blocks
    /// forever). Health probes use their own short deadline regardless,
    /// so a stalled shard can never freeze failure detection.
    pub io_timeout: Option<Duration>,
    /// Per-shard deadline on the `stats`/`metrics` fan-out scrapes
    /// (`cluster-stats`, `cluster-metrics`). Scrapes run one thread per
    /// shard, so one stalled shard costs a scrape at most this long —
    /// never the much larger data-plane `io_timeout`.
    pub scrape_timeout: Duration,
    /// Highest protocol generation the router accepts from clients
    /// ([`PROTO_V2`] by default; pin to [`PROTO_VERSION`] to refuse the
    /// binary-framing upgrade at the front door).
    pub max_proto: u32,
    /// Highest protocol generation the router offers shards. Each shard
    /// negotiates independently at attach time and falls back to
    /// proto 1 on `proto-mismatch`, so a mixed cluster keeps serving.
    pub backend_max_proto: u32,
}

impl Default for ClusterLimits {
    fn default() -> Self {
        ClusterLimits {
            max_sessions: 256,
            replicas: 64,
            health_interval: Duration::from_millis(500),
            probes_to_kill: 3,
            shadow_interval: None,
            io_timeout: Some(Duration::from_secs(30)),
            scrape_timeout: Duration::from_secs(2),
            max_proto: PROTO_V2,
            backend_max_proto: PROTO_V2,
        }
    }
}

/// Everything configurable about a cluster router.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Admission and health knobs.
    pub limits: ClusterLimits,
}

/// One shard's slice of [`ClusterStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// The shard id.
    pub id: ShardId,
    /// The shard's address.
    pub addr: SocketAddr,
    /// Whether the health checker currently considers the shard alive.
    pub alive: bool,
    /// Sessions open on the shard.
    pub sessions: usize,
    /// Jobs queued on the shard right now.
    pub queued_jobs: usize,
    /// Stream samples the shard has ingested.
    pub total_samples: u64,
    /// Modelled joules across every session the shard has hosted.
    pub total_j: f64,
    /// Whole seconds the shard's server has been up, as reported by its
    /// `stats` reply (zero for dead shards or pre-uptime servers).
    pub uptime_s: u64,
    /// Wall time of the `stats` scrape that produced this row, in
    /// microseconds (bounded by [`ClusterLimits::scrape_timeout`]; zero
    /// for a shard already marked dead, which is not scraped).
    pub scrape_us: u64,
}

/// Aggregated cluster counters (`cluster-stats` over the wire).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-shard breakdown, ascending by shard id.
    pub shards: Vec<ShardStats>,
    /// Sessions the router is currently routing.
    pub sessions: usize,
    /// Sessions evicted (over budget or by a shard's idle sweep) whose
    /// checkpoints are claimable from disk.
    pub evicted_sessions: usize,
    /// Jobs queued across all live shards.
    pub queued_jobs: usize,
    /// Stream samples ingested across all live shards.
    pub total_samples: u64,
    /// Modelled joules across all live shards.
    pub total_j: f64,
}

/// Where one session lives, plus its admission contract.
#[derive(Debug)]
struct Route {
    shard: ShardId,
    /// Evict the session once its joules *since admission* exceed this.
    budget_j: Option<f64>,
    /// The cumulative joules the session carried when the router admitted
    /// it (non-zero for restored checkpoints). Budgets meter new work,
    /// not history — mirroring the shard's `total_j` discipline.
    baseline_j: f64,
    /// Joules spent since admission, as of the last ingest reply. Used
    /// to keep spend continuous across hot swaps (which replace the
    /// learner's cumulative counters wholesale).
    spent_j: f64,
    /// Cumulative samples the session has seen, mirrored off every
    /// relayed reply that reports `samples=` (ingest, swap, restore).
    /// Under the route lock this is *exactly* the learner's
    /// `samples_seen`, which is what lets the shadower stamp provable
    /// sequence numbers without decoding snapshots.
    samples_seen: u64,
    /// The last shadow successfully parked: `(holder shard, sequence)`.
    /// `None` until the first push (or when shadowing is disabled) — a
    /// shard death then fails the session fast, as pre-PR 7.
    shadow: Option<(ShardId, u64)>,
    /// Samples lost by a restore-from-shadow failover (ingested after
    /// the shadowed checkpoint, died with the shard). Stamped as
    /// `replay_gap=` on the session's next relayed ok reply, then
    /// cleared — the loss is reported to the client, never silent.
    replay_gap: Option<u64>,
}

/// One session's routing slot. The mutex serialises that session's
/// requests against each other and against migrations.
#[derive(Debug)]
struct Slot {
    route: Mutex<Route>,
}

#[derive(Debug)]
struct Inner {
    ring: HashRing,
    backends: BTreeMap<ShardId, Arc<Backend>>,
    sessions: HashMap<String, Arc<Slot>>,
    /// Evicted sessions: id → restore path (as reported by the shard).
    evicted: HashMap<String, String>,
    /// The last flight-recorder journal captured from each live shard by
    /// the health loop's black-box sweep (refreshed every interval), so
    /// a shard that dies without warning still left its journal behind.
    journal_cache: HashMap<ShardId, String>,
    /// Post-mortem store: the last captured journal of every shard that
    /// was declared dead, frozen at death time and merged into
    /// `cluster-journal` replies.
    victim_journals: HashMap<ShardId, String>,
    next_shard: ShardId,
    shutdown: bool,
}

#[derive(Debug)]
struct State {
    limits: ClusterLimits,
    /// The router's bound address; wire-driven shard spawns name their
    /// evict directories after its port, exactly as the Rust-side
    /// [`Cluster::spawn_shard`] does.
    addr: SocketAddr,
    obs: ClusterObs,
    inner: Mutex<Inner>,
}

/// A running cluster router. Shuts down (and joins its accept + health
/// threads, stopping owned shards) on [`Cluster::shutdown`] or drop.
#[derive(Debug)]
pub struct Cluster {
    addr: SocketAddr,
    state: Arc<State>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
    shadow_thread: Option<JoinHandle<()>>,
}

impl Cluster {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts routing. The
    /// cluster starts with zero shards; add some with
    /// [`Cluster::spawn_shard`] or [`Cluster::attach_shard`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn start(addr: &str, config: ClusterConfig) -> io::Result<Cluster> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            limits: config.limits,
            addr,
            obs: ClusterObs::new(),
            inner: Mutex::new(Inner {
                ring: HashRing::new(config.limits.replicas),
                backends: BTreeMap::new(),
                sessions: HashMap::new(),
                evicted: HashMap::new(),
                journal_cache: HashMap::new(),
                victim_journals: HashMap::new(),
                next_shard: 0,
                shutdown: false,
            }),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(listener, state, stop))
        };
        let health_thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || health_loop(state, stop))
        };
        let shadow_thread = state.limits.shadow_interval.map(|interval| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || shadow_loop(state, stop, interval))
        });
        Ok(Cluster {
            addr,
            state,
            stop,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
            shadow_thread,
        })
    }

    /// The router's bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Spawns a fresh in-process `snn-serve` shard and joins it to the
    /// ring, live-migrating every session the new ring assigns to it.
    /// A config without an `evict_dir` gets one under the system temp
    /// directory so budget eviction always has somewhere to checkpoint.
    ///
    /// # Errors
    ///
    /// Fails if the shard cannot start or a rebalancing migration fails.
    pub fn spawn_shard(&self, config: ServerConfig) -> Result<ShardId, ClusterError> {
        spawn_shard_on(&self.state, config)
    }

    /// Attaches an already-running `snn-serve` shard and joins it to the
    /// ring (rebalancing as for [`Cluster::spawn_shard`]). The shard must
    /// speak [`PROTO_VERSION`]; a mismatched backend is refused.
    ///
    /// # Errors
    ///
    /// Fails on connection/handshake errors or a failed rebalancing
    /// migration.
    pub fn attach_shard(&self, addr: SocketAddr) -> Result<ShardId, ClusterError> {
        let id = next_shard_id(&self.state)?;
        let backend = Arc::new(Backend::attach(
            id,
            addr,
            self.state.limits.io_timeout,
            self.state.limits.backend_max_proto,
            self.state.obs.relay_wire.clone(),
        )?);
        join_backend(&self.state, backend)?;
        Ok(id)
    }

    /// Drains a shard and removes it: the shard leaves the ring, every
    /// session it holds is live-migrated to its new ring placement, and
    /// (for spawned shards) the backing server is stopped. A shard that
    /// is already dead is removed by dropping its sessions instead —
    /// their state died with it.
    ///
    /// # Errors
    ///
    /// Fails if the shard id is unknown or a migration fails (the shard
    /// then stays attached, minus the ring points).
    pub fn drain_shard(&self, shard: ShardId) -> Result<usize, ClusterError> {
        drain_shard_on(&self.state, shard)
    }

    /// Live-migrates one session to a specific shard (ops/test hook; the
    /// rebalancer uses the same locked path). A no-op if the session is
    /// already there.
    ///
    /// # Errors
    ///
    /// Fails on unknown session/shard or a failed migration (the session
    /// keeps serving on its source shard).
    pub fn migrate_session(&self, id: &str, to: ShardId) -> Result<(), ClusterError> {
        let slot = {
            let inner = self.state.inner.lock().expect("cluster state poisoned");
            inner
                .sessions
                .get(id)
                .cloned()
                .ok_or_else(|| ClusterError::UnknownSession(id.to_string()))?
        };
        let mut route = slot.route.lock().expect("session route poisoned");
        if route.shard == to {
            return Ok(());
        }
        let (from_backend, to_backend) = {
            let inner = self.state.inner.lock().expect("cluster state poisoned");
            (
                inner
                    .backends
                    .get(&route.shard)
                    .cloned()
                    .ok_or(ClusterError::UnknownShard(route.shard))?,
                inner
                    .backends
                    .get(&to)
                    .cloned()
                    .ok_or(ClusterError::UnknownShard(to))?,
            )
        };
        let rid = self.state.obs.registry.mint_rid();
        migrate_locked(id, &from_backend, &to_backend, &rid, &self.state.obs)?;
        route.shard = to;
        if route.shadow.is_some_and(|(h, _)| h == to) {
            // Restoring the live session on its shadow holder dropped
            // the parked blob; forget it so a failover never trusts it.
            route.shadow = None;
        }
        if route.budget_j.is_some() && !to_backend.supports_evict() {
            // The target cannot checkpoint an over-budget session;
            // enforcement is impossible there, so the budget is dropped
            // rather than silently firing doomed evict calls forever.
            route.budget_j = None;
        }
        Ok(())
    }

    /// Migrates every session whose ring placement differs from where it
    /// currently lives (the consequence of a shard joining or leaving).
    /// Returns how many sessions moved.
    ///
    /// # Errors
    ///
    /// Stops at the first failed migration; already-moved sessions stay
    /// moved, the failed one keeps serving on its source shard.
    pub fn rebalance(&self) -> Result<usize, ClusterError> {
        rebalance_on(&self.state)
    }

    /// The shard a session is currently routed to.
    pub fn session_shard(&self, id: &str) -> Option<ShardId> {
        let slot = {
            let inner = self.state.inner.lock().expect("cluster state poisoned");
            inner.sessions.get(id).cloned()
        }?;
        let shard = slot.route.lock().expect("session route poisoned").shard;
        Some(shard)
    }

    /// The last shadow the shadower parked for a session: `(holder
    /// shard, sequence)`. `None` for unknown sessions, before the first
    /// push, or when shadowing is disabled. Ops/test hook: lets a caller
    /// wait until a session is protected up to a known sample count
    /// before injecting faults.
    pub fn session_shadow(&self, id: &str) -> Option<(ShardId, u64)> {
        let slot = {
            let inner = self.state.inner.lock().expect("cluster state poisoned");
            inner.sessions.get(id).cloned()
        }?;
        let shadow = slot.route.lock().expect("session route poisoned").shadow;
        shadow
    }

    /// The shard ids currently attached (alive or not), ascending.
    pub fn shard_ids(&self) -> Vec<ShardId> {
        let inner = self.state.inner.lock().expect("cluster state poisoned");
        inner.backends.keys().copied().collect()
    }

    /// Aggregated cluster counters (the Rust-side `cluster-stats`).
    pub fn stats(&self) -> ClusterStats {
        gather_stats(&self.state)
    }

    /// Stops routing: the accept and health threads are joined and every
    /// spawned shard's server is shut down. Attached external shards are
    /// left running.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        {
            let mut inner = self.state.inner.lock().expect("cluster state poisoned");
            inner.shutdown = true;
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.health_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.shadow_thread.take() {
            let _ = t.join();
        }
        let backends: Vec<Arc<Backend>> = {
            let inner = self.state.inner.lock().expect("cluster state poisoned");
            inner.backends.values().cloned().collect()
        };
        for backend in backends {
            backend.stop();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Removes `id` from the session table only if it still maps to this
/// exact slot (a racing re-open under the same id installs a fresh
/// `Arc`, which must not be clobbered); optionally records an eviction
/// tombstone in the same critical section. Returns whether the entry
/// was removed.
fn remove_route_if_current(
    state: &State,
    id: &str,
    slot: &Arc<Slot>,
    tombstone: Option<String>,
) -> bool {
    let mut inner = state.inner.lock().expect("cluster state poisoned");
    let current = matches!(inner.sessions.get(id), Some(current) if Arc::ptr_eq(current, slot));
    if current {
        inner.sessions.remove(id);
        if let Some(path) = tombstone {
            inner.evicted.insert(id.to_string(), path);
        }
    }
    current
}

/// Removes every session routed to `shard`, respecting the slot→table
/// lock order (collect under the table lock, inspect under each slot
/// lock, then re-check identity before removing).
fn drop_sessions_of(state: &State, shard: ShardId) {
    let snapshot: Vec<(String, Arc<Slot>)> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner
            .sessions
            .iter()
            .map(|(id, slot)| (id.clone(), Arc::clone(slot)))
            .collect()
    };
    for (id, slot) in snapshot {
        let route = slot.route.lock().expect("session route poisoned");
        if route.shard != shard {
            continue;
        }
        remove_route_if_current(state, &id, &slot, None);
    }
}

// ---------------------------------------------------------------------------
// Control-plane operations over `&State`, shared by the Rust-side
// `Cluster` methods and the wire verbs (`cluster-grow`, `cluster-drain`),
// which only ever hold the state a connection thread borrows.

fn next_shard_id(state: &State) -> Result<ShardId, ClusterError> {
    let mut inner = state.inner.lock().expect("cluster state poisoned");
    if inner.shutdown {
        return Err(ClusterError::Shutdown);
    }
    let id = inner.next_shard;
    inner.next_shard += 1;
    Ok(id)
}

fn join_backend(state: &State, backend: Arc<Backend>) -> Result<(), ClusterError> {
    {
        let mut inner = state.inner.lock().expect("cluster state poisoned");
        inner.backends.insert(backend.id, Arc::clone(&backend));
        inner.ring.add(backend.id);
    }
    rebalance_on(state)?;
    Ok(())
}

/// See [`Cluster::spawn_shard`], whose contract this implements.
fn spawn_shard_on(state: &State, mut config: ServerConfig) -> Result<ShardId, ClusterError> {
    let id = next_shard_id(state)?;
    if config.evict_dir.is_none() {
        let dir = std::env::temp_dir().join(format!(
            "snn-cluster-{}-{}-shard{id}",
            std::process::id(),
            state.addr.port()
        ));
        std::fs::create_dir_all(&dir).map_err(ClusterError::Io)?;
        config.evict_dir = Some(dir);
    }
    let backend = Arc::new(Backend::spawn(
        id,
        config,
        state.limits.io_timeout,
        state.limits.backend_max_proto,
        state.obs.relay_wire.clone(),
    )?);
    join_backend(state, backend)?;
    Ok(id)
}

/// See [`Cluster::rebalance`], whose contract this implements.
fn rebalance_on(state: &State) -> Result<usize, ClusterError> {
    state.obs.rebalances.inc();
    let snapshot: Vec<(String, Arc<Slot>)> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner
            .sessions
            .iter()
            .map(|(id, slot)| (id.clone(), Arc::clone(slot)))
            .collect()
    };
    let mut moved = 0usize;
    for (id, slot) in snapshot {
        let mut route = slot.route.lock().expect("session route poisoned");
        let (target, from_backend, to_backend) = {
            let inner = state.inner.lock().expect("cluster state poisoned");
            let Some(target) = inner.ring.shard_for(&id) else {
                continue; // ringless cluster: nowhere to move anything
            };
            if target == route.shard {
                continue;
            }
            (
                target,
                inner.backends.get(&route.shard).cloned(),
                inner.backends.get(&target).cloned(),
            )
        };
        let (Some(from_backend), Some(to_backend)) = (from_backend, to_backend) else {
            continue; // backend raced away; the health/drain path owns it
        };
        let rid = state.obs.registry.mint_rid();
        migrate_locked(&id, &from_backend, &to_backend, &rid, &state.obs)?;
        state.obs.sessions_moved.inc();
        route.shard = target;
        if route.shadow.is_some_and(|(h, _)| h == target) {
            // Same rule as migrate_session: the restore consumed the
            // parked blob on this shard.
            route.shadow = None;
        }
        if route.budget_j.is_some() && !to_backend.supports_evict() {
            // Same rule as migrate_session: an unenforceable budget
            // is dropped, not silently voided per ingest.
            route.budget_j = None;
        }
        moved += 1;
    }
    Ok(moved)
}

/// See [`Cluster::drain_shard`], whose contract this implements.
fn drain_shard_on(state: &State, shard: ShardId) -> Result<usize, ClusterError> {
    let backend = {
        let mut inner = state.inner.lock().expect("cluster state poisoned");
        let backend = inner
            .backends
            .get(&shard)
            .cloned()
            .ok_or(ClusterError::UnknownShard(shard))?;
        inner.ring.remove(shard);
        backend
    };
    let moved = if backend.is_alive() {
        rebalance_on(state)?
    } else {
        drop_sessions_of(state, shard);
        0
    };
    backend.stop();
    let mut inner = state.inner.lock().expect("cluster state poisoned");
    inner.backends.remove(&shard);
    inner.journal_cache.remove(&shard);
    Ok(moved)
}

// ---------------------------------------------------------------------------
// Accept + health threads.

fn accept_loop(listener: TcpListener, state: Arc<State>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &state);
                });
            }
            // Same reasoning as snn-serve's accept loop: every accept
            // error is transient here; only the stop flag ends routing.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn health_loop(state: Arc<State>, stop: Arc<AtomicBool>) {
    let mut last_sweep = std::time::Instant::now();
    let mut failures: HashMap<ShardId, u32> = HashMap::new();
    // The "death rid" per striking shard: minted at the first failed
    // probe and carried by every probe-fail, the shard-down verdict, and
    // (as `cause=`) each resulting failover — one id stitches the whole
    // incident through the merged journal.
    let mut death_rids: HashMap<ShardId, String> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        // Nap in small slices so shutdown never waits a full interval.
        std::thread::sleep(Duration::from_millis(20));
        let interval = state.limits.health_interval;
        if last_sweep.elapsed() < interval {
            continue;
        }
        last_sweep = std::time::Instant::now();
        let backends: Vec<Arc<Backend>> = {
            let inner = state.inner.lock().expect("cluster state poisoned");
            inner.backends.values().cloned().collect()
        };
        for backend in backends {
            if !backend.is_alive() {
                failures.remove(&backend.id);
                death_rids.remove(&backend.id);
                continue;
            }
            if backend.ping() {
                state.obs.probe_ok.inc();
                failures.remove(&backend.id);
                death_rids.remove(&backend.id);
                // Black-box sweep: refresh the cached copy of the
                // shard's flight recorder while it is still answering,
                // so a death in the next interval leaves a journal
                // behind for the post-mortem.
                if let Some(text) = fetch_shard_journal(&backend, state.limits.scrape_timeout) {
                    let mut inner = state.inner.lock().expect("cluster state poisoned");
                    inner.journal_cache.insert(backend.id, text);
                }
                continue;
            }
            state.obs.probe_fail.inc();
            let strikes = failures.entry(backend.id).or_insert(0);
            *strikes += 1;
            let rid = death_rids
                .entry(backend.id)
                .or_insert_with(|| state.obs.registry.mint_rid())
                .clone();
            state.obs.registry.journal_event(
                "cluster.probe_fail",
                &rid,
                &[
                    ("shard", backend.id.to_string()),
                    ("strike", strikes.to_string()),
                ],
            );
            if *strikes < state.limits.probes_to_kill {
                continue;
            }
            failures.remove(&backend.id);
            death_rids.remove(&backend.id);
            state.obs.shard_down.inc();
            state.obs.registry.journal_event(
                "cluster.shard_down",
                &rid,
                &[("shard", backend.id.to_string())],
            );
            backend.mark_dead();
            {
                let mut inner = state.inner.lock().expect("cluster state poisoned");
                inner.ring.remove(backend.id);
                // Freeze the victim's last captured journal: its own
                // process may be gone, but the black-box copy survives
                // and rides in every later `cluster-journal` merge.
                if let Some(text) = inner.journal_cache.remove(&backend.id) {
                    inner.victim_journals.insert(backend.id, text);
                }
            }
            if state.limits.shadow_interval.is_some() {
                // Shadowed sessions resume from their replicas on live
                // shards; the rest (never shadowed, stale, or the
                // restore failed) fail fast as before.
                failover_sessions_of(&state, backend.id, &rid);
            } else {
                // Their state died with the shard: fail the sessions
                // now rather than letting clients discover it one
                // timeout at a time.
                drop_sessions_of(&state, backend.id);
            }
        }
        reconcile(&state);
    }
}

/// Shards evict sessions on their own (idle sweeps, operators talking
/// to a shard directly); if the affected clients never send another
/// request, the relayed-reply mirror in `handle_session` never fires
/// and the stale routes would hold cluster admission capacity forever.
/// This pass compares each live shard's own session count against the
/// routes pointing at it — only a mismatch triggers per-session probes,
/// so the steady-state cost is one `stats` round trip per shard per
/// health interval.
fn reconcile(state: &State) {
    let snapshot: Vec<(String, Arc<Slot>)> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner
            .sessions
            .iter()
            .map(|(id, slot)| (id.clone(), Arc::clone(slot)))
            .collect()
    };
    let mut routed: HashMap<ShardId, Vec<(String, Arc<Slot>)>> = HashMap::new();
    for (id, slot) in snapshot {
        let shard = slot.route.lock().expect("session route poisoned").shard;
        routed.entry(shard).or_default().push((id, slot));
    }
    let backends: Vec<Arc<Backend>> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner.backends.values().cloned().collect()
    };
    for backend in backends {
        if !backend.is_alive() {
            continue;
        }
        let Some(routes) = routed.get(&backend.id) else {
            continue;
        };
        let shard_sessions = backend
            .call_raw("stats", true)
            .ok()
            .and_then(|reply| parse_response(&reply).ok())
            .and_then(|resp| resp.get("sessions").and_then(|v| v.parse::<usize>().ok()));
        let Some(shard_sessions) = shard_sessions else {
            continue;
        };
        if shard_sessions >= routes.len() {
            continue;
        }
        // The shard holds fewer sessions than we route to it: probe each
        // route under its lock (serialising with in-flight requests and
        // migrations) and mirror what the shard actually says.
        for (id, slot) in routes {
            let route = slot.route.lock().expect("session route poisoned");
            if route.shard != backend.id {
                continue; // migrated since the snapshot
            }
            let Ok(reply) = backend.call_raw(&format!("report id={id}"), true) else {
                continue;
            };
            if reply.starts_with("ok") {
                continue;
            }
            match parse_response(&reply) {
                Ok(Response::Err { code, msg }) if code == "session-evicted" => {
                    remove_route_if_current(state, id, slot, Some(msg));
                }
                Ok(Response::Err { code, .. }) if code == "unknown-session" => {
                    remove_route_if_current(state, id, slot, None);
                }
                _ => {}
            }
        }
    }
}

/// The shadower thread: every `interval`, replicate each session's
/// checkpoint to its ring-successor shard (see `crate::heal`). Runs only
/// when [`ClusterLimits::shadow_interval`] is set.
fn shadow_loop(state: Arc<State>, stop: Arc<AtomicBool>, interval: Duration) {
    let mut last_sweep = std::time::Instant::now();
    while !stop.load(Ordering::SeqCst) {
        // Nap in small slices so shutdown never waits a full interval.
        std::thread::sleep(Duration::from_millis(10));
        if last_sweep.elapsed() < interval {
            continue;
        }
        last_sweep = std::time::Instant::now();
        shadow_sweep(&state);
    }
}

/// One shadower pass over every routed session. Each push runs under
/// the session's route lock (serialising with requests, migrations and
/// failover), and the sweep refreshes the `cluster.shadow_lag` gauge
/// with the worst per-session sample gap it leaves behind.
fn shadow_sweep(state: &State) {
    let snapshot: Vec<(String, Arc<Slot>)> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner
            .sessions
            .iter()
            .map(|(id, slot)| (id.clone(), Arc::clone(slot)))
            .collect()
    };
    let mut max_lag = 0u64;
    for (id, slot) in snapshot {
        let mut route = slot.route.lock().expect("session route poisoned");
        let lag_of = |route: &Route| {
            route
                .samples_seen
                .saturating_sub(route.shadow.map_or(0, |(_, seq)| seq))
        };
        // Nothing new to park: the current holder already has this exact
        // sequence (stores at equal seq are idempotent, so skipping is
        // purely a traffic optimisation).
        if route
            .shadow
            .is_some_and(|(_, seq)| seq >= route.samples_seen)
        {
            max_lag = max_lag.max(lag_of(&route));
            continue;
        }
        let (home, holder) = {
            let inner = state.inner.lock().expect("cluster state poisoned");
            // The natural holder is the key's ring successor — never the
            // key's owner. A session migrated *onto* its own successor
            // falls back to the ring owner, keeping the invariant that a
            // shadow never lives on the shard serving the session.
            let holder_id = match inner.ring.successor(&id) {
                Some(s) if s != route.shard => Some(s),
                Some(_) => inner.ring.shard_for(&id).filter(|&o| o != route.shard),
                None => None,
            };
            (
                inner.backends.get(&route.shard).cloned(),
                holder_id.and_then(|h| inner.backends.get(&h).cloned()),
            )
        };
        let (Some(home), Some(holder)) = (home, holder) else {
            // No live (home, holder) pair — e.g. a single-shard ring has
            // nowhere distinct to replicate to. The lag keeps accruing
            // and the gauge shows it.
            max_lag = max_lag.max(lag_of(&route));
            continue;
        };
        if !home.is_alive() || !holder.is_alive() {
            max_lag = max_lag.max(lag_of(&route));
            continue;
        }
        let rid = state.obs.registry.mint_rid();
        let seq = route.samples_seen;
        if shadow_locked(&id, seq, &home, &holder, &rid, &state.obs).is_ok() {
            route.shadow = Some((holder.id, seq));
        }
        max_lag = max_lag.max(lag_of(&route));
    }
    state.obs.shadow_lag.set(max_lag as f64);
}

/// Restores every session routed to the dead shard from its shadow onto
/// a live shard, under each session's route lock. A session without a
/// provable shadow (never pushed, holder lost it, sequence mismatch, or
/// the restore failed) falls back to the fail-fast drop — its next
/// request answers `unknown-session`, exactly the pre-shadowing
/// behaviour.
fn failover_sessions_of(state: &State, dead: ShardId, cause: &str) {
    // A failed failover (no shadow, dead holder/target, or a refused
    // restore) drops the session exactly as before; the journal records
    // the failure under the incident's death rid so the post-mortem
    // explains the loss.
    let journal_fail = |id: &str| {
        state.obs.registry.journal_event(
            "cluster.failover_fail",
            "",
            &[("id", id.to_string()), ("cause", cause.to_string())],
        );
    };
    let snapshot: Vec<(String, Arc<Slot>)> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner
            .sessions
            .iter()
            .map(|(id, slot)| (id.clone(), Arc::clone(slot)))
            .collect()
    };
    for (id, slot) in snapshot {
        let mut route = slot.route.lock().expect("session route poisoned");
        if route.shard != dead {
            continue;
        }
        let Some((holder_id, expect_seq)) = route.shadow else {
            state.obs.failover_fail.inc();
            journal_fail(&id);
            remove_route_if_current(state, &id, &slot, None);
            continue;
        };
        let (holder, target) = {
            let inner = state.inner.lock().expect("cluster state poisoned");
            // The dead shard already left the ring, so `shard_for` is a
            // live placement (possibly the holder itself — restoring
            // there promotes the shadow to a live session in place).
            let target = inner
                .ring
                .shard_for(&id)
                .and_then(|t| inner.backends.get(&t).cloned());
            (inner.backends.get(&holder_id).cloned(), target)
        };
        let pair = match (holder, target) {
            (Some(h), Some(t)) if h.is_alive() && t.is_alive() => Some((h, t)),
            _ => None,
        };
        let Some((holder, target)) = pair else {
            state.obs.failover_fail.inc();
            journal_fail(&id);
            remove_route_if_current(state, &id, &slot, None);
            continue;
        };
        let rid = state.obs.registry.mint_rid();
        match failover_locked(&id, expect_seq, &holder, &target, &rid, &state.obs) {
            Ok(seq) => {
                // The failover's own rid (which the target shard's
                // `serve.restore` journal entry also carries, relayed on
                // the restore line) plus `cause=` — the death rid — is
                // what lets a post-mortem chain probe strikes to the
                // verdict to the recovery, across tiers.
                state.obs.registry.journal_event(
                    "cluster.failover",
                    &rid,
                    &[
                        ("id", id.clone()),
                        ("cause", cause.to_string()),
                        ("from", dead.to_string()),
                        ("to", target.id.to_string()),
                        ("seq", seq.to_string()),
                    ],
                );
                route.shard = target.id;
                // Samples past the shadowed checkpoint died with the
                // shard; report the gap on the next relayed reply.
                route.replay_gap = Some(route.samples_seen.saturating_sub(seq));
                route.samples_seen = seq;
                // Restoring a live session under the id drops the
                // holder's shadow copy; force a fresh push next sweep.
                route.shadow = None;
                if route.budget_j.is_some() && !target.supports_evict() {
                    // Same rule as migration: an unenforceable budget is
                    // dropped, not silently voided per ingest.
                    route.budget_j = None;
                }
            }
            Err(_) => {
                journal_fail(&id);
                remove_route_if_current(state, &id, &slot, None);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling.

fn handle_connection(stream: TcpStream, state: &Arc<State>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        let n = (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line)?;
        if n == 0 {
            return Ok(());
        }
        state.obs.wire.count(PROTO_VERSION, n as u64, 0);
        if !line.ends_with('\n') {
            // Same truncation rule as the shard server: never dispatch a
            // cut-short line.
            if n as u64 == MAX_LINE_BYTES {
                let reply = err_line("bad-request", "line exceeds the protocol size limit");
                write_reply(&mut writer, state, &reply)?;
            }
            return Ok(());
        }
        if let Ok((verb, fields)) = protocol::tokenize(&line) {
            // `hello proto=2` upgrades the connection to multiplexed
            // binary framing and never returns to line mode, so it is
            // dispatched here, exactly as on the shard tier. The hello
            // exchange itself is always line-based.
            // Hello is connection negotiation, not request traffic:
            // whatever the proto, it bypasses `accept_line` so it never
            // mints a rid — a negotiated connection and a bare one must
            // leave the rid sequence (and thus the byte-exact relay
            // lines later rids ride on) identical.
            if verb == "hello" {
                let banner = route_line(&line, state);
                write_reply(&mut writer, state, &banner)?;
                if let Some(Ok(proto)) = find(&fields, "proto").map(str::parse::<u32>) {
                    if proto >= PROTO_V2 && proto <= state.limits.max_proto {
                        let host = Arc::new(ClusterHost {
                            state: Arc::clone(state),
                        });
                        return run_mux(reader, writer, host);
                    }
                }
                continue;
            }
            // `subscribe` upgrades the connection to a one-way push
            // stream and never returns to request/reply, so it is also
            // dispatched here — it needs the writer, not just a reply
            // line.
            if verb == "subscribe" {
                let interval_ms = match find(&fields, "interval_ms") {
                    None => 200,
                    Some(raw) => match raw.parse::<u64>() {
                        Ok(ms) => ms,
                        Err(_) => {
                            let reply =
                                err_line("bad-request", "interval_ms must be a non-negative int");
                            write_reply(&mut writer, state, &reply)?;
                            continue;
                        }
                    },
                };
                return serve_cluster_subscription(&mut writer, state, interval_ms);
            }
        }
        let (reply, rid) = accept_line(&line, state);
        let w0 = Instant::now();
        write_reply(&mut writer, state, &reply)?;
        let wdur = w0.elapsed();
        state.obs.registry.span(
            "cluster.phase.write",
            &rid,
            wdur,
            &[
                ("phase", "write".to_string()),
                ("parent", "accept".to_string()),
            ],
        );
    }
}

/// Routes one client line under its request id, timing the router's
/// whole ownership of the request as the trace tree's `accept` root
/// span. The rid is the client's (when the line already ends in
/// `rid=…`) or freshly minted; either way the line the router routes
/// carries it as the **final field**, so the relay span, the shard's
/// request-path spans, and this root all share one id. Returns
/// `(reply line, rid)`.
fn accept_line(line: &str, state: &State) -> (String, String) {
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let (routed, rid) = match extract_rid(trimmed) {
        Some(rid) => (trimmed.to_string(), rid.to_string()),
        None => {
            let rid = state.obs.registry.mint_rid();
            (format!("{trimmed} rid={rid}"), rid)
        }
    };
    let t0 = Instant::now();
    let reply = route_line(&routed, state);
    let dur = t0.elapsed();
    state.obs.registry.span(
        "cluster.phase.accept",
        &rid,
        dur,
        &[("phase", "accept".to_string())],
    );
    (reply, rid)
}

/// Writes one reply line (appending the newline) and counts its bytes
/// against the client-facing proto 1 wire counters.
fn write_reply(writer: &mut TcpStream, state: &State, reply: &str) -> io::Result<()> {
    writer.write_all(reply.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    state
        .obs
        .wire
        .count(PROTO_VERSION, 0, reply.len() as u64 + 1);
    Ok(())
}

/// The router's half of a multiplexed proto 2 connection: requests are
/// answered by the same [`route_line`] the line loop uses, and
/// subscription pushes sample the same merged cluster-wide exposition.
#[derive(Debug)]
struct ClusterHost {
    state: Arc<State>,
}

impl MuxHost for ClusterHost {
    fn handle_line(&self, line: &str) -> String {
        // Same rid accounting as the line loop: the accept root span
        // covers the router's whole ownership of the frame. The reply
        // write itself happens on the shared writer thread, so proto 2
        // traces have no router-side write node — the writer-queue
        // gauge is what shows that backlog instead.
        accept_line(line, &self.state).0
    }

    fn push_line(&self, seq: u64, journal_cursor: &mut u64) -> Option<String> {
        render_cluster_push(&self.state, seq, journal_cursor)
    }

    fn is_shutdown(&self) -> bool {
        self.state
            .inner
            .lock()
            .expect("cluster state poisoned")
            .shutdown
    }

    fn journal_total(&self) -> u64 {
        self.state.obs.registry.journal_snapshot().total
    }

    fn on_wire(&self, rx_bytes: u64, tx_bytes: u64) {
        self.state.obs.wire.count(PROTO_V2, rx_bytes, tx_bytes);
    }

    fn on_queue_wait(&self, line: &str, waited: Duration) {
        // Only rid-bearing frames get a demux-wait node: a rid minted
        // here would never match the accept span's rid.
        if let Some(rid) = extract_rid(line.trim_end_matches(['\r', '\n'])) {
            self.state.obs.registry.span(
                "cluster.phase.demux_wait",
                rid,
                waited,
                &[
                    ("phase", "demux_wait".to_string()),
                    ("parent", "accept".to_string()),
                ],
            );
        }
    }

    fn on_flow(&self, tags_in_flight: u64, writer_queue: u64) {
        self.state.obs.tags_in_flight.set(tags_in_flight as f64);
        self.state.obs.writer_queue.set(writer_queue as f64);
    }

    fn next_subscriber(&self) -> u64 {
        self.state.obs.subscriber().0
    }

    fn on_push_drop(&self, sub: u64) {
        self.state.obs.subscribe_drops.inc();
        self.state.obs.sub_drop_counter(sub).inc();
    }
}

fn err_line(code: &str, msg: &str) -> String {
    format_response(&Response::error(code, msg))
}

fn cluster_err_line(e: &ClusterError) -> String {
    err_line(e.code(), &e.to_string())
}

fn find<'a>(fields: &'a [(String, String)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

/// Routes one raw request line to its reply line (no trailing newline).
fn route_line(line: &str, state: &State) -> String {
    let (verb, fields) = match protocol::tokenize(line) {
        Ok(parts) => parts,
        Err(e) => return err_line("bad-request", &e.to_string()),
    };
    match verb.as_str() {
        "hello" => match find(&fields, "proto").map(str::parse::<u32>) {
            Some(Ok(proto)) if proto >= PROTO_VERSION && proto <= state.limits.max_proto => {
                format_response(&Response::ok([
                    ("proto", proto.to_string()),
                    ("server", "snn-cluster".to_string()),
                    ("journal", "1".to_string()),
                    ("subscribe", "1".to_string()),
                    ("trace", "1".to_string()),
                ]))
            }
            Some(Ok(proto)) => err_line(
                "proto-mismatch",
                &format!(
                    "cluster speaks proto {PROTO_VERSION}..{}, client sent {proto}",
                    state.limits.max_proto
                ),
            ),
            _ => err_line("bad-request", "hello needs a numeric proto field"),
        },
        "ping" => {
            let draining = state.inner.lock().expect("cluster state poisoned").shutdown;
            if draining {
                // Mirror the shard server: a draining router is not a
                // healthy routing target.
                err_line("shutdown", "cluster shutting down")
            } else {
                format_response(&Response::ok([
                    ("pong", "1".to_string()),
                    ("proto", PROTO_VERSION.to_string()),
                ]))
            }
        }
        "stats" => stats_line(state),
        "cluster-stats" => cluster_stats_line(state),
        "metrics" => metrics_line(state),
        "cluster-metrics" => cluster_metrics_line(state),
        "journal" => journal_line(state),
        "cluster-journal" => cluster_journal_line(state),
        "trace" => trace_line(state, &fields),
        "cluster-trace" => cluster_trace_line(state, &fields),
        "cluster-grow" => cluster_grow_line(state),
        "cluster-drain" => cluster_drain_line(state, &fields),
        "open" | "restore" | "close" | "evict" | "ingest" | "report" | "energy" | "checkpoint"
        | "swap" => relay(line, &verb, &fields, state),
        other => err_line("bad-request", &format!("unknown verb {other:?}")),
    }
}

/// Forwards one data-plane line through its per-verb handler, carrying a
/// request id: the client's (when the line already ends in `rid=…`) or a
/// freshly minted one. The rid rides as the **final field** of the
/// relayed line, so the shard's spans and the router's relay span share
/// one id and a `cluster-metrics` scrape can stitch a request's path
/// across processes.
fn relay(line: &str, verb: &str, fields: &[(String, String)], state: &State) -> String {
    let obs = &state.obs;
    obs.relays.inc();
    let trimmed = line.trim_end_matches(['\r', '\n']);
    let (relay_line, rid) = match extract_rid(trimmed) {
        Some(rid) => (trimmed.to_string(), rid.to_string()),
        None => {
            let rid = obs.registry.mint_rid();
            (format!("{trimmed} rid={rid}"), rid)
        }
    };
    let t0 = Instant::now();
    let reply = match verb {
        "open" | "restore" => handle_open(&relay_line, fields, state),
        "close" | "evict" => handle_release(&relay_line, verb, fields, state),
        _ => handle_session(&relay_line, verb, fields, state),
    };
    let dur = t0.elapsed();
    obs.relay_us.record_duration(dur);
    let mut span_fields = vec![
        ("verb", verb.to_string()),
        ("phase", "relay".to_string()),
        ("parent", "accept".to_string()),
    ];
    if let Some(id) = find(fields, "id") {
        span_fields.push(("id", id.to_string()));
    }
    obs.registry
        .span(&format!("cluster.relay.{verb}"), &rid, dur, &span_fields);
    reply
}

/// The router's own `metrics` exposition (hex in the `data` field, same
/// shape as a shard's so [`snn_serve::ServeClient::metrics`] works
/// against either tier).
fn metrics_line(state: &State) -> String {
    format_response(&Response::ok([
        ("instance", state.obs.registry.instance().to_string()),
        (
            "data",
            hex_encode(router_snapshot(state).render().as_bytes()),
        ),
    ]))
}

/// The router registry's snapshot with point-in-time gauges refreshed.
fn router_snapshot(state: &State) -> Snapshot {
    let r = &state.obs.registry;
    let (sessions, evicted, shards, alive) = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        (
            inner.sessions.len(),
            inner.evicted.len(),
            inner.backends.len(),
            inner.backends.values().filter(|b| b.is_alive()).count(),
        )
    };
    r.gauge("cluster.sessions").set(sessions as f64);
    r.gauge("cluster.evicted_sessions").set(evicted as f64);
    r.gauge("cluster.shards").set(shards as f64);
    r.gauge("cluster.alive_shards").set(alive as f64);
    // Build/version info rides as an info-style gauge (the version is
    // part of the name, the value is always 1) plus the router's uptime,
    // so every scrape answers "what build, up how long" for free.
    r.gauge(&format!("build.info.{}", env!("CARGO_PKG_VERSION")))
        .set(1.0);
    r.gauge("cluster.uptime_s").set(r.uptime_us() as f64 / 1e6);
    r.snapshot()
}

/// `cluster-metrics`: scrapes every live shard's `metrics` exposition on
/// its own deadline-bounded connection, merges them with the router's
/// own snapshot, and replies with the aggregate (hex in `data`). A slow
/// or garbled shard costs one deadline and one `cluster.scrape_fail`
/// tick, never the whole scrape.
fn cluster_metrics_line(state: &State) -> String {
    let (attempted, ok, merged) = merged_metrics(state);
    format_response(&Response::ok([
        ("instance", state.obs.registry.instance().to_string()),
        ("shards", attempted.to_string()),
        ("scraped", ok.to_string()),
        ("failed", (attempted - ok).to_string()),
        ("data", hex_encode(merged.render().as_bytes())),
    ]))
}

/// The cluster-wide merged exposition behind `cluster-metrics` and the
/// router's `subscribe` stream: every live shard scraped on its own
/// deadline, merged with the router's snapshot. Returns
/// `(live shards attempted, scrapes that succeeded, merged snapshot)`.
fn merged_metrics(state: &State) -> (usize, usize, Snapshot) {
    let backends: Vec<Arc<Backend>> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner.backends.values().cloned().collect()
    };
    let deadline = state.limits.scrape_timeout;
    let scraped: Vec<Option<Snapshot>> = std::thread::scope(|scope| {
        let handles: Vec<_> = backends
            .iter()
            .map(|backend| {
                scope.spawn(move || {
                    if !backend.is_alive() {
                        return None;
                    }
                    let t0 = Instant::now();
                    let snap = scrape_shard_metrics(backend, deadline);
                    state.obs.scrape_us.record_duration(t0.elapsed());
                    if snap.is_none() {
                        record_scrape_fail(state, backend.id);
                    }
                    Some(snap)
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("metrics scrape thread"))
            .collect()
    });
    let attempted = scraped.len();
    let ok = scraped.iter().filter(|s| s.is_some()).count();
    let mut merged = router_snapshot(state);
    for snap in scraped.into_iter().flatten() {
        merged.merge(&snap);
    }
    (attempted, ok, merged)
}

/// Records a failed fan-out scrape of a live shard, attributing the
/// failure to the shard that caused it: the aggregate counter keeps its
/// historical name, a per-shard counter (`cluster.scrape_fail.s<id>`)
/// pins the culprit, and a journal event preserves it for post-mortems.
fn record_scrape_fail(state: &State, shard: ShardId) {
    state.obs.scrape_fail.inc();
    state
        .obs
        .registry
        .counter(&format!("cluster.scrape_fail.s{shard}"))
        .inc();
    state
        .obs
        .registry
        .journal_event("cluster.scrape_fail", "", &[("shard", shard.to_string())]);
}

/// One shard's `metrics` reply, decoded and parsed (`None` on timeout,
/// transport failure, or a malformed exposition).
fn scrape_shard_metrics(backend: &Backend, deadline: Duration) -> Option<Snapshot> {
    let reply = backend.call_with_deadline("metrics", deadline)?;
    let resp = parse_response(&reply).ok()?;
    let text = String::from_utf8(hex_decode(resp.get("data")?).ok()?).ok()?;
    Snapshot::parse(&text).ok()
}

/// One shard's `journal` reply, decoded to the raw journal text (`None`
/// on timeout, transport failure, a malformed reply, or a shard that
/// predates the verb — black-box capture is strictly best-effort).
fn fetch_shard_journal(backend: &Backend, deadline: Duration) -> Option<String> {
    let reply = backend.call_with_deadline("journal", deadline)?;
    let resp = parse_response(&reply).ok()?;
    String::from_utf8(hex_decode(resp.get("data")?).ok()?).ok()
}

/// `journal`: the router's own flight recorder (hex in `data`, the same
/// shape as a shard's so [`snn_serve::ServeClient::journal`] works
/// against either tier).
fn journal_line(state: &State) -> String {
    format_response(&Response::ok([
        ("instance", state.obs.registry.instance().to_string()),
        (
            "data",
            hex_encode(state.obs.registry.journal_snapshot().render().as_bytes()),
        ),
    ]))
}

/// `cluster-journal`: the merged cluster-wide flight recorder — the
/// router's own journal, every live shard's fetched now on a bounded
/// deadline, and the frozen post-mortem copies of dead shards. The
/// merge is ordered by event timestamp, so the tail of the reply reads
/// as the cluster's last moments in causal order.
fn cluster_journal_line(state: &State) -> String {
    let mut merged = state.obs.registry.journal_snapshot();
    let (backends, victims): (Vec<Arc<Backend>>, Vec<String>) = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        (
            inner.backends.values().cloned().collect(),
            inner.victim_journals.values().cloned().collect(),
        )
    };
    let deadline = state.limits.scrape_timeout;
    let mut attempted = 0usize;
    let mut ok = 0usize;
    for backend in backends {
        if !backend.is_alive() {
            continue;
        }
        attempted += 1;
        match fetch_shard_journal(&backend, deadline).and_then(|t| JournalSnapshot::parse(&t).ok())
        {
            Some(snap) => {
                merged.merge(&snap);
                ok += 1;
            }
            None => record_scrape_fail(state, backend.id),
        }
    }
    for text in victims {
        if let Ok(snap) = JournalSnapshot::parse(&text) {
            merged.merge(&snap);
        }
    }
    format_response(&Response::ok([
        ("instance", state.obs.registry.instance().to_string()),
        ("shards", attempted.to_string()),
        ("scraped", ok.to_string()),
        ("data", hex_encode(merged.render().as_bytes())),
    ]))
}

/// `trace rid=…`: the router's own raw trace material for one request
/// id — its rid-filtered spans (a spans-only exposition in `data`) and
/// rid-filtered journal events (in `journal`), the same reply shape a
/// shard answers, so [`snn_serve::ServeClient::trace`] works against
/// either tier. The merged, assembled view is `cluster-trace`.
fn trace_line(state: &State, fields: &[(String, String)]) -> String {
    let Some(rid) = find(fields, "rid") else {
        return err_line("bad-request", "missing field rid");
    };
    if !valid_rid(rid) {
        return err_line("bad-request", "invalid rid");
    }
    let reg = &state.obs.registry;
    let mut snap = reg.snapshot();
    snap.counters.clear();
    snap.gauges.clear();
    snap.histograms.clear();
    snap.exemplars.clear();
    snap.spans.retain(|s| s.rid == rid);
    let mut journal = reg.journal_snapshot();
    journal.events.retain(|e| e.rid == rid);
    // Keep the codec invariant (total − events − dropped = 0): the
    // filtered document stands alone, not as a window onto the ring.
    journal.total = journal.events.len() as u64;
    journal.dropped = 0;
    format_response(&Response::ok([
        ("instance", reg.instance().to_string()),
        ("rid", rid.to_string()),
        ("spans", snap.spans.len().to_string()),
        ("events", journal.events.len().to_string()),
        ("data", hex_encode(snap.render().as_bytes())),
        ("journal", hex_encode(journal.render().as_bytes())),
    ]))
}

/// `cluster-trace rid=…`: the on-demand cluster-wide trace assembler.
/// Fans `trace rid=…` out to every live shard on its own
/// deadline-bounded connection (a slow shard costs one deadline and a
/// `cluster.scrape_fail` tick, never the whole trace), merges the
/// shards' spans and journal events with the router's own rid-filtered
/// material **and the frozen post-mortem journals of dead shards**,
/// assembles the parent-linked trace tree, and replies with the
/// rendered `# snn-trace v1` document (hex in `data`). A request that
/// crossed a shard which has since died still explains itself: the
/// victim's journal events ride in as `via=journal` leaves.
fn cluster_trace_line(state: &State, fields: &[(String, String)]) -> String {
    let Some(rid) = find(fields, "rid") else {
        return err_line("bad-request", "missing field rid");
    };
    if !valid_rid(rid) {
        return err_line("bad-request", "invalid rid");
    }
    let (backends, victims): (Vec<Arc<Backend>>, Vec<String>) = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        (
            inner.backends.values().cloned().collect(),
            inner.victim_journals.values().cloned().collect(),
        )
    };
    let deadline = state.limits.scrape_timeout;
    let request = format!("trace rid={rid}");
    let scraped: Vec<Option<(Snapshot, JournalSnapshot)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = backends
            .iter()
            .map(|backend| {
                let request = request.as_str();
                scope.spawn(move || {
                    if !backend.is_alive() {
                        return None;
                    }
                    let t0 = Instant::now();
                    let got = fetch_shard_trace(backend, request, deadline);
                    state.obs.scrape_us.record_duration(t0.elapsed());
                    if got.is_none() {
                        record_scrape_fail(state, backend.id);
                    }
                    Some(got)
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("trace scrape thread"))
            .collect()
    });
    let attempted = scraped.len();
    let ok = scraped.iter().filter(|s| s.is_some()).count();
    let mut spans = state.obs.registry.snapshot().spans;
    let mut events = state.obs.registry.journal_snapshot().events;
    for (snap, journal) in scraped.into_iter().flatten() {
        spans.extend(snap.spans);
        events.extend(journal.events);
    }
    for text in victims {
        if let Ok(snap) = JournalSnapshot::parse(&text) {
            events.extend(snap.events);
        }
    }
    let Some(tree) = TraceTree::assemble(rid, &spans, &events) else {
        return err_line(
            "unknown-rid",
            &format!("no span or journal event references rid {rid}"),
        );
    };
    format_response(&Response::ok([
        ("rid", rid.to_string()),
        ("shards", attempted.to_string()),
        ("scraped", ok.to_string()),
        ("failed", (attempted - ok).to_string()),
        ("nodes", tree.root.count().to_string()),
        ("root_us", tree.root.dur_us.to_string()),
        ("data", hex_encode(tree.render().as_bytes())),
    ]))
}

/// One shard's `trace` reply, decoded to its span snapshot and journal
/// events (`None` on timeout, transport failure, a malformed reply, or
/// a shard that predates the verb).
fn fetch_shard_trace(
    backend: &Backend,
    request: &str,
    deadline: Duration,
) -> Option<(Snapshot, JournalSnapshot)> {
    let reply = backend.call_with_deadline(request, deadline)?;
    let resp = parse_response(&reply).ok()?;
    let spans = String::from_utf8(hex_decode(resp.get("data")?).ok()?).ok()?;
    let journal = String::from_utf8(hex_decode(resp.get("journal")?).ok()?).ok()?;
    Some((
        Snapshot::parse(&spans).ok()?,
        JournalSnapshot::parse(&journal).ok()?,
    ))
}

/// `cluster-grow`: spawns a default-configured shard and joins it to the
/// ring — the wire half of [`Cluster::spawn_shard`], which is what lets
/// an autoscaler run against the router without holding `&Cluster`.
fn cluster_grow_line(state: &State) -> String {
    match spawn_shard_on(state, ServerConfig::default()) {
        Ok(id) => {
            let rid = state.obs.registry.mint_rid();
            state
                .obs
                .registry
                .journal_event("cluster.grow", &rid, &[("shard", id.to_string())]);
            format_response(&Response::ok([("shard", id.to_string())]))
        }
        Err(e) => cluster_err_line(&e),
    }
}

/// `cluster-drain`: drains one shard (an explicit `shard=` or the live
/// shard routing the fewest sessions) — the wire half of
/// [`Cluster::drain_shard`].
fn cluster_drain_line(state: &State, fields: &[(String, String)]) -> String {
    let shard = match find(fields, "shard") {
        Some(raw) => match raw.parse::<ShardId>() {
            Ok(s) => s,
            Err(_) => return err_line("bad-request", "shard must be a numeric shard id"),
        },
        None => match least_loaded_shard(state) {
            Some(s) => s,
            None => return cluster_err_line(&ClusterError::NoShards),
        },
    };
    match drain_shard_on(state, shard) {
        Ok(moved) => {
            let rid = state.obs.registry.mint_rid();
            state.obs.registry.journal_event(
                "cluster.drain",
                &rid,
                &[("shard", shard.to_string()), ("moved", moved.to_string())],
            );
            format_response(&Response::ok([
                ("drained", shard.to_string()),
                ("moved", moved.to_string()),
            ]))
        }
        Err(e) => cluster_err_line(&e),
    }
}

/// The live shard currently routing the fewest sessions — the wire
/// drain's default victim, mirroring `snn-heal`'s in-process pool.
fn least_loaded_shard(state: &State) -> Option<ShardId> {
    let (mut counts, slots): (BTreeMap<ShardId, usize>, Vec<Arc<Slot>>) = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        (
            inner
                .backends
                .values()
                .filter(|b| b.is_alive())
                .map(|b| (b.id, 0usize))
                .collect(),
            inner.sessions.values().cloned().collect(),
        )
    };
    for slot in slots {
        let shard = slot.route.lock().expect("session route poisoned").shard;
        if let Some(n) = counts.get_mut(&shard) {
            *n += 1;
        }
    }
    counts.into_iter().min_by_key(|&(_, n)| n).map(|(id, _)| id)
}

/// How many frames a router subscription buffers before a slow consumer
/// starts losing them (mirrors the shard server's policy: drop, count,
/// never block the sampler or the data plane).
const SUBSCRIBE_BUFFER: usize = 8;

/// `subscribe` against the router: periodic `push` frames carrying the
/// merged cluster-wide exposition plus the router's own journal delta.
/// Framing, buffering, and slow-consumer policy are identical to the
/// shard server's, so [`snn_serve::ServeClient::subscribe`] works
/// against either tier.
fn serve_cluster_subscription(
    writer: &mut TcpStream,
    state: &State,
    interval_ms: u64,
) -> io::Result<()> {
    let interval = Duration::from_millis(interval_ms.clamp(10, 10_000));
    let banner = format_response(&Response::ok([(
        "interval_ms",
        interval.as_millis().to_string(),
    )]));
    write_reply(writer, state, &banner)?;
    let (tx, rx) = mpsc::sync_channel::<String>(SUBSCRIBE_BUFFER);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let (_sub, sub_drops) = state.obs.subscriber();
            let mut seq = 0u64;
            let mut prev_total = state.obs.registry.journal_snapshot().total;
            loop {
                if state.inner.lock().expect("cluster state poisoned").shutdown {
                    return; // dropping tx ends the writer loop cleanly
                }
                std::thread::sleep(interval);
                let Some(line) = render_cluster_push(state, seq, &mut prev_total) else {
                    return;
                };
                seq += 1;
                match tx.try_send(line + "\n") {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(_)) => {
                        state.obs.subscribe_drops.inc();
                        sub_drops.inc();
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => return,
                }
            }
        });
        // The writer loop runs on the connection thread; a write error
        // (subscriber gone) drops `rx`, which the sampler sees on its
        // next try_send and exits — the scope then joins it.
        for frame in rx {
            if writer
                .write_all(frame.as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            state.obs.wire.count(PROTO_VERSION, 0, frame.len() as u64);
        }
    });
    Ok(())
}

/// Renders one cluster telemetry push line (no trailing newline): the
/// merged cluster-wide exposition plus the router's own journal delta
/// since `prev_total`. `None` once the router is draining. Shared by the
/// proto 1 dedicated-connection stream and the proto 2 mux sampler.
fn render_cluster_push(state: &State, seq: u64, prev_total: &mut u64) -> Option<String> {
    if state.inner.lock().expect("cluster state poisoned").shutdown {
        return None;
    }
    let (_, _, metrics) = merged_metrics(state);
    let mut journal = state.obs.registry.journal_snapshot();
    // Delta framing, as on the shard tier: only events born since the
    // last frame ride along.
    let fresh = (journal.total - *prev_total).min(journal.events.len() as u64);
    *prev_total = journal.total;
    journal
        .events
        .drain(..journal.events.len() - fresh as usize);
    Some(format!(
        "push seq={seq} data={} journal={}",
        hex_encode(metrics.render().as_bytes()),
        hex_encode(journal.render().as_bytes()),
    ))
}

/// `open`/`restore`: cluster admission, ring placement, optimistic table
/// reservation, then forward. The reservation is removed again if the
/// shard rejects the request.
fn handle_open(line: &str, fields: &[(String, String)], state: &State) -> String {
    let Some(id) = find(fields, "id") else {
        return err_line("bad-request", "missing field id");
    };
    if !protocol::valid_session_id(id) {
        return err_line("bad-request", "invalid session id");
    }
    let budget_j = match find(fields, "budget_j") {
        None => None,
        Some(raw) => match raw.parse::<f64>() {
            Ok(b) if b.is_finite() && b > 0.0 => Some(b),
            _ => return err_line("bad-request", "budget_j must be a positive number"),
        },
    };
    // Create the slot and lock its route *before* publication: a racing
    // request for the same id then queues behind the open instead of
    // reaching the shard ahead of the forwarded `open` line. (The lock
    // is uncontended here — nobody else holds the Arc yet.)
    let slot = Arc::new(Slot {
        route: Mutex::new(Route {
            shard: ShardId::MAX, // placed under the table lock below
            budget_j,
            baseline_j: 0.0,
            spent_j: 0.0,
            samples_seen: 0,
            shadow: None,
            replay_gap: None,
        }),
    });
    let mut route = slot.route.lock().expect("session route poisoned");
    let backend = {
        let mut inner = state.inner.lock().expect("cluster state poisoned");
        if inner.shutdown {
            return err_line("shutdown", "cluster shutting down");
        }
        if inner.sessions.contains_key(id) {
            return err_line("duplicate-session", &format!("session {id} already exists"));
        }
        if inner.sessions.len() >= state.limits.max_sessions {
            return err_line(
                "admission",
                &format!(
                    "cluster session limit reached ({}/{})",
                    inner.sessions.len(),
                    state.limits.max_sessions
                ),
            );
        }
        let Some(shard) = inner.ring.shard_for(id) else {
            return cluster_err_line(&ClusterError::NoShards);
        };
        let backend = inner
            .backends
            .get(&shard)
            .cloned()
            .expect("ring shards are attached backends");
        if budget_j.is_some() && !backend.supports_evict() {
            // A budget the placement shard can never enforce (no evict
            // directory) would be silently void; refuse it up front.
            return err_line(
                "bad-request",
                &format!("shard {shard} has no evict directory and cannot enforce budget_j"),
            );
        }
        route.shard = shard;
        inner.sessions.insert(id.to_string(), Arc::clone(&slot));
        // The eviction tombstone (if any) survives until the shard
        // accepts the open/restore: a rejected restore must not destroy
        // the client's only pointer to its on-disk checkpoint.
        backend
    };
    let release = |state: &State| {
        remove_route_if_current(state, id, &slot, None);
    };
    match backend.call_raw(line, false) {
        Ok(reply) => {
            if reply.starts_with("ok") {
                // Budgets meter work done *from here on*: a restored
                // checkpoint's carried joules (total_j on the reply) are
                // history, not spend. The restore reply also reports the
                // checkpoint's cumulative samples — the starting point
                // for shadow-sequence accounting.
                if let Ok(resp) = parse_response(&reply) {
                    route.baseline_j = resp
                        .get("total_j")
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or(0.0);
                    route.samples_seen = resp
                        .get("samples")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0);
                }
                let mut inner = state.inner.lock().expect("cluster state poisoned");
                inner.evicted.remove(id);
            } else {
                release(state);
            }
            reply
        }
        Err(e) => {
            // The reply was lost but the shard may have applied the open;
            // a best-effort close undoes the possible orphan (it answers
            // unknown-session if the open never landed), so a client
            // retrying this id cannot be wedged on duplicate-session.
            let _ = backend.call_raw(&format!("close id={id}"), false);
            release(state);
            cluster_err_line(&e)
        }
    }
}

/// `close`/`evict`: forward, then drop (close) or tombstone (evict) the
/// routing entry on success.
fn handle_release(line: &str, verb: &str, fields: &[(String, String)], state: &State) -> String {
    let Some((id, slot)) = lookup(fields, state) else {
        return missing_session_line(fields, state);
    };
    let mut route = slot.route.lock().expect("session route poisoned");
    let Some(backend) = live_backend(&id, route.shard, &slot, state) else {
        return err_line("shard-down", &format!("shard {} is down", route.shard));
    };
    match backend.call_raw(line, false) {
        Ok(mut reply) => {
            if reply.starts_with("ok") {
                {
                    let mut inner = state.inner.lock().expect("cluster state poisoned");
                    inner.sessions.remove(&id);
                    if verb == "evict" {
                        let path = parse_response(&reply)
                            .ok()
                            .and_then(|r| r.get("path").map(str::to_string))
                            .unwrap_or_default();
                        inner.evicted.insert(id.clone(), path);
                    }
                }
                // Even a session released right after a failover is owed
                // its replay-gap disclosure.
                if let Some(gap) = route.replay_gap.take() {
                    reply.push_str(&format!(" replay_gap={gap}"));
                }
            } else {
                sync_shard_eviction(&id, &slot, &reply, state);
            }
            reply
        }
        Err(e) => cluster_err_line(&e),
    }
}

/// The per-session data-plane verbs: forward to the pinned shard, then
/// enforce the energy budget after a successful `ingest`.
fn handle_session(line: &str, verb: &str, fields: &[(String, String)], state: &State) -> String {
    let Some((id, slot)) = lookup(fields, state) else {
        return missing_session_line(fields, state);
    };
    let mut route = slot.route.lock().expect("session route poisoned");
    let Some(backend) = live_backend(&id, route.shard, &slot, state) else {
        return err_line("shard-down", &format!("shard {} is down", route.shard));
    };
    let idempotent = matches!(verb, "report" | "energy" | "checkpoint");
    match backend.call_raw(line, idempotent) {
        Ok(mut reply) => {
            let reply_total_j = || {
                parse_response(&reply)
                    .ok()
                    .and_then(|r| r.get("total_j").and_then(|v| v.parse::<f64>().ok()))
            };
            let reply_samples = || {
                parse_response(&reply)
                    .ok()
                    .and_then(|r| r.get("samples").and_then(|v| v.parse::<u64>().ok()))
            };
            if !reply.starts_with("ok") {
                sync_shard_eviction(&id, &slot, &reply, state);
            } else if verb == "ingest" {
                // The ingest reply carries the session's cumulative
                // joules, so budget enforcement costs no extra round
                // trip. Spend is measured from the admission baseline —
                // a restored checkpoint's history is not billed again.
                if let Some(spent) = reply_total_j().map(|total| total - route.baseline_j) {
                    route.spent_j = spent;
                    if route.budget_j.is_some_and(|budget| spent > budget) {
                        if let Some(path) = evict_on_shard(&id, &backend) {
                            // Over budget and checkpointed: release the
                            // route and leave the tombstone. The in-flight
                            // ingest reply stands; the *next* request
                            // answers `session-evicted` with the path.
                            route.budget_j = None;
                            let mut inner = state.inner.lock().expect("cluster state poisoned");
                            inner.sessions.remove(&id);
                            inner.evicted.insert(id.clone(), path);
                        }
                    }
                }
            } else if verb == "swap" {
                // A hot swap replaces the learner's cumulative counters;
                // rebase so spend stays continuous and the budget cannot
                // be evaded (or spuriously tripped) by swapping.
                if let Some(total) = reply_total_j() {
                    route.baseline_j = total - route.spent_j;
                }
            }
            if reply.starts_with("ok") {
                // Mirror the session's cumulative sample count (ingest
                // and swap replies report it) for shadow-sequence and
                // replay-gap accounting.
                if matches!(verb, "ingest" | "swap") {
                    if let Some(samples) = reply_samples() {
                        route.samples_seen = samples;
                    }
                }
                // A completed failover owes the client one disclosure:
                // how many ingested samples the dead shard took with it.
                // Parsers tolerate unknown fields, so the stamp is safe
                // on every reply shape.
                if let Some(gap) = route.replay_gap.take() {
                    reply.push_str(&format!(" replay_gap={gap}"));
                }
            }
            reply
        }
        Err(e) => cluster_err_line(&e),
    }
}

/// A shard can evict a session on its own (idle-timeout sweep, or an
/// operator talking to the shard directly). When such an eviction
/// surfaces in a relayed reply, mirror it into the router's table —
/// otherwise the id stays routed forever, leaking cluster capacity and
/// answering `duplicate-session` to every re-open.
fn sync_shard_eviction(id: &str, slot: &Arc<Slot>, reply: &str, state: &State) {
    if !reply.starts_with("err") {
        return;
    }
    let Ok(Response::Err { code, msg }) = parse_response(reply) else {
        return;
    };
    if code != "session-evicted" {
        return;
    }
    // The shard's message is exactly the restore path.
    remove_route_if_current(state, id, slot, Some(msg));
}

/// Looks up a session slot by the request's `id` field.
fn lookup(fields: &[(String, String)], state: &State) -> Option<(String, Arc<Slot>)> {
    let id = find(fields, "id")?;
    let inner = state.inner.lock().expect("cluster state poisoned");
    let slot = inner.sessions.get(id)?;
    Some((id.to_string(), Arc::clone(slot)))
}

/// The error line for a request whose session is not in the table:
/// evicted sessions answer their restore path, everything else is
/// unknown.
fn missing_session_line(fields: &[(String, String)], state: &State) -> String {
    let Some(id) = find(fields, "id") else {
        return err_line("bad-request", "missing field id");
    };
    let inner = state.inner.lock().expect("cluster state poisoned");
    match inner.evicted.get(id) {
        Some(path) => err_line("session-evicted", path),
        None => err_line("unknown-session", &format!("no session {id}")),
    }
}

/// Resolves the backend for a route, failing fast (and releasing the
/// session) when the shard is dead or detached.
///
/// With shadowing enabled the route is kept instead: the health loop's
/// failover sweep may yet restore the session from its replica, and a
/// client retrying into the detection window must not race the sweep
/// into freeing the id (the sweep itself drops whatever it cannot
/// prove). The client sees `shard-down` until the failover lands.
fn live_backend(id: &str, shard: ShardId, slot: &Arc<Slot>, state: &State) -> Option<Arc<Backend>> {
    let backend = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner.backends.get(&shard).cloned()
    };
    match backend {
        Some(b) if b.is_alive() => Some(b),
        _ => {
            if state.limits.shadow_interval.is_none() {
                // The shard took the session state with it; free the id.
                remove_route_if_current(state, id, slot, None);
            }
            None
        }
    }
}

/// Evicts an over-budget session on its shard, returning the restore
/// path the shard checkpointed to.
fn evict_on_shard(id: &str, backend: &Backend) -> Option<String> {
    let evict_reply = backend.call_raw(&format!("evict id={id}"), false).ok()?;
    match parse_response(&evict_reply).ok()? {
        resp @ Response::Ok(_) => resp.get("path").map(str::to_string),
        // A shard without an evict directory cannot honour the budget by
        // checkpointing; keep serving rather than destroy state.
        Response::Err { .. } => None,
    }
}

// ---------------------------------------------------------------------------
// Stats aggregation.

fn shard_snapshot(state: &State) -> Vec<ShardStats> {
    let backends: Vec<Arc<Backend>> = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        inner.backends.values().cloned().collect()
    };
    // One scoped thread per shard, each on its own deadline-bounded
    // connection: a slow or stalled shard costs the caller at most one
    // scrape_timeout in total — never the much larger data-plane
    // io_timeout, and never one deadline per shard in sequence.
    std::thread::scope(|scope| {
        let handles: Vec<_> = backends
            .iter()
            .map(|backend| scope.spawn(move || shard_stats(backend, state)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard stats thread"))
            .collect()
    })
}

fn shard_stats(backend: &Arc<Backend>, state: &State) -> ShardStats {
    let mut stats = ShardStats {
        id: backend.id,
        addr: backend.addr,
        alive: backend.is_alive(),
        sessions: 0,
        queued_jobs: 0,
        total_samples: 0,
        total_j: 0.0,
        uptime_s: 0,
        scrape_us: 0,
    };
    if stats.alive {
        let t0 = Instant::now();
        let resp = backend
            .call_with_deadline("stats", state.limits.scrape_timeout)
            .and_then(|reply| parse_response(&reply).ok());
        let elapsed = t0.elapsed();
        stats.scrape_us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        state.obs.scrape_us.record_duration(elapsed);
        if let Some(resp) = resp {
            let num = |key: &str| resp.get(key).and_then(|v| v.parse::<u64>().ok());
            stats.sessions = num("sessions").unwrap_or(0) as usize;
            stats.queued_jobs = num("queued_jobs").unwrap_or(0) as usize;
            stats.total_samples = num("total_samples").unwrap_or(0);
            stats.total_j = resp
                .get("total_j")
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or(0.0);
            stats.uptime_s = num("uptime_s").unwrap_or(0);
        } else {
            record_scrape_fail(state, backend.id);
        }
    }
    stats
}

fn gather_stats(state: &State) -> ClusterStats {
    let shards = shard_snapshot(state);
    let (sessions, evicted_sessions) = {
        let inner = state.inner.lock().expect("cluster state poisoned");
        (inner.sessions.len(), inner.evicted.len())
    };
    ClusterStats {
        sessions,
        evicted_sessions,
        queued_jobs: shards.iter().map(|s| s.queued_jobs).sum(),
        total_samples: shards.iter().map(|s| s.total_samples).sum(),
        total_j: shards.iter().map(|s| s.total_j).sum(),
        shards,
    }
}

/// The aggregate `stats` line, field-compatible with a single shard's so
/// any `snn-serve` protocol client works unchanged against a cluster.
fn stats_line(state: &State) -> String {
    let stats = gather_stats(state);
    let ticks: u64 = 0; // ticks are a per-shard notion; see cluster-stats
    format_response(&Response::ok([
        ("sessions", stats.sessions.to_string()),
        ("max_sessions", state.limits.max_sessions.to_string()),
        ("queued_jobs", stats.queued_jobs.to_string()),
        ("ticks", ticks.to_string()),
        ("total_samples", stats.total_samples.to_string()),
        ("evicted", stats.evicted_sessions.to_string()),
        ("total_j", stats.total_j.to_string()),
    ]))
}

fn cluster_stats_line(state: &State) -> String {
    let stats = gather_stats(state);
    let mut pairs: Vec<(String, String)> = vec![
        ("shards".into(), stats.shards.len().to_string()),
        (
            "alive".into(),
            stats.shards.iter().filter(|s| s.alive).count().to_string(),
        ),
        ("version".into(), env!("CARGO_PKG_VERSION").to_string()),
        ("sessions".into(), stats.sessions.to_string()),
        ("evicted".into(), stats.evicted_sessions.to_string()),
        ("queued_jobs".into(), stats.queued_jobs.to_string()),
        ("total_samples".into(), stats.total_samples.to_string()),
        ("total_j".into(), stats.total_j.to_string()),
        (
            "health_interval_ms".into(),
            state.limits.health_interval.as_millis().to_string(),
        ),
        (
            "probes_to_kill".into(),
            state.limits.probes_to_kill.to_string(),
        ),
        // 0 reads as "shadowing off": the knob is an interval, and a
        // zero interval is never configured.
        (
            "shadow_interval_ms".into(),
            state
                .limits
                .shadow_interval
                .map_or(0, |d| d.as_millis())
                .to_string(),
        ),
    ];
    for (i, shard) in stats.shards.iter().enumerate() {
        pairs.push((format!("s{i}_id"), shard.id.to_string()));
        pairs.push((format!("s{i}_alive"), u8::from(shard.alive).to_string()));
        pairs.push((format!("s{i}_sessions"), shard.sessions.to_string()));
        pairs.push((format!("s{i}_queued"), shard.queued_jobs.to_string()));
        pairs.push((format!("s{i}_samples"), shard.total_samples.to_string()));
        pairs.push((format!("s{i}_j"), shard.total_j.to_string()));
        pairs.push((format!("s{i}_uptime_s"), shard.uptime_s.to_string()));
        pairs.push((format!("s{i}_scrape_us"), shard.scrape_us.to_string()));
    }
    format_response(&Response::Ok(pairs))
}
