//! Live session migration: `checkpoint` on the source shard → `restore`
//! on the target → `close` on the source.
//!
//! The caller holds the session's route lock for the whole sequence, so
//! no client request can interleave with the move: every sample the
//! session has seen is inside the checkpoint, and every later sample is
//! served by the restored copy. Because wire checkpoints are bit-exact
//! (the PR 2/PR 4 contract), a migrated session finishes **byte-identical**
//! to one that never moved — pinned by `tests/cluster_shards.rs`.
//!
//! Ordering is restore-first: the target must hold a live copy before
//! the source copy is released. If the restore fails (target admission,
//! snapshot rejection, target death) the session keeps serving on the
//! source and the error propagates. After a successful restore the
//! source `close` is best-effort — its only failure modes leave either
//! no copy (source died: nothing to close) or an unreachable orphan that
//! the source frees when it is drained or stopped.
//!
//! Every forwarded line carries the migration's `rid` as its final
//! field, so the source's `serve.exec.checkpoint` span, the target's
//! `serve.exec.restore` span, and the router's `cluster.migrate` span
//! all share one request id and a `cluster-metrics` scrape stitches the
//! move back together across processes.

use std::time::Instant;

use snn_serve::protocol::{parse_response, Response};

use crate::backend::Backend;
use crate::obs::ClusterObs;
use crate::ClusterError;

/// Moves session `id` from `from` to `to`. Caller holds the route lock.
/// `rid` attributes the move's spans (here and on both shards).
pub(crate) fn migrate_locked(
    id: &str,
    from: &Backend,
    to: &Backend,
    rid: &str,
    obs: &ClusterObs,
) -> Result<(), ClusterError> {
    let t0 = Instant::now();
    match migrate_inner(id, from, to, rid) {
        Ok(bytes) => {
            let dur = t0.elapsed();
            obs.migrations.inc();
            obs.migrate_us.record_duration(dur);
            obs.migrate_bytes.record(bytes);
            obs.registry.span(
                "cluster.migrate",
                rid,
                dur,
                &[
                    ("id", id.to_string()),
                    ("from", from.id.to_string()),
                    ("to", to.id.to_string()),
                    ("bytes", bytes.to_string()),
                ],
            );
            Ok(())
        }
        Err(e) => {
            obs.migration_fail.inc();
            Err(e)
        }
    }
}

/// The move itself, returning the decoded snapshot size in bytes.
fn migrate_inner(id: &str, from: &Backend, to: &Backend, rid: &str) -> Result<u64, ClusterError> {
    let snapshot_hex = fetch_checkpoint_hex(id, from, rid)?;
    let bytes = (snapshot_hex.len() / 2) as u64;

    // Restore under the same id on the target (ids are namespaced per
    // shard process, so the temporary double existence cannot collide).
    // The snapshot travels as the hex the source produced — no decode or
    // re-encode on the router.
    let restore_line = format!("restore id={id} data={snapshot_hex} rid={rid}");
    let reply = match to.call_raw(&restore_line, false) {
        Ok(reply) => reply,
        Err(e) => {
            // A lost reply may leave an applied restore on the target; a
            // best-effort close undoes it (unknown-session if it never
            // applied), so a retried migration cannot hit
            // duplicate-session forever.
            let _ = to.call_raw(&format!("close id={id} rid={rid}"), false);
            return Err(e);
        }
    };
    match parse_response(&reply) {
        Ok(Response::Ok(_)) => {}
        Ok(Response::Err { code, msg }) => {
            return Err(ClusterError::Migration {
                id: id.to_string(),
                detail: format!("target shard {} refused restore [{code}]: {msg}", to.id),
            })
        }
        Err(e) => {
            return Err(ClusterError::Migration {
                id: id.to_string(),
                detail: format!("target shard {} answered garbage: {e}", to.id),
            })
        }
    }

    // Best-effort release of the source copy; see the module docs.
    let _ = from.call_raw(&format!("close id={id} rid={rid}"), false);
    Ok(bytes)
}

/// Checkpoints `id` on `from`, returning the snapshot payload still in
/// its wire hex form (shared with the shadower in [`crate::heal`]).
pub(crate) fn fetch_checkpoint_hex(
    id: &str,
    from: &Backend,
    rid: &str,
) -> Result<String, ClusterError> {
    let reply = from.call_raw(&format!("checkpoint id={id} rid={rid}"), true)?;
    match parse_response(&reply) {
        Ok(resp @ Response::Ok(_)) => {
            resp.get("data")
                .map(str::to_string)
                .ok_or_else(|| ClusterError::Migration {
                    id: id.to_string(),
                    detail: format!("source shard {} sent a checkpoint with no data", from.id),
                })
        }
        Ok(Response::Err { code, msg }) => Err(ClusterError::Migration {
            id: id.to_string(),
            detail: format!(
                "source shard {} refused checkpoint [{code}]: {msg}",
                from.id
            ),
        }),
        Err(e) => Err(ClusterError::Migration {
            id: id.to_string(),
            detail: format!("source shard {} answered garbage: {e}", from.id),
        }),
    }
}
