//! One backend shard: its address, liveness, a small connection pool,
//! and — for shards the cluster spawned itself — the owned in-process
//! [`SnnServer`].
//!
//! Connections are plain [`ServeClient`]s, so every one performs the
//! `hello proto=…` handshake on connect: a backend speaking a different
//! protocol generation is refused at attach time
//! ([`ClusterError::ProtoMismatch`]), never silently misparsed.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use snn_serve::{ClientError, ServeClient, ServerConfig, SnnServer, PROTO_VERSION};

use crate::ring::ShardId;
use crate::ClusterError;

/// How many idle connections a shard keeps warm. More concurrent router
/// connections simply open (and later drop) extras.
const POOL_KEEP: usize = 8;

/// Health probes get their own short deadline: a probe exists to answer
/// "is this shard responsive?", so it must never block the health thread
/// behind a stalled-but-connected peer.
const PROBE_TIMEOUT: Duration = Duration::from_secs(1);

#[derive(Debug)]
pub(crate) struct Backend {
    pub(crate) id: ShardId,
    pub(crate) addr: SocketAddr,
    alive: AtomicBool,
    pool: Mutex<Vec<ServeClient>>,
    /// Bound on every data-plane read/write to this shard (`None`
    /// blocks forever). Keeps a stalled shard from hanging router
    /// connection threads indefinitely.
    io_timeout: Option<Duration>,
    /// Whether the shard advertised eviction support (`evict=1` in its
    /// hello banner). Budgeted sessions are refused placement on shards
    /// that could never enforce the budget.
    supports_evict: AtomicBool,
    /// Present only for shards spawned in-process by the cluster.
    server: Mutex<Option<SnnServer>>,
}

impl Backend {
    /// Starts a fresh in-process `snn-serve` shard on an ephemeral port
    /// and attaches to it.
    pub(crate) fn spawn(
        id: ShardId,
        config: ServerConfig,
        io_timeout: Option<Duration>,
    ) -> Result<Backend, ClusterError> {
        let server = SnnServer::start("127.0.0.1:0", config).map_err(ClusterError::Io)?;
        let backend = Backend {
            id,
            addr: server.local_addr(),
            alive: AtomicBool::new(true),
            pool: Mutex::new(Vec::new()),
            io_timeout,
            supports_evict: AtomicBool::new(false),
            server: Mutex::new(Some(server)),
        };
        backend.probe()?;
        Ok(backend)
    }

    /// Attaches to an already-running shard, verifying the protocol
    /// handshake before admitting it to the cluster.
    pub(crate) fn attach(
        id: ShardId,
        addr: SocketAddr,
        io_timeout: Option<Duration>,
    ) -> Result<Backend, ClusterError> {
        let backend = Backend {
            id,
            addr,
            alive: AtomicBool::new(true),
            pool: Mutex::new(Vec::new()),
            io_timeout,
            supports_evict: AtomicBool::new(false),
            server: Mutex::new(None),
        };
        backend.probe()?;
        Ok(backend)
    }

    fn probe(&self) -> Result<(), ClusterError> {
        let mut client = self.connect()?;
        // Read the versioned banner once more to learn the shard's
        // capabilities (connect's own handshake discards the fields).
        if let Ok(banner) = client.call_raw(&format!("hello proto={PROTO_VERSION}")) {
            if let Ok(resp) = snn_serve::protocol::parse_response(&banner) {
                self.supports_evict
                    .store(resp.get("evict") == Some("1"), Ordering::SeqCst);
            }
        }
        self.give_back(client);
        Ok(())
    }

    /// Whether the shard advertised eviction support at attach time.
    pub(crate) fn supports_evict(&self) -> bool {
        self.supports_evict.load(Ordering::SeqCst)
    }

    fn connect(&self) -> Result<ServeClient, ClusterError> {
        let attempt = match self.io_timeout {
            Some(timeout) => ServeClient::connect_with_timeout(self.addr, timeout),
            None => ServeClient::connect(self.addr),
        };
        match attempt {
            Ok(client) => Ok(client),
            Err(ClientError::Server { code, msg }) if code == "proto-mismatch" => {
                Err(ClusterError::ProtoMismatch {
                    shard: self.id,
                    detail: msg,
                })
            }
            Err(ClientError::Io(_)) => Err(ClusterError::ShardDown(self.id)),
            Err(other) => Err(ClusterError::Backend {
                shard: self.id,
                detail: other.to_string(),
            }),
        }
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Flags the shard dead and drops its pooled connections. Requests
    /// routed here now fail fast with [`ClusterError::ShardDown`].
    pub(crate) fn mark_dead(&self) {
        self.alive.store(false, Ordering::SeqCst);
        self.pool.lock().expect("backend pool poisoned").clear();
    }

    /// Takes a connection (pooled or fresh). The boolean is `true` when
    /// the connection came from the pool and may therefore be stale.
    pub(crate) fn checkout(&self) -> Result<(ServeClient, bool), ClusterError> {
        if !self.is_alive() {
            return Err(ClusterError::ShardDown(self.id));
        }
        if let Some(client) = self.pool.lock().expect("backend pool poisoned").pop() {
            return Ok((client, true));
        }
        Ok((self.connect()?, false))
    }

    /// Returns a connection to the pool (dropped beyond the keep bound or
    /// once the shard is dead).
    pub(crate) fn give_back(&self, client: ServeClient) {
        if self.is_alive() {
            let mut pool = self.pool.lock().expect("backend pool poisoned");
            if pool.len() < POOL_KEEP {
                pool.push(client);
            }
        }
    }

    /// Forwards one raw request line and returns the raw response line.
    /// With `idempotent`, a failure on a *pooled* connection (which may
    /// simply have gone stale) is retried once on a fresh connection.
    /// Non-idempotent lines (`ingest`, `open`, `swap`, …) are **never**
    /// resent: a connection that died after the shard applied the
    /// request would make a blind retry apply it twice, silently forking
    /// the session's state — the caller surfaces the error and lets the
    /// client decide.
    pub(crate) fn call_raw(&self, line: &str, idempotent: bool) -> Result<String, ClusterError> {
        loop {
            let (mut client, pooled) = self.checkout()?;
            match client.call_raw(line) {
                Ok(reply) => {
                    self.give_back(client);
                    return Ok(reply);
                }
                Err(_) if pooled && idempotent => continue,
                Err(e) => {
                    return Err(ClusterError::Backend {
                        shard: self.id,
                        detail: e.to_string(),
                    })
                }
            }
        }
    }

    /// One request/reply round trip on a dedicated connection with
    /// `deadline` bounding connect, write and read separately — the
    /// fan-out scrape path (`stats`, `metrics`), where a slow shard must
    /// cost its caller at most the deadline, never the data-plane
    /// `io_timeout`. Like [`Backend::ping`] it skips the `hello`
    /// handshake (the server answers any verb without one) and returns
    /// `None` on any transport failure.
    pub(crate) fn call_with_deadline(&self, line: &str, deadline: Duration) -> Option<String> {
        let mut stream = TcpStream::connect_timeout(&self.addr, deadline).ok()?;
        stream.set_read_timeout(Some(deadline)).ok()?;
        stream.set_write_timeout(Some(deadline)).ok()?;
        stream.write_all(line.trim_end().as_bytes()).ok()?;
        stream.write_all(b"\n").ok()?;
        stream.flush().ok()?;
        let mut reply = String::new();
        match BufReader::new(stream).read_line(&mut reply) {
            Ok(n) if n > 0 => Some(reply.trim_end().to_string()),
            _ => None,
        }
    }

    /// Health probe: one `ping` round trip on a dedicated connection
    /// with a short deadline on connect, write and read, so a
    /// stalled-but-connected shard reads as unhealthy instead of
    /// hanging the health thread (and with it all failure detection).
    pub(crate) fn ping(&self) -> bool {
        let Ok(mut stream) = TcpStream::connect_timeout(&self.addr, PROBE_TIMEOUT) else {
            return false;
        };
        if stream.set_read_timeout(Some(PROBE_TIMEOUT)).is_err()
            || stream.set_write_timeout(Some(PROBE_TIMEOUT)).is_err()
            || stream.write_all(b"ping\n").is_err()
        {
            return false;
        }
        let mut reply = String::new();
        match BufReader::new(stream).read_line(&mut reply) {
            Ok(n) if n > 0 => reply.starts_with("ok"),
            _ => false,
        }
    }

    /// Stops an owned in-process server (no-op for attached shards) and
    /// marks the shard dead.
    pub(crate) fn stop(&self) {
        self.mark_dead();
        if let Some(server) = self.server.lock().expect("backend server poisoned").take() {
            server.shutdown();
        }
    }
}
