//! One backend shard: its address, liveness, its relay channel, and —
//! for shards the cluster spawned itself — the owned in-process
//! [`SnnServer`].
//!
//! The relay channel is negotiated at attach time: a shard that speaks
//! proto 2 gets **one** shared multiplexed connection
//! ([`snn_serve::MuxClient`]) over which every router thread interleaves
//! session traffic, checkpoint blobs, shadow pushes and migrations; a
//! proto-1-only shard falls back to the classic small connection pool.
//! Either way every connection performs the `hello proto=…` handshake,
//! so a backend speaking an unknown protocol generation is refused at
//! attach time ([`ClusterError::ProtoMismatch`]), never silently
//! misparsed.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use snn_serve::frame::line_payload_len;
use snn_serve::{
    ClientError, MuxClient, ServeClient, ServerConfig, SnnServer, PROTO_V2, PROTO_VERSION,
};

use crate::obs::WireObs;
use crate::ring::ShardId;
use crate::ClusterError;

/// How many idle proto-1 connections a shard keeps warm. More concurrent
/// router connections simply open (and later drop) extras.
const POOL_KEEP: usize = 8;

/// Health probes get their own short deadline: a probe exists to answer
/// "is this shard responsive?", so it must never block the health thread
/// behind a stalled-but-connected peer.
const PROBE_TIMEOUT: Duration = Duration::from_secs(1);

#[derive(Debug)]
pub(crate) struct Backend {
    pub(crate) id: ShardId,
    pub(crate) addr: SocketAddr,
    alive: AtomicBool,
    pool: Mutex<Vec<ServeClient>>,
    /// Negotiated router↔shard protocol generation, settled by the
    /// attach-time probe ([`PROTO_V2`] preferred, [`PROTO_VERSION`] on
    /// `proto-mismatch` fallback).
    proto: AtomicU32,
    /// Highest protocol generation to offer the shard (a knob so mixed
    /// clusters and A/B byte-count comparisons can pin proto 1).
    max_proto: u32,
    /// The shared multiplexed relay connection (proto 2 shards only).
    mux: Mutex<Option<Arc<MuxClient>>>,
    /// Shard-facing byte counters, bucketed by negotiated protocol.
    wire: WireObs,
    /// Bound on every data-plane read/write to this shard (`None`
    /// blocks forever). Keeps a stalled shard from hanging router
    /// connection threads indefinitely.
    io_timeout: Option<Duration>,
    /// Whether the shard advertised eviction support (`evict=1` in its
    /// hello banner). Budgeted sessions are refused placement on shards
    /// that could never enforce the budget.
    supports_evict: AtomicBool,
    /// Present only for shards spawned in-process by the cluster.
    server: Mutex<Option<SnnServer>>,
}

impl Backend {
    /// Starts a fresh in-process `snn-serve` shard on an ephemeral port
    /// and attaches to it.
    pub(crate) fn spawn(
        id: ShardId,
        config: ServerConfig,
        io_timeout: Option<Duration>,
        max_proto: u32,
        wire: WireObs,
    ) -> Result<Backend, ClusterError> {
        let server = SnnServer::start("127.0.0.1:0", config).map_err(ClusterError::Io)?;
        let backend = Backend {
            id,
            addr: server.local_addr(),
            alive: AtomicBool::new(true),
            pool: Mutex::new(Vec::new()),
            proto: AtomicU32::new(PROTO_VERSION),
            max_proto,
            mux: Mutex::new(None),
            wire,
            io_timeout,
            supports_evict: AtomicBool::new(false),
            server: Mutex::new(Some(server)),
        };
        backend.probe()?;
        Ok(backend)
    }

    /// Attaches to an already-running shard, verifying the protocol
    /// handshake before admitting it to the cluster.
    pub(crate) fn attach(
        id: ShardId,
        addr: SocketAddr,
        io_timeout: Option<Duration>,
        max_proto: u32,
        wire: WireObs,
    ) -> Result<Backend, ClusterError> {
        let backend = Backend {
            id,
            addr,
            alive: AtomicBool::new(true),
            pool: Mutex::new(Vec::new()),
            proto: AtomicU32::new(PROTO_VERSION),
            max_proto,
            mux: Mutex::new(None),
            wire,
            io_timeout,
            supports_evict: AtomicBool::new(false),
            server: Mutex::new(None),
        };
        backend.probe()?;
        Ok(backend)
    }

    /// Attach-time negotiation: offer the newest protocol first and
    /// remember what the shard actually speaks.
    fn probe(&self) -> Result<(), ClusterError> {
        if self.max_proto >= PROTO_V2 {
            match self.connect_proto2() {
                Ok(mut client) => {
                    self.proto.store(PROTO_V2, Ordering::SeqCst);
                    self.learn_caps(&mut client, PROTO_V2);
                    if let Some(mux) = client.mux() {
                        *self.mux.lock().expect("backend mux poisoned") = Some(mux);
                    }
                    return Ok(());
                }
                // A proto-1-only shard is a supported peer, not an
                // error: fall through to the classic pool.
                Err(ClusterError::ProtoMismatch { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        self.proto.store(PROTO_VERSION, Ordering::SeqCst);
        let mut client = self.connect()?;
        self.learn_caps(&mut client, PROTO_VERSION);
        self.give_back(client);
        Ok(())
    }

    /// Reads the versioned banner once more to learn the shard's
    /// capabilities (connect's own handshake discards the fields).
    fn learn_caps(&self, client: &mut ServeClient, proto: u32) {
        if let Ok(banner) = client.call_raw(&format!("hello proto={proto}")) {
            if let Ok(resp) = snn_serve::protocol::parse_response(&banner) {
                self.supports_evict
                    .store(resp.get("evict") == Some("1"), Ordering::SeqCst);
            }
        }
    }

    /// Whether the shard advertised eviction support at attach time.
    pub(crate) fn supports_evict(&self) -> bool {
        self.supports_evict.load(Ordering::SeqCst)
    }

    /// The negotiated router↔shard protocol generation.
    pub(crate) fn proto(&self) -> u32 {
        self.proto.load(Ordering::SeqCst)
    }

    fn lift(&self, attempt: Result<ServeClient, ClientError>) -> Result<ServeClient, ClusterError> {
        match attempt {
            Ok(client) => Ok(client),
            Err(ClientError::Server { code, msg }) if code == "proto-mismatch" => {
                Err(ClusterError::ProtoMismatch {
                    shard: self.id,
                    detail: msg,
                })
            }
            Err(ClientError::Io(_)) => Err(ClusterError::ShardDown(self.id)),
            Err(other) => Err(ClusterError::Backend {
                shard: self.id,
                detail: other.to_string(),
            }),
        }
    }

    fn connect(&self) -> Result<ServeClient, ClusterError> {
        self.lift(match self.io_timeout {
            Some(timeout) => ServeClient::connect_with_timeout(self.addr, timeout),
            None => ServeClient::connect(self.addr),
        })
    }

    fn connect_proto2(&self) -> Result<ServeClient, ClusterError> {
        self.lift(match self.io_timeout {
            Some(timeout) => ServeClient::connect_with_proto_timeout(self.addr, PROTO_V2, timeout),
            None => ServeClient::connect_with_proto(self.addr, PROTO_V2),
        })
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Flags the shard dead and drops its pooled connections. Requests
    /// routed here now fail fast with [`ClusterError::ShardDown`].
    pub(crate) fn mark_dead(&self) {
        self.alive.store(false, Ordering::SeqCst);
        self.pool.lock().expect("backend pool poisoned").clear();
        *self.mux.lock().expect("backend mux poisoned") = None;
    }

    /// Takes a connection (pooled or fresh). The boolean is `true` when
    /// the connection came from the pool and may therefore be stale.
    pub(crate) fn checkout(&self) -> Result<(ServeClient, bool), ClusterError> {
        if !self.is_alive() {
            return Err(ClusterError::ShardDown(self.id));
        }
        if let Some(client) = self.pool.lock().expect("backend pool poisoned").pop() {
            return Ok((client, true));
        }
        Ok((self.connect()?, false))
    }

    /// Returns a connection to the pool (dropped beyond the keep bound or
    /// once the shard is dead).
    pub(crate) fn give_back(&self, client: ServeClient) {
        if self.is_alive() {
            let mut pool = self.pool.lock().expect("backend pool poisoned");
            if pool.len() < POOL_KEEP {
                pool.push(client);
            }
        }
    }

    /// Forwards one raw request line and returns the raw response line.
    /// With `idempotent`, a failure on a *pooled* connection (which may
    /// simply have gone stale) is retried once on a fresh connection.
    /// Non-idempotent lines (`ingest`, `open`, `swap`, …) are **never**
    /// resent: a connection that died after the shard applied the
    /// request would make a blind retry apply it twice, silently forking
    /// the session's state — the caller surfaces the error and lets the
    /// client decide.
    pub(crate) fn call_raw(&self, line: &str, idempotent: bool) -> Result<String, ClusterError> {
        if self.proto() >= PROTO_V2 {
            return self.call_raw_mux(line, idempotent);
        }
        loop {
            let (mut client, pooled) = self.checkout()?;
            match client.call_raw(line) {
                Ok(reply) => {
                    let trimmed = line.trim_end_matches('\n');
                    self.wire.count(
                        PROTO_VERSION,
                        reply.len() as u64 + 1,
                        trimmed.len() as u64 + 1,
                    );
                    // Proto 1 moves payloads as hex text: count the hex
                    // characters that actually crossed the wire.
                    self.wire.count_payload(
                        PROTO_VERSION,
                        line_payload_len(trimmed) + line_payload_len(&reply),
                    );
                    self.give_back(client);
                    return Ok(reply);
                }
                Err(_) if pooled && idempotent => continue,
                Err(e) => {
                    return Err(ClusterError::Backend {
                        shard: self.id,
                        detail: e.to_string(),
                    })
                }
            }
        }
    }

    /// [`Backend::call_raw`] over the shared multiplexed connection. The
    /// retry rule mirrors the pool path exactly: a failure on a *reused*
    /// connection (which may have gone stale between calls) is retried
    /// once on a fresh one, and only for idempotent lines.
    fn call_raw_mux(&self, line: &str, idempotent: bool) -> Result<String, ClusterError> {
        let mut retried = false;
        loop {
            let (mux, fresh) = self.mux_handle()?;
            match mux.call_line_counted(line.trim_end_matches('\n')) {
                Ok((reply, tx, rx)) => {
                    self.wire.count(PROTO_V2, rx, tx);
                    // The reconstructed lines carry the payloads re-hexed;
                    // the frames moved half that, as raw bytes.
                    self.wire.count_payload(
                        PROTO_V2,
                        (line_payload_len(line.trim_end_matches('\n')) + line_payload_len(&reply))
                            / 2,
                    );
                    return Ok(reply);
                }
                Err(_) if !fresh && idempotent && !retried => {
                    retried = true;
                    // Like a stale pooled connection, a reused channel is
                    // not trusted after a failure: drop the shared handle
                    // (in-flight callers holding their own `Arc` finish
                    // undisturbed; the socket closes with the last clone).
                    self.clear_mux(&mux);
                    continue;
                }
                Err(e) => {
                    if mux.is_dead() {
                        self.clear_mux(&mux);
                    }
                    return Err(ClusterError::Backend {
                        shard: self.id,
                        detail: e.to_string(),
                    });
                }
            }
        }
    }

    /// Takes the shared multiplexed connection, reconnecting when it is
    /// missing or dead. The boolean is `true` when the connection was
    /// freshly established by this call.
    fn mux_handle(&self) -> Result<(Arc<MuxClient>, bool), ClusterError> {
        if !self.is_alive() {
            return Err(ClusterError::ShardDown(self.id));
        }
        let mut guard = self.mux.lock().expect("backend mux poisoned");
        if let Some(mux) = guard.as_ref() {
            if !mux.is_dead() {
                return Ok((Arc::clone(mux), false));
            }
            *guard = None;
        }
        let client = self.connect_proto2()?;
        let mux = client.mux().ok_or_else(|| ClusterError::Backend {
            shard: self.id,
            detail: "proto 2 negotiation lost on reconnect".to_string(),
        })?;
        *guard = Some(Arc::clone(&mux));
        Ok((mux, true))
    }

    /// Drops the shared handle iff it still points at `mux` (a
    /// concurrent caller may already have replaced it).
    fn clear_mux(&self, mux: &Arc<MuxClient>) {
        let mut guard = self.mux.lock().expect("backend mux poisoned");
        if guard.as_ref().is_some_and(|m| Arc::ptr_eq(m, mux)) {
            *guard = None;
        }
    }

    /// One request/reply round trip on a dedicated connection with
    /// `deadline` bounding connect, write and read separately — the
    /// fan-out scrape path (`stats`, `metrics`), where a slow shard must
    /// cost its caller at most the deadline, never the data-plane
    /// `io_timeout`. Like [`Backend::ping`] it skips the `hello`
    /// handshake (the server answers any verb without one) and returns
    /// `None` on any transport failure.
    pub(crate) fn call_with_deadline(&self, line: &str, deadline: Duration) -> Option<String> {
        let mut stream = TcpStream::connect_timeout(&self.addr, deadline).ok()?;
        stream.set_read_timeout(Some(deadline)).ok()?;
        stream.set_write_timeout(Some(deadline)).ok()?;
        stream.write_all(line.trim_end().as_bytes()).ok()?;
        stream.write_all(b"\n").ok()?;
        stream.flush().ok()?;
        let mut reply = String::new();
        match BufReader::new(stream).read_line(&mut reply) {
            Ok(n) if n > 0 => Some(reply.trim_end().to_string()),
            _ => None,
        }
    }

    /// Health probe: one `ping` round trip on a dedicated connection
    /// with a short deadline on connect, write and read, so a
    /// stalled-but-connected shard reads as unhealthy instead of
    /// hanging the health thread (and with it all failure detection).
    pub(crate) fn ping(&self) -> bool {
        let Ok(mut stream) = TcpStream::connect_timeout(&self.addr, PROBE_TIMEOUT) else {
            return false;
        };
        if stream.set_read_timeout(Some(PROBE_TIMEOUT)).is_err()
            || stream.set_write_timeout(Some(PROBE_TIMEOUT)).is_err()
            || stream.write_all(b"ping\n").is_err()
        {
            return false;
        }
        let mut reply = String::new();
        match BufReader::new(stream).read_line(&mut reply) {
            Ok(n) if n > 0 => reply.starts_with("ok"),
            _ => false,
        }
    }

    /// Stops an owned in-process server (no-op for attached shards) and
    /// marks the shard dead.
    pub(crate) fn stop(&self) {
        self.mark_dead();
        if let Some(server) = self.server.lock().expect("backend server poisoned").take() {
            server.shutdown();
        }
    }
}
