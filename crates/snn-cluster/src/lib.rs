//! # snn-cluster — consistent-hash session router over `snn-serve` shards
//!
//! PR 4 made one `snn-serve` process host many continual-learning
//! sessions; this crate is the front tier that makes *many processes*
//! one deployment. A [`Cluster`] speaks the existing line protocol to
//! clients (any [`snn_serve::ServeClient`] works unchanged — the router
//! answers the `hello proto=…` handshake itself) and consistent-hashes
//! session ids onto N backend shards, forwarding raw request lines
//! without re-encoding payloads.
//!
//! ## What the cluster adds
//!
//! * **Placement** — a virtual-node hash ring ([`HashRing`]) assigns new
//!   sessions to shards; joins and leaves reshuffle only a fair share.
//! * **Live migration** — sessions move between shards as wire
//!   checkpoints (`checkpoint` → `restore` → `close`), under a per-session
//!   route lock so no request interleaves with the move. A migrated
//!   session finishes **bit-identical** to one that never moved (pinned
//!   by `tests/cluster_shards.rs`).
//! * **Health** — a checker pings every shard; a dead shard leaves the
//!   ring and its sessions fail fast with `err code=shard-down` instead
//!   of timing out one by one.
//! * **Admission** — a cluster-wide session cap, plus optional
//!   per-session energy budgets (`open … budget_j=0.5`), metered from
//!   admission: every ingest reply carries the session's cumulative
//!   joules, and once the spend since admission exceeds the budget the
//!   router evicts the session to disk, answering later requests with
//!   `err code=session-evicted` whose message is the restore path.
//! * **Observability** — `cluster-stats` aggregates per-shard session
//!   counts, queue depths, samples, joules, and scrape latencies;
//!   `cluster-metrics` scrapes every live shard's `snn-obs` exposition
//!   on a bounded per-shard deadline and merges it with the router's
//!   own (relay latency, migration duration/bytes, probe outcomes).
//!   Relayed lines carry a request id as their final field, so spans
//!   recorded on different tiers stitch back together by rid.
//!
//! ## Quick example
//!
//! ```
//! use snn_cluster::{Cluster, ClusterConfig};
//! use snn_serve::{ServeClient, ServerConfig, SessionSpec};
//! use snn_data::SyntheticDigits;
//!
//! let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
//! cluster.spawn_shard(ServerConfig::default()).unwrap();
//! cluster.spawn_shard(ServerConfig::default()).unwrap();
//!
//! // Any snn-serve client speaks to the cluster as if it were one shard.
//! let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
//! let spec = SessionSpec { n_exc: 6, n_input: 49, batch_size: 4, ..SessionSpec::default() };
//! client.open("demo", spec).unwrap();
//! let gen = SyntheticDigits::new(7);
//! let batch: Vec<_> = (0..4).map(|i| gen.sample(i % 3, i.into()).downsample(4)).collect();
//! client.ingest("demo", &batch).unwrap();
//!
//! // Live-migrate the session to the other shard; the stream continues
//! // bit-identically.
//! let here = cluster.session_shard("demo").unwrap();
//! let there = cluster.shard_ids().into_iter().find(|&s| s != here).unwrap();
//! cluster.migrate_session("demo", there).unwrap();
//! client.ingest("demo", &batch).unwrap();
//! client.close("demo").unwrap();
//! cluster.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod heal;
mod migrate;
mod obs;
pub mod ring;
pub mod router;

pub use ring::{HashRing, ShardId};
pub use router::{Cluster, ClusterConfig, ClusterLimits, ClusterStats, ShardStats};

use std::fmt;

/// Everything that can go wrong in the cluster control plane, with a
/// stable wire code per variant ([`ClusterError::code`]).
#[derive(Debug)]
pub enum ClusterError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A backend speaks a different protocol generation and was refused.
    ProtoMismatch {
        /// The offending shard.
        shard: ShardId,
        /// The server's rejection detail.
        detail: String,
    },
    /// The shard is marked dead.
    ShardDown(ShardId),
    /// No shard with this id is attached.
    UnknownShard(ShardId),
    /// No session with this id is routed.
    UnknownSession(String),
    /// The ring has no shards to place onto.
    NoShards,
    /// A backend answered a forwarded call with a transport-level error.
    Backend {
        /// The shard that failed.
        shard: ShardId,
        /// What happened.
        detail: String,
    },
    /// A live migration failed; the session keeps serving on its source.
    Migration {
        /// The session that did not move.
        id: String,
        /// What happened.
        detail: String,
    },
    /// A restore-from-shadow failover found no shadow it could prove
    /// current (absent, rejected, or at a different sequence than the
    /// router last parked). The session fails fast instead of resuming
    /// from state it cannot vouch for.
    ShadowStale {
        /// The session that could not be failed over.
        id: String,
        /// What made the shadow unprovable.
        detail: String,
    },
    /// The cluster is shutting down.
    Shutdown,
}

impl ClusterError {
    /// The stable machine-readable code carried on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ClusterError::Io(_) => "io",
            ClusterError::ProtoMismatch { .. } => "proto-mismatch",
            ClusterError::ShardDown(_) => "shard-down",
            ClusterError::UnknownShard(_) => "unknown-shard",
            ClusterError::UnknownSession(_) => "unknown-session",
            ClusterError::NoShards => "no-shards",
            ClusterError::Backend { .. } => "backend",
            ClusterError::Migration { .. } => "migration",
            ClusterError::ShadowStale { .. } => "shadow-stale",
            ClusterError::Shutdown => "shutdown",
        }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "i/o error: {e}"),
            ClusterError::ProtoMismatch { shard, detail } => {
                write!(f, "shard {shard} protocol mismatch: {detail}")
            }
            ClusterError::ShardDown(shard) => write!(f, "shard {shard} is down"),
            ClusterError::UnknownShard(shard) => write!(f, "no shard {shard}"),
            ClusterError::UnknownSession(id) => write!(f, "no session {id}"),
            ClusterError::NoShards => write!(f, "cluster has no live shards"),
            ClusterError::Backend { shard, detail } => {
                write!(f, "shard {shard} transport error: {detail}")
            }
            ClusterError::Migration { id, detail } => {
                write!(f, "migration of session {id} failed: {detail}")
            }
            ClusterError::ShadowStale { id, detail } => {
                write!(
                    f,
                    "failover of session {id} has no provable shadow: {detail}"
                )
            }
            ClusterError::Shutdown => write!(f, "cluster shutting down"),
        }
    }
}

impl std::error::Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_data::{Image, SyntheticDigits};
    use snn_serve::{ServeClient, ServeLimits, ServerConfig, SessionSpec, SnnServer};
    use spikedyn::Method;
    use std::time::Duration;

    fn tiny_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            method: Method::SpikeDyn,
            n_exc: 6,
            n_input: 49,
            n_classes: 4,
            seed,
            batch_size: 4,
            assign_every: 8,
            reservoir_capacity: 8,
            metric_window: 8,
            drift_window: 8,
        }
    }

    fn stream(seed: u64, n: u64) -> Vec<Image> {
        let gen = SyntheticDigits::new(seed);
        (0..n)
            .map(|i| gen.sample((i % 4) as u8, i).downsample(4))
            .collect()
    }

    fn two_shard_cluster() -> Cluster {
        let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        cluster
    }

    #[test]
    fn sessions_spread_and_serve_through_the_router() {
        let cluster = two_shard_cluster();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        for s in 0..6u64 {
            let id = format!("spread-{s}");
            client.open(&id, tiny_spec(s)).unwrap();
            let out = client.ingest(&id, &stream(s, 4)).unwrap();
            assert_eq!(out.predictions.len(), 4);
        }
        let stats = cluster.stats();
        assert_eq!(stats.sessions, 6);
        assert_eq!(stats.total_samples, 24);
        assert_eq!(stats.shards.len(), 2);
        assert!(
            stats.shards.iter().all(|s| s.alive),
            "both shards healthy: {stats:?}"
        );
        // The per-shard counts must add up to the routed total.
        assert_eq!(
            stats.shards.iter().map(|s| s.sessions).sum::<usize>(),
            6,
            "shard-side sessions: {stats:?}"
        );
        for s in 0..6u64 {
            client.close(&format!("spread-{s}")).unwrap();
        }
        assert_eq!(cluster.stats().sessions, 0);
        cluster.shutdown();
    }

    #[test]
    fn router_speaks_the_handshake_and_aggregate_stats() {
        let cluster = two_shard_cluster();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        assert_eq!(client.hello().unwrap(), snn_serve::PROTO_VERSION);
        client.ping().unwrap();
        // The typed stats call works against the aggregate line.
        let stats = client.stats().unwrap();
        assert_eq!(stats.sessions, 0);
        assert_eq!(stats.max_sessions, ClusterLimits::default().max_sessions);
        // cluster-stats is the per-shard view.
        let raw = client.call_raw("cluster-stats").unwrap();
        assert!(raw.starts_with("ok shards=2"), "got {raw:?}");
        assert!(
            raw.contains("s0_alive=1") && raw.contains("s1_alive=1"),
            "got {raw:?}"
        );
        cluster.shutdown();
    }

    #[test]
    fn cluster_admission_cap_applies_before_any_shard() {
        let cluster = Cluster::start(
            "127.0.0.1:0",
            ClusterConfig {
                limits: ClusterLimits {
                    max_sessions: 2,
                    ..ClusterLimits::default()
                },
            },
        )
        .unwrap();
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        client.open("a", tiny_spec(1)).unwrap();
        client.open("b", tiny_spec(2)).unwrap();
        assert_eq!(
            client.open("c", tiny_spec(3)).unwrap_err().server_code(),
            Some("admission")
        );
        assert_eq!(
            client.open("a", tiny_spec(1)).unwrap_err().server_code(),
            Some("duplicate-session")
        );
        // Closing frees cluster capacity again.
        client.close("a").unwrap();
        client.open("c", tiny_spec(3)).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn openless_cluster_and_unknown_sessions_fail_cleanly() {
        let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        assert_eq!(
            client.open("x", tiny_spec(1)).unwrap_err().server_code(),
            Some("no-shards")
        );
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        assert_eq!(
            client.report("ghost").unwrap_err().server_code(),
            Some("unknown-session")
        );
        cluster.shutdown();
    }

    #[test]
    fn shard_rejection_releases_the_cluster_reservation() {
        // One shard with max_sessions=1: the second open is rejected by
        // the *shard*; the router must free its reservation so capacity
        // is not leaked.
        let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
        cluster
            .spawn_shard(ServerConfig {
                limits: ServeLimits {
                    max_sessions: 1,
                    ..ServeLimits::default()
                },
                ..ServerConfig::default()
            })
            .unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        client.open("one", tiny_spec(1)).unwrap();
        assert_eq!(
            client.open("two", tiny_spec(2)).unwrap_err().server_code(),
            Some("admission")
        );
        assert_eq!(cluster.stats().sessions, 1, "failed open left no ghost");
        client.close("one").unwrap();
        client.open("two", tiny_spec(2)).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn dead_shard_is_detected_and_its_sessions_fail_fast() {
        let cluster = Cluster::start(
            "127.0.0.1:0",
            ClusterConfig {
                limits: ClusterLimits {
                    health_interval: Duration::from_millis(40),
                    ..ClusterLimits::default()
                },
            },
        )
        .unwrap();
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        // The victim shard runs *outside* the cluster so the test can
        // kill it behind the router's back.
        let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let victim_shard = cluster.attach_shard(external.local_addr()).unwrap();

        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        // Open sessions until one lands on the doomed shard.
        let mut doomed = None;
        for s in 0..16u64 {
            let id = format!("d-{s}");
            client.open(&id, tiny_spec(s)).unwrap();
            if cluster.session_shard(&id) == Some(victim_shard) {
                doomed = Some(id);
                break;
            }
        }
        let doomed = doomed.expect("some session lands on the victim shard");

        external.shutdown();
        // Wait for the health checker to notice.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cluster
            .stats()
            .shards
            .iter()
            .any(|s| s.id == victim_shard && s.alive)
        {
            assert!(
                std::time::Instant::now() < deadline,
                "health checker never marked the shard dead"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // The doomed session is gone (failed fast), new opens avoid the
        // dead shard, and survivors keep serving.
        assert_eq!(
            client.report(&doomed).unwrap_err().server_code(),
            Some("unknown-session")
        );
        client.open("after", tiny_spec(99)).unwrap();
        assert_ne!(cluster.session_shard("after"), Some(victim_shard));
        client.ingest("after", &stream(99, 4)).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn shadowed_session_survives_its_shard_dying() {
        // Shadowing on: a session served by a shard that dies resumes
        // bit-exactly from its last shadowed checkpoint on a live shard,
        // and the samples ingested after that checkpoint are disclosed
        // as replay_gap on the next reply — never silently dropped.
        let cluster = Cluster::start(
            "127.0.0.1:0",
            ClusterConfig {
                limits: ClusterLimits {
                    health_interval: Duration::from_millis(40),
                    shadow_interval: Some(Duration::from_millis(30)),
                    ..ClusterLimits::default()
                },
            },
        )
        .unwrap();
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        // The victim runs outside the cluster so the test can kill it
        // behind the router's back.
        let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let victim_shard = cluster.attach_shard(external.local_addr()).unwrap();

        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        let mut doomed = None;
        for s in 0..32u64 {
            let id = format!("sh-{s}");
            client.open(&id, tiny_spec(s)).unwrap();
            if cluster.session_shard(&id) == Some(victim_shard) {
                doomed = Some((id, s));
                break;
            }
            client.close(&id).unwrap();
        }
        let (doomed, seed) = doomed.expect("some session lands on the victim shard");

        // Phase one: ingest 8 samples and wait until the shadower has
        // parked them on the other shard.
        let phase_one = stream(seed, 8);
        client.ingest(&doomed, &phase_one).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cluster.session_shadow(&doomed).map(|(_, seq)| seq) != Some(8) {
            assert!(
                std::time::Instant::now() < deadline,
                "shadower never parked the checkpoint"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let (holder, _) = cluster.session_shadow(&doomed).unwrap();
        assert_ne!(
            holder, victim_shard,
            "a shadow never lives on its home shard"
        );

        // Phase two: 4 more samples, then kill the shard abruptly. The
        // sweep may or may not have re-parked them before the kill; what
        // the failover restores is whatever was parked at kill time.
        client.ingest(&doomed, &stream(seed, 12)[8..]).unwrap();
        external.shutdown();
        let (_, shadow_seq) = cluster.session_shadow(&doomed).unwrap();

        // Wait for death + failover.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cluster.session_shard(&doomed) == Some(victim_shard) {
            assert!(
                std::time::Instant::now() < deadline,
                "failover never re-pointed the session"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            cluster.session_shard(&doomed).is_some(),
            "session must fail over, not drop"
        );

        // The first reply after the failover discloses the gap…
        let raw = client.call_raw(&format!("report id={doomed}")).unwrap();
        assert!(raw.starts_with("ok"), "failed-over session serves: {raw}");
        let expect_gap = 12 - shadow_seq;
        assert!(
            raw.contains(&format!(" replay_gap={expect_gap}")),
            "reply must disclose the {expect_gap}-sample gap: {raw}"
        );
        // …and exactly once.
        let raw = client.call_raw(&format!("report id={doomed}")).unwrap();
        assert!(!raw.contains("replay_gap"), "gap reported once: {raw}");

        // Bit-exactness: the failed-over session is the reference
        // learner fed exactly the shadowed prefix, with the same
        // ingest-call partitioning the client used (8 then 4).
        assert!(
            shadow_seq == 8 || shadow_seq == 12,
            "shadow sequences are exactly the checkpointed sample counts: {shadow_seq}"
        );
        let full = stream(seed, 12);
        let mut reference = snn_online::OnlineLearner::new(tiny_spec(seed).online_config());
        reference.ingest_batch(&full[..8]).unwrap();
        if shadow_seq == 12 {
            reference.ingest_batch(&full[8..]).unwrap();
        }
        assert_eq!(
            client.checkpoint(&doomed).unwrap(),
            reference.checkpoint().to_bytes(),
            "failover must resume bit-exactly from the shadowed checkpoint"
        );

        // The stream continues on the survivor.
        client.ingest(&doomed, &stream(seed, 4)).unwrap();
        client.close(&doomed).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn over_budget_session_is_evicted_with_a_restore_path() {
        let cluster = two_shard_cluster();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        // A vanishingly small budget: the first ingest overruns it.
        let open = snn_serve::protocol::format_request(&snn_serve::Request::Open {
            id: "thrifty".into(),
            spec: tiny_spec(5),
        });
        let reply = client.call_raw(&format!("{open} budget_j=1e-12")).unwrap();
        assert!(reply.starts_with("ok"), "open failed: {reply}");
        // The overrunning ingest itself still succeeds…
        client.ingest("thrifty", &stream(5, 4)).unwrap();
        // …but the session is evicted before the next request.
        let err = client.report("thrifty").unwrap_err();
        assert_eq!(err.server_code(), Some("session-evicted"));
        let path = match err {
            snn_serve::ClientError::Server { msg, .. } => msg,
            other => panic!("unexpected {other:?}"),
        };
        // The checkpoint on disk is the session at eviction time.
        let snap = snn_online::ModelSnapshot::load(std::path::Path::new(&path)).unwrap();
        let mut reference = snn_online::OnlineLearner::new(tiny_spec(5).online_config());
        reference.ingest_batch(&stream(5, 4)).unwrap();
        assert_eq!(snap.to_bytes(), reference.checkpoint().to_bytes());
        assert_eq!(cluster.stats().evicted_sessions, 1);
        // Restoring the checkpoint (same id) supersedes the tombstone —
        // and a fresh budget meters only NEW work: the carried history
        // (≈ j1 joules) must not be billed against it. A lifetime-based
        // check would evict again right after the next ingest.
        let j1 = {
            let e = reference.energy(&neuro_energy::GpuSpec::gtx_1080_ti());
            e.train_j + e.infer_j
        };
        let restore = snn_serve::protocol::format_request(&snn_serve::Request::Restore {
            id: "thrifty".into(),
            snapshot: snap.to_bytes(),
        });
        let reply = client
            .call_raw(&format!("{restore} budget_j={}", 1.9 * j1))
            .unwrap();
        assert!(reply.starts_with("ok"), "restore failed: {reply}");
        client.ingest("thrifty", &stream(5, 4)).unwrap(); // new spend ≈ j1 < 1.9·j1
        client
            .report("thrifty")
            .expect("restored session must not be evicted for its pre-restore history");
        cluster.shutdown();
    }

    #[test]
    fn shard_side_idle_eviction_is_mirrored_by_the_router() {
        // The shard evicts on its own (idle-timeout sweep); the router
        // must mirror the eviction out of a relayed reply, or the id
        // would stay routed forever (capacity leak + duplicate-session
        // on every re-open).
        let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
        cluster
            .spawn_shard(ServerConfig {
                limits: ServeLimits {
                    // Long enough that back-to-back requests through the
                    // router never race the sweep on a loaded test box.
                    idle_timeout: Some(Duration::from_millis(300)),
                    ..ServeLimits::default()
                },
                ..ServerConfig::default()
            })
            .unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        client.open("lazy", tiny_spec(3)).unwrap();
        client.ingest("lazy", &stream(3, 4)).unwrap();

        // Wait for the shard's sweep — watching shard stats, because a
        // `report` poll would itself refresh the session's idle clock.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while cluster
            .stats()
            .shards
            .first()
            .is_none_or(|s| s.sessions > 0)
        {
            assert!(
                std::time::Instant::now() < deadline,
                "shard idle sweep never evicted the session"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        // The first post-eviction request relays session-evicted and
        // syncs the router table.
        let err = client.report("lazy").unwrap_err();
        assert_eq!(err.server_code(), Some("session-evicted"));
        let stats = cluster.stats();
        assert_eq!(
            (stats.sessions, stats.evicted_sessions),
            (0, 1),
            "router mirrored the shard-side eviction"
        );
        // The tombstone still answers the restore path…
        let err = client.energy("lazy").unwrap_err();
        assert_eq!(err.server_code(), Some("session-evicted"));
        // …and the id is reusable, not wedged on duplicate-session.
        client.open("lazy", tiny_spec(3)).unwrap();
        client.ingest("lazy", &stream(3, 4)).unwrap();
        client.close("lazy").unwrap();
        cluster.shutdown();
    }

    #[test]
    fn hot_swap_cannot_evade_an_energy_budget() {
        // A swap replaces the learner's cumulative op counters; without
        // baseline rebasing, swapping onto a fresh snapshot would reset
        // the router's notion of spend and let a client dodge its budget
        // forever.
        let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
        cluster.spawn_shard(ServerConfig::default()).unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();

        // Price one 4-sample phase locally: j1 joules.
        let mut reference = snn_online::OnlineLearner::new(tiny_spec(6).online_config());
        reference.ingest_batch(&stream(6, 4)).unwrap();
        let j1 = {
            let e = reference.energy(&neuro_energy::GpuSpec::gtx_1080_ti());
            e.train_j + e.infer_j
        };

        // Budget for ~1.9 phases; phase one spends ≈ j1.
        let open = snn_serve::protocol::format_request(&snn_serve::Request::Open {
            id: "sw".into(),
            spec: tiny_spec(6),
        });
        let reply = client
            .call_raw(&format!("{open} budget_j={}", 1.9 * j1))
            .unwrap();
        assert!(reply.starts_with("ok"), "open failed: {reply}");
        client.ingest("sw", &stream(6, 4)).unwrap();
        client.report("sw").expect("phase one is within budget");

        // Swap onto a fresh zero-op snapshot (counters collapse to 0),
        // then spend another phase: cumulative spend ≈ 2·j1 > 1.9·j1,
        // so the budget must still trip.
        let fresh = snn_online::OnlineLearner::new(tiny_spec(6).online_config())
            .checkpoint()
            .to_bytes();
        client.swap("sw", &fresh).unwrap();
        client.ingest("sw", &stream(6, 4)).unwrap();
        let err = client
            .report("sw")
            .expect_err("swapping must not reset budget spend");
        assert_eq!(err.server_code(), Some("session-evicted"));
        cluster.shutdown();
    }

    #[test]
    fn budgeted_open_is_refused_on_shards_that_cannot_evict() {
        // An attached external shard without an evict directory can never
        // enforce a budget by checkpointing; the router must refuse the
        // budget up front instead of silently voiding it.
        let cluster = Cluster::start("127.0.0.1:0", ClusterConfig::default()).unwrap();
        let external = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        cluster.attach_shard(external.local_addr()).unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();

        let open = snn_serve::protocol::format_request(&snn_serve::Request::Open {
            id: "capped".into(),
            spec: tiny_spec(2),
        });
        let reply = client.call_raw(&format!("{open} budget_j=0.5")).unwrap();
        assert!(
            reply.starts_with("err code=bad-request"),
            "budgeted open must be refused: {reply}"
        );
        // Without a budget the shard serves fine.
        client.open("capped", tiny_spec(2)).unwrap();
        client.ingest("capped", &stream(2, 4)).unwrap();
        client.close("capped").unwrap();
        cluster.shutdown();
        external.shutdown();
    }

    #[test]
    fn unqueried_shard_evictions_are_reconciled_by_the_health_loop() {
        // The shard idle-sweeps a session whose client never returns; no
        // relayed reply ever mentions it, so only the health loop's
        // reconcile pass can release the route (otherwise the id would
        // hold cluster admission capacity forever).
        let cluster = Cluster::start(
            "127.0.0.1:0",
            ClusterConfig {
                limits: ClusterLimits {
                    health_interval: Duration::from_millis(60),
                    ..ClusterLimits::default()
                },
            },
        )
        .unwrap();
        cluster
            .spawn_shard(ServerConfig {
                limits: ServeLimits {
                    idle_timeout: Some(Duration::from_millis(300)),
                    ..ServeLimits::default()
                },
                ..ServerConfig::default()
            })
            .unwrap();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        client.open("ghost", tiny_spec(4)).unwrap();
        client.ingest("ghost", &stream(4, 4)).unwrap();

        // No further traffic for the session: the route must clear on
        // its own.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let stats = cluster.stats();
            if (stats.sessions, stats.evicted_sessions) == (0, 1) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "reconcile never released the evicted route: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
        // The id is reusable immediately.
        client.open("ghost", tiny_spec(4)).unwrap();
        client.close("ghost").unwrap();
        cluster.shutdown();
    }

    #[test]
    fn drain_shard_live_migrates_every_session_off() {
        let cluster = two_shard_cluster();
        let shard_ids = cluster.shard_ids();
        let mut client = ServeClient::connect(cluster.local_addr()).unwrap();
        for s in 0..6u64 {
            let id = format!("m-{s}");
            client.open(&id, tiny_spec(s)).unwrap();
            client.ingest(&id, &stream(s, 4)).unwrap();
        }
        let drained = shard_ids[0];
        let kept = shard_ids[1];
        let moved = cluster.drain_shard(drained).unwrap();
        assert_eq!(cluster.shard_ids(), vec![kept]);
        // Every session still serves, now on the surviving shard.
        for s in 0..6u64 {
            let id = format!("m-{s}");
            assert_eq!(cluster.session_shard(&id), Some(kept));
            client.ingest(&id, &stream(s, 4)).unwrap();
        }
        let stats = cluster.stats();
        assert_eq!(stats.sessions, 6);
        assert!(
            moved <= 6,
            "at most every session moved (those already on the survivor stay): {moved}"
        );
        cluster.shutdown();
    }
}
