//! Replica pooling: reuse of network clones across batches.
//!
//! Cloning a network is cheap relative to simulating a sample but not free
//! (the weight matrix of a paper-scale N400 model is ~1.2 MB), so the
//! engine keeps finished replicas in a pool and hands them back out on the
//! next batch instead of re-cloning the template for every worker.

use std::sync::Mutex;

use snn_core::network::Snn;

/// A lock-guarded stack of network replicas.
///
/// Checkout order is unspecified (workers race for the lock); this is safe
/// because the engine re-synchronises every replica to the template state
/// before each sample, so replicas are interchangeable by construction.
#[derive(Debug, Default)]
pub struct ReplicaPool {
    replicas: Mutex<Vec<Snn>>,
}

impl ReplicaPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a replica from the pool, or clones `template` when empty.
    pub fn checkout(&self, template: &Snn) -> Snn {
        let popped = self
            .replicas
            .lock()
            .expect("replica pool lock poisoned")
            .pop();
        popped.unwrap_or_else(|| template.clone())
    }

    /// Returns a replica to the pool for reuse by later batches.
    pub fn restore(&self, replica: Snn) {
        self.replicas
            .lock()
            .expect("replica pool lock poisoned")
            .push(replica);
    }

    /// Applies `f` to every idle replica in place — the hot-swap path:
    /// when only learned state (weights, `θ`) changes, pooled replicas are
    /// refreshed instead of dropped, so no re-cloning happens on the next
    /// batch.
    pub fn sync_each(&self, mut f: impl FnMut(&mut Snn)) {
        let mut replicas = self.replicas.lock().expect("replica pool lock poisoned");
        for replica in replicas.iter_mut() {
            f(replica);
        }
    }

    /// Drops every pooled replica (used when the template changes shape).
    pub fn clear(&self) {
        self.replicas
            .lock()
            .expect("replica pool lock poisoned")
            .clear();
    }

    /// Number of idle replicas currently pooled.
    pub fn idle(&self) -> usize {
        self.replicas
            .lock()
            .expect("replica pool lock poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::SnnConfig;
    use snn_core::rng::seeded_rng;

    fn template() -> Snn {
        Snn::new(SnnConfig::direct_lateral(9, 3), &mut seeded_rng(1))
    }

    #[test]
    fn checkout_clones_when_empty_and_reuses_after_restore() {
        let pool = ReplicaPool::new();
        let t = template();
        assert_eq!(pool.idle(), 0);
        let a = pool.checkout(&t);
        assert_eq!(pool.idle(), 0, "empty pool clones instead of blocking");
        pool.restore(a);
        assert_eq!(pool.idle(), 1);
        let _b = pool.checkout(&t);
        assert_eq!(pool.idle(), 0, "restored replica is handed back out");
    }

    #[test]
    fn clear_empties_the_pool() {
        let pool = ReplicaPool::new();
        let t = template();
        pool.restore(t.clone());
        pool.restore(t);
        assert_eq!(pool.idle(), 2);
        pool.clear();
        assert_eq!(pool.idle(), 0);
    }
}
