//! Replica pooling: reuse of network clones across batches.
//!
//! Cloning a network is cheap relative to simulating a sample but not free
//! (the weight matrix of a paper-scale N400 model is ~1.2 MB), so the
//! engine keeps finished replicas in a pool and hands them back out on the
//! next batch instead of re-cloning the template for every worker.
//!
//! A pool can also be **shared between engines** through a [`PoolHandle`]:
//! the serving layer hosts many sessions whose models share one
//! architecture, and a shared pool keeps the replica working set bounded
//! by peak concurrency instead of session count. Shared checkout goes
//! through [`ReplicaPool::checkout_matching`], which only hands back
//! architecture-compatible replicas; the engine's shared mode re-syncs
//! *all* learned state (weights and `θ`) before every sample, so a replica
//! last used by a different model can never leak state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use snn_core::network::Snn;

/// A cloneable, thread-safe handle to a [`ReplicaPool`] shared by several
/// engines (see [`crate::Engine::from_network_shared`]).
pub type PoolHandle = Arc<ReplicaPool>;

/// A lock-guarded stack of network replicas.
///
/// Checkout order is unspecified (workers race for the lock); this is safe
/// because the engine re-synchronises every replica to the template state
/// before each sample, so replicas are interchangeable by construction.
#[derive(Debug)]
pub struct ReplicaPool {
    replicas: Mutex<Vec<Snn>>,
    /// Idle replicas beyond this are dropped on [`ReplicaPool::restore`].
    capacity: usize,
    checkouts: AtomicU64,
    hits: AtomicU64,
    wait_us: AtomicU64,
}

/// A point-in-time copy of a pool's checkout counters. Hits are checkouts
/// satisfied by a pooled replica (a miss clones the template); `wait_us`
/// is cumulative time spent acquiring the pool lock — contention, not
/// simulation work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total checkouts (hits + misses).
    pub checkouts: u64,
    /// Checkouts served by a pooled replica instead of a template clone.
    pub hits: u64,
    /// Cumulative microseconds workers waited on the pool lock.
    pub wait_us: u64,
}

impl PoolStats {
    /// Fraction of checkouts served from the pool (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        if self.checkouts == 0 {
            0.0
        } else {
            self.hits as f64 / self.checkouts as f64
        }
    }
}

impl Default for ReplicaPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaPool {
    /// Creates an empty, unbounded pool (a private engine's pool can
    /// never exceed its worker count, so no bound is needed).
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// Creates an empty pool that keeps at most `capacity` idle replicas
    /// — the right constructor for a pool **shared across sessions**,
    /// where heterogeneous architectures would otherwise accumulate
    /// stale replicas for the server's whole lifetime (mismatched shapes
    /// are skipped at checkout, never reclaimed).
    pub fn with_capacity(capacity: usize) -> Self {
        ReplicaPool {
            replicas: Mutex::new(Vec::new()),
            capacity,
            checkouts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            wait_us: AtomicU64::new(0),
        }
    }

    /// Takes a replica from the pool, or clones `template` when empty.
    pub fn checkout(&self, template: &Snn) -> Snn {
        let t0 = Instant::now();
        let popped = self
            .replicas
            .lock()
            .expect("replica pool lock poisoned")
            .pop();
        self.meter(t0, popped.is_some());
        popped.unwrap_or_else(|| template.clone())
    }

    /// Records one checkout in the pool counters. Relaxed atomics only —
    /// metering can never affect which replica a worker gets, so it can
    /// never perturb results (replicas are interchangeable by
    /// construction anyway).
    fn meter(&self, t0: Instant, hit: bool) {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        let waited = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.wait_us.fetch_add(waited, Ordering::Relaxed);
    }

    /// A point-in-time copy of the checkout counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            wait_us: self.wait_us.load(Ordering::Relaxed),
        }
    }

    /// Returns a replica to the pool for reuse by later batches; dropped
    /// instead when the pool already holds `capacity` idle replicas.
    pub fn restore(&self, replica: Snn) {
        let mut replicas = self.replicas.lock().expect("replica pool lock poisoned");
        if replicas.len() < self.capacity {
            replicas.push(replica);
        }
    }

    /// Takes a replica whose architecture matches `template`'s (equal
    /// [`snn_core::network::SnnConfig`]), or clones `template` when no
    /// compatible replica is pooled. Mismatched replicas are left pooled
    /// for their own engines.
    ///
    /// Unlike [`ReplicaPool::checkout`], this is the safe checkout on a
    /// pool **shared by engines serving different models**: the caller
    /// must re-synchronise every piece of learned state (weights *and*
    /// `θ`) before each sample, which the engine's shared mode does.
    pub fn checkout_matching(&self, template: &Snn) -> Snn {
        let t0 = Instant::now();
        let mut replicas = self.replicas.lock().expect("replica pool lock poisoned");
        if let Some(i) = replicas.iter().position(|r| r.config == template.config) {
            let replica = replicas.swap_remove(i);
            drop(replicas);
            self.meter(t0, true);
            return replica;
        }
        drop(replicas);
        self.meter(t0, false);
        template.clone()
    }

    /// Applies `f` to every idle replica in place — the hot-swap path:
    /// when only learned state (weights, `θ`) changes, pooled replicas are
    /// refreshed instead of dropped, so no re-cloning happens on the next
    /// batch.
    pub fn sync_each(&self, mut f: impl FnMut(&mut Snn)) {
        let mut replicas = self.replicas.lock().expect("replica pool lock poisoned");
        for replica in replicas.iter_mut() {
            f(replica);
        }
    }

    /// Drops every pooled replica (used when the template changes shape).
    pub fn clear(&self) {
        self.replicas
            .lock()
            .expect("replica pool lock poisoned")
            .clear();
    }

    /// Number of idle replicas currently pooled.
    pub fn idle(&self) -> usize {
        self.replicas
            .lock()
            .expect("replica pool lock poisoned")
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_core::network::SnnConfig;
    use snn_core::rng::seeded_rng;

    fn template() -> Snn {
        Snn::new(SnnConfig::direct_lateral(9, 3), &mut seeded_rng(1))
    }

    #[test]
    fn checkout_clones_when_empty_and_reuses_after_restore() {
        let pool = ReplicaPool::new();
        let t = template();
        assert_eq!(pool.idle(), 0);
        let a = pool.checkout(&t);
        assert_eq!(pool.idle(), 0, "empty pool clones instead of blocking");
        pool.restore(a);
        assert_eq!(pool.idle(), 1);
        let _b = pool.checkout(&t);
        assert_eq!(pool.idle(), 0, "restored replica is handed back out");
    }

    #[test]
    fn checkout_matching_skips_incompatible_replicas() {
        let pool = ReplicaPool::new();
        let small = template();
        let big = Snn::new(SnnConfig::direct_lateral(9, 5), &mut seeded_rng(2));
        pool.restore(big.clone());
        // The pooled replica has a different architecture: it must stay
        // pooled and the checkout must clone the template instead.
        let got = pool.checkout_matching(&small);
        assert_eq!(got.n_exc(), small.n_exc());
        assert_eq!(pool.idle(), 1, "incompatible replica stays pooled");
        // A matching replica is handed back out.
        let got_big = pool.checkout_matching(&big);
        assert_eq!(got_big.n_exc(), big.n_exc());
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn bounded_pool_drops_restores_beyond_capacity() {
        let pool = ReplicaPool::with_capacity(2);
        for _ in 0..4 {
            pool.restore(template());
        }
        assert_eq!(pool.idle(), 2, "capacity bounds the idle working set");
        // An unbounded pool keeps everything.
        let unbounded = ReplicaPool::new();
        for _ in 0..4 {
            unbounded.restore(template());
        }
        assert_eq!(unbounded.idle(), 4);
    }

    #[test]
    fn pool_handle_shares_one_pool() {
        let handle: PoolHandle = Arc::new(ReplicaPool::new());
        let other = Arc::clone(&handle);
        handle.restore(template());
        assert_eq!(other.idle(), 1, "handles see the same replicas");
    }

    #[test]
    fn stats_count_checkouts_and_hits() {
        let pool = ReplicaPool::new();
        let t = template();
        let a = pool.checkout(&t); // miss (empty pool)
        pool.restore(a);
        let _b = pool.checkout(&t); // hit
        let stats = pool.stats();
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.hit_rate(), 0.5);
        // Matching checkout meters too.
        let big = Snn::new(SnnConfig::direct_lateral(9, 5), &mut seeded_rng(2));
        let _c = pool.checkout_matching(&big); // miss: no compatible replica
        assert_eq!(pool.stats().checkouts, 3);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(PoolStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn clear_empties_the_pool() {
        let pool = ReplicaPool::new();
        let t = template();
        pool.restore(t.clone());
        pool.restore(t);
        assert_eq!(pool.idle(), 2);
        pool.clear();
        assert_eq!(pool.idle(), 0);
    }
}
