//! # snn-runtime — batched, sample-parallel SNN execution engine
//!
//! The SpikeDyn evaluation protocols (§IV–V of the paper) push thousands of
//! samples through the simulator per experiment. The scalar
//! [`snn_core::sim::run_sample`] path presents them one at a time; this
//! crate adds the first scaling multiplier on top of it: an [`Engine`] that
//! owns a pool of network replicas and fans a batch of samples out across
//! worker threads with `rayon`, one whole-sample simulation per unit of
//! work.
//!
//! ## Determinism policy
//!
//! Batched execution is **bit-identical** to sequential execution. Every
//! sample's Poisson encoding noise comes from a private RNG seeded as
//! `derive_seed(batch_seed, sample_index)` ([`snn_core::rng::derive_seed`]),
//! so no sample's randomness depends on scheduling, thread count or the
//! presence of other samples. Replicas are re-synchronised to the engine's
//! template state (weights, adaptation potentials `θ`) before every sample,
//! and results are assembled in submission order. The property is pinned by
//! tests that compare [`Engine::infer_batch`] against
//! [`Engine::infer_sequential`] bit for bit and across
//! `RAYON_NUM_THREADS` settings. See `DESIGN.md` for the full policy.
//!
//! ## Shared replica pools
//!
//! Several engines can draw from one [`ReplicaPool`] through a
//! [`PoolHandle`] ([`Engine::from_network_shared`]): the `snn-serve`
//! session layer uses this so N concurrent sessions share one warm
//! replica working set bounded by peak concurrency, not session count.
//! Shared engines re-sync the *full* learned state (weights and `θ`) into
//! a replica before every sample, so sharing never changes results —
//! shared and private engines are bit-identical for the same model.
//!
//! ## Quick example
//!
//! ```
//! use snn_core::network::SnnConfig;
//! use snn_runtime::{Engine, EngineConfig};
//! use snn_data::SyntheticDigits;
//!
//! let gen = SyntheticDigits::new(7);
//! let images: Vec<_> = (0..8).map(|i| gen.sample(3, i).downsample(2)).collect();
//! let engine = Engine::new(EngineConfig::new(SnnConfig::direct_lateral(196, 10), 42));
//! let results = engine.infer_batch(&images, 1);
//! assert_eq!(results.len(), 8);
//! // Bit-identical to the sequential path, whatever the thread count:
//! assert_eq!(results, engine.infer_sequential(&images, 1));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod pool;
pub mod report;

pub use engine::{Engine, EngineConfig, EngineStats};
pub use pool::{PoolHandle, PoolStats, ReplicaPool};
pub use report::{BatchOutcome, EvalReport};
