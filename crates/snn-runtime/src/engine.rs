//! The batched execution engine.
//!
//! [`Engine`] owns an immutable template network plus a [`ReplicaPool`] and
//! runs inference/evaluation batches sample-parallel: each worker checks out
//! a replica, re-synchronises it to the template's learned state, simulates
//! one whole sample through [`snn_core::sim::run_sample`] (the same scalar
//! path the trainer uses, including the sparse event-driven propagation
//! kernel) and returns the replica to the pool.
//!
//! Sample-level parallelism is the right grain for this workload: one
//! sample is tens of thousands of sequential timesteps (hundreds of
//! microseconds to milliseconds of work), so the per-sample scheduling and
//! pool overhead is negligible, while within-sample parallelism would fight
//! the tight step-to-step dependency chain.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use snn_core::config::PresentConfig;
use snn_core::encoding::PoissonEncoder;
use snn_core::metrics::{ClassAssignment, ConfusionMatrix};
use snn_core::network::{Snn, SnnConfig};
use snn_core::ops::OpCounts;
use snn_core::rng::{derive_seed, seeded_rng};
use snn_core::sim::{run_sample, SampleResult};
use snn_data::Image;

use crate::pool::{PoolHandle, ReplicaPool};
use crate::report::{BatchOutcome, EvalReport};

/// Everything needed to build an [`Engine`] from scratch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Network architecture to instantiate.
    pub snn: SnnConfig,
    /// Master seed; weight initialisation uses `derive_seed(seed, 1)`,
    /// matching the trainer's convention so an engine and a trainer built
    /// from the same seed hold identical initial networks.
    pub seed: u64,
    /// Presentation protocol (default: no rest window, matching the
    /// per-image inference accounting of the paper's Table II).
    pub present: PresentConfig,
    /// Poisson encoder full-intensity rate in Hz.
    pub max_rate_hz: f32,
    /// Factor applied to the adaptation potentials `θ` during inference
    /// (SpikeDyn's methods discount `θ` when classifying; 1.0 = use
    /// training-time thresholds unchanged).
    pub theta_scale: f32,
}

impl EngineConfig {
    /// Config with the paper's default inference protocol.
    pub fn new(snn: SnnConfig, seed: u64) -> Self {
        EngineConfig {
            snn,
            seed,
            present: PresentConfig {
                t_rest_ms: 0.0,
                ..PresentConfig::default()
            },
            max_rate_hz: PoissonEncoder::default().max_rate_hz(),
            theta_scale: 1.0,
        }
    }

    /// Replaces the presentation protocol (rest window is kept as given).
    pub fn with_present(mut self, present: PresentConfig) -> Self {
        self.present = present;
        self
    }

    /// Replaces the encoder's full-intensity rate.
    pub fn with_max_rate(mut self, max_rate_hz: f32) -> Self {
        self.max_rate_hz = max_rate_hz;
        self
    }

    /// Replaces the inference `θ` scale.
    pub fn with_theta_scale(mut self, theta_scale: f32) -> Self {
        self.theta_scale = theta_scale;
        self
    }
}

/// Batched, sample-parallel inference/evaluation engine.
///
/// See the crate docs for the determinism policy. The engine never mutates
/// learned state: weights stay untouched and every replica's `θ` is
/// overwritten from the template before each sample, so batch membership
/// and scheduling cannot leak between samples.
#[derive(Debug)]
pub struct Engine {
    template: Snn,
    present: PresentConfig,
    encoder: PoissonEncoder,
    theta_scale: f32,
    /// Template `θ` with `theta_scale` pre-applied (what replicas run with).
    scaled_thetas: Vec<f32>,
    pool: PoolHandle,
    /// True when `pool` is shared with other engines: checkout goes
    /// through the architecture-matching path and *all* learned state
    /// (weights, not just `θ`) is re-synced per sample, because a pooled
    /// replica may have last served a different model.
    shared: bool,
    /// Cumulative work counters (relaxed atomics; metering never touches
    /// replica state or seeds, so it cannot perturb results).
    meter: EngineMeter,
}

#[derive(Debug, Default)]
struct EngineMeter {
    batches: AtomicU64,
    samples: AtomicU64,
    busy_us: AtomicU64,
}

/// A point-in-time copy of an [`Engine`]'s work counters, covering both
/// the batched and sequential inference paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Inference batches run (sequential runs count as one batch).
    pub batches: u64,
    /// Samples simulated.
    pub samples: u64,
    /// Cumulative wall-clock microseconds spent inside inference calls.
    pub busy_us: u64,
}

impl Engine {
    /// Builds an engine with a freshly initialised network.
    pub fn new(config: EngineConfig) -> Self {
        let net = Snn::new(
            config.snn.clone(),
            &mut seeded_rng(derive_seed(config.seed, 1)),
        );
        Self::from_network(net, config.present, config.max_rate_hz, config.theta_scale)
    }

    /// Wraps an already-trained network (cloned into the engine's template).
    ///
    /// This is how the trainer hands its learned weights over for batched
    /// evaluation mid-training.
    pub fn from_network(
        net: Snn,
        present: PresentConfig,
        max_rate_hz: f32,
        theta_scale: f32,
    ) -> Self {
        Self::build(
            net,
            present,
            max_rate_hz,
            theta_scale,
            std::sync::Arc::new(ReplicaPool::new()),
            false,
        )
    }

    /// Like [`Engine::from_network`], but drawing replicas from a pool
    /// **shared with other engines** (the multi-session serving path: N
    /// models of one architecture share one warm replica working set).
    ///
    /// In shared mode the engine re-synchronises *all* learned state
    /// (weights and `θ`) into the replica before every sample instead of
    /// `θ` only — a pooled replica may have last served a different model.
    /// The weight copy is O(weights) per sample, negligible against the
    /// tens of thousands of sequential timesteps one sample simulates.
    /// Results are bit-identical to a private-pool engine serving the same
    /// model (pinned by this module's tests).
    pub fn from_network_shared(
        net: Snn,
        present: PresentConfig,
        max_rate_hz: f32,
        theta_scale: f32,
        pool: PoolHandle,
    ) -> Self {
        Self::build(net, present, max_rate_hz, theta_scale, pool, true)
    }

    fn build(
        net: Snn,
        present: PresentConfig,
        max_rate_hz: f32,
        theta_scale: f32,
        pool: PoolHandle,
        shared: bool,
    ) -> Self {
        let scaled_thetas = net.exc.thetas().iter().map(|t| t * theta_scale).collect();
        Engine {
            template: net,
            present,
            encoder: PoissonEncoder::new(max_rate_hz),
            theta_scale,
            scaled_thetas,
            pool,
            shared,
            meter: EngineMeter::default(),
        }
    }

    /// A point-in-time copy of this engine's work counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            batches: self.meter.batches.load(Ordering::Relaxed),
            samples: self.meter.samples.load(Ordering::Relaxed),
            busy_us: self.meter.busy_us.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time copy of this engine's pool counters (shared
    /// engines report the shared pool's aggregate).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// Records one finished inference call in the work counters.
    fn meter_run(&self, t0: Instant, samples: usize) {
        self.meter.batches.fetch_add(1, Ordering::Relaxed);
        self.meter
            .samples
            .fetch_add(samples as u64, Ordering::Relaxed);
        let busy = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.meter.busy_us.fetch_add(busy, Ordering::Relaxed);
    }

    /// The template network (learned weights and `θ` the engine serves).
    pub fn network(&self) -> &Snn {
        &self.template
    }

    /// True when this engine draws from a pool shared with other engines.
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// The presentation protocol used per sample.
    pub fn present(&self) -> &PresentConfig {
        &self.present
    }

    /// Replaces the template's learned state with `net`'s (weights and
    /// `θ`), dropping pooled replicas so later batches see the new state.
    ///
    /// On a shared pool the replicas are left pooled instead of dropped:
    /// they may belong to other engines, and shared mode re-syncs every
    /// replica's full learned state per sample anyway (stale-architecture
    /// replicas are filtered out at checkout).
    pub fn sync_from(&mut self, net: &Snn) {
        self.scaled_thetas = net
            .exc
            .thetas()
            .iter()
            .map(|t| t * self.theta_scale)
            .collect();
        self.template = net.clone();
        if !self.shared {
            self.pool.clear();
        }
    }

    /// Hot-swaps the engine onto new learned state **without rebuilding**:
    /// the weight buffer (row-major by postsynaptic neuron) and raw
    /// adaptation potentials `θ` are copied into the existing template and
    /// into every idle pooled replica, so the next batch runs on the new
    /// model with zero allocations and a warm replica pool.
    ///
    /// This is the serving path for model-snapshot swaps between batches:
    /// a long-running engine adopts each new checkpoint in O(weights)
    /// copies. The engine's inference `θ` scale is re-applied to the new
    /// `θ` values. Architecture (layer sizes, inhibition wiring, protocol)
    /// cannot change through this call — use [`Engine::sync_from`] or
    /// rebuild for that.
    ///
    /// # Errors
    ///
    /// Returns [`snn_core::SnnError::DimensionMismatch`] when `weights` or
    /// `thetas` do not match the template's shape; the engine state is
    /// untouched in that case.
    pub fn hot_swap(&mut self, weights: &[f32], thetas: &[f32]) -> snn_core::SnnResult<()> {
        if weights.len() != self.template.weights.len() {
            return Err(snn_core::SnnError::DimensionMismatch {
                expected: self.template.weights.len(),
                got: weights.len(),
                what: "hot-swap weight buffer",
            });
        }
        if thetas.len() != self.template.n_exc() {
            return Err(snn_core::SnnError::DimensionMismatch {
                expected: self.template.n_exc(),
                got: thetas.len(),
                what: "hot-swap theta vector",
            });
        }
        self.template
            .weights
            .as_mut_slice()
            .copy_from_slice(weights);
        self.template.exc.thetas_mut().copy_from_slice(thetas);
        self.scaled_thetas.clear();
        self.scaled_thetas
            .extend(thetas.iter().map(|t| t * self.theta_scale));
        // Private pool: replicas only re-synchronise θ per sample, so
        // weights must be refreshed here for pooled replicas to serve the
        // new model. Shared pool: replicas may belong to other engines and
        // get a full learned-state re-sync per sample anyway.
        if !self.shared {
            self.pool.sync_each(|replica| {
                replica.weights.as_mut_slice().copy_from_slice(weights);
            });
        }
        Ok(())
    }

    /// Checks a replica out of the pool (architecture-matched on a shared
    /// pool, any replica on a private one — private replicas all share the
    /// template's architecture by construction).
    fn checkout(&self) -> Snn {
        if self.shared {
            self.pool.checkout_matching(&self.template)
        } else {
            self.pool.checkout(&self.template)
        }
    }

    /// Simulates one sample on `replica` with the engine's protocol.
    fn run_one(
        &self,
        replica: &mut Snn,
        image: &Image,
        sample_seed: u64,
        ops: &mut OpCounts,
    ) -> SampleResult {
        // Re-synchronise learned state: weights never change during
        // inference, but `θ` evolves within a presentation, so it must be
        // restored from the (scaled) template before every sample. On a
        // shared pool the weights are re-synced too — the replica may have
        // last served a different engine's model.
        if self.shared {
            replica
                .weights
                .as_mut_slice()
                .copy_from_slice(self.template.weights.as_slice());
        }
        replica
            .exc
            .thetas_mut()
            .copy_from_slice(&self.scaled_thetas);
        let rates = self.encoder.rates_hz(image.pixels());
        run_sample(
            replica,
            &rates,
            &self.present,
            None,
            &mut seeded_rng(sample_seed),
            ops,
        )
    }

    /// Runs a batch sample-parallel, returning per-sample results in
    /// submission order plus the aggregate operation meter.
    ///
    /// Sample `i` draws its encoding noise from
    /// `seeded_rng(derive_seed(batch_seed, i))`, so results are
    /// bit-identical to [`Engine::infer_sequential`] for every thread
    /// count, and a prefix of a batch equals the batch of the prefix.
    pub fn infer_batch_metered(&self, images: &[Image], batch_seed: u64) -> BatchOutcome {
        let t0 = Instant::now();
        let per_sample: Vec<(SampleResult, OpCounts)> = images
            .par_iter()
            .enumerate()
            .map(|(i, image)| {
                let mut replica = self.checkout();
                let mut ops = OpCounts::default();
                let result = self.run_one(
                    &mut replica,
                    image,
                    derive_seed(batch_seed, i as u64),
                    &mut ops,
                );
                self.pool.restore(replica);
                (result, ops)
            })
            .collect();
        let mut ops = OpCounts::default();
        let mut results = Vec::with_capacity(per_sample.len());
        for (result, sample_ops) in per_sample {
            ops.accumulate(&sample_ops);
            results.push(result);
        }
        self.meter_run(t0, images.len());
        BatchOutcome { results, ops }
    }

    /// Runs a batch sample-parallel, returning per-sample results in
    /// submission order. See [`Engine::infer_batch_metered`] to also get
    /// the operation counts.
    pub fn infer_batch(&self, images: &[Image], batch_seed: u64) -> Vec<SampleResult> {
        self.infer_batch_metered(images, batch_seed).results
    }

    /// Reference sequential path: same per-sample seed derivation, one
    /// sample at a time on one replica. Exists so tests (and sceptical
    /// callers) can check bit-identity against [`Engine::infer_batch`].
    pub fn infer_sequential(&self, images: &[Image], batch_seed: u64) -> Vec<SampleResult> {
        let t0 = Instant::now();
        let mut replica = self.checkout();
        let mut ops = OpCounts::default();
        let results = images
            .iter()
            .enumerate()
            .map(|(i, image)| {
                self.run_one(
                    &mut replica,
                    image,
                    derive_seed(batch_seed, i as u64),
                    &mut ops,
                )
            })
            .collect();
        self.pool.restore(replica);
        self.meter_run(t0, images.len());
        results
    }

    /// Batched inference returning `(label, spike counts)` pairs for
    /// class-assignment fitting or accuracy evaluation.
    pub fn responses(&self, images: &[Image], batch_seed: u64) -> Vec<(u8, Vec<u32>)> {
        self.infer_batch(images, batch_seed)
            .into_iter()
            .zip(images)
            .map(|(result, image)| (image.label, result.exc_spike_counts))
            .collect()
    }

    /// Fits a neuron→class assignment from a labelled assignment set.
    pub fn fit_assignment(
        &self,
        images: &[Image],
        n_classes: usize,
        batch_seed: u64,
    ) -> ClassAssignment {
        let responses = self.responses(images, batch_seed);
        ClassAssignment::from_responses(
            self.template.n_exc(),
            n_classes,
            responses
                .iter()
                .map(|(label, counts)| (*label, counts.as_slice())),
        )
    }

    /// Evaluates a labelled stream against an assignment.
    pub fn evaluate(
        &self,
        stream: &[Image],
        assignment: &ClassAssignment,
        batch_seed: u64,
    ) -> EvalReport {
        let outcome = self.infer_batch_metered(stream, batch_seed);
        let mut confusion = ConfusionMatrix::new(assignment.n_classes());
        for (image, result) in stream.iter().zip(&outcome.results) {
            confusion.add(image.label, assignment.predict(&result.exc_spike_counts));
        }
        EvalReport {
            accuracy: confusion.accuracy(),
            confusion,
            samples: stream.len() as u64,
            exc_spikes: outcome.total_exc_spikes(),
            input_spikes: outcome.total_input_spikes(),
            ops: outcome.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_data::SyntheticDigits;

    fn images(n: u64) -> Vec<Image> {
        let gen = SyntheticDigits::new(5);
        (0..n)
            .map(|i| gen.sample((i % 10) as u8, i).downsample(2))
            .collect()
    }

    fn fast_engine(seed: u64) -> Engine {
        Engine::new(
            EngineConfig::new(SnnConfig::direct_lateral(196, 12), seed)
                .with_present(PresentConfig {
                    t_rest_ms: 0.0,
                    retry: None,
                    ..PresentConfig::fast()
                })
                .with_max_rate(255.0),
        )
    }

    #[test]
    fn batch_is_bit_identical_to_sequential() {
        let engine = fast_engine(1);
        let imgs = images(12);
        assert_eq!(
            engine.infer_batch(&imgs, 9),
            engine.infer_sequential(&imgs, 9)
        );
    }

    #[test]
    fn batch_is_deterministic_across_calls() {
        let engine = fast_engine(2);
        let imgs = images(10);
        assert_eq!(engine.infer_batch(&imgs, 3), engine.infer_batch(&imgs, 3));
    }

    #[test]
    fn prefix_of_batch_equals_batch_of_prefix() {
        let engine = fast_engine(3);
        let imgs = images(8);
        let full = engine.infer_batch(&imgs, 4);
        let prefix = engine.infer_batch(&imgs[..3], 4);
        assert_eq!(&full[..3], &prefix[..]);
    }

    #[test]
    fn different_batch_seeds_differ() {
        let engine = fast_engine(4);
        let imgs = images(6);
        // Encoding noise differs, so spike trajectories should too (a
        // bitwise-equal outcome across independent seeds would indicate
        // the seed is ignored).
        assert_ne!(engine.infer_batch(&imgs, 1), engine.infer_batch(&imgs, 2));
    }

    #[test]
    fn two_engines_same_config_agree() {
        let imgs = images(5);
        let a = fast_engine(7).infer_batch(&imgs, 11);
        let b = fast_engine(7).infer_batch(&imgs, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn pool_retains_replicas_between_batches() {
        let engine = fast_engine(5);
        let imgs = images(8);
        engine.infer_batch(&imgs, 0);
        assert!(engine.pool.idle() >= 1);
        let idle_after_first = engine.pool.idle();
        engine.infer_batch(&imgs, 1);
        // No unbounded growth: workers reuse pooled replicas.
        assert!(engine.pool.idle() <= idle_after_first.max(imgs.len()));
    }

    #[test]
    fn metered_ops_are_order_independent_and_nonzero() {
        let engine = fast_engine(6);
        let imgs = images(9);
        let a = engine.infer_batch_metered(&imgs, 2);
        let b = engine.infer_batch_metered(&imgs, 2);
        assert_eq!(a.ops, b.ops);
        assert!(a.ops.neuron_updates > 0);
        assert!(a.ops.encode_ops > 0);
    }

    #[test]
    fn evaluate_produces_consistent_report() {
        let engine = fast_engine(8);
        let imgs = images(10);
        let assignment = engine.fit_assignment(&imgs, 10, 1);
        let report = engine.evaluate(&imgs, &assignment, 2);
        assert_eq!(report.samples, 10);
        assert_eq!(report.confusion.total(), 10);
        assert!((0.0..=1.0).contains(&report.accuracy));
        assert_eq!(report.accuracy, report.confusion.accuracy());
    }

    #[test]
    fn theta_scale_changes_results_only_when_theta_nonzero() {
        // Fresh networks have θ = 0, so scaling it must be a no-op…
        let imgs = images(4);
        let base = fast_engine(9);
        let scaled = Engine::from_network(base.network().clone(), *base.present(), 255.0, 0.5);
        assert_eq!(base.infer_batch(&imgs, 3), scaled.infer_batch(&imgs, 3));
        // …and with a non-zero θ the scale must matter.
        let mut net = base.network().clone();
        for t in net.exc.thetas_mut() {
            *t = 10.0;
        }
        let heavy = Engine::from_network(net.clone(), *base.present(), 255.0, 1.0);
        let light = Engine::from_network(net, *base.present(), 255.0, 0.0);
        assert_ne!(heavy.infer_batch(&imgs, 3), light.infer_batch(&imgs, 3));
    }

    #[test]
    fn sync_from_adopts_new_weights() {
        let mut engine = fast_engine(10);
        let imgs = images(4);
        let before = engine.infer_batch(&imgs, 5);
        let mut net = engine.network().clone();
        for j in 0..net.n_exc() {
            for k in 0..net.n_input() {
                net.weights.set(j, k, 0.9);
            }
        }
        engine.sync_from(&net);
        let after = engine.infer_batch(&imgs, 5);
        assert_ne!(before, after, "stronger weights must change spiking");
        assert!(engine.pool.idle() > 0);
    }

    #[test]
    fn hot_swap_matches_rebuild_and_keeps_pool_warm() {
        let mut engine = fast_engine(12);
        let imgs = images(6);
        engine.infer_batch(&imgs, 3); // warm the pool
        let idle_before = engine.pool.idle();
        assert!(idle_before > 0);

        // New learned state: different weights and a non-zero θ.
        let mut net = engine.network().clone();
        for j in 0..net.n_exc() {
            for k in 0..net.n_input() {
                net.weights.set(j, k, 0.01 * (j + k) as f32);
            }
        }
        for t in net.exc.thetas_mut() {
            *t = 2.0;
        }

        let reference =
            Engine::from_network(net.clone(), *engine.present(), 255.0, 1.0).infer_batch(&imgs, 7);
        engine
            .hot_swap(net.weights.as_slice(), net.exc.thetas())
            .unwrap();
        assert_eq!(
            engine.pool.idle(),
            idle_before,
            "hot swap must keep pooled replicas"
        );
        assert_eq!(
            engine.infer_batch(&imgs, 7),
            reference,
            "hot-swapped engine must serve the new model bit-identically"
        );
    }

    #[test]
    fn hot_swap_applies_theta_scale() {
        let base = fast_engine(13);
        let imgs = images(4);
        let mut scaled = Engine::from_network(base.network().clone(), *base.present(), 255.0, 0.0);
        let mut net = base.network().clone();
        for t in net.exc.thetas_mut() {
            *t = 50.0;
        }
        scaled
            .hot_swap(net.weights.as_slice(), net.exc.thetas())
            .unwrap();
        // θ scale 0.0 removes the (huge) adaptation, so results must match
        // the unswapped engine (same weights, θ effectively zero both ways).
        assert_eq!(scaled.infer_batch(&imgs, 5), base.infer_batch(&imgs, 5));
    }

    #[test]
    fn hot_swap_validates_shapes() {
        let mut engine = fast_engine(14);
        let n_exc = engine.network().n_exc();
        let weights = engine.network().weights.as_slice().to_vec();
        assert!(engine.hot_swap(&weights[..10], &vec![0.0; n_exc]).is_err());
        assert!(engine.hot_swap(&weights, &vec![0.0; n_exc + 1]).is_err());
        assert!(engine.hot_swap(&weights, &vec![0.0; n_exc]).is_ok());
    }

    #[test]
    fn shared_pool_engine_is_bit_identical_to_private() {
        let private = fast_engine(20);
        let shared = Engine::from_network_shared(
            private.network().clone(),
            *private.present(),
            255.0,
            1.0,
            std::sync::Arc::new(crate::ReplicaPool::new()),
        );
        assert!(shared.is_shared() && !private.is_shared());
        let imgs = images(8);
        // Twice: the second round draws warm (possibly weight-stale in the
        // general shared case) replicas from the pool.
        for seed in [3, 4] {
            assert_eq!(
                shared.infer_batch(&imgs, seed),
                private.infer_batch(&imgs, seed)
            );
        }
    }

    #[test]
    fn shared_pool_isolates_engines_with_different_weights() {
        // Two engines serving different models off ONE pool must each
        // match an isolated private-pool reference, even when their
        // batches interleave and replicas migrate between them.
        let base = fast_engine(21);
        let mut strong_net = base.network().clone();
        for j in 0..strong_net.n_exc() {
            for k in 0..strong_net.n_input() {
                strong_net.weights.set(j, k, 0.8);
            }
        }
        let imgs = images(6);
        let ref_weak = base.infer_batch(&imgs, 9);
        let ref_strong = Engine::from_network(strong_net.clone(), *base.present(), 255.0, 1.0)
            .infer_batch(&imgs, 9);
        assert_ne!(ref_weak, ref_strong, "the two models must differ");

        let pool: crate::PoolHandle = std::sync::Arc::new(crate::ReplicaPool::new());
        let weak = Engine::from_network_shared(
            base.network().clone(),
            *base.present(),
            255.0,
            1.0,
            std::sync::Arc::clone(&pool),
        );
        let strong = Engine::from_network_shared(
            strong_net,
            *base.present(),
            255.0,
            1.0,
            std::sync::Arc::clone(&pool),
        );
        for _ in 0..2 {
            assert_eq!(weak.infer_batch(&imgs, 9), ref_weak);
            assert_eq!(strong.infer_batch(&imgs, 9), ref_strong);
        }
        assert!(pool.idle() > 0, "replicas returned to the shared pool");
    }

    #[test]
    fn shared_hot_swap_serves_new_model() {
        let pool: crate::PoolHandle = std::sync::Arc::new(crate::ReplicaPool::new());
        let base = fast_engine(22);
        let mut engine =
            Engine::from_network_shared(base.network().clone(), *base.present(), 255.0, 1.0, pool);
        let imgs = images(5);
        engine.infer_batch(&imgs, 1); // warm the shared pool
        let mut net = engine.network().clone();
        for t in net.exc.thetas_mut() {
            *t = 3.0;
        }
        let reference =
            Engine::from_network(net.clone(), *engine.present(), 255.0, 1.0).infer_batch(&imgs, 2);
        engine
            .hot_swap(net.weights.as_slice(), net.exc.thetas())
            .unwrap();
        assert_eq!(engine.infer_batch(&imgs, 2), reference);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = fast_engine(11);
        assert!(engine.infer_batch(&[], 0).is_empty());
        let outcome = engine.infer_batch_metered(&[], 0);
        assert_eq!(outcome.ops, OpCounts::default());
    }
}
