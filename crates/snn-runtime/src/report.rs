//! Result types returned by the engine.

use serde::{Deserialize, Serialize};
use snn_core::metrics::ConfusionMatrix;
use snn_core::ops::OpCounts;
use snn_core::sim::SampleResult;

/// One batch's per-sample results plus the aggregate operation meter.
///
/// Per-sample op counts are accumulated in submission order, so the
/// aggregate is identical whatever the thread count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// One result per submitted image, in submission order.
    pub results: Vec<SampleResult>,
    /// Sum of the batch's operation counts.
    pub ops: OpCounts,
}

impl BatchOutcome {
    /// Total excitatory spikes across the batch.
    pub fn total_exc_spikes(&self) -> u64 {
        self.results
            .iter()
            .map(|r| u64::from(r.total_exc_spikes()))
            .sum()
    }

    /// Total input spikes delivered across the batch.
    pub fn total_input_spikes(&self) -> u64 {
        self.results.iter().map(|r| r.input_spikes).sum()
    }
}

/// Outcome of evaluating a labelled stream against a class assignment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Target-vs-predicted confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Overall accuracy (correct / total).
    pub accuracy: f64,
    /// Number of evaluated samples.
    pub samples: u64,
    /// Total excitatory spikes emitted during evaluation.
    pub exc_spikes: u64,
    /// Total input spikes delivered during evaluation.
    pub input_spikes: u64,
    /// Aggregate operation counts of the evaluation run.
    pub ops: OpCounts,
}

impl EvalReport {
    /// Average operation counts per evaluated sample (`E1` in the paper's
    /// `E = E1 · N` energy model).
    pub fn avg_sample_ops(&self) -> OpCounts {
        self.ops.averaged_over(self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result(counts: Vec<u32>, input: u64) -> SampleResult {
        SampleResult {
            exc_spike_counts: counts,
            input_spikes: input,
            retries: 0,
            steps_run: 10,
        }
    }

    #[test]
    fn batch_outcome_totals() {
        let outcome = BatchOutcome {
            results: vec![sample_result(vec![1, 2], 5), sample_result(vec![0, 4], 7)],
            ops: OpCounts::default(),
        };
        assert_eq!(outcome.total_exc_spikes(), 7);
        assert_eq!(outcome.total_input_spikes(), 12);
    }

    #[test]
    fn avg_sample_ops_divides() {
        let report = EvalReport {
            confusion: ConfusionMatrix::new(10),
            accuracy: 0.5,
            samples: 4,
            exc_spikes: 0,
            input_spikes: 0,
            ops: OpCounts {
                neuron_updates: 40,
                kernel_launches: 9,
                ..Default::default()
            },
        };
        let avg = report.avg_sample_ops();
        assert_eq!(avg.neuron_updates, 10);
        assert_eq!(avg.kernel_launches, 2);
    }

    #[test]
    fn avg_sample_ops_of_empty_report_is_zero() {
        let report = EvalReport {
            confusion: ConfusionMatrix::new(10),
            accuracy: 0.0,
            samples: 0,
            exc_spikes: 0,
            input_spikes: 0,
            ops: OpCounts {
                neuron_updates: 40,
                ..Default::default()
            },
        };
        assert_eq!(report.avg_sample_ops(), OpCounts::default());
    }
}
