//! # snn-slo — declarative service-level objectives over `snn-obs` streams
//!
//! The serving tiers expose everything a watcher needs — counters,
//! gauges, latency histograms, a flight-recorder journal — as
//! [`snn_obs::Snapshot`]s, scraped on demand (`metrics`,
//! `cluster-metrics`) or pushed periodically (`subscribe`). This crate
//! is the watcher: a pure, socket-free [`SloEngine`] that consumes
//! consecutive snapshots, differentiates them into *windowed* signal
//! values (a reject **rate**, a joules **burn**, the p99 of the latency
//! recorded *since the last tick*), and raises deduplicated [`Alert`]s
//! when an [`Objective`]'s violation fraction — its burn rate — stays
//! high across the evaluation window.
//!
//! Everything here is a pure function of the snapshots fed in: no
//! clocks, no I/O, no threads. The caller owns the transport (typically
//! `snn_serve::ServeClient::subscribe`'s `push` frames, whose
//! `metrics` field is exactly the [`snn_obs::Snapshot`] this engine
//! eats) and the reaction (typically feeding [`LoadView`] — extracted
//! from the same snapshots by [`load_view`] — to an autoscaler).
//!
//! ```
//! use snn_obs::Registry;
//! use snn_slo::{Objective, Signal, SloEngine, SloPolicy};
//!
//! let r = Registry::new("s0");
//! let mut engine = SloEngine::new(
//!     vec![Objective {
//!         name: "ingest-rejects".into(),
//!         signal: Signal::RejectRate,
//!         threshold: 0.1,
//!     }],
//!     SloPolicy::default(),
//! );
//! // Feed consecutive snapshots; a healthy stream raises nothing.
//! assert!(engine.observe(&r.snapshot(), 0).is_empty());
//! assert!(engine.observe(&r.snapshot(), 1_000_000).is_empty());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;

use snn_obs::{HistogramSnapshot, Snapshot};

/// What an [`Objective`] watches, each evaluated over the delta between
/// consecutive observed snapshots (except the instantaneous gauges).
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// The p99, in microseconds, of `serve.req.<verb>_us` latency
    /// recorded since the previous observation (a histogram delta, so a
    /// long-gone spike cannot keep the alert firing forever).
    VerbLatencyP99Us(
        /// The request verb to watch (e.g. `"ingest"`).
        String,
    ),
    /// Rejected requests (admission + backpressure) as a fraction of
    /// all requests since the previous observation. Zero when no
    /// requests arrived — an idle service violates nothing.
    RejectRate,
    /// Modelled joules burned per wall-clock second since the previous
    /// observation (from the `serve.total_j` gauge and the caller's
    /// timestamps).
    JoulesPerSecond,
    /// The instantaneous `cluster.shadow_lag` gauge: the worst
    /// per-session sample gap between ingested and shadowed state.
    ShadowLagSamples,
}

/// One service-level objective: a named signal that must stay at or
/// below a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// Stable name, carried on every [`Alert`] for this objective.
    pub name: String,
    /// What to measure.
    pub signal: Signal,
    /// Violation when the measured value exceeds this.
    pub threshold: f64,
}

/// Windowing and burn-rate knobs shared by every objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// How many recent observations the violation window holds.
    pub window: usize,
    /// Fire when the fraction of violating observations in the window
    /// reaches this; clear (re-arming the alert) when it falls back
    /// below. A fraction, so `1.0` means "every recent tick violated".
    pub burn_threshold: f64,
    /// Observations required in the window before any alert can fire —
    /// one noisy first sample must not page anyone.
    pub min_samples: usize,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            window: 10,
            burn_threshold: 0.5,
            min_samples: 3,
        }
    }
}

/// One fired alert: an objective whose burn rate crossed the policy
/// threshold this observation (deduplicated — the objective must clear
/// before it can fire again).
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The violated objective's name.
    pub objective: String,
    /// The signal value measured at the firing observation.
    pub value: f64,
    /// The violation fraction over the window at firing time.
    pub burn_rate: f64,
    /// The caller's timestamp of the firing observation, microseconds.
    pub at_us: u64,
    /// The request id of the worst tail-latency exemplar the observed
    /// snapshot retains for the violated signal (latency objectives
    /// only; `None` for rate/gauge signals or when the exposition
    /// carries no exemplars). This is the rid to hand straight to
    /// `cluster-trace rid=…` — the alert names the exact request that
    /// defines the regression, not just the aggregate.
    pub exemplar_rid: Option<String>,
}

/// Per-objective evaluation state: the recent violation window and
/// whether the alert is currently firing.
#[derive(Debug)]
struct ObjectiveState {
    objective: Objective,
    window: VecDeque<bool>,
    firing: bool,
    /// Last measured value (whatever the most recent observation saw).
    last_value: f64,
}

/// The engine: consecutive snapshots in, deduplicated alerts out.
#[derive(Debug)]
pub struct SloEngine {
    policy: SloPolicy,
    states: Vec<ObjectiveState>,
    prev: Option<(Snapshot, u64)>,
}

impl SloEngine {
    /// A fresh engine evaluating `objectives` under `policy`.
    pub fn new(objectives: Vec<Objective>, policy: SloPolicy) -> Self {
        SloEngine {
            policy,
            states: objectives
                .into_iter()
                .map(|objective| ObjectiveState {
                    objective,
                    window: VecDeque::new(),
                    firing: false,
                    last_value: 0.0,
                })
                .collect(),
            prev: None,
        }
    }

    /// Feeds one observed snapshot, stamped by the caller (`at_us` must
    /// be monotone; the subscribe stream's frame arrival time works).
    /// Returns the alerts that *started firing* on this observation.
    /// The first observation only primes the delta state and can never
    /// alert.
    pub fn observe(&mut self, snap: &Snapshot, at_us: u64) -> Vec<Alert> {
        let Some((prev, prev_us)) = self.prev.take() else {
            self.prev = Some((snap.clone(), at_us));
            return Vec::new();
        };
        let mut fired = Vec::new();
        for state in &mut self.states {
            let value = signal_value(&state.objective.signal, &prev, prev_us, snap, at_us);
            state.last_value = value;
            state.window.push_back(value > state.objective.threshold);
            while state.window.len() > self.policy.window {
                state.window.pop_front();
            }
            if state.window.len() < self.policy.min_samples {
                continue;
            }
            let violations = state.window.iter().filter(|&&v| v).count();
            let burn_rate = violations as f64 / state.window.len() as f64;
            if burn_rate >= self.policy.burn_threshold {
                if !state.firing {
                    state.firing = true;
                    fired.push(Alert {
                        objective: state.objective.name.clone(),
                        value,
                        burn_rate,
                        at_us,
                        exemplar_rid: signal_exemplar(&state.objective.signal, snap),
                    });
                }
            } else {
                state.firing = false;
            }
        }
        self.prev = Some((snap.clone(), at_us));
        fired
    }

    /// Whether the named objective is currently firing.
    pub fn is_firing(&self, objective: &str) -> bool {
        self.states
            .iter()
            .any(|s| s.objective.name == objective && s.firing)
    }

    /// The most recent measured value of the named objective's signal
    /// (zero before the second observation).
    pub fn last_value(&self, objective: &str) -> Option<f64> {
        self.states
            .iter()
            .find(|s| s.objective.name == objective)
            .map(|s| s.last_value)
    }
}

/// Evaluates one signal over a `(prev, current)` snapshot pair.
fn signal_value(
    signal: &Signal,
    prev: &Snapshot,
    prev_us: u64,
    snap: &Snapshot,
    at_us: u64,
) -> f64 {
    match signal {
        Signal::VerbLatencyP99Us(verb) => {
            let name = format!("serve.req.{verb}_us");
            let delta = histogram_delta(&prev.histogram(&name), &snap.histogram(&name));
            if delta.count() == 0 {
                0.0
            } else {
                delta.quantile(0.99) as f64
            }
        }
        Signal::RejectRate => {
            let rejects = counter_delta(prev, snap, "serve.admission_rejects")
                + counter_delta(prev, snap, "serve.backpressure_rejects");
            let requests = counter_delta(prev, snap, "serve.requests");
            if requests == 0 {
                0.0
            } else {
                rejects as f64 / requests as f64
            }
        }
        Signal::JoulesPerSecond => {
            let dt_s = at_us.saturating_sub(prev_us) as f64 / 1e6;
            if dt_s <= 0.0 {
                0.0
            } else {
                (snap.gauge("serve.total_j") - prev.gauge("serve.total_j")).max(0.0) / dt_s
            }
        }
        Signal::ShadowLagSamples => snap.gauge("cluster.shadow_lag"),
    }
}

/// The rid of the worst retained tail-latency exemplar for a signal's
/// backing histogram, if the signal has one and the snapshot retains
/// any. Only latency signals map to an exemplar-bearing series.
fn signal_exemplar(signal: &Signal, snap: &Snapshot) -> Option<String> {
    match signal {
        Signal::VerbLatencyP99Us(verb) => snap
            .worst_exemplar(&format!("serve.req.{verb}_us"))
            .map(|e| e.rid.clone()),
        Signal::RejectRate | Signal::JoulesPerSecond | Signal::ShadowLagSamples => None,
    }
}

fn counter_delta(prev: &Snapshot, snap: &Snapshot, name: &str) -> u64 {
    snap.counter(name).saturating_sub(prev.counter(name))
}

/// The histogram of values recorded between two snapshots of the same
/// (monotone) histogram: a per-bucket saturating subtraction. A merged
/// cluster exposition stays monotone as long as the shard set does not
/// shrink; a vanished shard reads as an empty delta, never a panic.
fn histogram_delta(prev: &HistogramSnapshot, snap: &HistogramSnapshot) -> HistogramSnapshot {
    let mut delta = HistogramSnapshot::new();
    for (i, d) in delta.counts.iter_mut().enumerate() {
        let now = snap.counts.get(i).copied().unwrap_or(0);
        let before = prev.counts.get(i).copied().unwrap_or(0);
        *d = now.saturating_sub(before);
    }
    delta.sum = snap.sum.saturating_sub(prev.sum);
    delta
}

/// The load signals an autoscaler consumes, extracted from one merged
/// cluster exposition (the `cluster-metrics` or router-`subscribe`
/// snapshot): the wire-side equivalent of scraping
/// `snn_cluster::Cluster::stats` in-process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadView {
    /// Live shards (`cluster.alive_shards`).
    pub alive_shards: usize,
    /// Sessions currently routed (`cluster.sessions`).
    pub sessions: usize,
    /// Jobs queued across all scraped shards (`serve.queued_jobs`).
    pub queued_jobs: usize,
    /// Cumulative modelled joules across all scraped shards
    /// (`serve.total_j`).
    pub total_j: f64,
}

/// Extracts a [`LoadView`] from a merged cluster exposition. Gauges
/// merge by summation across instances, so the serve-tier gauges read
/// as cluster totals here.
pub fn load_view(snap: &Snapshot) -> LoadView {
    LoadView {
        alive_shards: snap.gauge("cluster.alive_shards").max(0.0) as usize,
        sessions: snap.gauge("cluster.sessions").max(0.0) as usize,
        queued_jobs: snap.gauge("serve.queued_jobs").max(0.0) as usize,
        total_j: snap.gauge("serve.total_j"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_obs::Registry;

    fn policy() -> SloPolicy {
        SloPolicy {
            window: 4,
            burn_threshold: 0.5,
            min_samples: 2,
        }
    }

    fn reject_objective() -> Objective {
        Objective {
            name: "rejects".into(),
            signal: Signal::RejectRate,
            threshold: 0.2,
        }
    }

    #[test]
    fn first_observation_only_primes_the_delta() {
        let r = Registry::new("t0");
        r.counter("serve.requests").add(100);
        r.counter("serve.admission_rejects").add(100);
        let mut engine = SloEngine::new(vec![reject_objective()], policy());
        // Even a snapshot whose *cumulative* counters look terrible
        // cannot alert: there is no window yet, only history.
        assert!(engine.observe(&r.snapshot(), 0).is_empty());
    }

    #[test]
    fn sustained_rejects_fire_once_and_clear_rearms() {
        let r = Registry::new("t1");
        let requests = r.counter("serve.requests");
        let rejects = r.counter("serve.admission_rejects");
        let mut engine = SloEngine::new(vec![reject_objective()], policy());
        let mut at = 0u64;
        let mut tick = |engine: &mut SloEngine, req: u64, rej: u64| {
            requests.add(req);
            rejects.add(rej);
            at += 1_000_000;
            engine.observe(&r.snapshot(), at)
        };
        assert!(tick(&mut engine, 10, 0).is_empty()); // prime
        assert!(tick(&mut engine, 10, 0).is_empty()); // healthy
                                                      // One violating tick over a [healthy, bad] window: burn rate
                                                      // hits exactly 0.5 ≥ threshold — the alert fires once, with the
                                                      // measured value and burn rate.
        let fired = tick(&mut engine, 10, 5);
        let alert = match fired.as_slice() {
            [a] => a,
            other => panic!("expected one alert, got {other:?}"),
        };
        assert_eq!(alert.objective, "rejects");
        assert!((alert.value - 0.5).abs() < 1e-9, "value {}", alert.value);
        assert!(alert.burn_rate >= 0.5);
        assert!(engine.is_firing("rejects"));
        // Still burning: deduplicated, no re-fire.
        assert!(tick(&mut engine, 10, 5).is_empty());
        // Recover long enough for the 4-window to drain below 0.5…
        assert!(tick(&mut engine, 10, 0).is_empty()); // [f,t,t,f] = 0.5, holds
        assert!(tick(&mut engine, 10, 0).is_empty()); // [t,t,f,f] = 0.5, holds
        assert!(tick(&mut engine, 10, 0).is_empty()); // [t,f,f,f] = 0.25, clears
        assert!(!engine.is_firing("rejects"));
        // …and a fresh burn fires a fresh alert.
        assert!(tick(&mut engine, 10, 5).is_empty()); // [f,f,f,t] = 0.25
        assert_eq!(tick(&mut engine, 10, 5).len(), 1); // [f,f,t,t] = 0.5
    }

    #[test]
    fn sustained_rejects_fire_at_half_window() {
        // Separate check for the comment above: with min_samples=2 and
        // a half-burned window, the first eligible observation fires.
        let r = Registry::new("t2");
        let mut engine = SloEngine::new(
            vec![reject_objective()],
            SloPolicy {
                window: 4,
                burn_threshold: 0.5,
                min_samples: 2,
            },
        );
        engine.observe(&r.snapshot(), 0);
        r.counter("serve.requests").add(10);
        r.counter("serve.admission_rejects").add(10);
        assert!(
            engine.observe(&r.snapshot(), 1).is_empty(),
            "1 sample < min"
        );
        r.counter("serve.requests").add(10);
        r.counter("serve.admission_rejects").add(10);
        assert_eq!(engine.observe(&r.snapshot(), 2).len(), 1);
    }

    #[test]
    fn idle_service_never_violates_a_reject_slo() {
        let r = Registry::new("t3");
        let mut engine = SloEngine::new(vec![reject_objective()], policy());
        for at in 0..8 {
            assert!(engine.observe(&r.snapshot(), at).is_empty());
        }
        assert_eq!(engine.last_value("rejects"), Some(0.0));
    }

    #[test]
    fn latency_p99_is_windowed_not_lifetime() {
        let r = Registry::new("t4");
        let h = r.histogram("serve.req.ingest_us");
        let mut engine = SloEngine::new(
            vec![Objective {
                name: "ingest-p99".into(),
                signal: Signal::VerbLatencyP99Us("ingest".into()),
                threshold: 1_000.0,
            }],
            SloPolicy {
                window: 1,
                burn_threshold: 1.0,
                min_samples: 1,
            },
        );
        // A historic spike…
        for _ in 0..100 {
            h.record(50_000);
        }
        engine.observe(&r.snapshot(), 0);
        // …followed by a healthy window: the delta p99 is the *recent*
        // latency, so no violation despite the terrible lifetime p99.
        for _ in 0..100 {
            h.record(100);
        }
        assert!(engine.observe(&r.snapshot(), 1_000_000).is_empty());
        let p99 = engine.last_value("ingest-p99").unwrap();
        assert!(p99 < 1_000.0, "windowed p99 {p99} reflects recent traffic");
        // And a recent spike violates even though idle ticks preceded it.
        for _ in 0..100 {
            h.record(50_000);
        }
        let fired = engine.observe(&r.snapshot(), 2_000_000);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].value >= 1_000.0);
    }

    #[test]
    fn latency_alert_names_the_worst_exemplar_rid() {
        let r = Registry::new("t9");
        let h = r.histogram("serve.req.ingest_us");
        let mut engine = SloEngine::new(
            vec![Objective {
                name: "ingest-p99".into(),
                signal: Signal::VerbLatencyP99Us("ingest".into()),
                threshold: 1_000.0,
            }],
            SloPolicy {
                window: 1,
                burn_threshold: 1.0,
                min_samples: 1,
            },
        );
        engine.observe(&r.snapshot(), 0);
        // The spike that violates the objective, with exemplars retained
        // exactly as the serve tier records them alongside the histogram.
        h.record(40_000);
        r.exemplar("serve.req.ingest_us", 40_000, "s0-7", &[]);
        h.record(90_000);
        r.exemplar("serve.req.ingest_us", 90_000, "s0-9", &[]);
        let fired = engine.observe(&r.snapshot(), 1_000_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(
            fired[0].exemplar_rid.as_deref(),
            Some("s0-9"),
            "the alert hands over the slowest retained request's rid"
        );
        // Rate signals have no backing latency series: no rid.
        let mut rates = SloEngine::new(
            vec![reject_objective()],
            SloPolicy {
                window: 1,
                burn_threshold: 1.0,
                min_samples: 1,
            },
        );
        rates.observe(&r.snapshot(), 0);
        r.counter("serve.requests").add(10);
        r.counter("serve.admission_rejects").add(10);
        let fired = rates.observe(&r.snapshot(), 1_000_000);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].exemplar_rid, None);
    }

    #[test]
    fn joules_burn_is_a_rate_over_caller_timestamps() {
        let r = Registry::new("t5");
        let g = r.gauge("serve.total_j");
        let mut engine = SloEngine::new(
            vec![Objective {
                name: "burn".into(),
                signal: Signal::JoulesPerSecond,
                threshold: 2.0,
            }],
            SloPolicy {
                window: 1,
                burn_threshold: 1.0,
                min_samples: 1,
            },
        );
        g.set(1_000.0); // history, not a rate
        engine.observe(&r.snapshot(), 0);
        g.set(1_001.0); // +1 J over 1 s → 1 J/s: fine
        assert!(engine.observe(&r.snapshot(), 1_000_000).is_empty());
        g.set(1_011.0); // +10 J over 2 s → 5 J/s: violation
        let fired = engine.observe(&r.snapshot(), 3_000_000);
        assert_eq!(fired.len(), 1);
        assert!((fired[0].value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn shadow_lag_is_instantaneous() {
        let r = Registry::new("t6");
        let mut engine = SloEngine::new(
            vec![Objective {
                name: "lag".into(),
                signal: Signal::ShadowLagSamples,
                threshold: 16.0,
            }],
            SloPolicy {
                window: 1,
                burn_threshold: 1.0,
                min_samples: 1,
            },
        );
        r.gauge("cluster.shadow_lag").set(4.0);
        engine.observe(&r.snapshot(), 0);
        assert!(engine.observe(&r.snapshot(), 1).is_empty());
        r.gauge("cluster.shadow_lag").set(64.0);
        assert_eq!(engine.observe(&r.snapshot(), 2).len(), 1);
    }

    #[test]
    fn load_view_reads_the_merged_cluster_gauges() {
        let r = Registry::new("t7");
        r.gauge("cluster.alive_shards").set(3.0);
        r.gauge("cluster.sessions").set(12.0);
        r.gauge("serve.queued_jobs").set(5.0);
        r.gauge("serve.total_j").set(7.5);
        let view = load_view(&r.snapshot());
        assert_eq!(
            view,
            LoadView {
                alive_shards: 3,
                sessions: 12,
                queued_jobs: 5,
                total_j: 7.5,
            }
        );
        // Absent gauges (a router-less exposition) read as zero.
        let empty = load_view(&Registry::new("t8").snapshot());
        assert_eq!(empty.alive_shards, 0);
    }
}
