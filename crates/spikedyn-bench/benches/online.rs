//! Criterion micro-benchmarks of the online-learning hot paths:
//! checkpoint save/load latency and per-sample drift-detector overhead,
//! with one scalar training sample as the simulation-cost yardstick —
//! the detector must be negligible against it, and checkpointing must be
//! cheap enough for frequent durability.

use criterion::{criterion_group, criterion_main, Criterion};
use snn_data::SyntheticDigits;
use snn_online::{DriftConfig, DriftDetector, ModelSnapshot, OnlineConfig, OnlineLearner};
use spikedyn::Method;
use std::hint::black_box;

/// A trained learner at the paper's small network size (N200), so the
/// checkpoint carries a realistic weight matrix (196×200).
fn trained_learner() -> OnlineLearner {
    let mut cfg = OnlineConfig::fast(Method::SpikeDyn, 200);
    cfg.batch_size = 8;
    let gen = SyntheticDigits::new(11);
    let stream: Vec<_> = (0..16)
        .map(|i| gen.sample((i % 4) as u8, i).downsample(2))
        .collect();
    let mut learner = OnlineLearner::new(cfg);
    learner.run(stream).expect("stream matches config");
    learner
}

fn bench_checkpoint(c: &mut Criterion) {
    let learner = trained_learner();
    let snapshot = learner.checkpoint();
    let bytes = snapshot.to_bytes();
    c.bench_function("checkpoint_snapshot_n200", |b| {
        b.iter(|| black_box(learner.checkpoint()))
    });
    c.bench_function("checkpoint_encode_n200", |b| {
        b.iter(|| black_box(snapshot.to_bytes().len()))
    });
    c.bench_function("checkpoint_decode_n200", |b| {
        b.iter(|| black_box(ModelSnapshot::from_bytes(&bytes).unwrap().samples_seen))
    });
    c.bench_function("checkpoint_resume_n200", |b| {
        b.iter(|| {
            let snap = ModelSnapshot::from_bytes(&bytes).unwrap();
            black_box(OnlineLearner::resume(snap).unwrap().samples_seen())
        })
    });
}

fn bench_drift_detector(c: &mut Criterion) {
    let mut detector = DriftDetector::new(DriftConfig::default(), 10);
    let mut i = 0u64;
    c.bench_function("drift_observe_per_sample", |b| {
        b.iter(|| {
            i += 1;
            black_box(detector.observe(Some((i % 10) as u8), 100 + i % 37))
        })
    });
}

fn bench_train_sample_reference(c: &mut Criterion) {
    // The yardstick: one scalar training sample at the same scale. The
    // drift observe above must be orders of magnitude below this.
    let learner = trained_learner();
    let mut trainer_state = learner.checkpoint().trainer;
    trainer_state.infer_calls += 1; // detach from the learner's cursor
    let mut trainer = spikedyn::Trainer::restore(trainer_state).unwrap();
    let gen = SyntheticDigits::new(12);
    let img = gen.sample(3, 0).downsample(2);
    let mut group = c.benchmark_group("reference");
    group.sample_size(10);
    group.bench_function("train_sample_n200", |b| {
        b.iter(|| black_box(trainer.train_image(&img).steps_run))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_checkpoint,
    bench_drift_detector,
    bench_train_sample_reference
);
criterion_main!(benches);
