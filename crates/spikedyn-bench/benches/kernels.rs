//! Criterion micro-benchmarks of the simulator kernels and of one full
//! training sample per method — the performance counterpart of the
//! experiment binaries (which measure *modelled* GPU cost, not host
//! wall-clock).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snn_core::config::PresentConfig;
use snn_core::encoding::PoissonEncoder;
use snn_core::neuron::{AdaptiveThreshold, LifLayer, LifParams};
use snn_core::ops::OpCounts;
use snn_core::rng::seeded_rng;
use snn_core::sim::run_sample;
use snn_core::stdp::{PairStdp, TraceParams, TraceSet};
use snn_core::synapse::WeightMatrix;
use snn_data::SyntheticDigits;
use spikedyn::{Method, Trainer};
use std::hint::black_box;

fn bench_lif_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("lif_step");
    for n in [100usize, 400] {
        let mut layer = LifLayer::new(
            n,
            LifParams::excitatory(),
            Some(AdaptiveThreshold::default()),
        );
        let mut ops = OpCounts::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(layer.step(0.5, &mut ops)))
        });
    }
    group.finish();
}

fn bench_poisson_encode(c: &mut Criterion) {
    let encoder = PoissonEncoder::default();
    let intensities = vec![0.3f32; 784];
    let rates = encoder.rates_hz(&intensities);
    let mut rng = seeded_rng(1);
    let mut out = Vec::new();
    let mut ops = OpCounts::default();
    c.bench_function("poisson_encode_784", |b| {
        b.iter(|| {
            PoissonEncoder::sample_step(&rates, 0.5, &mut rng, &mut out, &mut ops);
            black_box(out.len())
        })
    });
}

fn bench_stdp_updates(c: &mut Criterion) {
    let mut rng = seeded_rng(2);
    let mut weights = WeightMatrix::random_uniform(400, 784, 0.3, 1.0, &mut rng);
    let mut traces = TraceSet::new(784, 400, TraceParams::default());
    let mut ops = OpCounts::default();
    traces.on_pre_spike(10, &mut ops);
    traces.on_post_spike(5, &mut ops);
    let rule = PairStdp::default();
    c.bench_function("stdp_post_spike_784in", |b| {
        b.iter(|| rule.apply_post_spike(&mut weights, &traces, black_box(5), &mut ops))
    });
    c.bench_function("stdp_pre_spike_400out", |b| {
        b.iter(|| rule.apply_pre_spike(&mut weights, &traces, black_box(10), &mut ops))
    });
}

fn bench_weight_decay(c: &mut Criterion) {
    let mut rng = seeded_rng(3);
    let mut weights = WeightMatrix::random_uniform(400, 784, 0.3, 1.0, &mut rng);
    let mut ops = OpCounts::default();
    c.bench_function("weight_decay_313k", |b| {
        b.iter(|| weights.decay_all(black_box(0.9999), &mut ops))
    });
}

fn bench_train_sample_per_method(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_sample");
    group.sample_size(10);
    let gen = SyntheticDigits::new(4);
    let img = gen.sample(3, 0).downsample(2);
    for method in Method::all() {
        group.bench_function(method.label(), |b| {
            let mut trainer =
                Trainer::with_compression(method, 196, 100, PresentConfig::fast(), 150.0, 4)
                    .with_max_rate(255.0);
            b.iter(|| black_box(trainer.train_image(&img).total_exc_spikes()))
        });
    }
    group.finish();
}

fn bench_full_network_step(c: &mut Criterion) {
    use snn_core::network::{Snn, SnnConfig};
    let mut group = c.benchmark_group("network_step");
    for (name, cfg) in [
        (
            "inhibitory_layer_400",
            SnnConfig::with_inhibitory_layer(784, 400),
        ),
        ("direct_lateral_400", SnnConfig::direct_lateral(784, 400)),
    ] {
        let mut net = Snn::new(cfg, &mut seeded_rng(5));
        let mut ops = OpCounts::default();
        group.bench_function(name, |b| {
            b.iter(|| {
                net.deliver_input_spike(black_box(17), &mut ops);
                black_box(net.step(0.5, &mut ops))
            })
        });
    }
    group.finish();
}

fn bench_synthetic_digit(c: &mut Criterion) {
    let gen = SyntheticDigits::new(6);
    let mut i = 0u64;
    c.bench_function("synthetic_digit_28x28", |b| {
        b.iter(|| {
            i += 1;
            black_box(gen.sample((i % 10) as u8, i))
        })
    });
}

/// Scalar `run_sample` loop vs `Engine::infer_batch` at batch sizes
/// 1/8/64 — the speedup the `snn-runtime` subsystem exists to deliver.
/// Both sides run the identical per-sample work (same seeds, same sparse
/// kernel); the batched side adds rayon fan-out and replica pooling.
fn bench_scalar_vs_engine_batch(c: &mut Criterion) {
    use snn_core::network::SnnConfig;
    use snn_runtime::{Engine, EngineConfig};

    let gen = SyntheticDigits::new(12);
    let images: Vec<snn_data::Image> = (0..64)
        .map(|i| gen.sample((i % 10) as u8, i).downsample(2))
        .collect();
    let present = PresentConfig {
        t_rest_ms: 0.0,
        retry: None,
        ..PresentConfig::fast()
    };
    let engine = Engine::new(
        EngineConfig::new(SnnConfig::direct_lateral(196, 100), 12)
            .with_present(present)
            .with_max_rate(255.0),
    );
    let mut group = c.benchmark_group("infer_throughput");
    group.sample_size(10);
    for &batch_size in &[1usize, 8, 64] {
        let samples = &images[..batch_size];
        group.bench_with_input(
            BenchmarkId::new("scalar_run_sample", batch_size),
            &batch_size,
            |b, _| {
                // The seed's original path: one network, one sample at a
                // time through the scalar simulation loop. θ is restored
                // before every sample exactly as `Trainer::infer_image`
                // (and the engine) do, so both sides run identical
                // per-sample dynamics.
                let mut net = engine.network().clone();
                let thetas: Vec<f32> = net.exc.thetas().to_vec();
                let mut ops = OpCounts::default();
                b.iter(|| {
                    let mut spikes = 0u64;
                    for (i, img) in samples.iter().enumerate() {
                        net.exc.thetas_mut().copy_from_slice(&thetas);
                        let rates = PoissonEncoder::new(255.0).rates_hz(img.pixels());
                        let mut rng = seeded_rng(snn_core::rng::derive_seed(7, i as u64));
                        let r = run_sample(
                            &mut net,
                            &rates,
                            engine.present(),
                            None,
                            &mut rng,
                            &mut ops,
                        );
                        spikes += u64::from(r.total_exc_spikes());
                    }
                    black_box(spikes)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine_infer_batch", batch_size),
            &batch_size,
            |b, _| {
                b.iter(|| {
                    let mut spikes = 0u64;
                    for batch in snn_data::batches(samples, batch_size) {
                        spikes += engine
                            .infer_batch(batch, 7)
                            .iter()
                            .map(|r| u64::from(r.total_exc_spikes()))
                            .sum::<u64>();
                    }
                    black_box(spikes)
                })
            },
        );
    }
    group.finish();
}

fn bench_inference_sample(c: &mut Criterion) {
    let gen = SyntheticDigits::new(7);
    let img = gen.sample(5, 0).downsample(2);
    let encoder = PoissonEncoder::new(255.0);
    let rates = encoder.rates_hz(img.pixels());
    let mut net = snn_core::network::Snn::new(
        snn_core::network::SnnConfig::direct_lateral(196, 100),
        &mut seeded_rng(8),
    );
    let cfg = PresentConfig {
        t_rest_ms: 0.0,
        retry: None,
        ..PresentConfig::fast()
    };
    let mut rng = seeded_rng(9);
    let mut ops = OpCounts::default();
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    group.bench_function("spikedyn_arch_100n_sample", |b| {
        b.iter(|| {
            black_box(
                run_sample(&mut net, &rates, &cfg, None, &mut rng, &mut ops).total_exc_spikes(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lif_step,
    bench_poisson_encode,
    bench_stdp_updates,
    bench_weight_decay,
    bench_train_sample_per_method,
    bench_full_network_step,
    bench_synthetic_digit,
    bench_scalar_vs_engine_batch,
    bench_inference_sample,
);
criterion_main!(benches);
