//! Criterion micro-benchmarks of the two wire protocols side by side:
//! the same `snn-serve` operations driven once over proto 1 (hex text,
//! one line per request) and once over proto 2 (length-prefixed binary
//! frames on a multiplexed socket).
//!
//! Two operations are measured, chosen to bracket the framing rollout's
//! trade-off:
//!
//! - **checkpoint-over-wire** — fetch a trained session's snapshot. The
//!   payload dominates; proto 2 halves the bytes on the wire (raw vs
//!   hex) and skips the hex encode/decode on both ends.
//! - **ingest round trip** — one micro-batch of images. Small payloads
//!   and verb overhead dominate; this pins that the mux + frame codec
//!   does not regress the hot request path.
//!
//! Both protocols talk to the *same* server process; per-iteration work
//! is identical modulo framing, so the numbers compare directly.

use criterion::{criterion_group, criterion_main, Criterion};
use snn_data::SyntheticDigits;
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer, PROTO_V2, PROTO_VERSION};
use spikedyn::Method;
use std::hint::black_box;

/// The benchmarked session's spec: paper-small network so the
/// checkpoint carries a realistic (196×200) weight matrix.
fn spec() -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 200,
        n_input: 196,
        n_classes: 10,
        seed: 11,
        batch_size: 8,
        assign_every: 16,
        reservoir_capacity: 24,
        metric_window: 24,
        drift_window: 12,
    }
}

/// One server, one trained session per protocol generation, and a
/// connected client for each. Training happens once, outside the
/// measured loops.
struct Rig {
    _server: SnnServer,
    clients: Vec<(u32, ServeClient, String)>,
    batch: Vec<snn_data::Image>,
}

fn rig() -> Rig {
    let server =
        SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind an ephemeral port");
    let gen = SyntheticDigits::new(spec().seed);
    let warmup: Vec<_> = (0..16)
        .map(|i| gen.sample((i % 10) as u8, i).downsample(2))
        .collect();
    let batch: Vec<_> = (0..8)
        .map(|i| gen.sample((i % 10) as u8, 100 + i).downsample(2))
        .collect();
    let clients = [PROTO_VERSION, PROTO_V2]
        .into_iter()
        .map(|proto| {
            let mut client =
                ServeClient::connect_with_proto(server.local_addr(), proto).expect("connect");
            assert_eq!(client.proto(), proto, "negotiation must land on {proto}");
            let id = format!("bench-p{proto}");
            client.open(&id, spec()).expect("open session");
            client.ingest(&id, &warmup).expect("warm up the session");
            (proto, client, id)
        })
        .collect();
    Rig {
        _server: server,
        clients,
        batch,
    }
}

fn bench_checkpoint_over_wire(c: &mut Criterion) {
    let mut rig = rig();
    let mut group = c.benchmark_group("wire_checkpoint");
    for (proto, client, id) in &mut rig.clients {
        group.bench_function(format!("proto{proto}_n200"), |b| {
            b.iter(|| black_box(client.checkpoint(id).expect("checkpoint").len()))
        });
    }
    group.finish();
}

fn bench_ingest_round_trip(c: &mut Criterion) {
    let mut rig = rig();
    let mut group = c.benchmark_group("wire_ingest");
    // Round trips dominated by the learner's own work; keep criterion's
    // sample appetite in check.
    group.sample_size(10);
    for (proto, client, id) in &mut rig.clients {
        let batch = &rig.batch;
        group.bench_function(format!("proto{proto}_batch8"), |b| {
            b.iter(|| black_box(client.ingest(id, batch).expect("ingest").samples_seen))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint_over_wire, bench_ingest_round_trip);
criterion_main!(benches);
