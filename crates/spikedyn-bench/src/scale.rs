//! Shared experiment scale configuration and CLI parsing.

use spikedyn::eval::ProtocolConfig;
use spikedyn::Method;

/// The paper's samples-per-task on MNIST.
pub const PAPER_SAMPLES_PER_TASK: u64 = 6000;

/// Scale knobs common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessScale {
    /// Samples per task in dynamic runs.
    pub samples_per_task: u64,
    /// The small network size (paper: N200).
    pub n_small: usize,
    /// The large network size (paper: N400).
    pub n_large: usize,
    /// Master seed.
    pub seed: u64,
    /// Labelled samples per class for neuron→class assignment.
    pub assign_per_class: u64,
    /// Held-out samples per class for accuracy measurement.
    pub eval_per_class: u64,
}

impl Default for HarnessScale {
    fn default() -> Self {
        HarnessScale {
            samples_per_task: 40,
            n_small: 200,
            n_large: 400,
            seed: 42,
            assign_per_class: 6,
            eval_per_class: 10,
        }
    }
}

impl HarnessScale {
    /// Parses `--spt`, `--seed`, `--n-small`, `--n-large`, `--eval`,
    /// `--assign` from the process arguments, falling back to defaults.
    pub fn from_args() -> Self {
        let mut scale = HarnessScale::default();
        let args: Vec<String> = std::env::args().collect();
        let get = |flag: &str| -> Option<u64> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(v) = get("--spt") {
            scale.samples_per_task = v;
        }
        if let Some(v) = get("--seed") {
            scale.seed = v;
        }
        if let Some(v) = get("--n-small") {
            scale.n_small = v as usize;
        }
        if let Some(v) = get("--n-large") {
            scale.n_large = v as usize;
        }
        if let Some(v) = get("--eval") {
            scale.eval_per_class = v;
        }
        if let Some(v) = get("--assign") {
            scale.assign_per_class = v;
        }
        scale
    }

    /// Temporal compression of this scale relative to the paper.
    pub fn compression(&self) -> f32 {
        PAPER_SAMPLES_PER_TASK as f32 / self.samples_per_task.max(1) as f32
    }

    /// Builds the dynamic/non-dynamic protocol config for one method and
    /// network size at this scale.
    pub fn protocol(&self, method: Method, n_exc: usize) -> ProtocolConfig {
        let mut cfg = ProtocolConfig::fast(method, n_exc);
        cfg.samples_per_task = self.samples_per_task;
        cfg.assign_per_class = self.assign_per_class;
        cfg.eval_per_class = self.eval_per_class;
        cfg.seed = self.seed;
        cfg.time_compression = self.compression();
        cfg
    }

    /// `(label, n_exc)` pairs for the two paper network sizes.
    pub fn sizes(&self) -> [(&'static str, usize); 2] {
        [("N200", self.n_small), ("N400", self.n_large)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_tuned_operating_point() {
        let s = HarnessScale::default();
        assert_eq!(s.samples_per_task, 40);
        assert!((s.compression() - 150.0).abs() < 1e-3);
    }

    #[test]
    fn protocol_inherits_scale() {
        let s = HarnessScale {
            samples_per_task: 20,
            seed: 9,
            ..Default::default()
        };
        let cfg = s.protocol(Method::SpikeDyn, 100);
        assert_eq!(cfg.samples_per_task, 20);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.n_exc, 100);
        assert!((cfg.time_compression - 300.0).abs() < 1e-3);
    }

    #[test]
    fn sizes_are_labelled() {
        let s = HarnessScale::default();
        let sizes = s.sizes();
        assert_eq!(sizes[0], ("N200", 200));
        assert_eq!(sizes[1], ("N400", 400));
    }
}
