//! Quick behavioural probe used during development tuning.
use spikedyn::eval::{run_dynamic, ProtocolConfig};
use spikedyn::Method;

fn main() {
    let n_exc: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let spt: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    for method in Method::all() {
        let mut cfg = ProtocolConfig::fast(method, n_exc);
        cfg.samples_per_task = spt;
        cfg.eval_per_class = 10;
        cfg.assign_per_class = 6;
        let t0 = std::time::Instant::now();
        let r = run_dynamic(&cfg);
        println!(
            "{:9} n{} spt{}  recent: {:?}  avg_recent={:.2} avg_prev={:.2}  [{:.1}s]",
            method.label(),
            n_exc,
            spt,
            r.recent_task_acc
                .iter()
                .map(|a| (a * 100.0).round() as i32)
                .collect::<Vec<_>>(),
            r.avg_recent() * 100.0,
            r.avg_previous() * 100.0,
            t0.elapsed().as_secs_f32()
        );
        println!(
            "  prev/class: {:?}",
            r.previous_tasks_acc
                .iter()
                .map(|a| a.map(|x| (x * 100.0).round() as i32))
                .collect::<Vec<_>>()
        );
        println!(
            "  kernels/sample train={} infer={}",
            r.train_sample_ops.kernel_launches, r.infer_sample_ops.kernel_launches
        );
    }
}
