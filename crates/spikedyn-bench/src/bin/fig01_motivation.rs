//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::fig01`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::fig01;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", fig01::run(&scale));
}
