//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::table02`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::table02;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", table02::run(&scale));
}
