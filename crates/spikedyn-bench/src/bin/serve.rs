//! Multi-session serving load generator: sessions × throughput × latency.
//!
//! ```sh
//! cargo run --release --bin serve              # harness scale (8 sessions)
//! cargo run --release --bin serve -- --fast    # seconds-long smoke run
//! ```
//! Accepts the shared scale flags (`--spt`, `--seed`, `--n-small`, …).

use spikedyn_bench::experiments::serve::{run_profile, Profile};
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    let profile = if std::env::args().any(|a| a == "--fast") {
        Profile::Smoke
    } else {
        Profile::Standard
    };
    let t0 = std::time::Instant::now();
    print!("{}", run_profile(&scale, profile));
    println!("[serve done in {:.1}s]", t0.elapsed().as_secs_f32());
}
