//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::fig10`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::fig10;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", fig10::run(&scale));
}
