//! Hyperparameter tuning harness for SpikeDyn (dev tool).
//! Args: `theta_plus eta_post tau_decay t_step [g_inh]`
use snn_core::config::PresentConfig;
use snn_core::metrics::ConfusionMatrix;
use snn_core::network::Snn;
use snn_core::network::{Inhibition, SnnConfig};
use snn_core::rng::{derive_seed, seeded_rng};
use snn_data::{dynamic_stream, eval_set, SyntheticDigits};
use spikedyn::arch::ThetaPolicy;
use spikedyn::learning::{SpikeDynConfig, SpikeDynPlasticity};
use spikedyn::{Method, Trainer};

fn main() {
    let args: Vec<f32> = std::env::args()
        .skip(1)
        .map(|s| s.parse().unwrap())
        .collect();
    let (tp, ep, td, ts, gi) = (
        args[0],
        args[1],
        args[2],
        args[3],
        *args.get(4).unwrap_or(&4.0),
    );
    let spt = *args.get(5).unwrap_or(&20.0) as u64;
    let mut scores = Vec::new();
    for seed in [42u64, 7, 1234] {
        let gen = SyntheticDigits::new(seed);
        let n_exc = 100;
        let prep = |v: Vec<snn_data::Image>| -> Vec<snn_data::Image> {
            v.into_iter().map(|i| i.downsample(2)).collect()
        };
        // Build SpikeDyn manually with overridden params.
        let mut tr = Trainer::new(Method::SpikeDyn, 196, n_exc, PresentConfig::fast(), seed)
            .with_max_rate(255.0);
        // Swap in a custom-built network + rule via rebuild
        let policy = ThetaPolicy::with_theta_plus(100.0, tp);
        let mut cfg_net = SnnConfig::direct_lateral(196, n_exc);
        cfg_net.adapt = Some(policy.to_adaptive_threshold());
        cfg_net.norm_target = None;
        cfg_net.inhibition = Inhibition::DirectLateral { g_inh: gi };
        tr.net = Snn::new(cfg_net, &mut seeded_rng(derive_seed(seed, 1)));
        let mut rule_cfg = SpikeDynConfig::for_network(n_exc);
        rule_cfg.eta_post = ep;
        rule_cfg.tau_decay_ms = td;
        rule_cfg.t_step_ms = ts;
        tr.set_plasticity(Box::new(SpikeDynPlasticity::new(rule_cfg, 196, n_exc)));
        let mut recents = Vec::new();
        for (k, task) in (0..10u8).enumerate() {
            tr.train_on(&prep(dynamic_stream(&gen, &[task], spt, 0)));
            let seen: Vec<u8> = (0..=k as u8).collect();
            let assign = prep(eval_set(&gen, &seen, 6, 1_000_000, seed));
            let a = tr.fit_assignment(&assign, 10);
            let ev = prep(eval_set(&gen, &[task], 10, 2_000_000, seed));
            let cm = tr.evaluate(&a, &ev);
            recents.push(cm.per_class_accuracy()[task as usize].unwrap_or(0.0));
        }
        let assign = prep(eval_set(
            &gen,
            &(0..10).collect::<Vec<_>>(),
            6,
            1_000_000,
            seed,
        ));
        let a = tr.fit_assignment(&assign, 10);
        let ev = prep(eval_set(
            &gen,
            &(0..10).collect::<Vec<_>>(),
            10,
            2_000_000,
            seed,
        ));
        let cm: ConfusionMatrix = tr.evaluate(&a, &ev);
        let recent = recents.iter().sum::<f64>() / 10.0;
        let prev = cm.accuracy();
        println!(
            "  seed{seed:5}: recent={:5.1} prev={:5.1} {:?}",
            recent * 100.0,
            prev * 100.0,
            recents
                .iter()
                .map(|a| (a * 100.0) as i32)
                .collect::<Vec<_>>()
        );
        scores.push((recent, prev));
    }
    let ar = scores.iter().map(|s| s.0).sum::<f64>() / 3.0;
    let ap = scores.iter().map(|s| s.1).sum::<f64>() / 3.0;
    println!(
        "θ+={tp} ηp={ep} τd={td} ts={ts} gi={gi} => RECENT {:.1} PREV {:.1}",
        ar * 100.0,
        ap * 100.0
    );
}
