//! Runs every table/figure reproduction in sequence (the full evaluation
//! of the paper). Accepts the same scale flags as the individual binaries.
use spikedyn_bench::experiments::{
    ablations, cluster, fig01, fig04, fig05, fig06, fig09, fig10, fig11, online, serve, table01,
    table02,
};
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    println!(
        "SpikeDyn reproduction — full evaluation (spt={}, compression={:.0}x, seed={})\n",
        scale.samples_per_task,
        scale.compression(),
        scale.seed
    );
    type Experiment = (&'static str, fn(&HarnessScale) -> String);
    let experiments: [Experiment; 13] = [
        ("Table I", table01::run),
        ("Fig. 1", fig01::run),
        ("Fig. 4", fig04::run),
        ("Fig. 5", fig05::run),
        ("Fig. 6", fig06::run),
        ("Fig. 9", fig09::run),
        ("Fig. 10", fig10::run),
        ("Fig. 11", fig11::run),
        ("Table II", table02::run),
        ("Ablations", ablations::run),
        ("Online", online::run),
        // Smoke profiles: run_all validates the serving and cluster
        // layers end to end; the full-scale load runs are the `serve`
        // and `cluster` binaries.
        ("Serve", serve::run_smoke),
        ("Cluster", cluster::run_smoke),
    ];
    for (name, f) in experiments {
        let t0 = std::time::Instant::now();
        print!("{}", f(&scale));
        println!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f32());
    }
    println!("CSV outputs under target/experiments/");
}
