//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::ablations`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::ablations;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", ablations::run(&scale));
}
