//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::fig04`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::fig04;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", fig04::run(&scale));
}
