//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::table01`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::table01;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", table01::run(&scale));
}
