//! Cluster load generator: aggregate throughput for 1 vs N shards.
//!
//! ```sh
//! cargo run --release --bin cluster              # harness scale (1/2/4 shards)
//! cargo run --release --bin cluster -- --fast    # seconds-long smoke run
//! ```
//! Accepts the shared scale flags (`--spt`, `--seed`, `--n-small`, …).

use spikedyn_bench::experiments::cluster::{run_profile, Profile};
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    let profile = if std::env::args().any(|a| a == "--fast") {
        Profile::Smoke
    } else {
        Profile::Standard
    };
    let t0 = std::time::Instant::now();
    print!("{}", run_profile(&scale, profile));
    println!("[cluster done in {:.1}s]", t0.elapsed().as_secs_f32());
}
