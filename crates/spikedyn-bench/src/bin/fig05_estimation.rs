//! Reproduces the paper artefact implemented in
//! `spikedyn_bench::experiments::fig05`. Accepts `--spt`, `--seed`,
//! `--n-small`, `--n-large`, `--eval`, `--assign`.
use spikedyn_bench::experiments::fig05;
use spikedyn_bench::HarnessScale;

fn main() {
    let scale = HarnessScale::from_args();
    print!("{}", fig05::run(&scale));
}
