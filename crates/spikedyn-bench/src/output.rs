//! Table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV under `target/experiments/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, name: &str) -> io::Result<PathBuf> {
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        write_csv(name, &csv)
    }
}

/// Writes raw CSV content under `target/experiments/<name>.csv`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, content)?;
    Ok(path)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["10".into(), "200".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn pct_and_ratio_format() {
        assert_eq!(pct(0.517), "51.7");
        assert_eq!(ratio(1.2345), "1.23");
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("csv", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        let path = t.write_csv("test-csv-output").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y"));
        std::fs::remove_file(path).ok();
    }
}
