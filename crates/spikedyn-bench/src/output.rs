//! Table rendering, CSV output, and `BENCH_*.json` emission for
//! experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;

/// A simple aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Writes the table as CSV under `target/experiments/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, name: &str) -> io::Result<PathBuf> {
        let mut csv = String::new();
        let _ = writeln!(csv, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.join(","));
        }
        write_csv(name, &csv)
    }
}

/// Writes raw CSV content under `target/experiments/<name>.csv`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, content: &str) -> io::Result<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    fs::write(&path, content)?;
    Ok(path)
}

/// A minimal JSON object builder for `BENCH_*.json` perf artifacts —
/// enough structure for the trajectory files without a serializer
/// dependency. Values render in insertion order.
#[derive(Debug, Clone, Default)]
pub struct Json {
    fields: Vec<(String, String)>,
}

impl Json {
    /// An empty object.
    pub fn new() -> Self {
        Json::default()
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a number field (`null` for non-finite values, which JSON
    /// cannot represent).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Adds a pre-rendered JSON value (an array or nested object).
    pub fn raw(&mut self, key: &str, value: String) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Renders the object (no trailing newline).
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Renders the `latency_breakdown` object of a BENCH artifact: where
/// request wall time went, from the serving tier's own phase
/// histograms (`serve.phase.{queue_wait,exec,write}_us`). The three
/// `*_share` fields are fractions of queue+exec+write — they sum to
/// 1.0 whenever any phase time was observed, an invariant CI pins on
/// both `BENCH_serve.json` and `BENCH_cluster.json`.
pub fn latency_breakdown(snap: &snn_obs::Snapshot) -> String {
    let queue = snap.histogram("serve.phase.queue_wait_us");
    let exec = snap.histogram("serve.phase.exec_us");
    let write = snap.histogram("serve.phase.write_us");
    let shares = snn_obs::TraceShares {
        queue_us: queue.sum,
        exec_us: exec.sum,
        write_us: write.sum,
    };
    let mut json = Json::new();
    json.num("queue_share", shares.queue_share())
        .num("exec_share", shares.exec_share())
        .num("write_share", shares.write_share())
        .int("queue_p50_us", queue.quantile(0.50))
        .int("queue_p99_us", queue.quantile(0.99))
        .int("exec_p50_us", exec.quantile(0.50))
        .int("exec_p99_us", exec.quantile(0.99))
        .int("write_p50_us", write.quantile(0.50))
        .int("write_p99_us", write.quantile(0.99));
    json.render()
}

/// Renders pre-rendered JSON values as an array.
pub fn json_array<I: IntoIterator<Item = String>>(items: I) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(", "))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Writes a rendered JSON object to `BENCH_<name>.json` at the
/// workspace root (resolved from `CARGO_MANIFEST_DIR`, so `cargo test`
/// and `cargo run` land the perf-trajectory artifact in the same
/// place), with a trailing newline.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(name: &str, json: &Json) -> io::Result<PathBuf> {
    let path = workspace_root().join(format!("BENCH_{name}.json"));
    fs::write(&path, format!("{}\n", json.render()))?;
    Ok(path)
}

/// Writes a root-level debug artifact (e.g. the chaos drill's
/// `POSTMORTEM_cluster.journal`) next to the `BENCH_*.json` files,
/// verbatim.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_root_artifact(file_name: &str, content: &str) -> io::Result<PathBuf> {
    let path = workspace_root().join(file_name);
    fs::write(&path, content)?;
    Ok(path)
}

/// The workspace root, resolved from `CARGO_MANIFEST_DIR` so `cargo
/// test` and `cargo run` land artifacts in the same place.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .and_then(|dir| Some(dir.parent()?.parent()?.to_path_buf()))
        .unwrap_or_default()
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a ratio with two decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bee"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["10".into(), "200".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn pct_and_ratio_format() {
        assert_eq!(pct(0.517), "51.7");
        assert_eq!(ratio(1.2345), "1.23");
    }

    #[test]
    fn json_renders_escaped_fields_in_order() {
        let mut j = Json::new();
        j.int("n", 3)
            .num("x", 1.5)
            .num("bad", f64::NAN)
            .str("s", "a\"b\\c\nd")
            .raw("arr", json_array(["1".to_string(), "2".to_string()]));
        assert_eq!(
            j.render(),
            "{\"n\": 3, \"x\": 1.5, \"bad\": null, \"s\": \"a\\\"b\\\\c\\nd\", \"arr\": [1, 2]}"
        );
    }

    #[test]
    fn bench_json_lands_next_to_the_manifest() {
        let mut j = Json::new();
        j.int("ok", 1);
        let path = write_bench_json("test-bench-output", &j).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"ok\": 1}\n");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new("csv", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        let path = t.write_csv("test-csv-output").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y"));
        std::fs::remove_file(path).ok();
    }
}
