//! Online experiment — SpikeDyn vs the Diehl & Cook baseline as *streaming*
//! learners under four drift scenarios.
//!
//! Goes beyond the paper's offline dynamic/non-dynamic protocols: each
//! method runs as an `snn-online` [`OnlineLearner`] over gradual-drift,
//! recurring-tasks, noise-burst and class-imbalance streams, reporting
//! prequential windowed accuracy, per-task forgetting, drift events and
//! modelled energy per sample. The expectation mirrors the paper's thesis:
//! SpikeDyn's forgetting mechanisms plus the adaptive drift response keep
//! accuracy up and forgetting down at lower energy.

use neuro_energy::GpuSpec;
use snn_data::{Scenario, SyntheticDigits};
use snn_online::{OnlineConfig, OnlineLearner};
use spikedyn::Method;

use crate::output::{pct, Table};
use crate::scale::HarnessScale;

/// Scale profile of one online run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The harness-scale run used by `run_all` (derives from
    /// [`HarnessScale`]).
    Standard,
    /// A seconds-long smoke profile (`--fast`) exercising every scenario
    /// end to end; used by CI.
    Smoke,
}

/// Builds the learner configuration for one method at one profile.
pub fn config(method: Method, scale: &HarnessScale, profile: Profile) -> OnlineConfig {
    let mut cfg = OnlineConfig::fast(method, n_exc(scale, profile));
    cfg.seed = scale.seed;
    cfg.time_compression = scale.compression();
    match profile {
        Profile::Standard => {
            cfg.batch_size = 8;
            cfg.assign_every = 24;
            cfg.metric_window = 60;
            cfg.drift.window = 24;
        }
        Profile::Smoke => {
            cfg.batch_size = 8;
            cfg.assign_every = 16;
            cfg.metric_window = 24;
            cfg.reservoir_capacity = 24;
            cfg.drift.window = 12;
        }
    }
    cfg
}

fn n_exc(scale: &HarnessScale, profile: Profile) -> usize {
    match profile {
        Profile::Standard => scale.n_small,
        Profile::Smoke => 16,
    }
}

fn total_samples(scale: &HarnessScale, profile: Profile) -> u64 {
    match profile {
        // Three tasks' worth of stream per scenario, matching the other
        // experiments' per-task budget.
        Profile::Standard => scale.samples_per_task * 3,
        Profile::Smoke => 48,
    }
}

/// Runs one (scenario, method) cell and returns the finished learner.
pub fn run_cell(
    scenario: Scenario,
    method: Method,
    scale: &HarnessScale,
    profile: Profile,
) -> OnlineLearner {
    let cfg = config(method, scale, profile);
    let gen = SyntheticDigits::new(scale.seed);
    let classes: Vec<u8> = (0..10).collect();
    let stream: Vec<_> = scenario
        .stream(&gen, &classes, total_samples(scale, profile), scale.seed, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    let mut learner = OnlineLearner::new(cfg);
    learner
        .run(stream)
        .expect("stream dimensions match the learner configuration");
    learner
}

/// Runs the experiment at the given profile and returns the rendered
/// report.
pub fn run_profile(scale: &HarnessScale, profile: Profile) -> String {
    let gpu = GpuSpec::gtx_1080_ti();
    let mut table = Table::new(
        "Online: streaming drift scenarios (prequential windowed metrics)",
        &[
            "scenario",
            "method",
            "samples",
            "acc%",
            "forget%",
            "drifts",
            "spikes/smp",
            "mJ/smp",
            "ckpt KiB",
        ],
    );
    let mut spikedyn_forget = 0.0f64;
    let mut baseline_forget = 0.0f64;
    let mut spikedyn_energy = 0.0f64;
    let mut baseline_energy = 0.0f64;
    for scenario in Scenario::all() {
        for method in [Method::SpikeDyn, Method::Baseline] {
            let learner = run_cell(scenario, method, scale, profile);
            let report = learner.report();
            let energy = learner.energy(&gpu);
            let ckpt_bytes = learner.checkpoint().to_bytes().len();
            match method {
                Method::SpikeDyn => {
                    spikedyn_forget += report.mean_forgetting;
                    spikedyn_energy += energy.per_sample_j;
                }
                _ => {
                    baseline_forget += report.mean_forgetting;
                    baseline_energy += energy.per_sample_j;
                }
            }
            table.row(&[
                scenario.label().to_string(),
                method.label().to_string(),
                report.samples_seen.to_string(),
                pct(report.accuracy),
                pct(report.mean_forgetting),
                report.drift_events.len().to_string(),
                format!("{:.1}", report.mean_exc_spikes),
                format!("{:.2}", energy.per_sample_j * 1e3),
                format!("{:.1}", ckpt_bytes as f64 / 1024.0),
            ]);
        }
    }
    let mut out = table.render();
    let n = Scenario::all().len() as f64;
    out.push_str(&format!(
        "scenario means — forgetting: SpikeDyn {:.1}% vs Baseline {:.1}%; energy/sample: \
         SpikeDyn {:.1} mJ vs Baseline {:.1} mJ ({:.1}x)\n\
         (energy gap = no inhibitory layer + gated updates, paper §III-B/D; forgetting \
         dynamics need longer streams than this profile to separate)\n",
        spikedyn_forget / n * 100.0,
        baseline_forget / n * 100.0,
        spikedyn_energy / n * 1e3,
        baseline_energy / n * 1e3,
        baseline_energy / spikedyn_energy.max(f64::EPSILON),
    ));
    let _ = table.write_csv("online_scenarios");
    out
}

/// Runs the standard-profile experiment (the `run_all` entry point).
pub fn run(scale: &HarnessScale) -> String {
    run_profile(scale, Profile::Standard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> HarnessScale {
        HarnessScale {
            samples_per_task: 8,
            n_small: 12,
            n_large: 16,
            ..Default::default()
        }
    }

    #[test]
    fn smoke_profile_covers_all_scenarios() {
        let out = run_profile(&tiny_scale(), Profile::Smoke);
        for scenario in Scenario::all() {
            assert!(
                out.contains(scenario.label()),
                "report must include {scenario}"
            );
        }
        assert!(out.contains("SpikeDyn") && out.contains("Baseline"));
    }

    #[test]
    fn cell_is_deterministic() {
        let scale = tiny_scale();
        let a = run_cell(
            Scenario::GradualDrift,
            Method::SpikeDyn,
            &scale,
            Profile::Smoke,
        );
        let b = run_cell(
            Scenario::GradualDrift,
            Method::SpikeDyn,
            &scale,
            Profile::Smoke,
        );
        assert_eq!(a.report(), b.report());
        assert_eq!(a.checkpoint().to_bytes(), b.checkpoint().to_bytes());
    }

    #[test]
    fn standard_config_tracks_scale() {
        let scale = HarnessScale {
            samples_per_task: 20,
            seed: 9,
            ..Default::default()
        };
        let cfg = config(Method::SpikeDyn, &scale, Profile::Standard);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.n_exc, scale.n_small);
        assert!((cfg.time_compression - 300.0).abs() < 1e-3);
        assert_eq!(total_samples(&scale, Profile::Standard), 60);
    }
}
