//! One module per table/figure of the paper's evaluation.

pub mod ablations;
pub mod cluster;
pub mod fig01;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod online;
pub mod serve;
pub mod table01;
pub mod table02;

use snn_core::ops::OpCounts;
use snn_data::{eval_set, SyntheticDigits};
use spikedyn::{Method, Trainer};

use crate::scale::HarnessScale;

/// Meters the average per-sample operation counts of one method at one
/// network size: a short mixed-class training burst followed by a short
/// inference burst (the `E1` measurements of the paper's `E = E1 · N`).
pub fn meter_method(method: Method, n_exc: usize, scale: &HarnessScale) -> (OpCounts, OpCounts) {
    let cfg = scale.protocol(method, n_exc);
    let mut trainer = Trainer::with_compression(
        method,
        cfg.n_input(),
        n_exc,
        cfg.present,
        cfg.time_compression,
        scale.seed,
    )
    .with_max_rate(cfg.max_rate_hz);
    let gen = SyntheticDigits::new(scale.seed);
    let classes: Vec<u8> = (0..10).collect();
    let images: Vec<_> = eval_set(&gen, &classes, 1, 0, scale.seed)
        .into_iter()
        .map(|i| i.downsample(2))
        .collect();
    trainer.train_on(&images);
    for img in &images {
        trainer.infer_image(img);
    }
    (
        trainer.avg_train_sample_ops(),
        trainer.avg_infer_sample_ops(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metering_orders_methods_as_the_paper_expects() {
        let scale = HarnessScale {
            n_small: 50,
            n_large: 100,
            ..Default::default()
        };
        let (base_t, base_i) = meter_method(Method::Baseline, 50, &scale);
        let (asp_t, asp_i) = meter_method(Method::Asp, 50, &scale);
        let (sd_t, sd_i) = meter_method(Method::SpikeDyn, 50, &scale);
        // Training: ASP costs more kernels than the baseline (extra traces,
        // leak); SpikeDyn costs fewer (no inhibitory layer, gated updates).
        assert!(asp_t.kernel_launches > base_t.kernel_launches);
        assert!(sd_t.kernel_launches < base_t.kernel_launches);
        // Inference: SpikeDyn saves the inhibitory-layer kernels.
        assert!(sd_i.kernel_launches < base_i.kernel_launches);
        assert!(sd_i.kernel_launches < asp_i.kernel_launches);
    }
}
