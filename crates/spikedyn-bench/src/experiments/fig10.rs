//! Fig. 10 — confusion matrices of SpikeDyn for classifying the
//! previously learned tasks (§V-A).
//!
//! The paper highlights that digit-4 is frequently misclassified as
//! digit-9 (label 1 in Fig. 10b): their overlapped features and the task
//! order make neurons that learned 4 drift toward 9.

use spikedyn::{run_dynamic, Method};

use crate::output::Table;
use crate::scale::HarnessScale;

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();
    for (label, n_exc) in scale.sizes() {
        let report = run_dynamic(&scale.protocol(Method::SpikeDyn, n_exc));
        out.push_str(&format!(
            "=== Fig. 10 ({label}): SpikeDyn confusion matrix (previously learned tasks) ===\n"
        ));
        out.push_str(&report.confusion.to_table());
        if let Some((t, p, c)) = report.confusion.worst_confusion() {
            out.push_str(&format!(
                "worst confusion: digit-{t} predicted as digit-{p} ({c} samples); paper: 4 → 9\n\n"
            ));
        }
        // CSV: full matrix.
        let mut csv = Table::new(
            &format!("fig10 confusion {label}"),
            &["target", "predicted", "count"],
        );
        for t in 0..10u8 {
            for p in 0..10u8 {
                csv.row(&[
                    t.to_string(),
                    p.to_string(),
                    report.confusion.get(t, p).to_string(),
                ]);
            }
        }
        let _ = csv.write_csv(&format!("fig10_confusion_{label}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrices_render() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 16,
            n_large: 24,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let report = run(&scale);
        assert!(report.contains("confusion matrix"));
        assert!(report.contains("tgt\\pred"));
    }
}
