//! Table II — processing time of SpikeDyn on the full MNIST dataset
//! (§V-B).
//!
//! SpikeDyn training/inference is metered for one sample at the paper's
//! native scale (784 inputs, 0.5 ms steps, 350 ms + 150 ms presentation)
//! and extrapolated to 60 k training / 10 k test samples on each GPU's
//! calibrated cost model; the paper's reported hours are printed beside.

use neuro_energy::time::{table2_reference, ProcessingTime};
use neuro_energy::{all_gpus, GpuSpec};
use snn_core::config::PresentConfig;
use snn_core::encoding::PoissonEncoder;
use snn_core::ops::OpCounts;
use snn_core::rng::{derive_seed, seeded_rng};
use snn_core::sim::run_sample;
use snn_data::SyntheticDigits;
use spikedyn::arch::{spikedyn_network, ThetaPolicy};
use spikedyn::learning::{SpikeDynConfig, SpikeDynPlasticity};

use crate::output::Table;
use crate::scale::HarnessScale;

/// Meters one paper-scale training and inference sample of SpikeDyn at
/// the given size, returning `(train_ops, infer_ops)`.
pub fn meter_paper_scale(n_exc: usize, seed: u64) -> (OpCounts, OpCounts) {
    let present = PresentConfig::default();
    let gen = SyntheticDigits::new(derive_seed(seed, 0x72));
    let img = gen.sample(0, 0);
    let encoder = PoissonEncoder::default();
    let rates = encoder.rates_hz(img.pixels());
    let mut rng = seeded_rng(derive_seed(seed, n_exc as u64));
    let mut net = spikedyn_network(
        784,
        n_exc,
        ThetaPolicy::for_presentation(present.t_present_ms),
        &mut rng,
    );
    let mut rule = SpikeDynPlasticity::new(SpikeDynConfig::for_network(n_exc), 784, n_exc);
    let mut train_ops = OpCounts::default();
    run_sample(
        &mut net,
        &rates,
        &present,
        Some(&mut rule),
        &mut rng,
        &mut train_ops,
    );
    let infer_present = PresentConfig {
        t_rest_ms: 0.0,
        ..present
    };
    let mut infer_ops = OpCounts::default();
    run_sample(
        &mut net,
        &rates,
        &infer_present,
        None,
        &mut rng,
        &mut infer_ops,
    );
    (train_ops, infer_ops)
}

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut table = Table::new(
        "Table II: SpikeDyn processing time on full MNIST (hours; per-image seconds)",
        &[
            "gpu",
            "n_exc",
            "train ours",
            "train paper",
            "infer ours",
            "infer paper",
            "per-img ours",
            "per-img paper",
        ],
    );
    let refs = table2_reference();
    for n_exc in [200usize, 400] {
        let (train_ops, infer_ops) = meter_paper_scale(n_exc, scale.seed);
        for gpu in all_gpus() {
            let t = ProcessingTime::from_samples(&gpu, &train_ops, &infer_ops, 60_000, 10_000);
            let r = refs
                .iter()
                .find(|r| r.gpu == gpu.name && r.n_exc == n_exc)
                .expect("reference row exists");
            table.row(&[
                gpu.name.clone(),
                n_exc.to_string(),
                format!("{:.1}", t.train_h),
                format!("{:.1}", r.train_h),
                format!("{:.1}", t.infer_h),
                format!("{:.1}", r.infer_h),
                format!("{:.2}s", t.per_image_s),
                format!("{:.2}s", r.per_image_s),
            ]);
        }
    }
    let out = table.render();
    let _ = table.write_csv("table02_time");
    out
}

/// Re-derives per-GPU calibration from the Table II reference rows and
/// this build's measured op counts (exposed for the calibration test).
pub fn calibration_check(gpu: &GpuSpec, n200: &OpCounts, n400: &OpCounts) -> Option<(f64, f64)> {
    let refs = table2_reference();
    let t200 = refs.iter().find(|r| r.gpu == gpu.name && r.n_exc == 200)?;
    let t400 = refs.iter().find(|r| r.gpu == gpu.name && r.n_exc == 400)?;
    GpuSpec::calibrate(
        (&n200.scaled(60_000), t200.train_h * 3600.0),
        (&n400.scaled(60_000), t400.train_h * 3600.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_land_in_paper_ballpark() {
        // The model is calibrated against Table II; predictions should be
        // within ~40 % of every cell (shape reproduction, not identity).
        let (t200, i200) = meter_paper_scale(200, 42);
        let refs = table2_reference();
        for gpu in all_gpus() {
            let t = ProcessingTime::from_samples(&gpu, &t200, &i200, 60_000, 10_000);
            let r = refs
                .iter()
                .find(|r| r.gpu == gpu.name && r.n_exc == 200)
                .unwrap();
            let err = (t.train_h - r.train_h).abs() / r.train_h;
            assert!(
                err < 0.4,
                "{}: predicted {:.1} h vs paper {:.1} h",
                gpu.name,
                t.train_h,
                r.train_h
            );
        }
    }

    #[test]
    fn jetson_is_slowest_and_ordering_holds() {
        let (t, i) = meter_paper_scale(200, 42);
        let hours: Vec<f64> = all_gpus()
            .iter()
            .map(|g| ProcessingTime::from_samples(g, &t, &i, 60_000, 10_000).train_h)
            .collect();
        assert!(hours[0] > hours[1], "Jetson slower than 1080 Ti");
        assert!(hours[1] > hours[2], "1080 Ti slower than 2080 Ti");
    }
}
