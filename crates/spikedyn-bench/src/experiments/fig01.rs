//! Fig. 1 — the motivational case study (§I-A).
//!
//! (b) Energy of Baseline \[2\] vs ASP \[7\] for N200/N400, training and
//! inference, normalised to the baseline. The paper observes ASP's
//! overhead (≈1.1–1.3×) from the extra traces and exponential
//! calculations.
//!
//! (c) Per-digit accuracy (most recently learned task) for N400 in the
//! dynamic scenario: the baseline "does not efficiently learn new tasks
//! from digit-2 onward"; ASP improves on it.

use neuro_energy::GpuSpec;
use spikedyn::{run_dynamic, Method};

use crate::experiments::meter_method;
use crate::output::{pct, ratio, Table};
use crate::scale::HarnessScale;

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();
    let gpu = GpuSpec::gtx_1080_ti();

    // --- (b) energy normalised to baseline ---
    let mut energy = Table::new(
        "Fig. 1(b): energy normalised to Baseline (GTX 1080 Ti model)",
        &["size", "phase", "Baseline", "ASP", "paper ASP"],
    );
    for (label, n_exc) in scale.sizes() {
        let (base_t, base_i) = meter_method(Method::Baseline, n_exc, scale);
        let (asp_t, asp_i) = meter_method(Method::Asp, n_exc, scale);
        let t_ratio = gpu.energy_j(&asp_t) / gpu.energy_j(&base_t);
        let i_ratio = gpu.energy_j(&asp_i) / gpu.energy_j(&base_i);
        energy.row(&[
            label.into(),
            "training".into(),
            "1.00".into(),
            ratio(t_ratio),
            "~1.1-1.3".into(),
        ]);
        energy.row(&[
            label.into(),
            "inference".into(),
            "1.00".into(),
            ratio(i_ratio),
            "~1.0-1.1".into(),
        ]);
    }
    out.push_str(&energy.render());
    let _ = energy.write_csv("fig01b_energy");

    // --- (c) per-digit accuracy, N400, dynamic ---
    let mut acc = Table::new(
        "Fig. 1(c): most-recently-learned-task accuracy [%], N400, dynamic",
        &[
            "method", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "avg",
        ],
    );
    for method in [Method::Baseline, Method::Asp] {
        let report = run_dynamic(&scale.protocol(method, scale.n_large));
        let mut row = vec![method.label().to_string()];
        row.extend(report.recent_task_acc.iter().map(|&a| pct(a)));
        row.push(pct(report.avg_recent()));
        acc.row(&row);
    }
    out.push_str(&acc.render());
    out.push_str(
        "paper shape: Baseline strong on early digits, dropping sharply from digit-2 on;\n\
         ASP clearly better on later digits at an energy overhead.\n",
    );
    let _ = acc.write_csv("fig01c_accuracy");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 20,
            n_large: 30,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let report = run(&scale);
        assert!(report.contains("Fig. 1(b)"));
        assert!(report.contains("Fig. 1(c)"));
        assert!(report.contains("Baseline"));
        assert!(report.contains("ASP"));
    }
}
