//! Fig. 9 — the headline accuracy comparison (§V-A).
//!
//! Dynamic environments, for N200 and N400:
//! * (a.1/b.1) accuracy on the most recently learned task — SpikeDyn
//!   improves over ASP by up to 38 % (avg 23 %) at N200 and up to 29 %
//!   (avg 21 %) at N400;
//! * (a.2/b.2) accuracy on previously learned tasks after the full
//!   sequence — SpikeDyn improves over ASP by avg 4 % (N200) / 8 % (N400);
//!   the baseline is worst.
//!
//! Non-dynamic environments (c.1/c.2): accuracy over the number of
//! training samples; all methods comparable.

use spikedyn::{run_dynamic, run_non_dynamic, Method};

use crate::output::{pct, Table};
use crate::scale::HarnessScale;

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();

    for (label, n_exc) in scale.sizes() {
        let mut recent = Table::new(
            &format!("Fig. 9 ({label}): most-recently-learned-task accuracy [%], dynamic"),
            &[
                "method", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "avg",
            ],
        );
        let mut previous = Table::new(
            &format!("Fig. 9 ({label}): previously-learned-tasks accuracy [%], dynamic"),
            &[
                "method", "d0", "d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "avg",
            ],
        );
        let mut spikedyn_vs_asp = (0.0, 0.0);
        let mut asp_recent = 0.0;
        let mut asp_prev = 0.0;
        for method in Method::all() {
            let report = run_dynamic(&scale.protocol(method, n_exc));
            let mut row = vec![method.label().to_string()];
            row.extend(report.recent_task_acc.iter().map(|&a| pct(a)));
            row.push(pct(report.avg_recent()));
            recent.row(&row);
            let mut row = vec![method.label().to_string()];
            row.extend(
                report
                    .previous_tasks_acc
                    .iter()
                    .map(|a| a.map_or("-".to_string(), pct)),
            );
            row.push(pct(report.avg_previous()));
            previous.row(&row);
            match method {
                Method::Asp => {
                    asp_recent = report.avg_recent();
                    asp_prev = report.avg_previous();
                }
                Method::SpikeDyn => {
                    spikedyn_vs_asp = (report.avg_recent(), report.avg_previous());
                }
                Method::Baseline => {}
            }
        }
        out.push_str(&recent.render());
        out.push_str(&previous.render());
        out.push_str(&format!(
            "{label}: SpikeDyn − ASP = {:+.1} pts recent (paper avg +{}), {:+.1} pts previous (paper avg +{})\n\n",
            (spikedyn_vs_asp.0 - asp_recent) * 100.0,
            if n_exc == scale.n_small { "23" } else { "21" },
            (spikedyn_vs_asp.1 - asp_prev) * 100.0,
            if n_exc == scale.n_small { "4" } else { "8" },
        ));
        let _ = recent.write_csv(&format!("fig09_recent_{label}"));
        let _ = previous.write_csv(&format!("fig09_previous_{label}"));
    }

    // Non-dynamic: accuracy over the presentation of training samples.
    let total = scale.samples_per_task * 10;
    let checkpoints: Vec<u64> = [0.1, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|f| ((total as f64 * f) as u64).max(1))
        .collect();
    for (label, n_exc) in scale.sizes() {
        let mut table = Table::new(
            &format!("Fig. 9 (c, {label}): non-dynamic accuracy [%] vs training samples"),
            &["method", "samples", "accuracy"],
        );
        for method in Method::all() {
            let report = run_non_dynamic(&scale.protocol(method, n_exc), &checkpoints);
            for &(samples, acc) in &report.checkpoints {
                table.row(&[method.label().into(), samples.to_string(), pct(acc)]);
            }
        }
        out.push_str(&table.render());
        let _ = table.write_csv(&format!("fig09c_nondynamic_{label}"));
    }
    out.push_str("paper shape (c): all three methods comparable, rising with sample count.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_tiny_scale() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 16,
            n_large: 24,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let report = run(&scale);
        assert!(report.contains("most-recently-learned"));
        assert!(report.contains("non-dynamic"));
        assert!(report.contains("SpikeDyn"));
    }
}
