//! Ablations of SpikeDyn's design choices (DESIGN.md §5).
//!
//! 1. **Timestep gating** (spurious-update reduction): Alg. 2 with
//!    `tstep = dt` degenerates to per-step updates; comparing weight-update
//!    op counts and accuracy isolates the gating's contribution.
//! 2. **Adaptive learning rates**: clamping `kp ≡ 1` removes Eq. 1(a).
//! 3. **`wdecay ∝ 1/nexc` scaling**: running both sizes with the *same*
//!    constant decay tests the paper's proportionality argument.
//! 4. **Bit precision (`BP`)**: quantising the trained weights to 8/4/2
//!    bits trades the paper's `mem = (Pw + Pn) · BP` footprint against
//!    accuracy.

use snn_core::network::Snn;
use snn_core::rng::{derive_seed, seeded_rng};
use spikedyn::eval::run_dynamic_with;
use spikedyn::learning::{SpikeDynConfig, SpikeDynPlasticity};
use spikedyn::{Method, Trainer};

use crate::output::{pct, Table};
use crate::scale::HarnessScale;

fn spikedyn_with(
    n_exc: usize,
    scale: &HarnessScale,
    tweak: impl FnOnce(SpikeDynConfig) -> SpikeDynConfig,
) -> (Trainer, spikedyn::eval::ProtocolConfig) {
    let cfg = scale.protocol(Method::SpikeDyn, n_exc);
    let mut trainer = Trainer::with_compression(
        Method::SpikeDyn,
        cfg.n_input(),
        n_exc,
        cfg.present,
        cfg.time_compression,
        scale.seed,
    )
    .with_max_rate(cfg.max_rate_hz);
    // Rebuild the network with a fresh seed so all variants start equal.
    trainer.net = Snn::new(
        trainer.net.config.clone(),
        &mut seeded_rng(derive_seed(scale.seed, 0xAB)),
    );
    let rule_cfg = tweak(SpikeDynConfig::for_network(n_exc).compressed(cfg.time_compression));
    trainer.set_plasticity(Box::new(SpikeDynPlasticity::new(
        rule_cfg,
        cfg.n_input(),
        n_exc,
    )));
    (trainer, cfg)
}

/// Runs the ablation suite and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();
    let n_exc = scale.n_small;

    // --- 1. timestep gating ---
    let mut gating = Table::new(
        "Ablation: timestep-gated vs per-step updates (SpikeDyn, N200)",
        &[
            "variant",
            "weight-update ops/sample",
            "kernels/sample",
            "avg recent acc %",
        ],
    );
    for (label, t_step) in [
        ("gated (tstep=10ms)", 10.0f32),
        ("per-step (tstep=dt)", 1.0),
    ] {
        let (mut trainer, cfg) = spikedyn_with(n_exc, scale, |c| SpikeDynConfig {
            t_step_ms: t_step,
            ..c
        });
        let report = run_dynamic_with(&mut trainer, &cfg);
        gating.row(&[
            label.into(),
            report.train_sample_ops.weight_updates.to_string(),
            report.train_sample_ops.kernel_launches.to_string(),
            pct(report.avg_recent()),
        ]);
    }
    out.push_str(&gating.render());
    let _ = gating.write_csv("ablation_timestep");

    // --- 2. adaptive kp vs fixed kp ---
    let mut rates = Table::new(
        "Ablation: adaptive kp (Eq. 1a) vs fixed kp=1 (SpikeDyn, N200)",
        &["variant", "avg recent acc %", "avg previous acc %"],
    );
    for (label, kp_max) in [("adaptive kp", 4.0f32), ("fixed kp=1", 1.0)] {
        let (mut trainer, cfg) = spikedyn_with(n_exc, scale, |c| SpikeDynConfig { kp_max, ..c });
        let report = run_dynamic_with(&mut trainer, &cfg);
        rates.row(&[
            label.into(),
            pct(report.avg_recent()),
            pct(report.avg_previous()),
        ]);
    }
    out.push_str(&rates.render());
    let _ = rates.write_csv("ablation_rates");

    // --- 3. wdecay ∝ 1/nexc vs constant ---
    let mut decay = Table::new(
        "Ablation: wdecay ∝ 1/nexc vs constant wdecay across sizes",
        &[
            "size",
            "scaled (c/n)",
            "constant (N400 value)",
            "avg recent scaled %",
            "avg recent const %",
        ],
    );
    let constant = SpikeDynConfig::C_WDECAY / scale.n_large as f32;
    for (label, n) in scale.sizes() {
        let (mut t_scaled, cfg) = spikedyn_with(n, scale, |c| c);
        let scaled_acc = run_dynamic_with(&mut t_scaled, &cfg).avg_recent();
        let (mut t_const, cfg) = spikedyn_with(n, scale, |c| c.with_w_decay(constant));
        let const_acc = run_dynamic_with(&mut t_const, &cfg).avg_recent();
        decay.row(&[
            label.into(),
            format!("{:.1e}", SpikeDynConfig::C_WDECAY / n as f32),
            format!("{constant:.1e}"),
            pct(scaled_acc),
            pct(const_acc),
        ]);
    }
    out.push_str(&decay.render());
    let _ = decay.write_csv("ablation_decay_scaling");

    // --- 4. bit-precision (BP) quantisation ---
    let mut quant = Table::new(
        "Ablation: weight bit precision BP vs accuracy (SpikeDyn, N200)",
        &[
            "BP",
            "weight memory [KB]",
            "max quant error",
            "avg previous acc %",
        ],
    );
    {
        use snn_core::quantize::{quantize_in_place, QuantizedWeights};
        let cfg = scale.protocol(Method::SpikeDyn, n_exc);
        // Train once at full precision.
        let (mut trainer, _) = spikedyn_with(n_exc, scale, |c| c);
        let gen = snn_data::SyntheticDigits::new(cfg.seed);
        let prep = |v: Vec<snn_data::Image>| -> Vec<snn_data::Image> {
            v.into_iter()
                .map(|i| {
                    if cfg.downsample > 1 {
                        i.downsample(cfg.downsample)
                    } else {
                        i
                    }
                })
                .collect()
        };
        let classes: Vec<u8> = cfg.tasks.clone();
        for &task in &classes {
            trainer.train_on(&prep(snn_data::dynamic_stream(
                &gen,
                &[task],
                cfg.samples_per_task,
                0,
            )));
        }
        let assign = prep(snn_data::eval_set(
            &gen,
            &classes,
            cfg.assign_per_class,
            1_000_000,
            cfg.seed,
        ));
        let eval = prep(snn_data::eval_set(
            &gen,
            &classes,
            cfg.eval_per_class,
            2_000_000,
            cfg.seed,
        ));
        let full_weights = trainer.net.weights.clone();
        for bits in [32u8, 8, 4, 2] {
            trainer.net.weights = full_weights.clone();
            let (bytes, err) = if bits == 32 {
                (full_weights.len() * 4, 0.0)
            } else {
                let q = QuantizedWeights::quantize(&full_weights, bits).expect("valid width");
                let err = quantize_in_place(&mut trainer.net.weights, bits).expect("valid width");
                (q.packed_bytes(), err)
            };
            let assignment = trainer.fit_assignment(&assign, 10);
            let cm = trainer.evaluate(&assignment, &eval);
            quant.row(&[
                format!("{bits}-bit"),
                format!("{:.0}", bytes as f64 / 1024.0),
                format!("{err:.4}"),
                pct(cm.accuracy()),
            ]);
        }
        trainer.net.weights = full_weights;
    }
    out.push_str(&quant.render());
    let _ = quant.write_csv("ablation_bit_precision");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_reduces_update_work() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 20,
            n_large: 30,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let report = run(&scale);
        assert!(report.contains("timestep-gated"));
        assert!(report.contains("adaptive kp"));
        assert!(report.contains("wdecay"));
    }
}
