//! Fig. 6 — impact of weight decay and adaptation potential θ on learning
//! new tasks in a dynamic scenario (§III-D).
//!
//! The paper sweeps nine `(wdecay, θ)` pairs on N400 and shows that
//! (1) an appropriate `wdecay` dramatically improves later-task accuracy
//! over no decay, and (2) θ trades availability of neurons for retention.

use snn_core::network::Snn;
use snn_core::rng::{derive_seed, seeded_rng};
use spikedyn::arch::ThetaPolicy;
use spikedyn::eval::run_dynamic_with;
use spikedyn::learning::{SpikeDynConfig, SpikeDynPlasticity};
use spikedyn::{Method, Trainer};

use crate::output::{pct, Table};
use crate::scale::HarnessScale;

/// The paper's Fig. 6 legend: `wdecay / θ` pairs (`None` = no decay).
pub fn legend() -> Vec<(Option<f32>, f32)> {
    vec![
        (None, 1.0),
        (Some(1.0e-1), 1.0),
        (Some(1.0e-2), 1.0),
        (Some(1.0e-3), 1.0),
        (Some(1.0e-4), 1.0),
        (Some(1.0e-2), 0.4),
        (Some(1.0e-2), 0.3),
        (Some(1.0e-2), 0.2),
        (Some(1.0e-2), 0.1),
    ]
}

/// Runs one sweep cell: SpikeDyn at `n_exc` with the given decay/θ.
pub fn run_cell(
    w_decay: Option<f32>,
    theta_plus: f32,
    n_exc: usize,
    scale: &HarnessScale,
) -> Vec<f64> {
    let cfg = scale.protocol(Method::SpikeDyn, n_exc);
    let mut trainer = Trainer::with_compression(
        Method::SpikeDyn,
        cfg.n_input(),
        n_exc,
        cfg.present,
        cfg.time_compression,
        scale.seed,
    )
    .with_max_rate(cfg.max_rate_hz);
    // Network with the swept θ increment (legend values are the literal
    // increments, matching the paper's labels).
    let policy = ThetaPolicy::with_theta_plus(cfg.present.t_present_ms, theta_plus);
    let mut net_cfg = trainer.net.config.clone();
    net_cfg.adapt = Some(policy.to_adaptive_threshold());
    trainer.net = Snn::new(net_cfg, &mut seeded_rng(derive_seed(scale.seed, 0xF6)));
    // Rule with the swept decay.
    let rule_cfg = SpikeDynConfig::for_network(n_exc)
        .compressed(cfg.time_compression)
        .with_w_decay(w_decay.unwrap_or(0.0));
    trainer.set_plasticity(Box::new(SpikeDynPlasticity::new(
        rule_cfg,
        cfg.n_input(),
        n_exc,
    )));
    run_dynamic_with(&mut trainer, &cfg).recent_task_acc
}

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let n_exc = scale.n_large;
    let mut table = Table::new(
        "Fig. 6: recent-task accuracy [%] over the task sequence (SpikeDyn, N400)",
        &[
            "wdecay/θ",
            "d0",
            "d1",
            "d2",
            "d3",
            "d4",
            "d5",
            "d6",
            "d7",
            "d8",
            "d9",
            "avg",
        ],
    );
    let mut no_decay_avg = 0.0;
    let mut best_decay_avg: f64 = 0.0;
    for (wd, theta) in legend() {
        let accs = run_cell(wd, theta, n_exc, scale);
        let avg = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
        let label = match wd {
            None => format!("no / {theta}"),
            Some(w) => format!("{w:.0e} / {theta}"),
        };
        if wd.is_none() {
            no_decay_avg = avg;
        } else {
            best_decay_avg = best_decay_avg.max(avg);
        }
        let mut row = vec![label];
        row.extend(accs.iter().map(|&a| pct(a)));
        row.push(pct(avg));
        table.row(&row);
    }
    let mut out = table.render();
    out.push_str(&format!(
        "no-decay avg {:.1}% vs best-decay avg {:.1}% — paper: appropriate wdecay improves accuracy (label 1),\n\
         θ trades new-task learning vs retention (label 2).\n",
        no_decay_avg * 100.0,
        best_decay_avg * 100.0
    ));
    let _ = table.write_csv("fig06_sweep");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legend_matches_paper() {
        let l = legend();
        assert_eq!(l.len(), 9);
        assert_eq!(l[0], (None, 1.0));
        assert_eq!(l[2], (Some(1.0e-2), 1.0));
        assert_eq!(l[8], (Some(1.0e-2), 0.1));
    }

    #[test]
    fn cell_runs_at_tiny_scale() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 16,
            n_large: 24,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let accs = run_cell(Some(1.0e-2), 1.0, 24, &scale);
        assert_eq!(accs.len(), 10);
    }
}
