//! Fig. 5 — validation of the analytical models and the exploration-time
//! savings of the model search (§III-C).
//!
//! (a) analytical memory `(Pw+Pn)·BP` vs actually allocated bytes for
//! N100/200/400 — the paper claims < 5 % error;
//! (b,c) analytical energy `E = E1·N` (single-sample probe, extrapolated)
//! vs a measured multi-sample "actual run" for training and inference;
//! (d,e) exploration time of Alg. 1's single-sample probes vs exhaustive
//! full runs per candidate size.

use neuro_energy::{relative_error, BitPrecision, GpuSpec};
use snn_core::config::PresentConfig;
use snn_core::ops::OpCounts;
use snn_core::rng::{derive_seed, seeded_rng};
use snn_core::sim::run_sample;
use snn_data::SyntheticDigits;
use spikedyn::arch::{spikedyn_network, ThetaPolicy};
use spikedyn::learning::{SpikeDynConfig, SpikeDynPlasticity};
use spikedyn::search::{search, spikedyn_memory_bytes, SearchConstraints, SearchSpec};

use crate::output::Table;
use crate::scale::HarnessScale;

const SIZES: [usize; 3] = [100, 200, 400];
const N_TRAIN: u64 = 60_000;
const N_INFER: u64 = 10_000;

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();
    let gpu = GpuSpec::gtx_1080_ti();

    // --- (a) memory model validation at native 784-input size ---
    let mut mem = Table::new(
        "Fig. 5(a): memory [KB] — analytical vs actual (784 inputs, FP32)",
        &["n_exc", "analytical", "actual", "error %", "paper"],
    );
    for n in SIZES {
        let analytical = spikedyn_memory_bytes(784, n, BitPrecision::FP32);
        let net = spikedyn_network(
            784,
            n,
            ThetaPolicy::for_presentation(350.0),
            &mut seeded_rng(scale.seed),
        );
        // Actual state = network buffers + the learning rule's counters.
        let actual = net.actual_memory_bytes() + (784 + n) * 4;
        let err = relative_error(analytical as f64, actual as f64);
        mem.row(&[
            n.to_string(),
            format!("{:.0}", analytical as f64 / 1024.0),
            format!("{:.0}", actual as f64 / 1024.0),
            format!("{:.2}", err * 100.0),
            "<5%".into(),
        ]);
    }
    out.push_str(&mem.render());
    let _ = mem.write_csv("fig05a_memory");

    // --- (b,c) energy model validation ---
    // Probe with one sample, validate against the mean of a longer run.
    // Retries are disabled for the probes: the paper's E1 comes from a
    // steady-state run where re-presentations are rare, and the `E = E1·N`
    // claim is about the extrapolation model, not retry variance.
    let present = PresentConfig {
        retry: None,
        ..PresentConfig::fast()
    };
    let gen = SyntheticDigits::new(derive_seed(scale.seed, 5));
    let encoder = snn_core::encoding::PoissonEncoder::new(255.0);
    let mut etrain = Table::new(
        "Fig. 5(b): training energy [kJ] — E1·N vs actual-run mean",
        &["n_exc", "estimate", "actual", "error %", "paper"],
    );
    let mut einfer = Table::new(
        "Fig. 5(c): inference energy [kJ] — E1·N vs actual-run mean",
        &["n_exc", "estimate", "actual", "error %", "paper"],
    );
    let validation_samples = 12u64;
    for n in SIZES {
        let mut rng = seeded_rng(derive_seed(scale.seed, n as u64));
        let mut net = spikedyn_network(
            196,
            n,
            ThetaPolicy::for_presentation(present.t_present_ms),
            &mut rng,
        );
        let mut rule = SpikeDynPlasticity::new(SpikeDynConfig::for_network(n), 196, n);

        // One burn-in sample brings the network to a representative state
        // before the single-sample probe (the paper meters a live system).
        {
            let img = gen.sample(0, 9999).downsample(2);
            let rates = encoder.rates_hz(img.pixels());
            let mut warm = OpCounts::default();
            run_sample(
                &mut net,
                &rates,
                &present,
                Some(&mut rule),
                &mut rng,
                &mut warm,
            );
        }

        // Training: first sample = the paper's single-sample probe.
        let mut per_sample = Vec::new();
        for i in 0..validation_samples {
            let img = gen.sample((i % 10) as u8, i).downsample(2);
            let rates = encoder.rates_hz(img.pixels());
            let mut ops = OpCounts::default();
            run_sample(
                &mut net,
                &rates,
                &present,
                Some(&mut rule),
                &mut rng,
                &mut ops,
            );
            per_sample.push(gpu.energy_j(&ops));
        }
        let estimate = per_sample[0] * N_TRAIN as f64;
        let actual = per_sample.iter().sum::<f64>() / validation_samples as f64 * N_TRAIN as f64;
        etrain.row(&[
            n.to_string(),
            format!("{:.1}", estimate / 1e3),
            format!("{:.1}", actual / 1e3),
            format!("{:.2}", relative_error(estimate, actual) * 100.0),
            "<5%".into(),
        ]);

        // Inference.
        let infer_present = PresentConfig {
            t_rest_ms: 0.0,
            ..present
        };
        let mut per_sample = Vec::new();
        for i in 0..validation_samples {
            let img = gen.sample((i % 10) as u8, 100 + i).downsample(2);
            let rates = encoder.rates_hz(img.pixels());
            let mut ops = OpCounts::default();
            run_sample(&mut net, &rates, &infer_present, None, &mut rng, &mut ops);
            per_sample.push(gpu.energy_j(&ops));
        }
        let estimate = per_sample[0] * N_INFER as f64;
        let actual = per_sample.iter().sum::<f64>() / validation_samples as f64 * N_INFER as f64;
        einfer.row(&[
            n.to_string(),
            format!("{:.1}", estimate / 1e3),
            format!("{:.1}", actual / 1e3),
            format!("{:.2}", relative_error(estimate, actual) * 100.0),
            "<5%".into(),
        ]);
    }
    out.push_str(&etrain.render());
    out.push_str(&einfer.render());
    let _ = etrain.write_csv("fig05b_train_energy");
    let _ = einfer.write_csv("fig05c_infer_energy");

    // --- (d,e) exploration time: Alg. 1 vs exhaustive actual runs ---
    let spec = SearchSpec {
        n_input: 196,
        n_add: 100,
        n_train: N_TRAIN,
        n_infer: N_INFER,
        bp: BitPrecision::FP32,
        present,
        seed: scale.seed,
    };
    let constraints = SearchConstraints {
        mem_bytes: spikedyn_memory_bytes(196, 400, BitPrecision::FP32) + 1,
        e_train_j: f64::INFINITY,
        e_infer_j: f64::INFINITY,
    };
    let result = search(&spec, &constraints, &gpu);
    let mut expl = Table::new(
        "Fig. 5(d,e): exploration duration [s] per candidate (GTX 1080 Ti model)",
        &[
            "n_exc",
            "actual run (train)",
            "algorithm (train)",
            "actual run (infer)",
            "algorithm (infer)",
        ],
    );
    for c in &result.explored {
        let p = gpu.avg_power_w;
        expl.row(&[
            c.n_exc.to_string(),
            format!("{:.0}", c.e_train_j / p),
            format!("{:.3}", c.e1_train_j / p),
            format!("{:.0}", c.e_infer_j / p),
            format!("{:.3}", c.e1_infer_j / p),
        ]);
    }
    out.push_str(&expl.render());
    out.push_str(&format!(
        "total search cost {:.2} s vs exhaustive {:.0} s → speedup {:.0}×\n",
        result.search_cost_s,
        result.exhaustive_cost_s,
        result.speedup()
    ));
    let _ = expl.write_csv("fig05de_exploration");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytical_memory_error_is_within_paper_bound() {
        // The <5 % claim must hold structurally, not just in the report.
        for n in SIZES {
            let analytical = spikedyn_memory_bytes(784, n, BitPrecision::FP32);
            let net = spikedyn_network(
                784,
                n,
                ThetaPolicy::for_presentation(350.0),
                &mut seeded_rng(1),
            );
            let actual = net.actual_memory_bytes() + (784 + n) * 4;
            assert!(
                relative_error(analytical as f64, actual as f64) < 0.05,
                "memory model error exceeds 5% at n={n}"
            );
        }
    }
}
