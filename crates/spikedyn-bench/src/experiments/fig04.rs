//! Fig. 4 — reducing the neuronal operations (§III-B).
//!
//! (b) Memory footprint of the explicit exc+inh architecture vs the
//! proposed direct-lateral architecture at the paper's native size
//! (784 inputs, N200/N400), both analytically (`(Pw+Pn)·BP`) and as
//! actually allocated simulator state.
//!
//! (c) Energy (normalised to the exc+inh architecture) of the *same
//! learning rule* (baseline STDP) running on both architectures — the
//! saving is purely architectural.
//!
//! (d) Accuracy profile of both architectures under the baseline rule in
//! the dynamic scenario: the paper's claim is that the optimised
//! architecture keeps a "similar accuracy profile", so the learning
//! improvements must come from Alg. 2, not the topology change.

use neuro_energy::{analytical_memory_bytes, BitPrecision, GpuSpec};
use snn_core::network::{Snn, SnnConfig};
use snn_core::rng::{derive_seed, seeded_rng};
use spikedyn::eval::run_dynamic_with;
use spikedyn::{Method, Trainer};

use crate::output::{pct, ratio, Table};
use crate::scale::HarnessScale;

/// Builds a baseline-method trainer whose network is swapped for the
/// direct-lateral (optimised) architecture — baseline rule, SpikeDyn
/// topology.
fn optimized_arch_trainer(n_exc: usize, scale: &HarnessScale) -> Trainer {
    let cfg = scale.protocol(Method::Baseline, n_exc);
    let mut trainer = Trainer::with_compression(
        Method::Baseline,
        cfg.n_input(),
        n_exc,
        cfg.present,
        cfg.time_compression,
        scale.seed,
    )
    .with_max_rate(cfg.max_rate_hz);
    let mut net_cfg = SnnConfig::direct_lateral(cfg.n_input(), n_exc);
    // Keep the baseline's homeostasis (compressed) so only the inhibition
    // wiring differs.
    net_cfg.adapt = trainer.net.config.adapt;
    trainer.net = Snn::new(net_cfg, &mut seeded_rng(derive_seed(scale.seed, 0xF4)));
    trainer
}

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();

    // --- (b) memory at the paper's native 784-input size ---
    let mut mem = Table::new(
        "Fig. 4(b): memory footprint [MB], 784 inputs, FP32",
        &[
            "size",
            "exc+inh (analytical)",
            "proposed (analytical)",
            "saving",
        ],
    );
    for (label, n_exc) in [("N200", 200usize), ("N400", 400usize)] {
        let with_inh = SnnConfig::with_inhibitory_layer(784, n_exc);
        let lateral = SnnConfig::direct_lateral(784, n_exc);
        let mb = |c: &SnnConfig| {
            analytical_memory_bytes(c.weight_count(), c.neuron_param_count(), BitPrecision::FP32)
                as f64
                / 1.0e6
        };
        let (a, b) = (mb(&with_inh), mb(&lateral));
        mem.row(&[
            label.into(),
            format!("{a:.2}"),
            format!("{b:.2}"),
            format!("{:.1}%", (1.0 - b / a) * 100.0),
        ]);
    }
    out.push_str(&mem.render());
    let _ = mem.write_csv("fig04b_memory");

    // --- (c) energy normalised to the exc+inh architecture ---
    let gpu = GpuSpec::gtx_1080_ti();
    let mut energy = Table::new(
        "Fig. 4(c): energy normalised to exc+inh arch (same baseline rule)",
        &["size", "exc+inh", "proposed", "paper"],
    );
    let mut acc = Table::new(
        "Fig. 4(d): recent-task accuracy [%] — architecture comparison",
        &["size", "arch", "per-task accuracy", "avg"],
    );
    for (label, n_exc) in scale.sizes() {
        let cfg = scale.protocol(Method::Baseline, n_exc);
        // exc+inh architecture.
        let mut t_inh = Trainer::with_compression(
            Method::Baseline,
            cfg.n_input(),
            n_exc,
            cfg.present,
            cfg.time_compression,
            scale.seed,
        )
        .with_max_rate(cfg.max_rate_hz);
        let report_inh = run_dynamic_with(&mut t_inh, &cfg);
        // proposed architecture, same rule.
        let mut t_lat = optimized_arch_trainer(n_exc, scale);
        let report_lat = run_dynamic_with(&mut t_lat, &cfg);

        let e_inh = gpu.energy_j(&report_inh.train_sample_ops);
        let e_lat = gpu.energy_j(&report_lat.train_sample_ops);
        energy.row(&[
            label.into(),
            "1.00".into(),
            ratio(e_lat / e_inh),
            "<1 (savings)".into(),
        ]);
        for (arch, report) in [("exc+inh", &report_inh), ("proposed", &report_lat)] {
            acc.row(&[
                label.into(),
                arch.into(),
                report
                    .recent_task_acc
                    .iter()
                    .map(|&a| pct(a))
                    .collect::<Vec<_>>()
                    .join(" "),
                pct(report.avg_recent()),
            ]);
        }
    }
    out.push_str(&energy.render());
    let _ = energy.write_csv("fig04c_energy");
    out.push_str(&acc.render());
    out.push_str(
        "paper shape: proposed arch saves memory & energy with a similar accuracy profile.\n",
    );
    let _ = acc.write_csv("fig04d_accuracy");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_saving_is_positive_and_runs() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 20,
            n_large: 30,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let report = run(&scale);
        assert!(report.contains("Fig. 4(b)"));
        assert!(report.contains("proposed"));
    }

    #[test]
    fn optimized_arch_trainer_has_no_inhibitory_layer() {
        let scale = HarnessScale {
            n_small: 20,
            n_large: 30,
            ..Default::default()
        };
        let t = optimized_arch_trainer(20, &scale);
        assert!(t.net.inh.is_none());
        assert!(t.net.config.adapt.is_some());
    }
}
