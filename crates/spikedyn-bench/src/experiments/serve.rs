//! Serve experiment — load-generating the `snn-serve` multi-session
//! layer: sessions × throughput × latency.
//!
//! Starts an in-process [`SnnServer`], opens N concurrent sessions (one
//! client thread each, cycling through the four `snn_data::scenario`
//! drift streams), and drives every session's stream over TCP in
//! micro-batches while timing each `ingest` round trip. Reports
//! per-session accuracy/drift/energy (from the server's own accounting)
//! plus aggregate throughput and latency percentiles — the serving
//! analogue of the `online` experiment's learner-quality table.
//!
//! Latency numbers are wall-clock and machine-dependent; the *learner*
//! columns are deterministic (each session's results are bit-identical
//! to a single-process run of the same stream, whatever the concurrency
//! — that property is pinned by `tests/serve_sessions.rs`, not here).

use std::time::{Duration, Instant};

use snn_data::{Scenario, SyntheticDigits};
use snn_serve::{
    ServeClient, ServeLimits, ServerConfig, SessionSpec, SnnServer, PROTO_V2, PROTO_VERSION,
};
use spikedyn::Method;

use crate::output::{latency_breakdown, pct, write_bench_json, Json, Table};
use crate::scale::HarnessScale;

/// Scale profile of one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Harness-scale run (sessions and stream length track
    /// [`HarnessScale`]).
    Standard,
    /// Seconds-long smoke profile (`--fast`), used by CI and `run_all`.
    Smoke,
}

/// Protocol generation the load-generator clients speak, from
/// `SNN_SERVE_PROTO` (`1` or `2`). Unset means proto 2: the emitted
/// `BENCH_serve.json` is the committed perf trajectory, and its headline
/// numbers are the binary-framing path — a bare re-run must not silently
/// overwrite them with proto-1 figures. CI pins each leg explicitly
/// (proto 1 first, proto 2 last) so both framings stay load tested and
/// the artifact left behind is always the proto-2 one.
fn client_proto() -> u32 {
    match std::env::var("SNN_SERVE_PROTO").ok().as_deref() {
        Some("1") => PROTO_VERSION,
        _ => PROTO_V2,
    }
}

fn sessions(profile: Profile) -> usize {
    match profile {
        Profile::Standard => 8,
        Profile::Smoke => 4,
    }
}

fn samples_per_session(scale: &HarnessScale, profile: Profile) -> u64 {
    match profile {
        Profile::Standard => scale.samples_per_task * 3,
        Profile::Smoke => 32,
    }
}

/// The session spec one load-generator client opens.
pub fn spec(scale: &HarnessScale, profile: Profile, session: usize) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: match profile {
            Profile::Standard => scale.n_small,
            Profile::Smoke => 12,
        },
        n_input: 196,
        n_classes: 10,
        seed: scale.seed + session as u64,
        batch_size: 8,
        assign_every: 16,
        reservoir_capacity: 24,
        metric_window: 24,
        drift_window: 12,
    }
}

struct SessionOutcome {
    id: String,
    scenario: Scenario,
    samples: u64,
    accuracy: f64,
    drift_events: u64,
    per_sample_mj: f64,
    latencies: Vec<Duration>,
    /// Bytes this session's client moved on the wire (tx, rx), framing
    /// included.
    wire: (u64, u64),
}

fn drive_session(
    addr: std::net::SocketAddr,
    scale: &HarnessScale,
    profile: Profile,
    session: usize,
) -> SessionOutcome {
    let scenario = Scenario::all()[session % Scenario::all().len()];
    let spec = spec(scale, profile, session);
    let id = format!("load-{session}");
    let mut client =
        ServeClient::connect_with_proto(addr, client_proto()).expect("connect to server");
    client.open(&id, spec.clone()).expect("open session");

    let gen = SyntheticDigits::new(spec.seed);
    let classes: Vec<u8> = (0..10).collect();
    let total = samples_per_session(scale, profile);
    let stream: Vec<_> = scenario
        .stream(&gen, &classes, total, spec.seed, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();

    let mut latencies = Vec::with_capacity(stream.len() / spec.batch_size + 1);
    let mut samples = 0;
    for chunk in stream.chunks(spec.batch_size) {
        let t0 = Instant::now();
        let outcome = loop {
            match client.ingest(&id, chunk) {
                Ok(outcome) => break outcome,
                // Backpressure is a *client* concern by design: back off
                // and resubmit.
                Err(e) if e.server_code() == Some("backpressure") => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("ingest failed: {e}"),
            }
        };
        latencies.push(t0.elapsed());
        samples = outcome.samples_seen;
    }
    let energy = client.energy(&id).expect("energy report");
    let report = client.close(&id).expect("close session");
    SessionOutcome {
        id,
        scenario,
        samples,
        accuracy: report.accuracy,
        drift_events: report.drift_events,
        per_sample_mj: energy.per_sample_j * 1e3,
        latencies,
        wire: client.wire_bytes(),
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Runs the experiment at the given profile and returns the rendered
/// report.
pub fn run_profile(scale: &HarnessScale, profile: Profile) -> String {
    let n_sessions = sessions(profile);
    let server = SnnServer::start(
        "127.0.0.1:0",
        ServerConfig {
            limits: ServeLimits {
                max_sessions: n_sessions,
                ..ServeLimits::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.local_addr();

    let wall = Instant::now();
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_sessions)
            .map(|i| s.spawn(move || drive_session(addr, scale, profile, i)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = wall.elapsed();
    let stats = server.stats();
    // Scrape the server's own telemetry before it goes away: the BENCH
    // artifact's latency percentiles come from the server-side
    // `serve.req.ingest_us` histogram, not the client-side stopwatch.
    let scrape = ServeClient::connect(addr)
        .expect("connect for the metrics scrape")
        .metrics()
        .expect("well-formed metrics exposition");
    server.shutdown();

    let mut table = Table::new(
        "Serve: sessions x throughput x latency (snn-serve load generator)",
        &[
            "session", "scenario", "samples", "acc%", "drifts", "mJ/smp", "mean ms", "p95 ms",
        ],
    );
    let mut all_latencies: Vec<Duration> = Vec::new();
    let mut total_samples = 0u64;
    for o in &outcomes {
        let mean_ms = o.latencies.iter().map(Duration::as_secs_f64).sum::<f64>()
            / o.latencies.len().max(1) as f64
            * 1e3;
        let mut sorted = o.latencies.clone();
        sorted.sort();
        table.row(&[
            o.id.clone(),
            o.scenario.label().to_string(),
            o.samples.to_string(),
            pct(o.accuracy),
            o.drift_events.to_string(),
            format!("{:.2}", o.per_sample_mj),
            format!("{mean_ms:.2}"),
            format!("{:.2}", percentile(&sorted, 0.95).as_secs_f64() * 1e3),
        ]);
        all_latencies.extend(o.latencies.iter().copied());
        total_samples += o.samples;
    }
    let wire_tx: u64 = outcomes.iter().map(|o| o.wire.0).sum();
    let wire_rx: u64 = outcomes.iter().map(|o| o.wire.1).sum();
    let mut out = table.render();
    all_latencies.sort();
    out.push_str(&format!(
        "aggregate — proto {}: {} B sent, {} B received on the wire\n",
        client_proto(),
        wire_tx,
        wire_rx,
    ));
    out.push_str(&format!(
        "aggregate — {} sessions, {} samples in {:.2}s = {:.0} samples/s; \
         ingest latency p50 {:.2} ms, p95 {:.2} ms, max {:.2} ms; \
         {} scheduler ticks ({:.1} sessions/tick cross-session batching)\n",
        n_sessions,
        total_samples,
        wall.as_secs_f64(),
        total_samples as f64 / wall.as_secs_f64().max(f64::EPSILON),
        percentile(&all_latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&all_latencies, 0.95).as_secs_f64() * 1e3,
        all_latencies
            .last()
            .copied()
            .unwrap_or_default()
            .as_secs_f64()
            * 1e3,
        stats.ticks,
        all_latencies.len() as f64 / stats.ticks.max(1) as f64,
    ));
    let _ = table.write_csv("serve_load");

    let ingest_us = scrape.histogram("serve.req.ingest_us");
    let proto = client_proto();
    let mut bench = Json::new();
    bench
        .str("experiment", "serve")
        .int("proto", u64::from(proto))
        .int("wire_tx_bytes", wire_tx)
        .int("wire_rx_bytes", wire_rx)
        .int(
            "server_rx_bytes",
            scrape.counter(&format!("serve.wire.p{proto}.rx_bytes")),
        )
        .int("sessions", n_sessions as u64)
        .int("samples", total_samples)
        .num("wall_s", wall.as_secs_f64())
        .num(
            "throughput_sps",
            total_samples as f64 / wall.as_secs_f64().max(f64::EPSILON),
        )
        .int("ingest_p50_us", ingest_us.quantile(0.50))
        .int("ingest_p95_us", ingest_us.quantile(0.95))
        .int("ingest_p99_us", ingest_us.quantile(0.99))
        .int("requests", scrape.counter("serve.requests"))
        .int("ticks", stats.ticks)
        .int("drift_events", scrape.counter("online.drift_events"))
        .num("total_j", scrape.gauge("serve.total_j"))
        .raw("latency_breakdown", latency_breakdown(&scrape));
    let _ = write_bench_json("serve", &bench);
    out
}

/// Runs the standard-profile experiment.
pub fn run(scale: &HarnessScale) -> String {
    run_profile(scale, Profile::Standard)
}

/// Runs the smoke-profile experiment (the `run_all` entry point — the
/// full-scale serve run is a standalone binary concern).
pub fn run_smoke(scale: &HarnessScale) -> String {
    run_profile(scale, Profile::Smoke)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_covers_all_sessions_and_scenarios() {
        let scale = HarnessScale {
            samples_per_task: 8,
            ..Default::default()
        };
        let out = run_profile(&scale, Profile::Smoke);
        for i in 0..sessions(Profile::Smoke) {
            assert!(out.contains(&format!("load-{i}")), "missing session {i}");
        }
        for scenario in Scenario::all() {
            assert!(out.contains(scenario.label()), "missing {scenario}");
        }
        assert!(out.contains("samples/s"));
    }

    #[test]
    fn percentile_is_monotone() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert!(percentile(&lat, 0.5) <= percentile(&lat, 0.95));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
        assert_eq!(percentile(&lat, 1.0), Duration::from_millis(100));
    }
}
