//! Table I — GPU specifications (§IV), plus this reproduction's
//! calibrated cost-model constants.

use neuro_energy::all_gpus;

use crate::output::Table;
use crate::scale::HarnessScale;

/// Runs the experiment and returns the rendered report.
pub fn run(_scale: &HarnessScale) -> String {
    let mut table = Table::new(
        "Table I: GPU specifications (paper) + calibrated cost constants (ours)",
        &["category", "Jetson Nano", "GTX 1080 Ti", "RTX 2080 Ti"],
    );
    let gpus = all_gpus();
    let col = |f: &dyn Fn(&neuro_energy::GpuSpec) -> String| -> Vec<String> {
        gpus.iter().map(f).collect()
    };
    let rows: Vec<(&str, Vec<String>)> = vec![
        ("Architecture", col(&|g| g.architecture.clone())),
        ("CUDA cores", col(&|g| g.cuda_cores.to_string())),
        (
            "Memory",
            col(&|g| format!("{}GB {}", g.memory_gib, g.memory_type)),
        ),
        (
            "Interface width",
            col(&|g| format!("{}-bit", g.interface_bits)),
        ),
        ("Power", col(&|g| format!("{}W", g.tdp_w))),
        (
            "Kernel latency (calibrated)",
            col(&|g| format!("{:.0} µs", g.kernel_latency_us)),
        ),
        (
            "Elem throughput (calibrated)",
            col(&|g| format!("{:.1} Gop/s", g.elem_throughput_ops / 1e9)),
        ),
        (
            "Avg draw during sim (calibrated)",
            col(&|g| format!("{:.1} W", g.avg_power_w)),
        ),
    ];
    for (name, cells) in rows {
        table.row(&[
            name.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    let out = table.render();
    let _ = table.write_csv("table01_gpus");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_paper_values() {
        let report = run(&HarnessScale::default());
        assert!(report.contains("Maxwell"));
        assert!(report.contains("3584"));
        assert!(report.contains("4352"));
        assert!(report.contains("10W"));
        assert!(report.contains("250W"));
    }
}
