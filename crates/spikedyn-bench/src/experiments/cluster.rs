//! Cluster experiment — load-generating the `snn-cluster` router:
//! aggregate throughput for 1 vs N `snn-serve` shards.
//!
//! For each shard count, starts an in-process [`Cluster`], spawns the
//! shards, opens N concurrent sessions through the router (one client
//! thread each, cycling the `snn_data::scenario` drift streams), and
//! drives every stream in micro-batches while timing each `ingest`
//! round trip. On multi-shard runs every session additionally
//! **live-migrates itself to another shard halfway through its stream**,
//! so the scaling numbers include the checkpoint→restore cost of
//! rebalancing under load (the bit-identity of that move is pinned by
//! `tests/cluster_shards.rs`, not here).
//!
//! After the scaling runs, a **chaos drill** starts a shadowing cluster
//! (one spawned shard plus one externally-owned victim), drives every
//! session to its halfway mark, waits until every victim-resident
//! session's shadow provably covers that mark, kills the victim
//! abruptly, and requires every session to finish through the
//! restore-from-shadow failover — zero dropped sessions, **zero lost
//! samples** (each close report's server-side count must equal the full
//! stream, and every failover/restore in the post-mortem journal must
//! carry the shadowed prefix, never an empty blob), at least one
//! failover, and the observed shadow-lag/failover-latency numbers land
//! in `BENCH_cluster.json`.
//! The drill watches itself over the wire: a live `subscribe` stream
//! feeds an `snn-slo` engine throughout (a deliberately unattainable
//! ingest-latency canary proves the alert path fires), and afterwards
//! the merged `cluster-journal` post-mortem — including the dead
//! victim's black-box copy — is dumped to `POSTMORTEM_cluster.journal`
//! and required to chain `probe_fail → shard_down → failover` by rid.
//!
//! Latency and throughput are wall-clock and machine-dependent; the
//! learner outcomes are deterministic.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use snn_cluster::{Cluster, ClusterConfig, ClusterLimits};
use snn_data::{Scenario, SyntheticDigits};
use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer, PROTO_V2, PROTO_VERSION};
use snn_slo::{Objective, Signal, SloEngine, SloPolicy};
use spikedyn::Method;

use crate::output::{
    json_array, latency_breakdown, write_bench_json, write_root_artifact, Json, Table,
};
use crate::scale::HarnessScale;

/// Scale profile of one cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Harness-scale run.
    Standard,
    /// Seconds-long smoke profile (`--fast`), used by CI and `run_all`.
    Smoke,
}

/// Protocol generation the load-generator clients speak to the router,
/// from `SNN_CLUSTER_PROTO` (`1` or `2`). Unset means proto 2: the
/// emitted `BENCH_cluster.json` is the committed perf trajectory, and
/// its headline numbers are the binary-framing path — a bare re-run
/// must not silently overwrite them with proto-1 figures. CI pins each
/// leg explicitly (proto 1 first, proto 2 last) so both framings stay
/// load tested and the artifact left behind is always the proto-2 one.
/// The router↔shard relay negotiates its own protocol independently
/// (proto 2 by default).
fn client_proto() -> u32 {
    match std::env::var("SNN_CLUSTER_PROTO").ok().as_deref() {
        Some("1") => PROTO_VERSION,
        _ => PROTO_V2,
    }
}

fn shard_counts(profile: Profile) -> &'static [usize] {
    match profile {
        Profile::Standard => &[1, 2, 4],
        Profile::Smoke => &[1, 2],
    }
}

fn sessions(profile: Profile) -> usize {
    match profile {
        Profile::Standard => 8,
        Profile::Smoke => 4,
    }
}

fn samples_per_session(scale: &HarnessScale, profile: Profile) -> u64 {
    match profile {
        Profile::Standard => scale.samples_per_task * 3,
        Profile::Smoke => 32,
    }
}

/// The session spec one load-generator client opens (mirrors the `serve`
/// experiment's profile so 1-shard cluster numbers are comparable to a
/// bare server).
pub fn spec(scale: &HarnessScale, profile: Profile, session: usize) -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: match profile {
            Profile::Standard => scale.n_small,
            Profile::Smoke => 12,
        },
        n_input: 196,
        n_classes: 10,
        seed: scale.seed + session as u64,
        batch_size: 8,
        assign_every: 16,
        reservoir_capacity: 24,
        metric_window: 24,
        drift_window: 12,
    }
}

struct SessionOutcome {
    samples: u64,
    migrations: usize,
    latencies: Vec<Duration>,
}

fn drive_session(
    cluster: &Cluster,
    scale: &HarnessScale,
    profile: Profile,
    session: usize,
    migrate_midway: bool,
) -> SessionOutcome {
    let scenario = Scenario::all()[session % Scenario::all().len()];
    let spec = spec(scale, profile, session);
    let id = format!("cl-{session}");
    let mut client = ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
        .expect("connect to router");
    client.open(&id, spec.clone()).expect("open session");

    let gen = SyntheticDigits::new(spec.seed);
    let classes: Vec<u8> = (0..10).collect();
    let total = samples_per_session(scale, profile);
    let stream: Vec<_> = scenario
        .stream(&gen, &classes, total, spec.seed, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();

    let chunks: Vec<&[snn_data::Image]> = stream.chunks(spec.batch_size).collect();
    let mut latencies = Vec::with_capacity(chunks.len());
    let mut samples = 0;
    let mut migrations = 0;
    for (batch_idx, chunk) in chunks.iter().enumerate() {
        if migrate_midway && batch_idx == chunks.len() / 2 {
            // Live-migrate this session to another shard mid-stream; the
            // load keeps flowing right after.
            let here = cluster.session_shard(&id).expect("session is routed");
            let shard_ids = cluster.shard_ids();
            if let Some(&there) = shard_ids.iter().find(|&&s| s != here) {
                cluster.migrate_session(&id, there).expect("live migration");
                migrations += 1;
            }
        }
        let t0 = Instant::now();
        let outcome = loop {
            match client.ingest(&id, chunk) {
                Ok(outcome) => break outcome,
                Err(e) if e.server_code() == Some("backpressure") => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("ingest failed: {e}"),
            }
        };
        latencies.push(t0.elapsed());
        samples = outcome.samples_seen;
    }
    client.close(&id).expect("close session");
    SessionOutcome {
        samples,
        migrations,
        latencies,
    }
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct RunOutcome {
    shards: usize,
    samples: u64,
    migrations: usize,
    wall: Duration,
    latencies: Vec<Duration>,
    shard_joules: Vec<f64>,
    /// The merged `cluster-metrics` exposition scraped at the end of the
    /// run (router registry + every shard's).
    telemetry: snn_obs::Snapshot,
}

/// Scrapes one exposition verb (`metrics` or `cluster-metrics`) through
/// the router and parses it, panicking loudly on any malformation — CI
/// runs this binary with `--fast`, so a scrape regression fails the
/// cluster smoke job rather than rotting silently.
fn scrape_expo(client: &mut ServeClient, verb: &str) -> snn_obs::Snapshot {
    let reply = client
        .call_raw(verb)
        .unwrap_or_else(|e| panic!("{verb} round trip failed: {e}"));
    let resp = snn_serve::protocol::parse_response(&reply)
        .unwrap_or_else(|e| panic!("{verb} reply is not a protocol line: {e} ({reply})"));
    let hex = resp
        .get("data")
        .unwrap_or_else(|| panic!("{verb} reply carries no data field: {reply}"));
    let bytes = snn_serve::protocol::hex_decode(hex)
        .unwrap_or_else(|e| panic!("{verb} payload is not hex: {e}"));
    let text =
        String::from_utf8(bytes).unwrap_or_else(|e| panic!("{verb} payload is not UTF-8: {e}"));
    snn_obs::Snapshot::parse(&text)
        .unwrap_or_else(|e| panic!("{verb} exposition is malformed: {e}"))
}

fn run_one(scale: &HarnessScale, profile: Profile, n_shards: usize) -> RunOutcome {
    let cluster =
        Cluster::start("127.0.0.1:0", ClusterConfig::default()).expect("bind an ephemeral port");
    for _ in 0..n_shards {
        cluster
            .spawn_shard(ServerConfig::default())
            .expect("spawn shard");
    }
    let n_sessions = sessions(profile);
    let migrate_midway = n_shards > 1;

    let wall = Instant::now();
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|s| {
        let cluster = &cluster;
        let handles: Vec<_> = (0..n_sessions)
            .map(|i| s.spawn(move || drive_session(cluster, scale, profile, i, migrate_midway)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = wall.elapsed();
    let stats = cluster.stats();
    // Smoke-scrape both exposition verbs while the cluster is still up:
    // the router's own registry must parse, and the fan-out must merge
    // every shard cleanly. The merged snapshot feeds BENCH_cluster.json.
    let mut scraper = ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
        .expect("connect for scrape");
    let router_only = scrape_expo(&mut scraper, "metrics");
    assert!(
        router_only.counters.contains_key("cluster.relays"),
        "router metrics must expose the relay counter"
    );
    let telemetry = scrape_expo(&mut scraper, "cluster-metrics");
    cluster.shutdown();

    let mut latencies: Vec<Duration> = outcomes
        .iter()
        .flat_map(|o| o.latencies.iter().copied())
        .collect();
    latencies.sort();
    RunOutcome {
        shards: n_shards,
        samples: outcomes.iter().map(|o| o.samples).sum(),
        migrations: outcomes.iter().map(|o| o.migrations).sum(),
        wall,
        latencies,
        shard_joules: stats.shards.iter().map(|s| s.total_j).collect(),
        telemetry,
    }
}

/// Samples per session in the chaos drill — a correctness exercise, not
/// a throughput measurement, so it stays smoke-sized at every profile.
const CHAOS_SAMPLES: u64 = 32;

struct ChaosOutcome {
    sessions: usize,
    finished: usize,
    failovers: u64,
    failover_p50_us: u64,
    max_shadow_lag: f64,
    /// SLO alerts the drill's live subscription fired (a deliberately
    /// unattainable ingest-latency canary guarantees at least one, so
    /// the streamed-telemetry → alert path is exercised end to end).
    alerts_fired: u64,
    /// `cluster.subscribe.drops` after the drill — frames the router
    /// discarded for slow subscribers (usually 0 here; reported so a
    /// lossy run is visible in the trajectory).
    subscribe_drops: u64,
    /// Events in the merged post-mortem journal written to
    /// `POSTMORTEM_cluster.journal`.
    postmortem_events: u64,
    /// Samples the clients streamed that the servers do not hold at
    /// close time — the drill's silent-loss measure, asserted to be 0
    /// (every failover must recover the whole shadowed prefix, and the
    /// arming gate guarantees the shadows covered everything sent).
    lost_samples: u64,
    /// Nodes in the merged `cluster-trace` tree assembled for the
    /// incident rid — the "explain the outage" smoke: the assembler
    /// must still work after the home shard is dead, sourcing the
    /// victim's phases from its black-box journal.
    trace_nodes: u64,
}

/// One chaos load generator: opens a session, ingests its stream in
/// batches, and **holds at the halfway mark until the victim shard has
/// been killed** — so every session provably crosses the kill
/// mid-stream. Any error (dead backend, failover window, backpressure)
/// is retried against a deadline; returns the session's final
/// *server-side* sample count from the close report (`None` if the
/// session never recovered). Client-side completion alone is not
/// success: a failover that restored an empty shadow would still let
/// every ingest call succeed while silently dropping the pre-kill half
/// of the stream, so the caller must compare the returned count against
/// the samples actually sent.
fn drive_chaos_session(
    cluster: &Cluster,
    scale: &HarnessScale,
    profile: Profile,
    session: usize,
    opened: &AtomicUsize,
    ingested: &AtomicU64,
    killed: &AtomicBool,
) -> Option<u64> {
    let spec = spec(scale, profile, session);
    let id = format!("ch-{session}");
    let mut client = ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
        .expect("connect to router");
    client.open(&id, spec.clone()).expect("open chaos session");
    opened.fetch_add(1, Ordering::SeqCst);

    let gen = SyntheticDigits::new(spec.seed);
    let classes: Vec<u8> = (0..10).collect();
    let scenario = Scenario::all()[session % Scenario::all().len()];
    let stream: Vec<_> = scenario
        .stream(&gen, &classes, CHAOS_SAMPLES, spec.seed, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    let chunks: Vec<&[snn_data::Image]> = stream.chunks(spec.batch_size).collect();
    for (batch_idx, chunk) in chunks.iter().enumerate() {
        if batch_idx == chunks.len() / 2 {
            let deadline = Instant::now() + Duration::from_secs(30);
            while !killed.load(Ordering::SeqCst) {
                assert!(
                    Instant::now() < deadline,
                    "the drill never killed the victim"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match client.ingest(&id, chunk) {
                Ok(_) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    eprintln!("chaos session {id} never recovered: {e}");
                    return None;
                }
            }
        }
        ingested.fetch_add(chunk.len() as u64, Ordering::SeqCst);
    }
    client.close(&id).ok().map(|report| report.samples)
}

/// The chaos drill: kill a shard mid-stream under load and require every
/// session to finish through the restore-from-shadow failover.
fn run_chaos(scale: &HarnessScale, profile: Profile) -> ChaosOutcome {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                health_interval: Duration::from_millis(40),
                probes_to_kill: 2,
                shadow_interval: Some(Duration::from_millis(25)),
                ..ClusterLimits::default()
            },
        },
    )
    .expect("bind an ephemeral port");
    cluster.spawn_shard(ServerConfig::default()).expect("spawn");
    // The victim runs outside the cluster so the drill can kill it
    // behind the router's back — exactly what a crashed shard looks like.
    let victim_server =
        SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("start victim");
    let victim = cluster
        .attach_shard(victim_server.local_addr())
        .expect("attach victim");

    let n_sessions = sessions(profile);
    let opened = AtomicUsize::new(0);
    let ingested = AtomicU64::new(0);
    let killed = AtomicBool::new(false);
    let drill_done = AtomicBool::new(false);
    let total = n_sessions as u64 * CHAOS_SAMPLES;

    let (finals, max_shadow_lag, alerts_fired) = std::thread::scope(|s| {
        let cluster = &cluster;
        let (opened, ingested, killed) = (&opened, &ingested, &killed);
        let drill_done = &drill_done;
        let handles: Vec<_> = (0..n_sessions)
            .map(|i| {
                s.spawn(move || {
                    drive_chaos_session(cluster, scale, profile, i, opened, ingested, killed)
                })
            })
            .collect();

        // Subscribe to the router's live telemetry stream for the whole
        // drill. Shadow-lag comes from pushed frames, not polls, and an
        // SLO engine evaluates every frame: a deliberately unattainable
        // ingest-latency canary (p99 < 1 µs) must fire under load, so
        // the wire path `subscribe → SloEngine → alert` is proven every
        // run. The policy is deliberately hair-triggered (one violating
        // frame in a 4-frame window fires) because the drill's load
        // arrives in bursts around the kill, not as a steady stream.
        let mut subscription =
            ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
                .expect("connect subscriber")
                .subscribe(10)
                .expect("subscribe to the router");
        let subscriber = s.spawn(move || {
            let mut engine = SloEngine::new(
                vec![
                    Objective {
                        name: "ingest-canary".into(),
                        signal: Signal::VerbLatencyP99Us("ingest".into()),
                        threshold: 1.0,
                    },
                    Objective {
                        name: "rejects".into(),
                        signal: Signal::RejectRate,
                        threshold: 0.5,
                    },
                ],
                SloPolicy {
                    window: 4,
                    burn_threshold: 0.25,
                    min_samples: 1,
                },
            );
            let mut max_lag = 0.0f64;
            let mut alerts = 0u64;
            let mut frames = 0u64;
            while !drill_done.load(Ordering::SeqCst) {
                let push = match subscription.next() {
                    Ok(push) => push,
                    Err(_) => break, // clean shutdown ends the stream
                };
                frames += 1;
                max_lag = max_lag.max(push.metrics.gauge("cluster.shadow_lag"));
                alerts += engine.observe(&push.metrics, push.seq * 10_000).len() as u64;
            }
            (max_lag, alerts, frames)
        });

        // Wait for every session to open, then make sure at least one
        // lives on the victim (the ring may have placed none there).
        let deadline = Instant::now() + Duration::from_secs(30);
        while opened.load(Ordering::SeqCst) < n_sessions {
            assert!(Instant::now() < deadline, "chaos sessions never opened");
            std::thread::sleep(Duration::from_millis(2));
        }
        if !(0..n_sessions)
            .map(|i| format!("ch-{i}"))
            .any(|id| cluster.session_shard(&id) == Some(victim))
        {
            cluster
                .migrate_session("ch-0", victim)
                .expect("seed the victim shard");
        }
        // Don't pull the trigger before EVERY session is parked at its
        // halfway barrier (so `ingested` can no longer move and nothing
        // is in flight) and every victim-resident session's shadow
        // PROVABLY covers that halfway mark. A shadow merely *existing*
        // is not enough: the shadower's first sweep usually parks a
        // seq-0 blob taken before any ingest landed, and killing on that
        // evidence restores an empty learner — every pre-kill sample is
        // then lost while the clients finish none the wiser, which is
        // exactly the silent-loss failure this drill exists to rule
        // out. (No migrations run here, so the set of victim-resident
        // sessions is stable.)
        let halfway = CHAOS_SAMPLES / 2;
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let armed = ingested.load(Ordering::SeqCst) == total / 2
                && (0..n_sessions)
                    .map(|i| format!("ch-{i}"))
                    .filter(|id| cluster.session_shard(id) == Some(victim))
                    .all(|id| {
                        cluster
                            .session_shadow(&id)
                            .is_some_and(|(_, seq)| seq >= halfway)
                    });
            if armed {
                break;
            }
            assert!(Instant::now() < deadline, "chaos drill never armed");
            std::thread::sleep(Duration::from_millis(5));
        }
        victim_server.shutdown();
        killed.store(true, Ordering::SeqCst);

        let finals: Vec<Option<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        drill_done.store(true, Ordering::SeqCst);
        let (max_lag, alerts, frames) = subscriber.join().unwrap();
        assert!(frames >= 1, "the drill must stream at least one frame");
        (finals, max_lag, alerts)
    });
    let finished = finals.iter().filter(|f| f.is_some()).count();
    // The drill armed only after every shadow covered the halfway mark
    // and every session was parked there (nothing in flight), so the
    // failovers recover the whole pre-kill half and NO sample may be
    // lost: each session's final server-side count must equal exactly
    // what its client streamed. This is the server-side half of the
    // zero-loss claim — client-side completion alone would also pass
    // with an empty restore.
    let lost_samples: u64 = finals
        .iter()
        .map(|f| CHAOS_SAMPLES.saturating_sub(f.unwrap_or(0)))
        .sum();
    for (i, samples) in finals.iter().enumerate() {
        if let Some(samples) = samples {
            assert_eq!(
                *samples, CHAOS_SAMPLES,
                "chaos session ch-{i} closed with {samples}/{CHAOS_SAMPLES} samples \
                 on the server — the failover silently lost data"
            );
        }
    }

    // The merged scrape must still work after a shard death: the dead
    // shard left the pool, the router's failover telemetry remains.
    let mut scraper = ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
        .expect("connect for scrape");
    let telemetry = scrape_expo(&mut scraper, "cluster-metrics");

    // Dump the merged post-mortem journal — router + live shards + the
    // victim's black-box copy — to a root-level artifact, and require
    // its tail to explain the failover: strikes and the death verdict
    // share one incident rid, and each failover cites that incident.
    let journal_text = scrape_journal_text(&mut scraper);
    let journal = snn_obs::JournalSnapshot::parse(&journal_text)
        .unwrap_or_else(|e| panic!("post-mortem journal is malformed: {e}"));
    write_root_artifact("POSTMORTEM_cluster.journal", &journal_text)
        .expect("write POSTMORTEM_cluster.journal");
    let down = journal
        .events
        .iter()
        .find(|e| e.kind == "cluster.shard_down" && e.field("shard") == Some(&victim.to_string()))
        .expect("post-mortem records the victim's death");
    assert!(!down.rid.is_empty(), "the death verdict is rid-attributed");
    assert!(
        journal
            .events
            .iter()
            .any(|e| e.kind == "cluster.probe_fail" && e.rid == down.rid),
        "the probe strikes share the incident rid {}",
        down.rid
    );
    assert!(
        journal
            .events
            .iter()
            .any(|e| e.kind == "cluster.failover" && e.field("cause") == Some(&down.rid)),
        "at least one failover cites incident {} as its cause",
        down.rid
    );
    // Every failover must restore real progress. The drill armed only
    // after each victim session's shadow covered the halfway mark, so a
    // seq-0 failover (or a restore reporting an empty learner) here
    // means restore-from-shadow regressed into replaying a blank blob —
    // the post-mortem must refuse to greenlight it.
    let halfway = CHAOS_SAMPLES / 2;
    for e in journal
        .events
        .iter()
        .filter(|e| e.kind == "cluster.failover")
    {
        let seq = e.field("seq").and_then(|v| v.parse::<u64>().ok());
        assert!(
            seq.is_some_and(|s| s >= halfway),
            "failover of {} restored seq {seq:?}, expected >= {halfway}: \
             the shadow did not cover the pre-kill stream",
            e.field("id").map_or("?", |v| v),
        );
    }
    for e in journal.events.iter().filter(|e| e.kind == "serve.restore") {
        let samples = e.field("samples").and_then(|v| v.parse::<u64>().ok());
        assert!(
            samples.is_some_and(|s| s >= halfway),
            "restore of {} landed with {samples:?} samples, expected >= {halfway}: \
             the shadowed blob was (nearly) empty",
            e.field("id").map_or("?", |v| v),
        );
    }
    // The incident rid from the post-mortem must be traceable on
    // demand: `cluster-trace` assembles the merged tree even though the
    // victim shard is gone (its events come from the frozen black-box
    // journal), and the tree names the death verdict.
    let tree = scraper
        .cluster_trace(&down.rid)
        .unwrap_or_else(|e| panic!("cluster-trace rid={} failed: {e}", down.rid));
    assert_eq!(tree.rid, down.rid, "trace tree is for the incident rid");
    let rendered = tree.render();
    assert!(
        rendered.contains("event.cluster.shard_down"),
        "the incident trace must contain the death verdict:\n{rendered}"
    );
    let trace_nodes = tree.root.count() as u64;
    cluster.shutdown();

    let outcome = ChaosOutcome {
        sessions: n_sessions,
        finished,
        failovers: telemetry.counter("cluster.failovers"),
        failover_p50_us: telemetry.histogram("cluster.failover_us").quantile(0.50),
        max_shadow_lag,
        alerts_fired,
        subscribe_drops: telemetry.counter("cluster.subscribe.drops"),
        postmortem_events: journal.events.len() as u64,
        lost_samples,
        trace_nodes,
    };
    assert_eq!(
        outcome.finished, outcome.sessions,
        "chaos drill dropped sessions"
    );
    assert_eq!(
        outcome.lost_samples, 0,
        "chaos drill lost samples across the failover"
    );
    assert!(
        outcome.failovers >= 1,
        "the kill must exercise at least one failover"
    );
    assert!(
        outcome.alerts_fired >= 1,
        "the canary objective must fire over the subscription"
    );
    outcome
}

/// Fetches the merged `cluster-journal` dump through the router and
/// returns the decoded journal text (the post-mortem artifact body).
fn scrape_journal_text(client: &mut ServeClient) -> String {
    let reply = client
        .call_raw("cluster-journal")
        .unwrap_or_else(|e| panic!("cluster-journal round trip failed: {e}"));
    let resp = snn_serve::protocol::parse_response(&reply)
        .unwrap_or_else(|e| panic!("cluster-journal reply is not a protocol line: {e} ({reply})"));
    let hex = resp
        .get("data")
        .unwrap_or_else(|| panic!("cluster-journal reply carries no data field: {reply}"));
    let bytes = snn_serve::protocol::hex_decode(hex)
        .unwrap_or_else(|e| panic!("cluster-journal payload is not hex: {e}"));
    String::from_utf8(bytes).unwrap_or_else(|e| panic!("cluster-journal payload is not UTF-8: {e}"))
}

/// Relay-path byte totals of one [`wire_run`]: what the `data=`
/// payloads occupied on the router↔shard wire, and the whole
/// lines/frames around them.
struct WireRun {
    payload_bytes: u64,
    wire_bytes: u64,
}

/// Drives one checkpoint-heavy workload with the router↔shard relay
/// pinned to the given protocol generation and reads the
/// `cluster.relay.p{N}.*` counters back. The cluster is quieted (no
/// probes, no shadow sweeps) so the byte counts are exactly the
/// workload's — the p1 and p2 runs move bit-identical payloads, and the
/// only difference on the relay wire is the framing.
fn wire_run(scale: &HarnessScale, profile: Profile, backend_proto: u32) -> WireRun {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            limits: ClusterLimits {
                backend_max_proto: backend_proto,
                health_interval: Duration::from_secs(60),
                shadow_interval: None,
                ..ClusterLimits::default()
            },
        },
    )
    .expect("bind an ephemeral port");
    for _ in 0..2 {
        cluster
            .spawn_shard(ServerConfig::default())
            .expect("spawn shard");
    }
    let mut client = ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
        .expect("connect to router");
    let spec = spec(scale, profile, 0);
    let id = "wire";
    client.open(id, spec.clone()).expect("open session");

    let gen = SyntheticDigits::new(spec.seed);
    let classes: Vec<u8> = (0..10).collect();
    let stream: Vec<_> = Scenario::all()[0]
        .stream(&gen, &classes, 16, spec.seed, 0)
        .into_iter()
        .map(|img| img.downsample(2))
        .collect();
    for chunk in stream.chunks(spec.batch_size) {
        client.ingest(id, chunk).expect("ingest");
    }
    // The checkpoint-heavy half: snapshot fetches plus live migrations
    // (each a checkpoint→restore round trip over the relay), the blob
    // traffic the binary framing exists for.
    for _ in 0..4 {
        let snapshot = client.checkpoint(id).expect("checkpoint");
        assert!(!snapshot.is_empty(), "checkpoint must carry a payload");
        let here = cluster.session_shard(id).expect("session is routed");
        let there = cluster
            .shard_ids()
            .into_iter()
            .find(|&s| s != here)
            .expect("two shards");
        cluster.migrate_session(id, there).expect("live migration");
    }
    client.close(id).expect("close session");

    let mut scraper = ServeClient::connect_with_proto(cluster.local_addr(), client_proto())
        .expect("connect for scrape");
    let telemetry = scrape_expo(&mut scraper, "cluster-metrics");
    cluster.shutdown();
    let p = if backend_proto >= PROTO_V2 { 2 } else { 1 };
    WireRun {
        payload_bytes: telemetry.counter(&format!("cluster.relay.p{p}.payload_bytes")),
        wire_bytes: telemetry.counter(&format!("cluster.relay.p{p}.rx_bytes"))
            + telemetry.counter(&format!("cluster.relay.p{p}.tx_bytes")),
    }
}

/// Runs the identical workload once per relay protocol and pins the
/// framing rollout's headline claim: proto 2 moves the same payloads in
/// at least 2× fewer payload bytes (hex text vs raw binary).
fn compare_wire(scale: &HarnessScale, profile: Profile) -> (WireRun, WireRun) {
    let p1 = wire_run(scale, profile, PROTO_VERSION);
    let p2 = wire_run(scale, profile, PROTO_V2);
    assert!(
        p1.payload_bytes > 0 && p2.payload_bytes > 0,
        "both relay runs must move payload bytes (p1 {}, p2 {})",
        p1.payload_bytes,
        p2.payload_bytes
    );
    let ratio = p1.payload_bytes as f64 / p2.payload_bytes as f64;
    assert!(
        ratio >= 2.0,
        "proto 2 must move ≥2x fewer payload bytes than proto 1 \
         (p1 {} B, p2 {} B, ratio {ratio:.3})",
        p1.payload_bytes,
        p2.payload_bytes
    );
    (p1, p2)
}

/// Runs the experiment at the given profile and returns the rendered
/// report.
pub fn run_profile(scale: &HarnessScale, profile: Profile) -> String {
    let runs: Vec<RunOutcome> = shard_counts(profile)
        .iter()
        .map(|&n| run_one(scale, profile, n))
        .collect();

    let mut table = Table::new(
        "Cluster: aggregate throughput, 1 vs N snn-serve shards (snn-cluster router)",
        &[
            "shards",
            "sessions",
            "samples",
            "migrations",
            "samples/s",
            "p50 ms",
            "p95 ms",
        ],
    );
    for run in &runs {
        table.row(&[
            run.shards.to_string(),
            sessions(profile).to_string(),
            run.samples.to_string(),
            run.migrations.to_string(),
            format!(
                "{:.0}",
                run.samples as f64 / run.wall.as_secs_f64().max(f64::EPSILON)
            ),
            format!(
                "{:.2}",
                percentile(&run.latencies, 0.50).as_secs_f64() * 1e3
            ),
            format!(
                "{:.2}",
                percentile(&run.latencies, 0.95).as_secs_f64() * 1e3
            ),
        ]);
    }
    let mut out = table.render();
    if let (Some(first), Some(last)) = (runs.first(), runs.last()) {
        let base = first.samples as f64 / first.wall.as_secs_f64().max(f64::EPSILON);
        let top = last.samples as f64 / last.wall.as_secs_f64().max(f64::EPSILON);
        out.push_str(&format!(
            "aggregate — {} shard(s) {:.0} samples/s vs {} shard(s) {:.0} samples/s \
             ({:.2}x, wall-clock); {} mid-stream live migration(s); \
             per-shard joules on the largest run: [{}]\n",
            first.shards,
            base,
            last.shards,
            top,
            top / base.max(f64::EPSILON),
            runs.iter().map(|r| r.migrations).sum::<usize>(),
            last.shard_joules
                .iter()
                .map(|j| format!("{j:.3}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
    let _ = table.write_csv("cluster_scaling");

    let chaos = run_chaos(scale, profile);
    out.push_str(&format!(
        "chaos — shard killed mid-stream: {}/{} sessions finished with \
         {} sample(s) lost, {} failover(s) (p50 {} µs), max shadow lag \
         {:.0} sample(s); {} SLO alert(s) fired over the live \
         subscription ({} frame(s) dropped); post-mortem journal: \
         {} event(s) → POSTMORTEM_cluster.journal; incident \
         cluster-trace: {} node(s)\n",
        chaos.finished,
        chaos.sessions,
        chaos.lost_samples,
        chaos.failovers,
        chaos.failover_p50_us,
        chaos.max_shadow_lag,
        chaos.alerts_fired,
        chaos.subscribe_drops,
        chaos.postmortem_events,
        chaos.trace_nodes,
    ));

    let (wire_p1, wire_p2) = compare_wire(scale, profile);
    out.push_str(&format!(
        "wire — relay payload bytes on an identical checkpoint-heavy \
         workload, proto 1 vs proto 2: {} B vs {} B ({:.2}x); whole \
         lines/frames: {} B vs {} B ({:.2}x)\n",
        wire_p1.payload_bytes,
        wire_p2.payload_bytes,
        wire_p1.payload_bytes as f64 / wire_p2.payload_bytes.max(1) as f64,
        wire_p1.wire_bytes,
        wire_p2.wire_bytes,
        wire_p1.wire_bytes as f64 / wire_p2.wire_bytes.max(1) as f64,
    ));

    let client_p = if client_proto() >= PROTO_V2 { 2 } else { 1 };
    let run_objects = runs.iter().map(|run| {
        let migrate_us = run.telemetry.histogram("cluster.migrate_us");
        let migrate_bytes = run.telemetry.histogram("cluster.migrate_bytes");
        let mut j = Json::new();
        j.int("shards", run.shards as u64)
            .int("sessions", sessions(profile) as u64)
            .int("samples", run.samples)
            .num("wall_s", run.wall.as_secs_f64())
            .num(
                "throughput_sps",
                run.samples as f64 / run.wall.as_secs_f64().max(f64::EPSILON),
            )
            .num(
                "ingest_p50_ms",
                percentile(&run.latencies, 0.50).as_secs_f64() * 1e3,
            )
            .num(
                "ingest_p95_ms",
                percentile(&run.latencies, 0.95).as_secs_f64() * 1e3,
            )
            .int(
                "wire_rx_bytes",
                run.telemetry
                    .counter(&format!("cluster.wire.p{client_p}.rx_bytes")),
            )
            .int(
                "wire_tx_bytes",
                run.telemetry
                    .counter(&format!("cluster.wire.p{client_p}.tx_bytes")),
            )
            .int("migrations", run.telemetry.counter("cluster.migrations"))
            .int("migrate_p50_us", migrate_us.quantile(0.50))
            .num("migrate_mean_bytes", migrate_bytes.mean())
            .int("relays", run.telemetry.counter("cluster.relays"))
            .num("total_j", run.telemetry.gauge("serve.total_j"))
            // Zero in the scaling runs (no shadowing, nothing dies);
            // the chaos drill's numbers live in the `chaos` object.
            .int("failovers", run.telemetry.counter("cluster.failovers"))
            .int(
                "failover_p50_us",
                run.telemetry
                    .histogram("cluster.failover_us")
                    .quantile(0.50),
            )
            .num("max_shadow_lag", run.telemetry.gauge("cluster.shadow_lag"));
        j.render()
    });
    let chaos_json = {
        let mut j = Json::new();
        j.int("sessions", chaos.sessions as u64)
            .int("finished", chaos.finished as u64)
            .int("failovers", chaos.failovers)
            .int("failover_p50_us", chaos.failover_p50_us)
            .num("max_shadow_lag", chaos.max_shadow_lag)
            .int("alerts_fired", chaos.alerts_fired)
            .int("subscribe_drops", chaos.subscribe_drops)
            .int("postmortem_events", chaos.postmortem_events)
            .int("lost_samples", chaos.lost_samples)
            .int("trace_nodes", chaos.trace_nodes);
        j.render()
    };
    let wire_json = {
        let mut j = Json::new();
        j.int("p1_payload_bytes", wire_p1.payload_bytes)
            .int("p2_payload_bytes", wire_p2.payload_bytes)
            .num(
                "payload_ratio",
                wire_p1.payload_bytes as f64 / wire_p2.payload_bytes.max(1) as f64,
            )
            .int("p1_wire_bytes", wire_p1.wire_bytes)
            .int("p2_wire_bytes", wire_p2.wire_bytes)
            .num(
                "wire_ratio",
                wire_p1.wire_bytes as f64 / wire_p2.wire_bytes.max(1) as f64,
            );
        j.render()
    };
    let mut bench = Json::new();
    bench
        .str("experiment", "cluster")
        .int("proto", u64::from(client_proto()))
        .raw("runs", json_array(run_objects))
        .raw("chaos", chaos_json)
        .raw("wire", wire_json);
    // Where did the wall time go, cluster-wide: the merged telemetry of
    // the largest scaling run carries every shard's phase histograms.
    if let Some(last) = runs.last() {
        bench.raw("latency_breakdown", latency_breakdown(&last.telemetry));
    }
    let _ = write_bench_json("cluster", &bench);
    out
}

/// Runs the standard-profile experiment.
pub fn run(scale: &HarnessScale) -> String {
    run_profile(scale, Profile::Standard)
}

/// Runs the smoke-profile experiment (the `run_all` entry point — the
/// full-scale cluster run is a standalone binary concern).
pub fn run_smoke(scale: &HarnessScale) -> String {
    run_profile(scale, Profile::Smoke)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_reports_one_vs_two_shards_and_migrations() {
        let scale = HarnessScale {
            samples_per_task: 8,
            ..Default::default()
        };
        let out = run_profile(&scale, Profile::Smoke);
        assert!(out.contains("=== Cluster"), "missing table:\n{out}");
        assert!(
            out.contains("1 shard(s)") && out.contains("2 shard(s)"),
            "aggregate must compare 1 vs 2 shards:\n{out}"
        );
        assert!(out.contains("samples/s"));
        assert!(
            out.contains("live migration"),
            "migration drill must be reported:\n{out}"
        );
        assert!(
            out.contains("chaos — shard killed mid-stream"),
            "chaos drill must be reported:\n{out}"
        );
        assert!(
            out.contains("failover(s)"),
            "chaos drill must report failovers:\n{out}"
        );
        assert!(
            out.contains("SLO alert(s) fired"),
            "chaos drill must report the streamed SLO alerts:\n{out}"
        );
        assert!(
            out.contains("POSTMORTEM_cluster.journal"),
            "chaos drill must dump the post-mortem artifact:\n{out}"
        );
        assert!(
            out.contains("incident cluster-trace:"),
            "chaos drill must assemble the incident trace:\n{out}"
        );
        assert!(
            out.contains("wire — relay payload bytes"),
            "the dual-proto wire comparison must be reported:\n{out}"
        );
    }
}
