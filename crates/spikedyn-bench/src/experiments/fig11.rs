//! Fig. 11 — energy consumption normalised to the baseline, across the
//! three GPUs, both network sizes and both phases (§V-B).
//!
//! Paper: for N200, SpikeDyn cuts energy vs ASP by up to 59 % (avg 57 %)
//! training and up to 54 % (avg 51 %) inference; for N400, up to 66 %
//! (avg 51 %) training and up to 54 % (avg 37 %) inference. Training
//! savings come from eliminating the inhibitory neurons, the spurious
//! updates and the exponential calculations; inference savings mainly
//! from eliminating the inhibitory neurons.

use neuro_energy::all_gpus;
use spikedyn::Method;

use crate::experiments::meter_method;
use crate::output::{ratio, Table};
use crate::scale::HarnessScale;

/// Runs the experiment and returns the rendered report.
pub fn run(scale: &HarnessScale) -> String {
    let mut out = String::new();
    let mut table = Table::new(
        "Fig. 11: energy normalised to Baseline",
        &[
            "gpu",
            "size",
            "phase",
            "Baseline",
            "ASP",
            "SpikeDyn",
            "SpikeDyn vs ASP",
        ],
    );
    let mut spikedyn_vs_asp_train = Vec::new();
    let mut spikedyn_vs_asp_infer = Vec::new();
    for (label, n_exc) in scale.sizes() {
        // Op counts are GPU-independent; meter once per (method, size).
        let metered: Vec<_> = Method::all()
            .iter()
            .map(|&m| (m, meter_method(m, n_exc, scale)))
            .collect();
        for gpu in all_gpus() {
            for (phase, pick) in [("training", 0usize), ("inference", 1usize)] {
                let energies: Vec<f64> = metered
                    .iter()
                    .map(|(_, (t, i))| {
                        let ops = if pick == 0 { t } else { i };
                        gpu.energy_j(ops)
                    })
                    .collect();
                let base = energies[0];
                let asp = energies[1] / base;
                let sd = energies[2] / base;
                let saving = 1.0 - energies[2] / energies[1];
                if phase == "training" {
                    spikedyn_vs_asp_train.push(saving);
                } else {
                    spikedyn_vs_asp_infer.push(saving);
                }
                table.row(&[
                    gpu.name.clone(),
                    label.into(),
                    phase.into(),
                    "1.00".into(),
                    ratio(asp),
                    ratio(sd),
                    format!("-{:.0}%", saving * 100.0),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64 * 100.0;
    out.push_str(&format!(
        "SpikeDyn vs ASP savings: training avg {:.0}% (paper avg 51-57%), inference avg {:.0}% (paper avg 37-51%)\n",
        avg(&spikedyn_vs_asp_train),
        avg(&spikedyn_vs_asp_infer)
    ));
    let _ = table.write_csv("fig11_energy");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spikedyn_always_cheapest() {
        let scale = HarnessScale {
            samples_per_task: 3,
            n_small: 20,
            n_large: 30,
            eval_per_class: 2,
            assign_per_class: 2,
            ..Default::default()
        };
        let report = run(&scale);
        assert!(report.contains("Fig. 11"));
        // Every SpikeDyn-vs-ASP cell must be a saving (negative sign in
        // the rendered column).
        for line in report
            .lines()
            .filter(|l| l.contains("training") || l.contains("inference"))
        {
            assert!(line.contains("-"), "expected a saving in: {line}");
        }
    }
}
