//! # spikedyn-bench — the experiment harness
//!
//! One module (and one binary) per table and figure of the paper's
//! evaluation. Every experiment prints the paper's reported numbers next
//! to the values measured by this reproduction and writes a CSV under
//! `target/experiments/`.
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Fig. 1(b,c) motivational study | [`experiments::fig01`] | `fig01_motivation` |
//! | Fig. 4(b–d) architecture reduction | [`experiments::fig04`] | `fig04_arch` |
//! | Fig. 5(a–e) analytical-model validation | [`experiments::fig05`] | `fig05_estimation` |
//! | Fig. 6 wdecay/θ sweep | [`experiments::fig06`] | `fig06_sweep` |
//! | Fig. 9 accuracy (dynamic + non-dynamic) | [`experiments::fig09`] | `fig09_accuracy` |
//! | Fig. 10 confusion matrices | [`experiments::fig10`] | `fig10_confusion` |
//! | Fig. 11 energy across GPUs | [`experiments::fig11`] | `fig11_energy` |
//! | Table I GPU specs | [`experiments::table01`] | `table01_gpus` |
//! | Table II processing time | [`experiments::table02`] | `table02_time` |
//! | Ablations (design choices) | [`experiments::ablations`] | `ablations` |
//! | Online drift scenarios (beyond the paper) | [`experiments::online`] | `online` (`--fast` for the smoke profile) |
//! | Multi-session serving load (beyond the paper) | [`experiments::serve`] | `serve` (`--fast` for the smoke profile) |
//!
//! `run_all` executes everything in sequence (the serve entry at its
//! smoke profile).
//!
//! ## Scale
//!
//! The paper trains on full MNIST (6000 samples/task, N200/N400, 350 ms
//! presentations) for GPU-hours per run. The harness defaults to the
//! *fast profile*: 14×14 synthetic digits, 100 ms presentations, 40
//! samples per task, with every method's time constants rescaled by the
//! temporal-compression factor (see `DESIGN.md` §2). Pass `--spt <n>` to
//! change the per-task sample count and `--seed <s>` for a different
//! replication.

#![warn(missing_docs)]

pub mod experiments;
pub mod output;
pub mod scale;

pub use output::{write_csv, Table};
pub use scale::HarnessScale;
