//! GPU device models (paper Table I) with calibrated cost constants.
//!
//! ## Calibration
//!
//! The paper's Table II reports SpikeDyn wall-clock on full MNIST: e.g.
//! training takes 35.0 h (N200) / 36.3 h (N400) on the Jetson Nano and
//! 5.0 h / 5.3 h on the GTX 1080 Ti. With 60 k samples × 1000 steps
//! (0.5 ms steps over 350 ms + 150 ms), that is 2.10/2.18 ms per step on
//! the Jetson and 0.30/0.32 ms on the 1080 Ti — nearly independent of
//! network size, the signature of a **launch-bound** regime. The weak size
//! dependence (the N200→N400 delta) pins the elementwise throughput, and
//! the intercept pins the per-kernel latency. [`GpuSpec::calibrate`] solves
//! exactly that 2×2 system; the shipped constants were produced by it
//! using this reproduction's measured kernel/element counts per step.
//!
//! Average power during the runs is set so the absolute training energies
//! land near the paper's Fig. 5b (~850 kJ for full-MNIST training on the
//! 1080 Ti): `48 W × 5.3 h ≈ 916 kJ`.

use serde::{Deserialize, Serialize};
use snn_core::ops::OpCounts;

/// One GPU device model: Table I specification plus cost constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"GTX 1080 Ti"`.
    pub name: String,
    /// Microarchitecture (Table I: Maxwell / Pascal / Turing).
    pub architecture: String,
    /// CUDA core count (Table I).
    pub cuda_cores: u32,
    /// Device memory in GiB (Table I).
    pub memory_gib: f32,
    /// Memory technology (Table I).
    pub memory_type: String,
    /// Memory interface width in bits (Table I).
    pub interface_bits: u32,
    /// Board power in watts (Table I).
    pub tdp_w: f32,
    /// Calibrated: latency per tensor-kernel launch, in microseconds.
    pub kernel_latency_us: f64,
    /// Calibrated: effective elementwise throughput in operations/second
    /// (far below peak FLOPS — these are tiny unfused elementwise kernels).
    pub elem_throughput_ops: f64,
    /// Calibrated: average board power draw during SNN simulation, watts.
    /// Far below TDP because the device idles between launches.
    pub avg_power_w: f64,
}

impl GpuSpec {
    /// The NVIDIA Jetson Nano embedded GPU (Table I column 1).
    pub fn jetson_nano() -> Self {
        GpuSpec {
            name: "Jetson Nano".into(),
            architecture: "Maxwell".into(),
            cuda_cores: 128,
            memory_gib: 4.0,
            memory_type: "LPDDR4".into(),
            interface_bits: 64,
            tdp_w: 10.0,
            kernel_latency_us: 192.0,
            elem_throughput_ops: 2.0e9,
            avg_power_w: 4.8,
        }
    }

    /// The NVIDIA GTX 1080 Ti GPGPU (Table I column 2).
    pub fn gtx_1080_ti() -> Self {
        GpuSpec {
            name: "GTX 1080 Ti".into(),
            architecture: "Pascal".into(),
            cuda_cores: 3584,
            memory_gib: 11.0,
            memory_type: "GDDR5X".into(),
            interface_bits: 352,
            tdp_w: 250.0,
            kernel_latency_us: 27.5,
            elem_throughput_ops: 8.7e9,
            avg_power_w: 48.0,
        }
    }

    /// The NVIDIA RTX 2080 Ti GPGPU (Table I column 3).
    pub fn rtx_2080_ti() -> Self {
        GpuSpec {
            name: "RTX 2080 Ti".into(),
            architecture: "Turing".into(),
            cuda_cores: 4352,
            memory_gib: 11.0,
            memory_type: "GDDR6".into(),
            interface_bits: 352,
            tdp_w: 250.0,
            kernel_latency_us: 21.5,
            elem_throughput_ops: 1.3e10,
            avg_power_w: 55.0,
        }
    }

    /// Wall-clock seconds to execute the metered workload on this device:
    /// `kernels · t_kernel + element_ops / throughput`.
    pub fn time_s(&self, ops: &OpCounts) -> f64 {
        ops.kernel_launches as f64 * self.kernel_latency_us * 1e-6
            + ops.total() as f64 / self.elem_throughput_ops
    }

    /// Energy in joules: average power × modelled time.
    pub fn energy_j(&self, ops: &OpCounts) -> f64 {
        self.avg_power_w * self.time_s(ops)
    }

    /// Re-derives `(kernel_latency_us, elem_throughput_ops)` from two
    /// reference wall-clock measurements of workloads with different
    /// kernel/element mixes (e.g. Table II's N200 and N400 rows), solving
    ///
    /// ```text
    /// t_a = k_a · L + e_a / T
    /// t_b = k_b · L + e_b / T
    /// ```
    ///
    /// Returns `None` when the system is singular (proportional workloads)
    /// or produces non-positive constants.
    pub fn calibrate(a: (&OpCounts, f64), b: (&OpCounts, f64)) -> Option<(f64, f64)> {
        let (ops_a, t_a) = a;
        let (ops_b, t_b) = b;
        let (ka, ea) = (ops_a.kernel_launches as f64, ops_a.total() as f64);
        let (kb, eb) = (ops_b.kernel_launches as f64, ops_b.total() as f64);
        let det = ka * eb - kb * ea;
        if det.abs() < f64::EPSILON {
            return None;
        }
        // Solve for L (s/kernel) and inv_t (s/elem).
        let latency_s = (t_a * eb - t_b * ea) / det;
        let inv_t = (ka * t_b - kb * t_a) / det;
        if latency_s <= 0.0 || inv_t <= 0.0 {
            return None;
        }
        Some((latency_s * 1e6, 1.0 / inv_t))
    }

    /// Applies calibration constants produced by [`GpuSpec::calibrate`].
    pub fn with_calibration(mut self, kernel_latency_us: f64, elem_throughput_ops: f64) -> Self {
        self.kernel_latency_us = kernel_latency_us;
        self.elem_throughput_ops = elem_throughput_ops;
        self
    }
}

/// The three devices of the paper's Table I, embedded GPU first.
pub fn all_gpus() -> Vec<GpuSpec> {
    vec![
        GpuSpec::jetson_nano(),
        GpuSpec::gtx_1080_ti(),
        GpuSpec::rtx_2080_ti(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(kernels: u64, elems: u64) -> OpCounts {
        OpCounts {
            kernel_launches: kernels,
            neuron_updates: elems,
            ..Default::default()
        }
    }

    #[test]
    fn table1_specs_match_paper() {
        let jetson = GpuSpec::jetson_nano();
        assert_eq!(jetson.cuda_cores, 128);
        assert_eq!(jetson.interface_bits, 64);
        assert_eq!(jetson.tdp_w, 10.0);
        let gtx = GpuSpec::gtx_1080_ti();
        assert_eq!(gtx.cuda_cores, 3584);
        assert_eq!(gtx.memory_type, "GDDR5X");
        let rtx = GpuSpec::rtx_2080_ti();
        assert_eq!(rtx.cuda_cores, 4352);
        assert_eq!(rtx.tdp_w, 250.0);
        assert_eq!(all_gpus().len(), 3);
    }

    #[test]
    fn embedded_gpu_is_slower_but_lower_power() {
        let ops = workload(1000, 1_000_000);
        let jetson = GpuSpec::jetson_nano();
        let gtx = GpuSpec::gtx_1080_ti();
        assert!(jetson.time_s(&ops) > gtx.time_s(&ops));
        assert!(jetson.avg_power_w < gtx.avg_power_w);
    }

    #[test]
    fn time_is_monotone_in_both_terms() {
        let g = GpuSpec::gtx_1080_ti();
        let base = g.time_s(&workload(100, 1000));
        assert!(g.time_s(&workload(200, 1000)) > base);
        assert!(g.time_s(&workload(100, 2_000_000_000)) > base);
    }

    #[test]
    fn energy_scales_with_time() {
        let g = GpuSpec::rtx_2080_ti();
        let a = workload(100, 0);
        let b = workload(200, 0);
        let ratio = g.energy_j(&b) / g.energy_j(&a);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_recovers_constants() {
        let g = GpuSpec::gtx_1080_ti();
        let a = workload(1_000_000, 2_000_000_000);
        let b = workload(1_100_000, 4_000_000_000);
        let (lat, tput) =
            GpuSpec::calibrate((&a, g.time_s(&a)), (&b, g.time_s(&b))).expect("solvable");
        assert!((lat - g.kernel_latency_us).abs() / g.kernel_latency_us < 1e-6);
        assert!((tput - g.elem_throughput_ops).abs() / g.elem_throughput_ops < 1e-6);
    }

    #[test]
    fn calibration_rejects_singular_system() {
        let a = workload(100, 1000);
        let b = workload(200, 2000); // proportional → singular
        assert!(GpuSpec::calibrate((&a, 1.0), (&b, 2.0)).is_none());
    }

    #[test]
    fn jetson_step_time_in_table2_ballpark() {
        // A SpikeDyn training step is ~12 kernels and ~170k element ops at
        // N200 (measured by the simulator); Table II implies ~2.1 ms/step.
        let jetson = GpuSpec::jetson_nano();
        let step = workload(12, 170_000);
        let t_ms = jetson.time_s(&step) * 1e3;
        assert!(
            (1.5..3.0).contains(&t_ms),
            "Jetson step time {t_ms:.2} ms should be near Table II's ~2.1 ms"
        );
    }
}
