//! Processing-time prediction (paper Table II).
//!
//! Table II reports SpikeDyn's wall-clock on the full MNIST dataset —
//! training (60 k samples) and inference (10 k samples) in hours, plus the
//! latency of a single-image inference — for each GPU and network size.
//! [`ProcessingTime`] reproduces those rows from metered per-sample
//! workloads priced on a [`GpuSpec`].

use serde::{Deserialize, Serialize};
use snn_core::ops::OpCounts;

use crate::gpu::GpuSpec;

/// Predicted processing times for one (GPU, network size) cell of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessingTime {
    /// Full training-set wall-clock in hours.
    pub train_h: f64,
    /// Full test-set inference wall-clock in hours.
    pub infer_h: f64,
    /// Single-image inference latency in seconds.
    pub per_image_s: f64,
}

impl ProcessingTime {
    /// Builds the prediction from metered per-sample workloads.
    ///
    /// * `train_sample_ops` — ops of one training sample (with plasticity),
    /// * `infer_sample_ops` — ops of one inference sample,
    /// * `n_train` / `n_test` — dataset sizes (60 000 / 10 000 for MNIST).
    pub fn from_samples(
        gpu: &GpuSpec,
        train_sample_ops: &OpCounts,
        infer_sample_ops: &OpCounts,
        n_train: u64,
        n_test: u64,
    ) -> Self {
        let t_train = gpu.time_s(train_sample_ops) * n_train as f64;
        let per_image = gpu.time_s(infer_sample_ops);
        ProcessingTime {
            train_h: t_train / 3600.0,
            infer_h: per_image * n_test as f64 / 3600.0,
            per_image_s: per_image,
        }
    }
}

/// The paper's Table II reference values for SpikeDyn on full MNIST,
/// used by the harness to print paper-vs-measured comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Reference {
    /// GPU column name.
    pub gpu: &'static str,
    /// Network size (number of excitatory neurons).
    pub n_exc: usize,
    /// Training hours reported by the paper.
    pub train_h: f64,
    /// Inference hours reported by the paper.
    pub infer_h: f64,
    /// Per-image inference seconds reported by the paper.
    pub per_image_s: f64,
}

/// All twelve cells of Table II.
pub fn table2_reference() -> Vec<Table2Reference> {
    vec![
        Table2Reference {
            gpu: "Jetson Nano",
            n_exc: 200,
            train_h: 35.0,
            infer_h: 4.7,
            per_image_s: 1.71,
        },
        Table2Reference {
            gpu: "Jetson Nano",
            n_exc: 400,
            train_h: 36.3,
            infer_h: 4.8,
            per_image_s: 1.74,
        },
        Table2Reference {
            gpu: "GTX 1080 Ti",
            n_exc: 200,
            train_h: 5.0,
            infer_h: 0.7,
            per_image_s: 0.25,
        },
        Table2Reference {
            gpu: "GTX 1080 Ti",
            n_exc: 400,
            train_h: 5.3,
            infer_h: 0.7,
            per_image_s: 0.25,
        },
        Table2Reference {
            gpu: "RTX 2080 Ti",
            n_exc: 200,
            train_h: 3.9,
            infer_h: 0.6,
            per_image_s: 0.2,
        },
        Table2Reference {
            gpu: "RTX 2080 Ti",
            n_exc: 400,
            train_h: 4.1,
            infer_h: 0.6,
            per_image_s: 0.2,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A per-sample workload resembling SpikeDyn training at N200:
    /// 1000 steps × (~12 kernels, ~170k element ops).
    fn spikedyn_train_sample(n_exc: u64) -> OpCounts {
        let per_step_elems = 784 * n_exc / 4 * 2 + 3000; // decay-dominated
        OpCounts {
            kernel_launches: 12_000,
            weight_updates: per_step_elems * 1000,
            ..Default::default()
        }
    }

    fn spikedyn_infer_sample(n_exc: u64) -> OpCounts {
        OpCounts {
            kernel_launches: 9_000,
            neuron_updates: n_exc * 1000,
            ..Default::default()
        }
    }

    #[test]
    fn jetson_training_lands_near_table2() {
        let gpu = GpuSpec::jetson_nano();
        let t = ProcessingTime::from_samples(
            &gpu,
            &spikedyn_train_sample(200),
            &spikedyn_infer_sample(200),
            60_000,
            10_000,
        );
        // Table II: 35.0 h. The shape claim: same order, tens of hours.
        assert!(
            (20.0..60.0).contains(&t.train_h),
            "Jetson training {:.1} h should be tens of hours",
            t.train_h
        );
    }

    #[test]
    fn gpgpu_is_roughly_seven_times_faster_than_jetson() {
        let train = spikedyn_train_sample(200);
        let infer = spikedyn_infer_sample(200);
        let jetson =
            ProcessingTime::from_samples(&GpuSpec::jetson_nano(), &train, &infer, 60_000, 10_000);
        let gtx =
            ProcessingTime::from_samples(&GpuSpec::gtx_1080_ti(), &train, &infer, 60_000, 10_000);
        let ratio = jetson.train_h / gtx.train_h;
        // Table II: 35.0 / 5.0 = 7.0.
        assert!(
            (4.0..12.0).contains(&ratio),
            "Jetson/GTX training ratio {ratio:.1} should be near 7"
        );
    }

    #[test]
    fn n400_only_slightly_slower_than_n200() {
        // Table II: 35.0 → 36.3 h (+3.7 %) — launch-bound, barely
        // size-dependent.
        let gpu = GpuSpec::jetson_nano();
        let t200 = ProcessingTime::from_samples(
            &gpu,
            &spikedyn_train_sample(200),
            &spikedyn_infer_sample(200),
            60_000,
            10_000,
        );
        let t400 = ProcessingTime::from_samples(
            &gpu,
            &spikedyn_train_sample(400),
            &spikedyn_infer_sample(400),
            60_000,
            10_000,
        );
        let growth = t400.train_h / t200.train_h;
        assert!(
            (1.0..1.25).contains(&growth),
            "N200→N400 growth {growth:.3} should be small"
        );
    }

    #[test]
    fn reference_table_is_complete() {
        let refs = table2_reference();
        assert_eq!(refs.len(), 6);
        assert!(refs
            .iter()
            .any(|r| r.gpu == "Jetson Nano" && r.n_exc == 200 && r.train_h == 35.0));
        // Monotonicity in the paper's own numbers: faster GPU, less time.
        let jet = refs
            .iter()
            .find(|r| r.gpu == "Jetson Nano" && r.n_exc == 400)
            .unwrap();
        let rtx = refs
            .iter()
            .find(|r| r.gpu == "RTX 2080 Ti" && r.n_exc == 400)
            .unwrap();
        assert!(jet.train_h > rtx.train_h);
    }

    #[test]
    fn inference_hours_consistent_with_per_image() {
        let gpu = GpuSpec::rtx_2080_ti();
        let t = ProcessingTime::from_samples(
            &gpu,
            &spikedyn_train_sample(200),
            &spikedyn_infer_sample(200),
            60_000,
            10_000,
        );
        assert!((t.infer_h - t.per_image_s * 10_000.0 / 3600.0).abs() < 1e-9);
    }
}
