//! # neuro-energy — device models and analytical cost estimation
//!
//! The SpikeDyn paper estimates memory as `mem = (Pw + Pn) · BP` and energy
//! as `E = E1 · N` (§III-C), where `E1` comes from GPU power measurement on
//! three NVIDIA devices (Table I). Real GPUs are not available here, so
//! this crate supplies the measurement side analytically:
//!
//! * [`gpu`] — device models of the paper's three GPUs with calibrated
//!   per-kernel latency, elementwise throughput and average power draw.
//!   The SNN workloads at issue run thousands of *tiny* tensor kernels per
//!   second (≤ ~314k elements), a regime where kernel-launch overhead
//!   dominates wall-clock; the model is therefore
//!   `time = kernels · t_kernel + elems / throughput` and
//!   `energy = P_avg · time`, with constants calibrated against the
//!   paper's Table II (see `DESIGN.md` §2 for the substitution argument).
//! * [`memory`] — the `(Pw + Pn) · BP` analytical memory model and its
//!   validation against actually allocated simulator state (Fig. 5a).
//! * [`energy`] — the `E = E1 · N` single-sample-extrapolation model and
//!   its validation against full runs (Figs. 5b–5c).
//! * [`time`] — processing-time prediction reproducing Table II.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod energy;
pub mod gpu;
pub mod memory;
pub mod time;

pub use energy::{relative_error, EnergyEstimate};
pub use gpu::{all_gpus, GpuSpec};
pub use memory::{analytical_memory_bytes, BitPrecision, MemoryEstimate};
pub use time::ProcessingTime;
