//! The paper's analytical memory model (§III-C):
//! `mem = (Pw + Pn) · BP`, where `Pw` is the number of weights, `Pn` the
//! number of neuron parameters, and `BP` the bit precision.
//!
//! Fig. 5a validates the model against "actual runs" with < 5 % error; the
//! reproduction's equivalent of an actual run is the byte count of the
//! buffers the simulator really allocates
//! ([`snn_core::network::Snn::actual_memory_bytes`]), which additionally
//! includes trace vectors and learning-rule state — hence a small,
//! bounded, architecture-dependent error, exactly as in the paper.

use serde::{Deserialize, Serialize};

/// Numeric precision used to store parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitPrecision {
    bits: u32,
}

impl BitPrecision {
    /// Standard IEEE-754 single precision (the paper's BindsNET default).
    pub const FP32: BitPrecision = BitPrecision { bits: 32 };
    /// Half precision.
    pub const FP16: BitPrecision = BitPrecision { bits: 16 };
    /// 8-bit fixed point (the paper's framework targets quantised
    /// deployments; FSpiNN, the authors' companion work, uses this).
    pub const FIXED8: BitPrecision = BitPrecision { bits: 8 };

    /// Creates an arbitrary precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or not a multiple of 8.
    pub fn new(bits: u32) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(8),
            "bit precision must be a positive multiple of 8"
        );
        BitPrecision { bits }
    }

    /// Width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Width in bytes.
    pub fn bytes(&self) -> usize {
        (self.bits / 8) as usize
    }
}

impl Default for BitPrecision {
    fn default() -> Self {
        BitPrecision::FP32
    }
}

/// The analytical model: `mem = (Pw + Pn) · BP` in bytes.
pub fn analytical_memory_bytes(pw: usize, pn: usize, bp: BitPrecision) -> usize {
    (pw + pn) * bp.bytes()
}

/// An analytical estimate paired with the measured ("actual run") value,
/// as compared in the paper's Fig. 5a.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// `(Pw + Pn) · BP` in bytes.
    pub analytical_bytes: usize,
    /// Bytes the simulator actually allocates for the model state.
    pub actual_bytes: usize,
}

impl MemoryEstimate {
    /// Relative error of the analytical model against the actual value,
    /// `|analytical - actual| / actual`. The paper claims < 5 %.
    pub fn relative_error(&self) -> f64 {
        if self.actual_bytes == 0 {
            return 0.0;
        }
        (self.analytical_bytes as f64 - self.actual_bytes as f64).abs() / self.actual_bytes as f64
    }

    /// Analytical estimate in kilobytes (Fig. 5a's unit).
    pub fn analytical_kb(&self) -> f64 {
        self.analytical_bytes as f64 / 1024.0
    }

    /// Actual value in kilobytes.
    pub fn actual_kb(&self) -> f64 {
        self.actual_bytes as f64 / 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_constants() {
        assert_eq!(BitPrecision::FP32.bytes(), 4);
        assert_eq!(BitPrecision::FP16.bytes(), 2);
        assert_eq!(BitPrecision::FIXED8.bytes(), 1);
        assert_eq!(BitPrecision::default(), BitPrecision::FP32);
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn odd_precision_rejected() {
        let _ = BitPrecision::new(12);
    }

    #[test]
    fn analytical_formula() {
        // N400 on 784 inputs with direct lateral inhibition:
        // Pw = 784·400 + 1, Pn = 400·5.
        let pw = 784 * 400 + 1;
        let pn = 400 * 5;
        let bytes = analytical_memory_bytes(pw, pn, BitPrecision::FP32);
        assert_eq!(bytes, (pw + pn) * 4);
        // ~1.2 MiB, the order of magnitude in Fig. 4b / Fig. 5a.
        assert!((1_000_000..2_000_000).contains(&bytes));
    }

    #[test]
    fn quantisation_shrinks_memory_proportionally() {
        let a = analytical_memory_bytes(1000, 100, BitPrecision::FP32);
        let b = analytical_memory_bytes(1000, 100, BitPrecision::FIXED8);
        assert_eq!(a, b * 4);
    }

    #[test]
    fn relative_error_behaves() {
        let e = MemoryEstimate {
            analytical_bytes: 95,
            actual_bytes: 100,
        };
        assert!((e.relative_error() - 0.05).abs() < 1e-12);
        let exact = MemoryEstimate {
            analytical_bytes: 100,
            actual_bytes: 100,
        };
        assert_eq!(exact.relative_error(), 0.0);
        let empty = MemoryEstimate {
            analytical_bytes: 5,
            actual_bytes: 0,
        };
        assert_eq!(empty.relative_error(), 0.0);
    }

    #[test]
    fn kb_conversions() {
        let e = MemoryEstimate {
            analytical_bytes: 2048,
            actual_bytes: 1024,
        };
        assert!((e.analytical_kb() - 2.0).abs() < 1e-12);
        assert!((e.actual_kb() - 1.0).abs() < 1e-12);
    }
}
