//! The paper's analytical energy model (§III-C): `E = E1 · N`.
//!
//! `E1` is the energy to process a single sample — obtained here by
//! metering a one-sample simulation and pricing it on a [`crate::GpuSpec`]
//! — and `N` is the number of samples the deployment will process. The
//! paper validates the extrapolation against full runs in Figs. 5b–5c
//! (< 5 % error) and uses it inside the model search (Alg. 1) to avoid
//! running full training for every candidate.

use serde::{Deserialize, Serialize};
use snn_core::ops::OpCounts;

use crate::gpu::GpuSpec;

/// An `E = E1 · N` extrapolation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// Energy of one sample in joules.
    pub e1_j: f64,
    /// Number of samples to extrapolate to.
    pub n_samples: u64,
}

impl EnergyEstimate {
    /// Prices a metered single-sample workload on `gpu` and records the
    /// sample count for extrapolation.
    pub fn from_single_sample(gpu: &GpuSpec, sample_ops: &OpCounts, n_samples: u64) -> Self {
        EnergyEstimate {
            e1_j: gpu.energy_j(sample_ops),
            n_samples,
        }
    }

    /// Total energy `E = E1 · N` in joules.
    pub fn total_j(&self) -> f64 {
        self.e1_j * self.n_samples as f64
    }

    /// Total energy in kilojoules (the unit of Figs. 5b–5c).
    pub fn total_kj(&self) -> f64 {
        self.total_j() / 1e3
    }
}

/// Relative error `|estimate - actual| / actual`, the paper's validation
/// metric for Figs. 5a–5c (claimed < 5 %). Returns 0 for a zero actual.
pub fn relative_error(estimate: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return 0.0;
    }
    (estimate - actual).abs() / actual.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> OpCounts {
        OpCounts {
            kernel_launches: 10_000,
            neuron_updates: 500_000,
            decay_mults: 1_000_000,
            ..Default::default()
        }
    }

    #[test]
    fn extrapolation_is_linear() {
        let gpu = GpuSpec::gtx_1080_ti();
        let e = EnergyEstimate::from_single_sample(&gpu, &sample_ops(), 60_000);
        assert!(e.e1_j > 0.0);
        assert!((e.total_j() - e.e1_j * 60_000.0).abs() < 1e-9);
        assert!((e.total_kj() - e.total_j() / 1e3).abs() < 1e-12);
    }

    #[test]
    fn estimate_tracks_actual_when_samples_are_iid() {
        // If every sample costs the same, E1·N is exact — the residual in
        // practice comes from per-sample variation, which Fig. 5 bounds.
        let gpu = GpuSpec::jetson_nano();
        let one = sample_ops();
        let full = one.scaled(100);
        let est = EnergyEstimate::from_single_sample(&gpu, &one, 100);
        let actual = gpu.energy_j(&full);
        assert!(relative_error(est.total_j(), actual) < 1e-9);
    }

    #[test]
    fn relative_error_metric() {
        assert!((relative_error(95.0, 100.0) - 0.05).abs() < 1e-12);
        assert!((relative_error(105.0, 100.0) - 0.05).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 0.0), 0.0);
    }

    #[test]
    fn bigger_gpu_constant_higher_power() {
        let one = sample_ops();
        let jetson = EnergyEstimate::from_single_sample(&GpuSpec::jetson_nano(), &one, 1);
        let rtx = EnergyEstimate::from_single_sample(&GpuSpec::rtx_2080_ti(), &one, 1);
        // The Jetson takes far longer per kernel; despite ~11× lower power
        // its per-sample energy for a launch-bound workload is comparable
        // or higher — the embedded-deployment trade-off the paper discusses.
        assert!(jetson.e1_j > 0.0 && rtx.e1_j > 0.0);
    }
}
