//! A minimal blocking client for the serve protocol.
//!
//! [`ServeClient`] wraps one TCP connection: each call writes a request
//! line, blocks for the one response line, and lifts it into typed Rust
//! values (or [`ClientError::Server`] carrying the wire error code). The
//! experiment load generator, the integration tests and external tools
//! all speak through this type, so the protocol has exactly one
//! client-side encoder/decoder.
//!
//! The negotiated transport is invisible above [`ServeClient::call_raw`]:
//! proto 1 writes LF-terminated lines, proto 2
//! ([`ServeClient::connect_with_proto`]) rides a multiplexed binary
//! connection ([`crate::mux::MuxClient`]) — same requests, same typed
//! results, roughly half the wire bytes for payload-heavy verbs.

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{mpsc, Arc};

use snn_data::Image;
use snn_online::EnergyReport;

use crate::frame::Frame;
use crate::mux::MuxClient;
use crate::protocol::{
    decode_predictions, format_request, hex_decode, parse_response, tokenize, ProtocolError,
    Request, Response, SessionSpec, MAX_LINE_BYTES, PROTO_V2, PROTO_VERSION,
};
use crate::session::ServerStats;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(io::Error),
    /// The response line failed to parse.
    Protocol(ProtocolError),
    /// The server answered `err code=… msg=…`.
    Server {
        /// Machine-readable error code (see [`crate::ServeError::code`]).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
    /// The response was `ok` but missing or corrupting an expected field.
    Malformed(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, msg } => write!(f, "server error [{code}]: {msg}"),
            ClientError::Malformed(what) => write!(f, "malformed ok response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl ClientError {
    /// The wire error code, when this is a server-side rejection.
    pub fn server_code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A session report as carried over the wire (the summary slice of
/// [`snn_online::OnlineReport`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireReport {
    /// Stream samples the session has consumed.
    pub samples: u64,
    /// Windowed prequential accuracy.
    pub accuracy: f64,
    /// Mean forgetting over established tasks.
    pub forgetting: f64,
    /// Drift events raised so far.
    pub drift_events: u64,
    /// Mean excitatory spikes per sample over the window.
    pub spikes_per_sample: f64,
}

/// The outcome of one `ingest` request.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestOutcome {
    /// Prequential predictions, one per submitted sample.
    pub predictions: Vec<Option<u8>>,
    /// Drift events raised by this batch.
    pub drift_events: u64,
    /// True while a boosted adaptive response is active.
    pub response_active: bool,
    /// The session's stream position after the batch.
    pub samples_seen: u64,
    /// The session's cumulative modelled joules (train + infer) after
    /// the batch.
    pub total_j: f64,
}

/// The negotiated wire transport under a [`ServeClient`].
#[derive(Debug)]
enum Transport {
    /// Proto 1: one LF-terminated line per request and response.
    Line {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
    /// Proto 2: tagged binary frames over a shared multiplexed socket.
    Mux(Arc<MuxClient>),
}

/// One blocking protocol connection.
#[derive(Debug)]
pub struct ServeClient {
    transport: Transport,
    /// Negotiated protocol generation.
    proto: u32,
    /// Line-transport byte counters (the mux transport keeps its own).
    line_tx: u64,
    line_rx: u64,
}

impl ServeClient {
    /// Connects to a server and performs the `hello proto=…` version
    /// handshake, so an incompatible peer fails fast here instead of
    /// misparsing lines later. Speaks the classic proto 1; use
    /// [`ServeClient::connect_with_proto`] to negotiate binary framing.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a version mismatch arrives as
    /// [`ClientError::Server`] with code `proto-mismatch`.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Self> {
        Self::connect_with_proto(addr, PROTO_VERSION)
    }

    /// Connects and negotiates a specific protocol generation.
    /// [`PROTO_V2`] upgrades the connection to multiplexed binary
    /// framing after the (always line-based) `hello` exchange; a server
    /// that does not speak `proto` answers `proto-mismatch` and no
    /// upgrade happens.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::connect`] does.
    pub fn connect_with_proto(addr: impl ToSocketAddrs, proto: u32) -> ClientResult<Self> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        stream.set_nodelay(true).ok();
        Self::negotiate(stream, proto, None)
    }

    /// Connects without the version handshake (for peers known to skip
    /// `hello`, e.g. pre-versioning tooling). Always the line transport.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_unchecked(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Self::from_stream(stream)
    }

    /// Connects with bounded connect/read/write times (the timeouts
    /// apply to the handshake too, and stay in force for every later
    /// call), then performs the version handshake. A routing tier uses
    /// this so a stalled-but-connected peer cannot hang it forever.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::connect`] does, plus with
    /// [`std::io::ErrorKind::WouldBlock`]/`TimedOut` i/o errors when the
    /// peer exceeds `timeout`.
    pub fn connect_with_timeout(
        addr: std::net::SocketAddr,
        timeout: std::time::Duration,
    ) -> ClientResult<Self> {
        Self::connect_with_proto_timeout(addr, PROTO_VERSION, timeout)
    }

    /// [`ServeClient::connect_with_timeout`] with an explicit protocol
    /// generation (see [`ServeClient::connect_with_proto`]). Under
    /// [`PROTO_V2`] the timeout bounds each call's wait for its tagged
    /// response instead of the raw socket reads.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::connect_with_timeout`] does.
    pub fn connect_with_proto_timeout(
        addr: std::net::SocketAddr,
        proto: u32,
        timeout: std::time::Duration,
    ) -> ClientResult<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout).map_err(ClientError::Io)?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(ClientError::Io)?;
        Self::negotiate(stream, proto, Some(timeout))
    }

    fn from_stream(stream: TcpStream) -> io::Result<Self> {
        Ok(ServeClient {
            transport: Transport::Line {
                reader: BufReader::new(stream.try_clone()?),
                writer: stream,
            },
            proto: PROTO_VERSION,
            line_tx: 0,
            line_rx: 0,
        })
    }

    /// Line-based `hello`, then — when `proto` is [`PROTO_V2`] and the
    /// server agreed — the transport upgrade. Nothing rides the socket
    /// between the banner and the first frame, so no buffered bytes can
    /// be lost in the switch.
    fn negotiate(
        stream: TcpStream,
        proto: u32,
        timeout: Option<std::time::Duration>,
    ) -> ClientResult<Self> {
        let mut client = Self::from_stream(stream).map_err(ClientError::Io)?;
        client.hello_as(proto)?;
        client.proto = proto;
        if proto >= PROTO_V2 {
            let (tx, rx) = (client.line_tx, client.line_rx);
            if let Transport::Line { writer, .. } = client.transport {
                let mux = MuxClient::new(writer, timeout).map_err(ClientError::Io)?;
                client = ServeClient {
                    transport: Transport::Mux(mux),
                    proto,
                    line_tx: tx,
                    line_rx: rx,
                };
            }
        }
        Ok(client)
    }

    /// Bounds every later read and write on this connection (`None`
    /// blocks forever, the default). On a proto 2 connection this bounds
    /// each call's wait for its tagged response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn set_io_timeout(&mut self, timeout: Option<std::time::Duration>) -> ClientResult<()> {
        match &mut self.transport {
            Transport::Line { writer, .. } => {
                writer.set_read_timeout(timeout).map_err(ClientError::Io)?;
                writer.set_write_timeout(timeout).map_err(ClientError::Io)?;
            }
            Transport::Mux(mux) => mux.set_reply_timeout(timeout),
        }
        Ok(())
    }

    /// The negotiated protocol generation.
    pub fn proto(&self) -> u32 {
        self.proto
    }

    /// The underlying multiplexed connection, when proto 2 was
    /// negotiated. The handle is cheap to clone and safe to share — a
    /// routing tier extracts it here and interleaves many callers'
    /// traffic over the one socket.
    pub fn mux(&self) -> Option<Arc<MuxClient>> {
        match &self.transport {
            Transport::Mux(mux) => Some(Arc::clone(mux)),
            Transport::Line { .. } => None,
        }
    }

    /// Total bytes this client has written to / read from the wire,
    /// framing overhead included. The first comparison the proto 2
    /// rollout is judged by, so it lives on the client where both
    /// transports meet.
    pub fn wire_bytes(&self) -> (u64, u64) {
        match &self.transport {
            Transport::Line { .. } => (self.line_tx, self.line_rx),
            Transport::Mux(mux) => {
                let (tx, rx) = mux.wire_bytes();
                (self.line_tx + tx, self.line_rx + rx)
            }
        }
    }

    /// Performs the version handshake; returns the server's protocol
    /// generation (always [`PROTO_VERSION`] on success — mismatches are
    /// rejected by the server, and a server banner this client cannot
    /// read surfaces as [`ClientError::Malformed`]).
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does, plus on a missing or
    /// non-matching `proto` banner field.
    pub fn hello(&mut self) -> ClientResult<u32> {
        self.hello_as(PROTO_VERSION)
    }

    fn hello_as(&mut self, proto: u32) -> ClientResult<u32> {
        let resp = self.call(&Request::Hello { proto })?;
        let got: u32 = field(&resp, "proto")?;
        if got != proto {
            return Err(ClientError::Malformed("proto"));
        }
        Ok(got)
    }

    /// Sends one request and reads the matching response line.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, unparseable responses, or an `err`
    /// response (lifted into [`ClientError::Server`]).
    pub fn call(&mut self, request: &Request) -> ClientResult<Response> {
        let reply = self.call_raw(&format_request(request))?;
        match parse_response(&reply)? {
            Response::Err { code, msg } => Err(ClientError::Server { code, msg }),
            ok => Ok(ok),
        }
    }

    /// Sends one already-formatted request line and returns the raw
    /// response line (trailing newline stripped, `err` lines included —
    /// nothing is lifted). This is the forwarding primitive a routing
    /// tier uses to relay traffic without re-encoding payloads.
    ///
    /// # Errors
    ///
    /// Fails on socket errors and truncated responses only.
    pub fn call_raw(&mut self, line: &str) -> ClientResult<String> {
        match &mut self.transport {
            Transport::Line { reader, writer } => {
                writer.write_all(line.as_bytes())?;
                if !line.ends_with('\n') {
                    writer.write_all(b"\n")?;
                }
                writer.flush()?;
                self.line_tx += line.trim_end_matches('\n').len() as u64 + 1;
                let mut reply = String::new();
                let n = reader.take(MAX_LINE_BYTES).read_line(&mut reply)?;
                if n == 0 {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed the connection",
                    )));
                }
                self.line_rx += n as u64;
                if !reply.ends_with('\n') {
                    // Truncated at the size cap or by a dying server: a cut-short
                    // hex payload can still parse (and would silently corrupt a
                    // checkpoint, then desync every later call on this stream).
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "response line truncated",
                    )));
                }
                while reply.ends_with('\n') || reply.ends_with('\r') {
                    reply.pop();
                }
                Ok(reply)
            }
            Transport::Mux(mux) => {
                let reply = mux.call_line(line.trim_end_matches('\n'))?;
                Ok(reply)
            }
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn ping(&mut self) -> ClientResult<()> {
        self.call(&Request::Ping).map(|_| ())
    }

    /// Server-wide counters.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn stats(&mut self) -> ClientResult<ServerStats> {
        let resp = self.call(&Request::Stats)?;
        Ok(ServerStats {
            sessions: field(&resp, "sessions")?,
            max_sessions: field(&resp, "max_sessions")?,
            queued_jobs: field(&resp, "queued_jobs")?,
            ticks: field(&resp, "ticks")?,
            total_samples: field(&resp, "total_samples")?,
            evicted_sessions: field(&resp, "evicted")?,
            total_j: field(&resp, "total_j")?,
            // Absent when talking to a pre-journal server: report zero
            // rather than refusing the whole stats reply.
            uptime_s: resp
                .get("uptime_s")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
        })
    }

    /// Scrapes the server's full metrics exposition and parses it into a
    /// mergeable [`snn_obs::Snapshot`].
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does; a reply whose `data` field is
    /// missing, badly hex-encoded, or not valid exposition text surfaces
    /// as [`ClientError::Malformed`].
    pub fn metrics(&mut self) -> ClientResult<snn_obs::Snapshot> {
        let resp = self.call(&Request::Metrics)?;
        let Response::Ok(fields) = &resp else {
            return Err(ClientError::Malformed("metrics reply"));
        };
        let hex = fields
            .iter()
            .find(|(k, _)| k == "data")
            .map(|(_, v)| v.as_str())
            .ok_or(ClientError::Malformed("metrics data field"))?;
        let bytes = hex_decode(hex).map_err(|_| ClientError::Malformed("metrics data hex"))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ClientError::Malformed("metrics data utf-8"))?;
        snn_obs::Snapshot::parse(&text).map_err(|_| ClientError::Malformed("metrics exposition"))
    }

    /// Dumps the server's flight-recorder journal and parses it into a
    /// mergeable [`snn_obs::JournalSnapshot`].
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does; a reply whose `data` field is
    /// missing, badly hex-encoded, or not valid journal text surfaces as
    /// [`ClientError::Malformed`].
    pub fn journal(&mut self) -> ClientResult<snn_obs::JournalSnapshot> {
        let resp = self.call(&Request::Journal)?;
        let hex = resp
            .get("data")
            .ok_or(ClientError::Malformed("journal data field"))?;
        let bytes = hex_decode(hex).map_err(|_| ClientError::Malformed("journal data hex"))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ClientError::Malformed("journal data utf-8"))?;
        snn_obs::JournalSnapshot::parse(&text).map_err(|_| ClientError::Malformed("journal text"))
    }

    /// Fetches the server's raw trace material for one request id: its
    /// retained spans (as a spans-only [`snn_obs::Snapshot`]) and its
    /// journal events stamped with `rid`. The caller assembles trees —
    /// typically via [`snn_obs::TraceTree::assemble`] after merging
    /// material from every process the request crossed.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does; malformed payloads surface
    /// as [`ClientError::Malformed`].
    pub fn trace(
        &mut self,
        rid: &str,
    ) -> ClientResult<(snn_obs::Snapshot, snn_obs::JournalSnapshot)> {
        let resp = self.call(&Request::Trace {
            rid: rid.to_string(),
        })?;
        let spans_hex = resp
            .get("data")
            .ok_or(ClientError::Malformed("trace data field"))?;
        let bytes = hex_decode(spans_hex).map_err(|_| ClientError::Malformed("trace data hex"))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ClientError::Malformed("trace data utf-8"))?;
        let spans =
            snn_obs::Snapshot::parse(&text).map_err(|_| ClientError::Malformed("trace spans"))?;
        let journal_hex = resp
            .get("journal")
            .ok_or(ClientError::Malformed("trace journal field"))?;
        let bytes =
            hex_decode(journal_hex).map_err(|_| ClientError::Malformed("trace journal hex"))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ClientError::Malformed("trace journal utf-8"))?;
        let journal = snn_obs::JournalSnapshot::parse(&text)
            .map_err(|_| ClientError::Malformed("trace journal text"))?;
        Ok((spans, journal))
    }

    /// Fetches the assembled cluster-wide trace tree for one request id
    /// (router tier only: the `cluster-trace` verb fans out to every
    /// live shard and merges in dead shards' black-box journals). The
    /// returned tree is the parsed `# snn-trace v1` document — its root
    /// duration is the router's ownership of the request, and
    /// [`snn_obs::TraceTree::shares`] splits it into queue/exec/write.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does — a rid nothing references
    /// answers `err code=unknown-rid` — and malformed payloads surface
    /// as [`ClientError::Malformed`].
    pub fn cluster_trace(&mut self, rid: &str) -> ClientResult<snn_obs::TraceTree> {
        let reply = self.call_raw(&format!("cluster-trace rid={rid}"))?;
        let resp = match parse_response(&reply)? {
            Response::Err { code, msg } => return Err(ClientError::Server { code, msg }),
            ok => ok,
        };
        let hex = resp
            .get("data")
            .ok_or(ClientError::Malformed("cluster-trace data field"))?;
        let bytes = hex_decode(hex).map_err(|_| ClientError::Malformed("cluster-trace hex"))?;
        let text =
            String::from_utf8(bytes).map_err(|_| ClientError::Malformed("cluster-trace utf-8"))?;
        snn_obs::TraceTree::parse(&text).map_err(|_| ClientError::Malformed("cluster-trace text"))
    }

    /// Switches this connection into streaming mode: the server pushes
    /// one telemetry frame roughly every `interval_ms` (clamped
    /// server-side) until the [`Subscription`] is dropped or the server
    /// shuts down. The connection is consumed — subscriptions are
    /// dedicated, so a slow consumer can only ever lose its own frames
    /// (visible as `seq` gaps and in the server's
    /// `serve.subscribe.drops` counter), never stall the data plane.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does on the handshake.
    pub fn subscribe(mut self, interval_ms: u64) -> ClientResult<Subscription> {
        if let Transport::Mux(mux) = &self.transport {
            // Under proto 2 the subscription rides its tag on the shared
            // connection: the ack retires the request, then `push`-flagged
            // frames keep arriving on the same tag.
            let line = format_request(&Request::Subscribe { interval_ms });
            let (ack, rx) = mux.subscribe_line(line.trim_end_matches('\n'))?;
            if let Response::Err { code, msg } = parse_response(&ack)? {
                return Err(ClientError::Server { code, msg });
            }
            let client = Arc::clone(mux);
            return Ok(Subscription {
                inner: SubscriptionInner::Mux {
                    rx,
                    _client: client,
                },
            });
        }
        self.call(&Request::Subscribe { interval_ms })?;
        match self.transport {
            Transport::Line { reader, .. } => Ok(Subscription {
                inner: SubscriptionInner::Line { reader },
            }),
            Transport::Mux(_) => unreachable!("mux subscriptions return above"),
        }
    }

    /// Opens a fresh session.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does (admission and duplicate-id
    /// rejections arrive as [`ClientError::Server`]).
    pub fn open(&mut self, id: &str, spec: SessionSpec) -> ClientResult<()> {
        self.call(&Request::Open {
            id: id.to_string(),
            spec,
        })
        .map(|_| ())
    }

    /// Feeds one micro-batch into a session.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does (backpressure arrives as
    /// [`ClientError::Server`] with code `backpressure`).
    pub fn ingest(&mut self, id: &str, images: &[Image]) -> ClientResult<IngestOutcome> {
        let resp = self.call(&Request::Ingest {
            id: id.to_string(),
            images: images.to_vec(),
        })?;
        let predictions = decode_predictions(
            resp.get("predictions")
                .ok_or(ClientError::Malformed("predictions"))?,
        )?;
        let response_active = match resp.get("response_active") {
            Some("1") => true,
            Some("0") => false,
            _ => return Err(ClientError::Malformed("response_active")),
        };
        Ok(IngestOutcome {
            predictions,
            drift_events: field(&resp, "drifts")?,
            response_active,
            samples_seen: field(&resp, "samples")?,
            total_j: field(&resp, "total_j")?,
        })
    }

    /// The session's current prequential report.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn report(&mut self, id: &str) -> ClientResult<WireReport> {
        let resp = self.call(&Request::Report { id: id.to_string() })?;
        wire_report(&resp)
    }

    /// The session's modelled energy totals.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn energy(&mut self, id: &str) -> ClientResult<EnergyReport> {
        let resp = self.call(&Request::Energy { id: id.to_string() })?;
        Ok(EnergyReport {
            train_j: field(&resp, "train_j")?,
            infer_j: field(&resp, "infer_j")?,
            per_sample_j: field(&resp, "per_sample_j")?,
        })
    }

    /// Serialises the session's full state; the returned bytes are a
    /// [`snn_online::ModelSnapshot`] container.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn checkpoint(&mut self, id: &str) -> ClientResult<Vec<u8>> {
        let resp = self.call(&Request::Checkpoint { id: id.to_string() })?;
        Ok(hex_decode(
            resp.get("data").ok_or(ClientError::Malformed("data"))?,
        )?)
    }

    /// Opens a **new** session restored from snapshot bytes; returns the
    /// restored stream position.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn restore(&mut self, id: &str, snapshot: &[u8]) -> ClientResult<u64> {
        let resp = self.call(&Request::Restore {
            id: id.to_string(),
            snapshot: snapshot.to_vec(),
        })?;
        field(&resp, "samples")
    }

    /// Hot-swaps a **running** session onto snapshot bytes (same session
    /// configuration required); returns the adopted stream position.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn swap(&mut self, id: &str, snapshot: &[u8]) -> ClientResult<u64> {
        let resp = self.call(&Request::Swap {
            id: id.to_string(),
            snapshot: snapshot.to_vec(),
        })?;
        field(&resp, "samples")
    }

    /// Stores a shadow checkpoint for `id` on the server **without**
    /// opening a live session. `seq` must equal the snapshot's
    /// `samples_seen`; the server rejects mismatches and sequence
    /// regressions with code `shadow-stale`.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn shadow(&mut self, id: &str, snapshot: &[u8], seq: u64) -> ClientResult<()> {
        self.call(&Request::Shadow {
            id: id.to_string(),
            snapshot: snapshot.to_vec(),
            seq,
        })
        .map(|_| ())
    }

    /// Fetches the shadow checkpoint stored for `id`, returning its
    /// stream position and blob. Absent shadows arrive as code
    /// `unknown-session`.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn shadow_fetch(&mut self, id: &str) -> ClientResult<(u64, Vec<u8>)> {
        let resp = self.call(&Request::ShadowGet { id: id.to_string() })?;
        let seq = field(&resp, "seq")?;
        let bytes = hex_decode(resp.get("data").ok_or(ClientError::Malformed("data"))?)?;
        Ok((seq, bytes))
    }

    /// Evicts a session: the server checkpoints its full state to disk,
    /// frees the learner, and answers later requests for the id with
    /// code `session-evicted` whose message is the returned restore path.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does (`bad-request` when the server
    /// has no evict directory configured).
    pub fn evict(&mut self, id: &str) -> ClientResult<String> {
        let resp = self.call(&Request::Evict { id: id.to_string() })?;
        Ok(resp
            .get("path")
            .ok_or(ClientError::Malformed("path"))?
            .to_string())
    }

    /// Closes a session, returning its final report.
    ///
    /// # Errors
    ///
    /// Fails as [`ServeClient::call`] does.
    pub fn close(&mut self, id: &str) -> ClientResult<WireReport> {
        let resp = self.call(&Request::Close { id: id.to_string() })?;
        wire_report(&resp)
    }
}

/// One streamed telemetry frame from a subscribed server.
#[derive(Debug, Clone)]
pub struct Push {
    /// Monotonic frame number minted by the server's sampler. Gaps mean
    /// frames were dropped for this (slow) subscriber.
    pub seq: u64,
    /// The full metrics exposition at sample time.
    pub metrics: snn_obs::Snapshot,
    /// Journal events recorded since the previous frame; the `meta`
    /// counters stay cumulative so deltas survive dropped frames.
    pub journal: snn_obs::JournalSnapshot,
}

/// The transport under a [`Subscription`].
#[derive(Debug)]
enum SubscriptionInner {
    /// Proto 1: the dedicated connection's reader, now carrying only
    /// push lines.
    Line { reader: BufReader<TcpStream> },
    /// Proto 2: push-flagged frames delivered by the shared connection's
    /// reader thread.
    Mux {
        rx: mpsc::Receiver<Frame>,
        /// Keeps the multiplexed connection (and its reader thread)
        /// alive for as long as the subscription is held.
        _client: Arc<MuxClient>,
    },
}

/// A connection switched into streaming mode by
/// [`ServeClient::subscribe`]. Dropping it ends the subscription (the
/// server notices on its next push).
#[derive(Debug)]
pub struct Subscription {
    inner: SubscriptionInner,
}

impl Subscription {
    /// Blocks for the next pushed frame. A clean end of stream (server
    /// shutdown) surfaces as [`ClientError::Io`] with
    /// [`io::ErrorKind::UnexpectedEof`].
    ///
    /// # Errors
    ///
    /// Fails on socket errors, truncated or non-`push` lines, and frames
    /// whose payload fields do not decode.
    // Not `Iterator`: errors are fatal here (`Result`, not `Option`), and
    // the blocking-pull call-site reads better as an explicit method.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> ClientResult<Push> {
        let line = match &mut self.inner {
            SubscriptionInner::Line { reader } => {
                let mut line = String::new();
                let n = (&mut *reader).take(MAX_LINE_BYTES).read_line(&mut line)?;
                if n == 0 {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "subscription ended",
                    )));
                }
                if !line.ends_with('\n') {
                    return Err(ClientError::Io(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "push frame truncated",
                    )));
                }
                line
            }
            SubscriptionInner::Mux { rx, .. } => {
                let frame = rx.recv().map_err(|_| {
                    ClientError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "subscription ended",
                    ))
                })?;
                frame.to_line().map_err(|e| {
                    ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                })?
            }
        };
        parse_push(&line)
    }
}

/// Decodes one `push seq=… data=… journal=…` telemetry line (shared by
/// both subscription transports).
fn parse_push(line: &str) -> ClientResult<Push> {
    let (verb, fields) = tokenize(line)?;
    if verb != "push" {
        return Err(ClientError::Malformed("push frame verb"));
    }
    let resp = Response::Ok(fields);
    let decode_text = |key: &'static str| -> ClientResult<String> {
        let hex = resp.get(key).ok_or(ClientError::Malformed(key))?;
        let bytes = hex_decode(hex).map_err(|_| ClientError::Malformed(key))?;
        String::from_utf8(bytes).map_err(|_| ClientError::Malformed(key))
    };
    let metrics = snn_obs::Snapshot::parse(&decode_text("data")?)
        .map_err(|_| ClientError::Malformed("push metrics"))?;
    let journal = snn_obs::JournalSnapshot::parse(&decode_text("journal")?)
        .map_err(|_| ClientError::Malformed("push journal"))?;
    Ok(Push {
        seq: field(&resp, "seq")?,
        metrics,
        journal,
    })
}

fn wire_report(resp: &Response) -> ClientResult<WireReport> {
    Ok(WireReport {
        samples: field(resp, "samples")?,
        accuracy: field(resp, "accuracy")?,
        forgetting: field(resp, "forgetting")?,
        drift_events: field(resp, "drifts")?,
        spikes_per_sample: field(resp, "spikes_per_sample")?,
    })
}

fn field<T: std::str::FromStr>(resp: &Response, key: &'static str) -> ClientResult<T> {
    resp.get(key)
        .ok_or(ClientError::Malformed(key))?
        .parse::<T>()
        .map_err(|_| ClientError::Malformed(key))
}
