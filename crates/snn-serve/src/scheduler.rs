//! The tick scheduler: cross-session micro-batching over one warm pool.
//!
//! One scheduler thread loops on `SessionManager::take_work`. Each tick
//! hands back every *ready* session (learner present, jobs queued) with
//! its whole queue drained; the tick executes the sessions in parallel
//! (`rayon`, one worker per session, each session's engine nesting its
//! own per-batch fan-out inside that worker) while each session's own
//! jobs run strictly in submission order. Requests from different
//! sessions that arrive in the same tick therefore proceed concurrently
//! over the one shared `snn-runtime` replica pool — the serving
//! analogue of batching — without ever reordering a single session's
//! stream.
//!
//! Parallel session execution cannot perturb results: every learner's
//! randomness is derived from its own persisted counters and replicas are
//! fully re-synced per sample (see `snn-runtime`'s shared-pool mode), so
//! a session's outputs are bit-identical however its ticks interleave
//! with other sessions'. The integration test pins this by comparing
//! served sessions against single-process references.

use std::sync::Arc;
use std::sync::Mutex;

use rayon::prelude::*;

use snn_online::{ModelSnapshot, OnlineLearner};

use crate::session::{Envelope, Job, JobOutput, ServeError, SessionManager};

/// One ready session checked out for a tick: its learner plus the drained
/// job queue, executed in order.
#[derive(Debug)]
pub(crate) struct WorkUnit {
    pub(crate) id: String,
    pub(crate) learner: OnlineLearner,
    pub(crate) jobs: Vec<Envelope>,
}

/// A processed unit handed back to the registry. `learner: None` means
/// the session closed (or was evicted) during the tick and must be
/// removed; the close path's replies ride along in `deferred` and are
/// sent only *after* the registry update, so a client that received its
/// `close` reply can immediately reuse the id (close is linearizable).
#[derive(Debug)]
pub(crate) struct FinishedUnit {
    pub(crate) id: String,
    pub(crate) learner: Option<OnlineLearner>,
    pub(crate) samples_delta: u64,
    /// Modelled joules (train + infer) of this session after the tick.
    pub(crate) joules: f64,
    /// Net jump in the learner's cumulative joules caused by hot swaps
    /// this tick (a swap replaces the op counters wholesale); the
    /// registry shifts the session's accounting baseline by this much.
    pub(crate) baseline_shift: f64,
    /// Set when the session was evicted: where its checkpoint landed.
    pub(crate) evicted: Option<std::path::PathBuf>,
    pub(crate) deferred: Vec<(
        std::sync::mpsc::Sender<crate::session::JobResult>,
        crate::session::JobResult,
    )>,
}

/// Runs the scheduler loop until the manager shuts down and its queues
/// have drained. Intended to own a dedicated thread.
pub(crate) fn run(manager: Arc<SessionManager>) {
    while let Some(units) = manager.take_work() {
        let tick_jobs: usize = units.iter().map(|u| u.jobs.len()).sum();
        let t0 = std::time::Instant::now();
        // The vendored rayon exposes `par_iter` (by-ref) only, so ticks
        // move their units through take-once slots.
        let slots: Vec<Mutex<Option<WorkUnit>>> =
            units.into_iter().map(|u| Mutex::new(Some(u))).collect();
        let finished: Vec<FinishedUnit> = slots
            .par_iter()
            .map(|slot| {
                let unit = slot
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is taken exactly once");
                execute_unit(unit, &manager)
            })
            .collect();
        let obs = manager.obs();
        obs.tick_us.record_duration(t0.elapsed());
        obs.tick_jobs.record(tick_jobs as u64);
        manager.finish(finished);
    }
}

/// The stable span/metric label of a job kind.
fn job_kind(job: &Job) -> &'static str {
    match job {
        Job::Ingest(_) => "ingest",
        Job::Report => "report",
        Job::Energy => "energy",
        Job::Checkpoint => "checkpoint",
        Job::Swap(_) => "swap",
        Job::Evict => "evict",
        Job::Close => "close",
    }
}

/// Executes one session's tick: every job in submission order, each reply
/// sent as soon as its job completes. Jobs queued behind a `Close` are
/// answered with [`ServeError::SessionClosing`].
fn execute_unit(unit: WorkUnit, manager: &SessionManager) -> FinishedUnit {
    let WorkUnit {
        id,
        mut learner,
        jobs,
    } = unit;
    let mut closed = false;
    let mut evicted: Option<std::path::PathBuf> = None;
    let mut samples_delta = 0u64;
    let mut baseline_shift = 0.0f64;
    let mut deferred = Vec::new();
    let obs = manager.obs();
    let engine_before = learner.engine_stats();
    for Envelope {
        job,
        rid,
        reply,
        enqueued,
    } in jobs
    {
        if closed {
            deferred.push((reply, Err(ServeError::SessionClosing(id.clone()))));
            continue;
        }
        if let Some(path) = &evicted {
            deferred.push((
                reply,
                Err(ServeError::SessionEvicted(path.display().to_string())),
            ));
            continue;
        }
        let kind = job_kind(&job);
        // The gap between submit and this tick is the request's
        // queue-wait phase: a child span under the wire layer's request
        // span, plus the histogram the latency-breakdown bench reads.
        let queue_wait = enqueued.elapsed();
        obs.queue_wait_us.record_duration(queue_wait);
        obs.registry.span(
            "serve.phase.queue_wait",
            &rid,
            queue_wait,
            &[
                ("phase", "queue_wait".to_string()),
                ("parent", "request".to_string()),
                ("id", id.clone()),
            ],
        );
        let t0 = std::time::Instant::now();
        // Records the job's execution span under the rid stamped on the
        // envelope at the wire layer, so one client request is traceable
        // from connection thread to scheduler tick. The phase/parent
        // fields link it into the request's trace tree; the stashed
        // phase note lets the wire layer attach this split to the
        // request's tail-latency exemplar.
        let queue_us = u64::try_from(queue_wait.as_micros()).unwrap_or(u64::MAX);
        let span = |dur: std::time::Duration| {
            obs.exec_us.record_duration(dur);
            obs.registry.span(
                &format!("serve.exec.{kind}"),
                &rid,
                dur,
                &[
                    ("phase", "exec".to_string()),
                    ("parent", "request".to_string()),
                    ("id", id.clone()),
                ],
            );
            obs.note_phases(
                &rid,
                queue_us,
                u64::try_from(dur.as_micros()).unwrap_or(u64::MAX),
            );
        };
        let result = match job {
            Job::Ingest(images) => {
                obs.ingest_batch.record(images.len() as u64);
                learner
                    .step(&images)
                    .map(|outcome| {
                        samples_delta += images.len() as u64;
                        // Drift is the event the whole paper is about:
                        // every detection lands in the flight recorder
                        // with the batch's rid, so a post-mortem can line
                        // drift storms up against rejects and failovers.
                        if !outcome.drift_events.is_empty() {
                            obs.registry.journal_event(
                                "serve.drift",
                                &rid,
                                &[
                                    ("id", id.clone()),
                                    ("drifts", outcome.drift_events.len().to_string()),
                                    ("at", outcome.samples_seen.to_string()),
                                ],
                            );
                        }
                        let energy = learner.energy(manager.gpu());
                        JobOutput::Ingested(outcome, energy.train_j + energy.infer_j)
                    })
                    .map_err(|e| ServeError::Learner(e.to_string()))
            }
            Job::Report => Ok(JobOutput::Report(learner.report())),
            Job::Energy => Ok(JobOutput::Energy(learner.energy(manager.gpu()))),
            Job::Checkpoint => {
                let snapshot = learner.checkpoint();
                let enc0 = std::time::Instant::now();
                let bytes = snapshot.to_bytes();
                obs.encode_us.record_duration(enc0.elapsed());
                obs.encode_bytes.record(bytes.len() as u64);
                Ok(JobOutput::Checkpoint(bytes))
            }
            Job::Swap(bytes) => {
                let pre = learner.energy(manager.gpu());
                let dec0 = std::time::Instant::now();
                ModelSnapshot::from_bytes(&bytes)
                    .map_err(|e| ServeError::Snapshot(e.to_string()))
                    .and_then(|snap| {
                        obs.decode_us.record_duration(dec0.elapsed());
                        obs.decode_bytes.record(bytes.len() as u64);
                        learner
                            .adopt(snap)
                            .map_err(|e| ServeError::Snapshot(e.to_string()))
                    })
                    .map(|()| {
                        let post = learner.energy(manager.gpu());
                        let total_j = post.train_j + post.infer_j;
                        baseline_shift += total_j - (pre.train_j + pre.infer_j);
                        JobOutput::Swapped {
                            samples_seen: learner.samples_seen(),
                            total_j,
                        }
                    })
            }
            Job::Evict => match manager.evict_path(&id) {
                None => Err(ServeError::BadRequest(
                    "eviction is disabled on this server (no evict_dir)".into(),
                )),
                Some(path) => match learner.checkpoint().save(&path) {
                    Ok(()) => {
                        obs.registry
                            .journal_event("serve.evict", &rid, &[("id", id.clone())]);
                        evicted = Some(path.clone());
                        // Like close, evict is linearizable: the reply is
                        // deferred until after the registry update, so a
                        // client holding it can reuse the id at once.
                        deferred.push((reply, Ok(JobOutput::Evicted(path))));
                        span(t0.elapsed());
                        continue;
                    }
                    // The learner stays live: a failed save must not lose
                    // session state.
                    Err(e) => Err(ServeError::Snapshot(format!("eviction save failed: {e}"))),
                },
            },
            Job::Close => {
                closed = true;
                obs.registry.journal_event(
                    "serve.close",
                    &rid,
                    &[
                        ("id", id.clone()),
                        ("samples", learner.samples_seen().to_string()),
                    ],
                );
                // The reply must not be visible before the registry drops
                // the session, or a client could race its own close.
                deferred.push((reply, Ok(JobOutput::Closed(learner.report()))));
                span(t0.elapsed());
                continue;
            }
        };
        span(t0.elapsed());
        // A dropped receiver (client went away) is not an error worth
        // tearing the session down for.
        let _ = reply.send(result);
    }
    // Engine-work delta of this tick, folded into the server-wide
    // counters (each learner owns its engine, so deltas never race).
    let engine_after = learner.engine_stats();
    obs.infer_batches
        .add(engine_after.batches - engine_before.batches);
    obs.infer_samples
        .add(engine_after.samples - engine_before.samples);
    obs.infer_busy_us
        .add(engine_after.busy_us - engine_before.busy_us);
    // The learner is still owned here even when the session closed or
    // evicted, so the registry always learns the session's final joules.
    let energy = learner.energy(manager.gpu());
    FinishedUnit {
        id,
        learner: (!closed && evicted.is_none()).then_some(learner),
        samples_delta,
        joules: energy.train_j + energy.infer_j,
        baseline_shift,
        evicted,
        deferred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SessionSpec;
    use crate::session::{JobResult, ServeLimits};
    use neuro_energy::GpuSpec;
    use snn_data::SyntheticDigits;
    use spikedyn::Method;
    use std::sync::mpsc;

    fn tiny_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            method: Method::SpikeDyn,
            n_exc: 6,
            n_input: 49,
            n_classes: 4,
            seed,
            batch_size: 4,
            assign_every: 8,
            reservoir_capacity: 8,
            metric_window: 8,
            drift_window: 8,
        }
    }

    fn batch(seed: u64, n: u64) -> Vec<snn_data::Image> {
        let gen = SyntheticDigits::new(seed);
        (0..n)
            .map(|i| gen.sample((i % 4) as u8, i).downsample(4))
            .collect()
    }

    fn start(manager: &Arc<SessionManager>) -> std::thread::JoinHandle<()> {
        let m = Arc::clone(manager);
        std::thread::spawn(move || run(m))
    }

    fn roundtrip(manager: &SessionManager, id: &str, job: Job) -> JobResult {
        let (tx, rx) = mpsc::channel();
        manager.submit(id, job, "", tx).unwrap();
        rx.recv().expect("scheduler replies to accepted jobs")
    }

    #[test]
    fn concurrent_sessions_match_single_process_references() {
        let manager = Arc::new(SessionManager::new(
            ServeLimits::default(),
            GpuSpec::gtx_1080_ti(),
            None,
        ));
        let scheduler = start(&manager);
        // Three sessions with different seeds, interleaved submissions.
        for s in 0..3u64 {
            manager.open(&format!("s{s}"), &tiny_spec(s)).unwrap();
        }
        for round in 0..3usize {
            for s in 0..3u64 {
                let stream = batch(s, 12);
                let out = roundtrip(
                    &manager,
                    &format!("s{s}"),
                    Job::Ingest(stream[round * 4..(round + 1) * 4].to_vec()),
                );
                assert!(matches!(out, Ok(JobOutput::Ingested(..))));
            }
        }
        // Each served session must equal a learner fed the same stream
        // in one process, bit for bit.
        for s in 0..3u64 {
            let served = match roundtrip(&manager, &format!("s{s}"), Job::Checkpoint) {
                Ok(JobOutput::Checkpoint(bytes)) => bytes,
                other => panic!("unexpected {other:?}"),
            };
            let mut reference = OnlineLearner::new(tiny_spec(s).online_config());
            for chunk in batch(s, 12).chunks(4) {
                reference.ingest_batch(chunk).unwrap();
            }
            assert_eq!(served, reference.checkpoint().to_bytes(), "session s{s}");
        }
        manager.shutdown();
        scheduler.join().unwrap();
    }

    #[test]
    fn close_answers_trailing_jobs_and_removes_session() {
        let manager = Arc::new(SessionManager::new(
            ServeLimits::default(),
            GpuSpec::gtx_1080_ti(),
            None,
        ));
        manager.open("a", &tiny_spec(1)).unwrap();
        // Queue close + a trailing report before the scheduler runs, so
        // both land in the same tick. (Submitting after close is already
        // rejected; this covers the same-tick race.)
        let (close_tx, close_rx) = mpsc::channel();
        let (late_tx, late_rx) = mpsc::channel();
        manager.submit("a", Job::Close, "", close_tx).unwrap();
        // Force-queue behind the close by bypassing the closing check:
        // build the envelope through a fresh session with the same queue…
        // not possible from outside, so exercise the scheduler directly.
        let units = manager.take_work().unwrap();
        let mut unit = units.into_iter().next().unwrap();
        unit.jobs.push(Envelope {
            job: Job::Report,
            rid: String::new(),
            reply: late_tx,
            enqueued: std::time::Instant::now(),
        });
        let finished = execute_unit(unit, &manager);
        assert!(finished.learner.is_none(), "closed => learner dropped");
        manager.finish(vec![finished]);
        assert!(matches!(close_rx.recv().unwrap(), Ok(JobOutput::Closed(_))));
        assert!(matches!(
            late_rx.recv().unwrap(),
            Err(ServeError::SessionClosing(_))
        ));
        assert_eq!(manager.stats().sessions, 0);
    }

    #[test]
    fn swap_rejects_garbage_and_keeps_serving() {
        let manager = Arc::new(SessionManager::new(
            ServeLimits::default(),
            GpuSpec::gtx_1080_ti(),
            None,
        ));
        let scheduler = start(&manager);
        manager.open("a", &tiny_spec(1)).unwrap();
        assert!(matches!(
            roundtrip(&manager, "a", Job::Swap(vec![1, 2, 3])),
            Err(ServeError::Snapshot(_))
        ));
        // The session survives the bad swap.
        assert!(matches!(
            roundtrip(&manager, "a", Job::Ingest(batch(1, 4))),
            Ok(JobOutput::Ingested(..))
        ));
        manager.shutdown();
        scheduler.join().unwrap();
    }
}
