//! The wire protocol: line-delimited requests and responses.
//!
//! One request or response per LF-terminated line. A line is a verb (or
//! `ok`/`err` for responses) followed by space-separated `key=value`
//! fields. Values are space-free tokens; a value containing spaces is
//! double-quoted (`msg="session queue full"`, no inner quotes). Binary
//! payloads — image batches, model snapshots — travel hex-encoded in a
//! `data=` field, framed by the same deterministic byte codec the
//! snapshot format uses ([`snn_online::codec`]); see `DESIGN.md` §8 for
//! the full grammar.
//!
//! The format is deliberately self-inverse: [`format_request`] ∘
//! [`parse_request`] and [`format_response`] ∘ [`parse_response`] are
//! identities, pinned by this module's round-trip tests. Every parse
//! failure is an explicit [`ProtocolError`]; nothing panics on hostile
//! input.

use std::fmt;

use snn_data::Image;
use snn_online::codec::{ByteReader, ByteWriter, CodecError};
use spikedyn::Method;

/// The protocol generation this build speaks. Mirrors the snapshot
/// format's `SNAPSHOT_VERSION` discipline: a `hello proto=…` exchange
/// fails fast on mismatch instead of letting an incompatible peer
/// misparse lines (see [`Request::Hello`]).
pub const PROTO_VERSION: u32 = 1;

/// The binary-framing protocol generation (`DESIGN.md` §13). Negotiated
/// through the same `hello proto=…` gate: a `hello proto=2` accepted by
/// the server upgrades the connection from line framing to length-
/// prefixed binary frames over one multiplexed socket ([`crate::frame`],
/// [`crate::mux`]). Proto 1 stays the default and fully supported.
pub const PROTO_V2: u32 = 2;

/// Hard cap on one protocol line in bytes (a paper-scale snapshot is a
/// few MiB hex-encoded; this bounds hostile allocations, not real use).
pub const MAX_LINE_BYTES: u64 = 64 * 1024 * 1024;

/// Maximum session-id length in bytes.
pub const MAX_SESSION_ID: usize = 64;

/// Errors raised while parsing protocol lines or payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The line was empty.
    Empty,
    /// The verb is not part of the protocol.
    UnknownVerb(String),
    /// A required field is missing.
    MissingField(&'static str),
    /// A field's value could not be parsed.
    InvalidValue {
        /// The field name.
        field: String,
        /// The offending value.
        value: String,
    },
    /// A field token has no `=` separator, or a quote never closes.
    MalformedField(String),
    /// A binary payload failed to decode.
    Codec(CodecError),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Empty => write!(f, "empty line"),
            ProtocolError::UnknownVerb(v) => write!(f, "unknown verb {v:?}"),
            ProtocolError::MissingField(k) => write!(f, "missing field {k}"),
            ProtocolError::InvalidValue { field, value } => {
                write!(f, "invalid value {value:?} for field {field}")
            }
            ProtocolError::MalformedField(t) => write!(f, "malformed field {t:?}"),
            ProtocolError::Codec(e) => write!(f, "payload error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<CodecError> for ProtocolError {
    fn from(e: CodecError) -> Self {
        ProtocolError::Codec(e)
    }
}

/// Configuration of a new session, as carried by the `open` request.
/// Every field has a serving-profile default; `open` lines set only what
/// they need. [`SessionSpec::online_config`] lowers the spec onto a full
/// [`snn_online::OnlineConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Learning method (`baseline` | `asp` | `spikedyn`).
    pub method: Method,
    /// Excitatory neurons.
    pub n_exc: usize,
    /// Input channels per sample.
    pub n_input: usize,
    /// Stream classes.
    pub n_classes: usize,
    /// Master seed.
    pub seed: u64,
    /// Samples per micro-batch.
    pub batch_size: usize,
    /// Assignment refresh interval in samples.
    pub assign_every: u64,
    /// Labelled reservoir capacity.
    pub reservoir_capacity: usize,
    /// Sliding metric window in samples.
    pub metric_window: usize,
    /// Drift detector window in samples.
    pub drift_window: usize,
}

impl Default for SessionSpec {
    fn default() -> Self {
        let cfg = snn_online::OnlineConfig::fast(Method::SpikeDyn, 100);
        SessionSpec {
            method: cfg.method,
            n_exc: cfg.n_exc,
            n_input: cfg.n_input,
            n_classes: cfg.n_classes,
            seed: cfg.seed,
            batch_size: cfg.batch_size,
            assign_every: cfg.assign_every,
            reservoir_capacity: cfg.reservoir_capacity,
            metric_window: cfg.metric_window,
            drift_window: cfg.drift.window,
        }
    }
}

impl SessionSpec {
    /// Lowers the spec onto a full learner configuration (the fields the
    /// protocol does not expose keep the fast-profile defaults).
    pub fn online_config(&self) -> snn_online::OnlineConfig {
        let mut cfg = snn_online::OnlineConfig::fast(self.method, self.n_exc);
        cfg.n_input = self.n_input;
        cfg.n_classes = self.n_classes;
        cfg.seed = self.seed;
        cfg.batch_size = self.batch_size;
        cfg.assign_every = self.assign_every;
        cfg.reservoir_capacity = self.reservoir_capacity;
        cfg.metric_window = self.metric_window;
        cfg.drift.window = self.drift_window;
        cfg
    }
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake: the client announces the protocol generation
    /// it speaks; the server answers with a versioned banner
    /// (`ok proto=… server=…`) or `err code=proto-mismatch`.
    Hello {
        /// The client's [`PROTO_VERSION`].
        proto: u32,
    },
    /// Liveness check.
    Ping,
    /// Server-wide statistics.
    Stats,
    /// Full metrics scrape: the reply's `data` field carries the
    /// hex-encoded `snn-obs` text exposition of the server's registry
    /// (multi-line text cannot ride a single-line response directly).
    Metrics,
    /// Flight-recorder dump: the reply's `data` field carries the
    /// hex-encoded `snn-journal` text of the server's event ring. The
    /// routing tier polls this per health tick so a dead shard's last
    /// journal survives it (the black-box it cannot scrape post-mortem).
    Journal,
    /// Switch this connection into streaming mode: after the `ok`
    /// acknowledgement the server pushes one `push seq=… data=…
    /// journal=…` frame roughly every `interval_ms` until the client
    /// disconnects or the server shuts down. Frames are sampled into a
    /// bounded buffer; a slow consumer loses frames (counted in
    /// `serve.subscribe.drops`), never stalls the data plane.
    Subscribe {
        /// Sampling period in milliseconds (clamped server-side).
        interval_ms: u64,
    },
    /// Open a fresh session.
    Open {
        /// Session id (token, ≤ [`MAX_SESSION_ID`] bytes).
        id: String,
        /// Session configuration.
        spec: SessionSpec,
    },
    /// Feed one micro-batch of labelled samples into a session.
    Ingest {
        /// Session id.
        id: String,
        /// The batch, in stream order.
        images: Vec<Image>,
    },
    /// Current prequential report of a session.
    Report {
        /// Session id.
        id: String,
    },
    /// Modelled per-session energy totals.
    Energy {
        /// Session id.
        id: String,
    },
    /// Serialise the session's full state as a snapshot.
    Checkpoint {
        /// Session id.
        id: String,
    },
    /// Open a **new** session restored from a snapshot.
    Restore {
        /// Session id for the restored session.
        id: String,
        /// Raw [`snn_online::ModelSnapshot`] container bytes.
        snapshot: Vec<u8>,
    },
    /// Hot-swap a **running** session onto a snapshot (same config).
    Swap {
        /// Session id.
        id: String,
        /// Raw [`snn_online::ModelSnapshot`] container bytes.
        snapshot: Vec<u8>,
    },
    /// Store a session's shadow checkpoint **without opening a live
    /// session**: the blob is validated and kept in a bounded in-memory
    /// store keyed by id, so a routing tier can later `restore` it onto
    /// this shard if the session's home shard dies. `seq` is the
    /// snapshot's stream position (`samples_seen`) and must match the
    /// payload; mismatches fail fast with `shadow-stale`.
    Shadow {
        /// Session id the shadow belongs to.
        id: String,
        /// Raw [`snn_online::ModelSnapshot`] container bytes.
        snapshot: Vec<u8>,
        /// Stream position (`samples_seen`) claimed for the snapshot.
        seq: u64,
    },
    /// Fetch the stored shadow for `id` (same verb, no `data` field):
    /// the reply carries `seq=` and the blob in `data=`. A failover tier
    /// uses this to pull the shadow off its holder before restoring it
    /// onto a live shard.
    ShadowGet {
        /// Session id the shadow belongs to.
        id: String,
    },
    /// Evict a session: checkpoint its full state to the server's evict
    /// directory, free the in-memory learner, and answer later requests
    /// for the id with `err code=session-evicted` carrying the restore
    /// path. The cluster tier uses this to enforce energy budgets.
    Evict {
        /// Session id.
        id: String,
    },
    /// Close a session, returning its final report.
    Close {
        /// Session id.
        id: String,
    },
    /// Fetch this server's raw trace material for one request id: every
    /// retained span and journal event stamped with `rid`, hex-encoded
    /// as `snn-obs` / `snn-journal` text in the reply's `data` and
    /// `journal` fields. The cluster tier's `cluster-trace` verb fans
    /// this out across shards and assembles the merged
    /// [`snn_obs::TraceTree`].
    Trace {
        /// The request id whose spans/events are wanted.
        rid: String,
    },
}

/// One server response: `ok` with ordered `key=value` pairs, or `err`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Success; fields depend on the request.
    Ok(Vec<(String, String)>),
    /// Failure.
    Err {
        /// Stable machine-readable code (kebab-case).
        code: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl Response {
    /// Builds an `ok` response from `(key, value)` pairs.
    pub fn ok<K: Into<String>, V: Into<String>>(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        Response::Ok(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an `err` response.
    pub fn error(code: impl Into<String>, msg: impl Into<String>) -> Self {
        Response::Err {
            code: code.into(),
            msg: msg.into(),
        }
    }

    /// The value of `key` in an `ok` response, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        match self {
            Response::Ok(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            Response::Err { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Hex payloads.

/// Encodes bytes as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).expect("nibble < 16"));
        out.push(char::from_digit(u32::from(b & 0xF), 16).expect("nibble < 16"));
    }
    out
}

/// Decodes lowercase/uppercase hex into bytes.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidValue`] on odd length or non-hex
/// characters.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, ProtocolError> {
    let bad = || ProtocolError::InvalidValue {
        field: "data".into(),
        value: abbreviate(s),
    };
    if !s.len().is_multiple_of(2) {
        return Err(bad());
    }
    let digits = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or_else(bad)?;
        let lo = (pair[1] as char).to_digit(16).ok_or_else(bad)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

fn abbreviate(s: &str) -> String {
    if s.len() <= 32 {
        s.to_string()
    } else {
        // Char-wise truncation: a byte offset could split a multibyte
        // code point and panic on hostile input.
        let head: String = s.chars().take(32).collect();
        format!("{head}… ({} bytes)", s.len())
    }
}

// ---------------------------------------------------------------------------
// Image batch payload.

/// Serialises a batch of images into the deterministic byte framing used
/// inside `data=` fields (count-prefixed; per image: width, height,
/// label, pixels as IEEE-754 bit patterns).
pub fn encode_images(images: &[Image]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.usize(images.len());
    for img in images {
        w.usize(img.width());
        w.usize(img.height());
        w.u8(img.label);
        w.f32_slice(img.pixels());
    }
    w.into_bytes()
}

/// Parses a batch serialised by [`encode_images`].
///
/// # Errors
///
/// Returns [`ProtocolError::Codec`] on truncated or shape-inconsistent
/// payloads.
pub fn decode_images(bytes: &[u8]) -> Result<Vec<Image>, ProtocolError> {
    let mut r = ByteReader::new(bytes);
    let n = r.usize("images.count")?;
    let mut images = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let width = r.usize("image.width")?;
        let height = r.usize("image.height")?;
        let label = r.u8("image.label")?;
        let pixels = r.f32_vec("image.pixels")?;
        if width.checked_mul(height) != Some(pixels.len()) {
            return Err(ProtocolError::Codec(CodecError::Invalid {
                what: "image.pixels",
                value: pixels.len() as u64,
            }));
        }
        images.push(Image::new(width, height, pixels, label));
    }
    r.finish()?;
    Ok(images)
}

// ---------------------------------------------------------------------------
// Predictions field.

/// Renders predictions as a comma-separated field value (`_` = none),
/// e.g. `3,_,7`. Empty batches render as the empty string.
pub fn encode_predictions(predictions: &[Option<u8>]) -> String {
    predictions
        .iter()
        .map(|p| match p {
            Some(c) => c.to_string(),
            None => "_".to_string(),
        })
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a field rendered by [`encode_predictions`].
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidValue`] on non-integer entries.
pub fn decode_predictions(s: &str) -> Result<Vec<Option<u8>>, ProtocolError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|tok| {
            if tok == "_" {
                Ok(None)
            } else {
                tok.parse::<u8>()
                    .map(Some)
                    .map_err(|_| ProtocolError::InvalidValue {
                        field: "predictions".into(),
                        value: tok.to_string(),
                    })
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Line tokenizer.

/// Splits a line into its verb and `key=value` fields (quoted values may
/// contain spaces). Public so a routing tier can inspect the verb and
/// `id` of a request and forward the raw line without decoding (and
/// re-encoding) multi-megabyte payload fields.
///
/// # Errors
///
/// Returns [`ProtocolError`] on empty lines or malformed field tokens.
pub fn tokenize(line: &str) -> Result<(String, Vec<(String, String)>), ProtocolError> {
    let line = line.trim_end_matches(['\r', '\n']);
    // Verb: up to the first space. A leading space means an empty verb.
    let verb_end = line.find(' ').unwrap_or(line.len());
    let verb = &line[..verb_end];
    if verb.is_empty() {
        return Err(ProtocolError::Empty);
    }
    let mut fields = Vec::new();
    let rest = &line[verb_end..];
    let mut pos = 0usize;
    let bytes = rest.as_bytes();
    while pos < bytes.len() {
        // Skip separating spaces.
        while pos < bytes.len() && bytes[pos] == b' ' {
            pos += 1;
        }
        if pos >= bytes.len() {
            break;
        }
        let start = pos;
        let eq = rest[pos..]
            .find('=')
            .map(|o| pos + o)
            .ok_or_else(|| ProtocolError::MalformedField(field_token(rest, start)))?;
        let key = &rest[start..eq];
        if key.is_empty() || key.contains(' ') {
            return Err(ProtocolError::MalformedField(field_token(rest, start)));
        }
        pos = eq + 1;
        let value = if bytes.get(pos) == Some(&b'"') {
            let close = rest[pos + 1..]
                .find('"')
                .map(|o| pos + 1 + o)
                .ok_or_else(|| ProtocolError::MalformedField(field_token(rest, start)))?;
            let v = &rest[pos + 1..close];
            pos = close + 1;
            v
        } else {
            let end = rest[pos..].find(' ').map(|o| pos + o).unwrap_or(rest.len());
            let v = &rest[pos..end];
            pos = end;
            v
        };
        fields.push((key.to_string(), value.to_string()));
    }
    Ok((verb.to_string(), fields))
}

fn field_token(rest: &str, start: usize) -> String {
    let end = rest[start..]
        .find(' ')
        .map(|o| start + o)
        .unwrap_or(rest.len());
    abbreviate(&rest[start..end])
}

/// Renders a field value, quoting when it contains spaces. The protocol
/// has no escape sequences, so the few characters that would break
/// framing (`"` and line breaks — they reach here via error messages
/// that quote hostile input) are replaced, never emitted. Clean tokens
/// (the overwhelmingly common case, including multi-MB hex payloads)
/// are borrowed, not copied.
fn render_value(v: &str) -> std::borrow::Cow<'_, str> {
    if !v.is_empty() && !v.contains([' ', '"', '\n', '\r']) {
        return std::borrow::Cow::Borrowed(v);
    }
    let clean: String = v
        .chars()
        .map(|c| match c {
            '"' => '\'',
            '\n' | '\r' => ' ',
            c => c,
        })
        .collect();
    if clean.contains(' ') || clean.is_empty() {
        std::borrow::Cow::Owned(format!("\"{clean}\""))
    } else {
        std::borrow::Cow::Owned(clean)
    }
}

struct Fields {
    map: Vec<(String, String)>,
}

impl Fields {
    fn new(pairs: Vec<(String, String)>) -> Self {
        Fields { map: pairs }
    }

    fn get(&self, key: &'static str) -> Option<&str> {
        self.map
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &'static str) -> Result<&str, ProtocolError> {
        self.get(key).ok_or(ProtocolError::MissingField(key))
    }

    fn parse<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ProtocolError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<T>().map_err(|_| ProtocolError::InvalidValue {
                field: key.to_string(),
                value: v.to_string(),
            }),
        }
    }
}

/// Extracts the propagated request id from a request line, if present.
///
/// By the trace-propagation rule (`DESIGN.md` §10) a relaying tier
/// appends ` rid=<rid>` as the **final** field of a forwarded line, so
/// only the last space-separated token is inspected — O(rid) even on a
/// multi-megabyte `ingest` line. Unknown `k=v` fields are already
/// tolerated by [`parse_request`], so a rid-bearing line stays parseable
/// by rid-unaware servers.
pub fn extract_rid(line: &str) -> Option<&str> {
    let last = line.trim_end_matches(['\r', '\n']).rsplit(' ').next()?;
    let rid = last.strip_prefix("rid=")?;
    snn_obs::valid_rid(rid).then_some(rid)
}

/// Whether `id` is a well-formed session id (non-empty, at most
/// [`MAX_SESSION_ID`] bytes of `[A-Za-z0-9._-]`). Routing tiers apply
/// the same rule before reserving table entries for an id.
pub fn valid_session_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_SESSION_ID
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

fn session_id(fields: &Fields) -> Result<String, ProtocolError> {
    let id = fields.required("id")?;
    if !valid_session_id(id) {
        return Err(ProtocolError::InvalidValue {
            field: "id".into(),
            value: abbreviate(id),
        });
    }
    Ok(id.to_string())
}

fn method_from_label(v: &str) -> Result<Method, ProtocolError> {
    match v {
        "baseline" => Ok(Method::Baseline),
        "asp" => Ok(Method::Asp),
        "spikedyn" => Ok(Method::SpikeDyn),
        _ => Err(ProtocolError::InvalidValue {
            field: "method".into(),
            value: v.to_string(),
        }),
    }
}

fn method_label(m: Method) -> &'static str {
    match m {
        Method::Baseline => "baseline",
        Method::Asp => "asp",
        Method::SpikeDyn => "spikedyn",
    }
}

// ---------------------------------------------------------------------------
// Request parse/format.

/// Parses one request line.
///
/// # Errors
///
/// Returns [`ProtocolError`] on unknown verbs, missing/invalid fields or
/// malformed payloads.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let (verb, pairs) = tokenize(line)?;
    let fields = Fields::new(pairs);
    match verb.as_str() {
        "hello" => {
            let proto = fields.required("proto")?;
            let proto = proto
                .parse::<u32>()
                .map_err(|_| ProtocolError::InvalidValue {
                    field: "proto".into(),
                    value: proto.to_string(),
                })?;
            Ok(Request::Hello { proto })
        }
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "journal" => Ok(Request::Journal),
        "subscribe" => {
            let interval_ms = fields.parse("interval_ms", 100u64)?;
            Ok(Request::Subscribe { interval_ms })
        }
        "open" => {
            let id = session_id(&fields)?;
            let defaults = SessionSpec::default();
            let method = match fields.get("method") {
                None => defaults.method,
                Some(v) => method_from_label(v)?,
            };
            let spec = SessionSpec {
                method,
                n_exc: fields.parse("n_exc", defaults.n_exc)?,
                n_input: fields.parse("n_input", defaults.n_input)?,
                n_classes: fields.parse("n_classes", defaults.n_classes)?,
                seed: fields.parse("seed", defaults.seed)?,
                batch_size: fields.parse("batch", defaults.batch_size)?,
                assign_every: fields.parse("assign_every", defaults.assign_every)?,
                reservoir_capacity: fields.parse("reservoir", defaults.reservoir_capacity)?,
                metric_window: fields.parse("metric_window", defaults.metric_window)?,
                drift_window: fields.parse("drift_window", defaults.drift_window)?,
            };
            Ok(Request::Open { id, spec })
        }
        "ingest" => {
            let id = session_id(&fields)?;
            let images = decode_images(&hex_decode(fields.required("data")?)?)?;
            Ok(Request::Ingest { id, images })
        }
        "report" => Ok(Request::Report {
            id: session_id(&fields)?,
        }),
        "energy" => Ok(Request::Energy {
            id: session_id(&fields)?,
        }),
        "checkpoint" => Ok(Request::Checkpoint {
            id: session_id(&fields)?,
        }),
        "restore" => Ok(Request::Restore {
            id: session_id(&fields)?,
            snapshot: hex_decode(fields.required("data")?)?,
        }),
        "swap" => Ok(Request::Swap {
            id: session_id(&fields)?,
            snapshot: hex_decode(fields.required("data")?)?,
        }),
        "shadow" => {
            let id = session_id(&fields)?;
            if fields.get("data").is_none() {
                return Ok(Request::ShadowGet { id });
            }
            let seq = fields.required("seq")?;
            let seq = seq
                .parse::<u64>()
                .map_err(|_| ProtocolError::InvalidValue {
                    field: "seq".into(),
                    value: seq.to_string(),
                })?;
            Ok(Request::Shadow {
                id,
                snapshot: hex_decode(fields.required("data")?)?,
                seq,
            })
        }
        "evict" => Ok(Request::Evict {
            id: session_id(&fields)?,
        }),
        "close" => Ok(Request::Close {
            id: session_id(&fields)?,
        }),
        "trace" => {
            let rid = fields.required("rid")?;
            if !snn_obs::valid_rid(rid) {
                return Err(ProtocolError::InvalidValue {
                    field: "rid".into(),
                    value: abbreviate(rid),
                });
            }
            Ok(Request::Trace {
                rid: rid.to_string(),
            })
        }
        _ => Err(ProtocolError::UnknownVerb(abbreviate(&verb))),
    }
}

/// Renders a request as its wire line (no trailing newline).
pub fn format_request(req: &Request) -> String {
    match req {
        Request::Hello { proto } => format!("hello proto={proto}"),
        Request::Ping => "ping".to_string(),
        Request::Stats => "stats".to_string(),
        Request::Metrics => "metrics".to_string(),
        Request::Journal => "journal".to_string(),
        Request::Subscribe { interval_ms } => format!("subscribe interval_ms={interval_ms}"),
        Request::Open { id, spec } => format!(
            "open id={id} method={} n_exc={} n_input={} n_classes={} seed={} batch={} \
             assign_every={} reservoir={} metric_window={} drift_window={}",
            method_label(spec.method),
            spec.n_exc,
            spec.n_input,
            spec.n_classes,
            spec.seed,
            spec.batch_size,
            spec.assign_every,
            spec.reservoir_capacity,
            spec.metric_window,
            spec.drift_window,
        ),
        Request::Ingest { id, images } => {
            format!("ingest id={id} data={}", hex_encode(&encode_images(images)))
        }
        Request::Report { id } => format!("report id={id}"),
        Request::Energy { id } => format!("energy id={id}"),
        Request::Checkpoint { id } => format!("checkpoint id={id}"),
        Request::Restore { id, snapshot } => {
            format!("restore id={id} data={}", hex_encode(snapshot))
        }
        Request::Swap { id, snapshot } => {
            format!("swap id={id} data={}", hex_encode(snapshot))
        }
        Request::Shadow { id, snapshot, seq } => {
            format!("shadow id={id} seq={seq} data={}", hex_encode(snapshot))
        }
        Request::ShadowGet { id } => format!("shadow id={id}"),
        Request::Evict { id } => format!("evict id={id}"),
        Request::Close { id } => format!("close id={id}"),
        // The target rid doubles as the line's trailing rid= field, so a
        // trace request's own span lands on the rid being traced.
        Request::Trace { rid } => format!("trace rid={rid}"),
    }
}

// ---------------------------------------------------------------------------
// Response parse/format.

/// Parses one response line.
///
/// # Errors
///
/// Returns [`ProtocolError`] on lines that start with neither `ok` nor
/// `err`, or on malformed fields.
pub fn parse_response(line: &str) -> Result<Response, ProtocolError> {
    let (verb, pairs) = tokenize(line)?;
    let fields = Fields::new(pairs);
    match verb.as_str() {
        "ok" => Ok(Response::Ok(fields.map)),
        "err" => Ok(Response::Err {
            code: fields.required("code")?.to_string(),
            msg: fields.get("msg").unwrap_or_default().to_string(),
        }),
        _ => Err(ProtocolError::UnknownVerb(abbreviate(&verb))),
    }
}

/// Renders a response as its wire line (no trailing newline).
pub fn format_response(resp: &Response) -> String {
    match resp {
        Response::Ok(pairs) => {
            let mut out = "ok".to_string();
            for (k, v) in pairs {
                out.push(' ');
                out.push_str(k);
                out.push('=');
                out.push_str(&render_value(v));
            }
            out
        }
        Response::Err { code, msg } => {
            format!("err code={} msg={}", render_value(code), render_value(msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn_data::SyntheticDigits;

    fn images(n: u64) -> Vec<Image> {
        let gen = SyntheticDigits::new(3);
        (0..n)
            .map(|i| gen.sample((i % 4) as u8, i).downsample(4))
            .collect()
    }

    #[test]
    fn hex_roundtrips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_encode(&[0xDE, 0xAD]), "dead");
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex digit");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn image_batch_roundtrips_bit_exactly() {
        let batch = images(5);
        let decoded = decode_images(&encode_images(&batch)).unwrap();
        assert_eq!(decoded, batch);
        assert!(decode_images(&encode_images(&[])).unwrap().is_empty());
    }

    #[test]
    fn image_batch_rejects_corruption() {
        let bytes = encode_images(&images(2));
        assert!(
            decode_images(&bytes[..bytes.len() - 3]).is_err(),
            "truncated"
        );
        let mut wrong_shape = bytes.clone();
        wrong_shape[8] ^= 1; // width no longer matches the pixel count
        assert!(decode_images(&wrong_shape).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_images(&trailing).is_err());
    }

    #[test]
    fn predictions_roundtrip() {
        let preds = vec![Some(3), None, Some(0), Some(9)];
        assert_eq!(encode_predictions(&preds), "3,_,0,9");
        assert_eq!(decode_predictions("3,_,0,9").unwrap(), preds);
        assert_eq!(decode_predictions("").unwrap(), vec![]);
        assert!(decode_predictions("3,x").is_err());
    }

    #[test]
    fn every_request_roundtrips() {
        let spec = SessionSpec {
            method: Method::Asp,
            n_exc: 24,
            seed: 99,
            batch_size: 4,
            ..SessionSpec::default()
        };
        let requests = vec![
            Request::Hello {
                proto: PROTO_VERSION,
            },
            Request::Ping,
            Request::Stats,
            Request::Metrics,
            Request::Journal,
            Request::Subscribe { interval_ms: 250 },
            Request::Open {
                id: "s-1".into(),
                spec,
            },
            Request::Ingest {
                id: "s-1".into(),
                images: images(3),
            },
            Request::Report { id: "s-1".into() },
            Request::Energy { id: "s-1".into() },
            Request::Checkpoint { id: "s-1".into() },
            Request::Restore {
                id: "r.2".into(),
                snapshot: vec![1, 2, 3, 255],
            },
            Request::Swap {
                id: "s-1".into(),
                snapshot: vec![9; 33],
            },
            Request::Shadow {
                id: "s-1".into(),
                snapshot: vec![7; 16],
                seq: 12_345,
            },
            Request::ShadowGet { id: "s-1".into() },
            Request::Evict { id: "s-1".into() },
            Request::Close { id: "s-1".into() },
            Request::Trace {
                rid: "s0-17".into(),
            },
        ];
        for req in requests {
            let line = format_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn rid_rides_as_the_final_field() {
        assert_eq!(extract_rid("ping rid=c0-7"), Some("c0-7"));
        assert_eq!(
            extract_rid("ingest id=a data=0101 rid=s1-42\n"),
            Some("s1-42")
        );
        assert_eq!(extract_rid("ping"), None, "no rid field");
        assert_eq!(
            extract_rid("ingest rid=c0-1 id=a data=00"),
            None,
            "rid must be the final field"
        );
        assert_eq!(extract_rid("ping rid="), None, "empty rid is invalid");
        assert_eq!(extract_rid("ping rid=\"x y\""), None, "quoted rid rejected");
        // A rid-bearing line still parses (unknown fields are tolerated).
        assert_eq!(parse_request("ping rid=c0-7").unwrap(), Request::Ping);
        assert_eq!(parse_request("metrics rid=c0-8").unwrap(), Request::Metrics);
    }

    #[test]
    fn open_defaults_apply() {
        let req = parse_request("open id=a").unwrap();
        match req {
            Request::Open { id, spec } => {
                assert_eq!(id, "a");
                assert_eq!(spec, SessionSpec::default());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip_including_quoted_messages() {
        let ok = Response::ok([("id", "s-1"), ("samples", "42"), ("predictions", "1,_,3")]);
        assert_eq!(parse_response(&format_response(&ok)).unwrap(), ok);
        let err = Response::error("backpressure", "session queue full (8 pending)");
        let line = format_response(&err);
        assert!(line.contains("msg=\"session queue full"));
        assert_eq!(parse_response(&line).unwrap(), err);
    }

    #[test]
    fn float_fields_roundtrip_losslessly_through_display() {
        // Rust's float Display is shortest-round-trip, so report fields
        // survive the wire exactly.
        for v in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 123_456.789_012_345] {
            let resp = Response::ok([("accuracy", v.to_string())]);
            let parsed = parse_response(&format_response(&resp)).unwrap();
            let back: f64 = parsed.get("accuracy").unwrap().parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn hostile_lines_error_cleanly() {
        for line in [
            "",
            "   ",
            "frobnicate id=x",
            "open",                       // missing id
            "open id=",                   // empty id
            "open id=has space",          // really `id=has` + junk token `space`
            "open id=ok!",                // invalid character
            "ingest id=a",                // missing data
            "ingest id=a data=zz",        // bad hex
            "shadow id=a data=00",        // missing seq
            "shadow id=a seq=no data=00", // non-numeric seq
            "open id=a n_exc=notanumber", // bad integer
            "hello",                      // missing proto
            "hello proto=latest",         // non-numeric proto
            "subscribe interval_ms=fast", // non-numeric interval
            "trace",                      // missing rid
            "trace rid=\"a b\"",          // rid with forbidden characters
            "err msg=\"unterminated",
            "ok =v",
        ] {
            assert!(
                parse_request(line).is_err() || parse_response(line).is_err(),
                "line should fail somewhere: {line:?}"
            );
        }
        let too_long = format!("open id={}", "x".repeat(MAX_SESSION_ID + 1));
        assert!(parse_request(&too_long).is_err());
    }

    #[test]
    fn multibyte_hostile_input_does_not_panic() {
        // The error paths abbreviate the offending value; a byte-offset
        // slice would panic when byte 32 splits a multibyte code point.
        let long_unicode = format!("open id={}é{}", "a".repeat(31), "b".repeat(30));
        assert!(parse_request(&long_unicode).is_err());
        let unicode_verb = format!("{}é{}", "v".repeat(31), "w".repeat(30));
        assert!(parse_request(&unicode_verb).is_err());
        assert!(hex_decode(&format!("{}é{}", "a".repeat(31), "b".repeat(31))).is_err());
    }

    #[test]
    fn session_spec_lowers_onto_online_config() {
        let spec = SessionSpec {
            method: Method::SpikeDyn,
            n_exc: 12,
            n_input: 49,
            n_classes: 4,
            seed: 7,
            batch_size: 4,
            assign_every: 8,
            reservoir_capacity: 16,
            metric_window: 12,
            drift_window: 8,
        };
        let cfg = spec.online_config();
        assert_eq!(cfg.n_exc, 12);
        assert_eq!(cfg.n_input, 49);
        assert_eq!(cfg.n_classes, 4);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.batch_size, 4);
        assert_eq!(cfg.assign_every, 8);
        assert_eq!(cfg.reservoir_capacity, 16);
        assert_eq!(cfg.metric_window, 12);
        assert_eq!(cfg.drift.window, 8);
    }
}
