//! Server-side observability: one [`snn_obs::Registry`] per server
//! instance plus cached handles for every hot-path metric, so recording
//! is always a lock-free atomic op (handle lookup happens once, here).
//!
//! The registry is **per [`crate::SessionManager`]**, never
//! process-global: the test and experiment harnesses run several servers
//! (cluster shards) in one process, and a cluster-wide scrape must see
//! each shard's numbers separately before merging them itself.
//!
//! Metric names follow the `DESIGN.md` §10 scheme
//! (`<layer>.<subsystem>.<metric>[_unit]`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use snn_obs::{Counter, Gauge, Histogram, Registry};
use snn_online::LearnerObs;

/// Verbs with a dedicated `serve.req.<verb>_us` latency histogram.
/// Anything else — unknown or hostile verbs included — lands in
/// `serve.req.other_us`, so a port scanner can never mint unbounded
/// metric names.
pub(crate) const VERBS: &[&str] = &[
    "hello",
    "ping",
    "stats",
    "metrics",
    "open",
    "ingest",
    "report",
    "energy",
    "checkpoint",
    "restore",
    "swap",
    "shadow",
    "evict",
    "close",
    "journal",
    "subscribe",
    "trace",
];

/// Process-wide instance sequence: each manager gets a distinct rid
/// prefix (`s0`, `s1`, …) so rids minted by co-hosted shards never
/// collide.
static INSTANCE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Cached metric handles of one server instance.
#[derive(Debug)]
pub(crate) struct ServeObs {
    pub(crate) registry: Arc<Registry>,
    /// `serve.requests` — wire requests handled (any verb, any outcome).
    pub(crate) requests: Arc<Counter>,
    /// `serve.admission_rejects` — opens/restores refused at the limit
    /// (duplicates included).
    pub(crate) admission_rejects: Arc<Counter>,
    /// `serve.backpressure_rejects` — submits refused on a full queue.
    pub(crate) backpressure_rejects: Arc<Counter>,
    /// `serve.evictions` — sessions checkpointed to disk and freed.
    pub(crate) evictions: Arc<Counter>,
    /// `serve.shadows` — shadow checkpoints currently parked on this
    /// server by other shards' routers.
    pub(crate) shadows: Arc<Gauge>,
    /// `serve.shadow.store_bytes` — size of each stored shadow blob.
    pub(crate) shadow_bytes: Arc<Histogram>,
    /// `serve.ingest.batch_size` — samples per ingest job.
    pub(crate) ingest_batch: Arc<Histogram>,
    /// `serve.subscribe.drops` — push frames dropped because a
    /// subscriber's bounded buffer was full (slow consumer). The sampler
    /// never blocks: it counts here and moves on. Per-subscriber
    /// breakdowns live next to it as `serve.subscribe.drops.sub<N>`
    /// (see [`ServeObs::subscriber`]).
    pub(crate) subscribe_drops: Arc<Counter>,
    /// `serve.phase.queue_wait_us` — time a job sat in its session queue
    /// between submit and its scheduler tick (the queue-wait phase of
    /// the request trace).
    pub(crate) queue_wait_us: Arc<Histogram>,
    /// `serve.phase.exec_us` — engine compute time per job (the exec
    /// phase of the request trace).
    pub(crate) exec_us: Arc<Histogram>,
    /// `serve.phase.write_us` — reply serialize/write time (the write
    /// phase of the request trace).
    pub(crate) write_us: Arc<Histogram>,
    /// `serve.wire.p2.tags_in_flight` — requests concurrently being
    /// served on multiplexed connections (sampled at each demux step).
    pub(crate) tags_in_flight: Arc<Gauge>,
    /// `serve.wire.p2.writer_queue` — response/push frames queued at the
    /// proto 2 writer threads, not yet on the socket.
    pub(crate) writer_queue: Arc<Gauge>,
    /// `serve.tick_us` — scheduler tick wall time.
    pub(crate) tick_us: Arc<Histogram>,
    /// `serve.tick.jobs` — jobs executed per tick.
    pub(crate) tick_jobs: Arc<Histogram>,
    /// `serve.session.retired_mj` — per-session modelled millijoules
    /// spent on this server, recorded when the session closes or evicts.
    pub(crate) retired_mj: Arc<Histogram>,
    /// `online.checkpoint.encode_us` / `_bytes` — snapshot wire encoding.
    pub(crate) encode_us: Arc<Histogram>,
    /// See [`ServeObs::encode_us`].
    pub(crate) encode_bytes: Arc<Histogram>,
    /// `online.checkpoint.decode_us` / `_bytes` — snapshot wire decoding
    /// (restore and swap payloads).
    pub(crate) decode_us: Arc<Histogram>,
    /// See [`ServeObs::decode_us`].
    pub(crate) decode_bytes: Arc<Histogram>,
    /// `runtime.infer.batches` / `.samples` / `.busy_us` — engine work,
    /// fed by per-tick deltas of each learner's engine counters.
    pub(crate) infer_batches: Arc<Counter>,
    /// See [`ServeObs::infer_batches`].
    pub(crate) infer_samples: Arc<Counter>,
    /// See [`ServeObs::infer_batches`].
    pub(crate) infer_busy_us: Arc<Counter>,
    /// `serve.wire.p{1,2}.rx_bytes` / `.tx_bytes` — frame-level bytes on
    /// the wire per protocol generation (proto 1 counts line bytes,
    /// proto 2 counts whole frames, header and checksum included).
    wire_rx: [Arc<Counter>; 2],
    /// See [`ServeObs::wire_rx`].
    wire_tx: [Arc<Counter>; 2],
    verb_us: HashMap<&'static str, Arc<Histogram>>,
    other_us: Arc<Histogram>,
    /// `serve.proto.p{1,2}.<verb>_us` — per-protocol verb latency, so a
    /// proto rollout's effect is visible per verb without a redeploy.
    proto_verb_us: [HashMap<&'static str, Arc<Histogram>>; 2],
    /// See [`ServeObs::proto_verb_us`] (the hostile-verb bucket).
    proto_other_us: [Arc<Histogram>; 2],
    /// Subscription sequence: each subscriber (proto 1 stream or proto 2
    /// push tag) gets the next number, labelling its drop counter.
    sub_seq: AtomicU64,
    /// Per-rid phase breakdown the scheduler stashes for the wire layer:
    /// rid → (queue_wait_us, exec_us). Taken (removed) when the request's
    /// latency exemplar is recorded, so a tail sample carries its own
    /// queue/exec split. Bounded: at capacity the map is cleared — the
    /// notes are best-effort annotation, never load-bearing state.
    phase_notes: std::sync::Mutex<HashMap<String, (u64, u64)>>,
}

/// Bound on stashed per-rid phase notes (see [`ServeObs::note_phases`]).
const PHASE_NOTE_CAP: usize = 1024;

impl ServeObs {
    /// A fresh registry with every hot-path handle pre-created. Creating
    /// the handles eagerly also fixes the exposition's name set, so a
    /// scrape of an idle server already shows the full schema.
    pub(crate) fn new() -> Self {
        let instance = format!("s{}", INSTANCE_SEQ.fetch_add(1, Ordering::Relaxed));
        let registry = Arc::new(Registry::new(&instance));
        let verb_us = VERBS
            .iter()
            .map(|&v| (v, registry.histogram(&format!("serve.req.{v}_us"))))
            .collect();
        let proto_verb_us = [1u32, 2].map(|p| {
            VERBS
                .iter()
                .map(|&v| (v, registry.histogram(&format!("serve.proto.p{p}.{v}_us"))))
                .collect()
        });
        let proto_other_us =
            [1u32, 2].map(|p| registry.histogram(&format!("serve.proto.p{p}.other_us")));
        let wire_rx = [1u32, 2].map(|p| registry.counter(&format!("serve.wire.p{p}.rx_bytes")));
        let wire_tx = [1u32, 2].map(|p| registry.counter(&format!("serve.wire.p{p}.tx_bytes")));
        ServeObs {
            requests: registry.counter("serve.requests"),
            admission_rejects: registry.counter("serve.admission_rejects"),
            backpressure_rejects: registry.counter("serve.backpressure_rejects"),
            evictions: registry.counter("serve.evictions"),
            shadows: registry.gauge("serve.shadows"),
            shadow_bytes: registry.histogram("serve.shadow.store_bytes"),
            ingest_batch: registry.histogram("serve.ingest.batch_size"),
            subscribe_drops: registry.counter("serve.subscribe.drops"),
            queue_wait_us: registry.histogram("serve.phase.queue_wait_us"),
            exec_us: registry.histogram("serve.phase.exec_us"),
            write_us: registry.histogram("serve.phase.write_us"),
            tags_in_flight: registry.gauge("serve.wire.p2.tags_in_flight"),
            writer_queue: registry.gauge("serve.wire.p2.writer_queue"),
            tick_us: registry.histogram("serve.tick_us"),
            tick_jobs: registry.histogram("serve.tick.jobs"),
            retired_mj: registry.histogram("serve.session.retired_mj"),
            encode_us: registry.histogram("online.checkpoint.encode_us"),
            encode_bytes: registry.histogram("online.checkpoint.encode_bytes"),
            decode_us: registry.histogram("online.checkpoint.decode_us"),
            decode_bytes: registry.histogram("online.checkpoint.decode_bytes"),
            infer_batches: registry.counter("runtime.infer.batches"),
            infer_samples: registry.counter("runtime.infer.samples"),
            infer_busy_us: registry.counter("runtime.infer.busy_us"),
            other_us: registry.histogram("serve.req.other_us"),
            verb_us,
            wire_rx,
            wire_tx,
            proto_verb_us,
            proto_other_us,
            sub_seq: AtomicU64::new(0),
            phase_notes: std::sync::Mutex::new(HashMap::new()),
            registry,
        }
    }

    /// Registers a new subscriber: its sequence number plus its
    /// dedicated drop counter (`serve.subscribe.drops.sub<N>`), created
    /// eagerly so even a drop-free subscriber shows up in the scrape.
    pub(crate) fn subscriber(&self) -> (u64, Arc<Counter>) {
        let seq = self.sub_seq.fetch_add(1, Ordering::Relaxed);
        (seq, self.sub_drop_counter(seq))
    }

    /// The per-subscriber drop counter for subscription `seq`.
    pub(crate) fn sub_drop_counter(&self, seq: u64) -> Arc<Counter> {
        self.registry
            .counter(&format!("serve.subscribe.drops.sub{seq}"))
    }

    /// Stashes a request's queue/exec phase split for the wire layer to
    /// attach to its latency exemplar (keyed by rid; empty rids are
    /// unattributed work and are skipped).
    pub(crate) fn note_phases(&self, rid: &str, queue_us: u64, exec_us: u64) {
        if rid.is_empty() {
            return;
        }
        let mut notes = self.phase_notes.lock().expect("phase notes poisoned");
        if notes.len() >= PHASE_NOTE_CAP {
            notes.clear();
        }
        notes.insert(rid.to_string(), (queue_us, exec_us));
    }

    /// Takes (removes) the stashed phase split for `rid`, if any.
    pub(crate) fn take_phases(&self, rid: &str) -> Option<(u64, u64)> {
        self.phase_notes
            .lock()
            .expect("phase notes poisoned")
            .remove(rid)
    }

    /// Records one completed request against the verb latency histogram
    /// *and* its tail-latency exemplar: the exemplar keeps the rid plus
    /// the canonical verb and — when the scheduler stashed one — the
    /// request's queue/exec phase split, so a bad p99 bucket points at a
    /// concrete, explainable request.
    pub(crate) fn record_request(&self, verb: &str, dur: std::time::Duration, rid: &str) {
        self.verb_hist(verb).record_duration(dur);
        let canonical = if VERBS.contains(&verb) { verb } else { "other" };
        let us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let mut fields: Vec<(&str, String)> = vec![("verb", canonical.to_string())];
        if let Some((queue_us, exec_us)) = self.take_phases(rid) {
            fields.push(("queue_us", queue_us.to_string()));
            fields.push(("exec_us", exec_us.to_string()));
        }
        self.registry
            .exemplar(&format!("serve.req.{canonical}_us"), us, rid, &fields);
    }

    /// The latency histogram for `verb` (the `other` bucket for verbs
    /// outside [`VERBS`]).
    pub(crate) fn verb_hist(&self, verb: &str) -> &Arc<Histogram> {
        self.verb_us.get(verb).unwrap_or(&self.other_us)
    }

    /// Index into the fixed per-protocol metric arrays: everything at or
    /// above proto 2 shares the binary-framing bucket.
    fn proto_idx(proto: u32) -> usize {
        usize::from(proto >= 2)
    }

    /// The per-protocol latency histogram for `verb` (with the same
    /// hostile-verb collapse rule as [`ServeObs::verb_hist`]).
    pub(crate) fn proto_verb_hist(&self, proto: u32, verb: &str) -> &Arc<Histogram> {
        let i = Self::proto_idx(proto);
        self.proto_verb_us[i]
            .get(verb)
            .unwrap_or(&self.proto_other_us[i])
    }

    /// Counts frame-level bytes on the wire for one protocol generation.
    pub(crate) fn count_wire(&self, proto: u32, rx_bytes: u64, tx_bytes: u64) {
        let i = Self::proto_idx(proto);
        self.wire_rx[i].add(rx_bytes);
        self.wire_tx[i].add(tx_bytes);
    }

    /// The handles a hosted [`snn_online::OnlineLearner`] records its
    /// lifecycle events through (drift, adaptive responses, checkpoint
    /// build time).
    pub(crate) fn learner_obs(&self) -> LearnerObs {
        LearnerObs {
            drift_events: self.registry.counter("online.drift_events"),
            adaptive_responses: self.registry.counter("online.adaptive_responses"),
            checkpoint_build_us: self.registry.histogram("online.checkpoint.build_us"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_verbs_share_one_histogram() {
        let obs = ServeObs::new();
        obs.verb_hist("ingest").record(5);
        obs.verb_hist("GET / HTTP/1.1").record(7);
        obs.verb_hist("%%%").record(9);
        let snap = obs.registry.snapshot();
        assert_eq!(snap.histogram("serve.req.ingest_us").count(), 1);
        assert_eq!(
            snap.histogram("serve.req.other_us").count(),
            2,
            "hostile verbs collapse into one bucket"
        );
        // The schema is fixed at construction: every known verb's
        // histogram exists before any request arrives.
        for v in VERBS {
            assert!(
                snap.histograms.contains_key(&format!("serve.req.{v}_us")),
                "missing serve.req.{v}_us"
            );
        }
    }

    #[test]
    fn request_exemplars_carry_phase_notes() {
        let obs = ServeObs::new();
        obs.note_phases("s9-1", 40, 60);
        obs.record_request("ingest", std::time::Duration::from_micros(120), "s9-1");
        let snap = obs.registry.snapshot();
        let e = snap.worst_exemplar("serve.req.ingest_us").unwrap();
        assert_eq!(e.rid, "s9-1");
        assert_eq!(e.field("verb"), Some("ingest"));
        assert_eq!(e.field("queue_us"), Some("40"));
        assert_eq!(e.field("exec_us"), Some("60"));
        assert!(obs.take_phases("s9-1").is_none(), "notes are take-once");
        // Hostile verbs collapse into the `other` exemplar like the
        // histogram fallback, so they cannot mint unbounded names.
        obs.record_request(
            "GET / HTTP/1.1",
            std::time::Duration::from_micros(7),
            "s9-2",
        );
        let snap = obs.registry.snapshot();
        assert_eq!(
            snap.worst_exemplar("serve.req.other_us").unwrap().rid,
            "s9-2"
        );
    }

    #[test]
    fn subscribers_get_distinct_drop_counters() {
        let obs = ServeObs::new();
        let (s0, c0) = obs.subscriber();
        let (s1, c1) = obs.subscriber();
        assert_ne!(s0, s1);
        c1.inc();
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counter(&format!("serve.subscribe.drops.sub{s1}")), 1);
        assert_eq!(snap.counter(&format!("serve.subscribe.drops.sub{s0}")), 0);
        drop(c0);
    }

    #[test]
    fn instances_get_distinct_rid_prefixes() {
        let a = ServeObs::new();
        let b = ServeObs::new();
        assert_ne!(a.registry.instance(), b.registry.instance());
    }
}
