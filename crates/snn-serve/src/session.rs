//! Session registry: admission control, bounded per-session queues, and
//! the hand-off point between connection threads and the scheduler.
//!
//! The [`SessionManager`] owns every session's [`OnlineLearner`] plus a
//! bounded FIFO of pending jobs. Connection threads *submit* jobs and
//! block on a reply channel; the scheduler *takes* every ready session's
//! drained queue as one tick of work (`SessionManager::take_work`),
//! executes ticks cross-session in parallel, and returns learners via
//! `SessionManager::finish`. A session whose learner is checked out is
//! simply not ready — its queue keeps absorbing jobs (up to the bound)
//! and is picked up next tick, so per-session FIFO order is preserved
//! while different sessions proceed concurrently.
//!
//! ## Admission and backpressure rules
//!
//! * `open`/`restore` are rejected with [`ServeError::Admission`] once
//!   `max_sessions` sessions exist (closing sessions count until fully
//!   removed), and with [`ServeError::DuplicateSession`] on id reuse.
//! * Each session's queue holds at most `queue_capacity` jobs; a submit
//!   against a full queue fails *immediately* with
//!   [`ServeError::Backpressure`] — the server never buffers unboundedly
//!   and never blocks a connection thread on another session's work.
//! * After a `close` is accepted the session stops admitting jobs
//!   ([`ServeError::SessionClosing`]); jobs already queued behind the
//!   close are answered with the same error.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use neuro_energy::GpuSpec;
use snn_data::Image;
use snn_online::{EnergyReport, ModelSnapshot, OnlineLearner, OnlineReport, StepOutcome};
use snn_runtime::{PoolHandle, ReplicaPool};

use crate::obs::ServeObs;
use crate::protocol::SessionSpec;
use crate::scheduler::{FinishedUnit, WorkUnit};

/// Admission and queueing limits of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeLimits {
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
    /// Maximum queued jobs per session (backpressure bound).
    pub queue_capacity: usize,
    /// Maximum samples per `ingest` request.
    pub max_batch: usize,
    /// Fairness cap: at most this many jobs of one session run per tick;
    /// the remainder stays queued and round-robins into later ticks, so a
    /// chatty session cannot stretch a tick's wall-clock for everyone.
    pub max_jobs_per_tick: usize,
    /// Evict sessions idle for this long (checkpoint to the server's
    /// evict directory, free the learner). `None` disables the sweep;
    /// eviction also requires [`crate::ServerConfig::evict_dir`].
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeLimits {
    fn default() -> Self {
        ServeLimits {
            max_sessions: 32,
            queue_capacity: 8,
            max_batch: 256,
            max_jobs_per_tick: 4,
            idle_timeout: None,
        }
    }
}

/// Server-wide counters, as returned by the `stats` request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerStats {
    /// Currently open sessions (including ones draining towards close).
    pub sessions: usize,
    /// Admission limit.
    pub max_sessions: usize,
    /// Jobs queued across all sessions right now.
    pub queued_jobs: usize,
    /// Scheduler ticks run so far (one tick = one cross-session batch).
    pub ticks: u64,
    /// Stream samples ingested across all sessions.
    pub total_samples: u64,
    /// Sessions evicted to disk whose checkpoints are still claimable.
    pub evicted_sessions: usize,
    /// Modelled joules (train + infer) expended **on this server** by
    /// every session it has hosted, including closed and evicted ones —
    /// the number a cluster tier aggregates per shard. Work a restored
    /// checkpoint did elsewhere is billed where it ran, so migrating a
    /// session never double-counts its history.
    pub total_j: f64,
    /// Whole seconds since this server's registry was created — scrapes
    /// of a mixed-age cluster can tell a fresh replacement shard from a
    /// long-lived one.
    pub uptime_s: u64,
}

/// Everything that can go wrong serving a request, with a stable wire
/// code per variant ([`ServeError::code`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is at its session limit.
    Admission {
        /// Open sessions.
        active: usize,
        /// The limit.
        max: usize,
    },
    /// The session id is already in use.
    DuplicateSession(String),
    /// No session with this id exists.
    UnknownSession(String),
    /// The session's job queue is full.
    Backpressure {
        /// Jobs pending.
        depth: usize,
        /// The queue bound.
        capacity: usize,
    },
    /// The session has a close pending and admits no further jobs.
    SessionClosing(String),
    /// The session was evicted to disk; the payload is the restore path.
    /// The wire message for this code is exactly the path (no prose), so
    /// clients and the cluster tier can recover the checkpoint location
    /// without parsing free text.
    SessionEvicted(String),
    /// The request was structurally valid but semantically unacceptable.
    BadRequest(String),
    /// A snapshot payload failed to decode or validate.
    Snapshot(String),
    /// The learner rejected the operation (for example a sample whose
    /// pixel count does not match the session's input layer).
    Learner(String),
    /// A shadow payload is out of sequence: its claimed `seq` does not
    /// match the snapshot's `samples_seen`, or an older shadow arrived
    /// after a newer one was stored. A failover tier treats this as
    /// proof it must NOT replay from this blob.
    ShadowStale(String),
    /// The server is shutting down.
    Shutdown,
}

impl ServeError {
    /// The stable machine-readable code carried on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Admission { .. } => "admission",
            ServeError::DuplicateSession(_) => "duplicate-session",
            ServeError::UnknownSession(_) => "unknown-session",
            ServeError::Backpressure { .. } => "backpressure",
            ServeError::SessionClosing(_) => "session-closing",
            ServeError::SessionEvicted(_) => "session-evicted",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::Snapshot(_) => "snapshot",
            ServeError::Learner(_) => "learner",
            ServeError::ShadowStale(_) => "shadow-stale",
            ServeError::Shutdown => "shutdown",
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Admission { active, max } => {
                write!(f, "session limit reached ({active}/{max})")
            }
            ServeError::DuplicateSession(id) => write!(f, "session {id} already exists"),
            ServeError::UnknownSession(id) => write!(f, "no session {id}"),
            ServeError::Backpressure { depth, capacity } => {
                write!(f, "session queue full ({depth}/{capacity} pending)")
            }
            ServeError::SessionClosing(id) => write!(f, "session {id} is closing"),
            // Deliberately the bare path: see the variant docs.
            ServeError::SessionEvicted(path) => write!(f, "{path}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Snapshot(msg) => write!(f, "snapshot rejected: {msg}"),
            ServeError::Learner(msg) => write!(f, "learner error: {msg}"),
            ServeError::ShadowStale(msg) => write!(f, "stale shadow: {msg}"),
            ServeError::Shutdown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued unit of session work.
#[derive(Debug)]
pub(crate) enum Job {
    /// Feed a micro-batch.
    Ingest(Vec<Image>),
    /// Current prequential report.
    Report,
    /// Modelled energy totals.
    Energy,
    /// Serialise the session state.
    Checkpoint,
    /// Hot-swap onto a snapshot.
    Swap(Vec<u8>),
    /// Checkpoint to the evict directory, then free the learner.
    Evict,
    /// Final report, then remove the session.
    Close,
}

/// What a successfully executed [`Job`] produced.
#[derive(Debug)]
pub(crate) enum JobOutput {
    /// Outcome of an ingest step, plus the session's cumulative modelled
    /// joules (train + infer) afterwards — carried on the wire so a
    /// budget-enforcing tier needs no extra `energy` round trip.
    Ingested(StepOutcome, f64),
    /// A prequential report.
    Report(OnlineReport),
    /// Energy totals.
    Energy(EnergyReport),
    /// Serialised snapshot bytes.
    Checkpoint(Vec<u8>),
    /// The swap took effect; the session now sits at this stream position.
    Swapped {
        /// Samples seen by the adopted state.
        samples_seen: u64,
        /// The session's cumulative joules after adopting the snapshot
        /// (the adopted state's carried history — budget tiers rebase on
        /// this).
        total_j: f64,
    },
    /// The session's state was checkpointed to this path and its learner
    /// freed.
    Evicted(PathBuf),
    /// The session's final report.
    Closed(OnlineReport),
}

pub(crate) type JobResult = Result<JobOutput, ServeError>;

/// A job plus the channel its reply goes out on and the request id that
/// originated it (for trace spans; empty when unattributed).
#[derive(Debug)]
pub(crate) struct Envelope {
    pub(crate) job: Job,
    pub(crate) rid: String,
    pub(crate) reply: mpsc::Sender<JobResult>,
    /// When the job entered its session queue; the scheduler turns the
    /// gap to execution into the trace's queue-wait phase.
    pub(crate) enqueued: Instant,
}

/// Bounds a wire-supplied session spec before any construction happens:
/// `OnlineLearner::new` asserts on zero-valued knobs (a panic would kill
/// the connection thread with no response), and unchecked sizes would let
/// one hostile `open` drive network allocation to OOM before admission.
fn validate_spec(spec: &SessionSpec) -> Result<(), ServeError> {
    let checks = [
        ("n_exc", spec.n_exc >= 1 && spec.n_exc <= 1 << 14),
        ("n_input", spec.n_input >= 1 && spec.n_input <= 1 << 16),
        ("n_classes", spec.n_classes >= 1 && spec.n_classes <= 256),
        ("batch", spec.batch_size >= 1 && spec.batch_size <= 1 << 16),
        ("assign_every", spec.assign_every >= 1),
        // The per-field caps alone still admit a 2^14 × 2^16 weight
        // matrix (4 GiB); the product cap bounds the whole network to
        // ≤ 16M synapses (64 MiB) before anything is allocated.
        (
            "n_exc*n_input",
            spec.n_exc.saturating_mul(spec.n_input) <= 1 << 24,
        ),
        (
            "reservoir",
            spec.reservoir_capacity >= 1 && spec.reservoir_capacity <= 1 << 16,
        ),
        (
            "metric_window",
            spec.metric_window >= 1 && spec.metric_window <= 1 << 20,
        ),
        (
            "drift_window",
            spec.drift_window >= 1 && spec.drift_window <= 1 << 20,
        ),
    ];
    for (name, ok) in checks {
        if !ok {
            return Err(ServeError::BadRequest(format!(
                "session spec field {name} is zero or out of range"
            )));
        }
    }
    Ok(())
}

#[derive(Debug)]
struct SessionEntry {
    /// `None` while the scheduler has the learner checked out.
    learner: Option<OnlineLearner>,
    queue: VecDeque<Envelope>,
    closing: bool,
    /// Last submit or tick completion; drives the idle-eviction sweep.
    last_active: Instant,
    /// Modelled joules at the end of the session's last tick. Cumulative
    /// from the learner's birth — op counters survive checkpoints, so a
    /// restored session carries its history here.
    joules: f64,
    /// The learner's joules when this server admitted it. The session's
    /// contribution to this server's `total_j` is `joules - baseline_j`,
    /// so restoring or migrating a checkpoint never double-counts the
    /// energy already billed where the work actually ran.
    baseline_j: f64,
}

#[derive(Debug)]
struct Registry {
    sessions: HashMap<String, SessionEntry>,
    /// Sessions checkpointed to disk by eviction: id → restore path.
    /// Cleared when the id is reused by a successful `open`/`restore`.
    evicted: HashMap<String, PathBuf>,
    /// Joules expended *on this server* by sessions that have closed or
    /// been evicted (final minus admission baseline, per session).
    retired_j: f64,
    shutdown: bool,
    ticks: u64,
    total_samples: u64,
}

/// Bound on shadow checkpoints held per server (the `shadow` verb's
/// store). A shard shadows roughly its ring predecessor's sessions, so
/// this sits well above any realistic `max_sessions`; at the bound the
/// lowest-sequence (oldest-progress) entry is evicted, never the write
/// rejected — a wedged store would silently stop failover protection.
pub const SHADOW_CAPACITY: usize = 256;

/// One stored shadow checkpoint: the blob plus its stream position.
#[derive(Debug)]
struct ShadowEntry {
    seq: u64,
    bytes: Vec<u8>,
}

/// The shared session registry. See the module docs for the rules.
#[derive(Debug)]
pub struct SessionManager {
    state: Mutex<Registry>,
    work_ready: Condvar,
    pool: PoolHandle,
    limits: ServeLimits,
    gpu: GpuSpec,
    evict_dir: Option<PathBuf>,
    /// Shadow checkpoints parked here by other shards' routers (id →
    /// blob + seq). Independent of the session registry: storing a
    /// shadow opens no live session and touches no learner.
    shadows: Mutex<HashMap<String, ShadowEntry>>,
    obs: ServeObs,
}

impl SessionManager {
    /// Creates an empty registry with one shared replica pool. Eviction
    /// (idle-timeout sweeps and the `evict` request) stays disabled
    /// unless `evict_dir` names a directory to checkpoint victims into.
    pub fn new(limits: ServeLimits, gpu: GpuSpec, evict_dir: Option<PathBuf>) -> Self {
        SessionManager {
            state: Mutex::new(Registry {
                sessions: HashMap::new(),
                evicted: HashMap::new(),
                retired_j: 0.0,
                shutdown: false,
                ticks: 0,
                total_samples: 0,
            }),
            work_ready: Condvar::new(),
            // Bounded to peak concurrent demand: a tick runs up to
            // `cores` sessions in parallel and each session's engine
            // fans its batch out over up to `cores` workers (the
            // vendored rayon spawns scoped threads per call — the
            // fan-outs nest rather than share), so ~cores² replicas can
            // be live at once. The clamp keeps the idle working set from
            // growing with session or stale-architecture count over the
            // server's lifetime; under oversubscription beyond the cap,
            // restores drop and later batches re-clone (bounded memory
            // over clone avoidance).
            pool: std::sync::Arc::new(ReplicaPool::with_capacity(
                rayon::current_num_threads()
                    .saturating_mul(rayon::current_num_threads())
                    .clamp(8, 128),
            )),
            limits,
            gpu,
            evict_dir,
            shadows: Mutex::new(HashMap::new()),
            obs: ServeObs::new(),
        }
    }

    /// This server's metric registry and cached handles.
    pub(crate) fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// The manager's limits.
    pub fn limits(&self) -> &ServeLimits {
        &self.limits
    }

    pub(crate) fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Whether this server can evict (an evict directory is configured).
    /// Advertised in the `hello` banner so routing tiers can refuse
    /// energy budgets on shards that could never enforce them.
    pub(crate) fn eviction_enabled(&self) -> bool {
        self.evict_dir.is_some()
    }

    /// Where an evicted session's checkpoint lands, or `None` when this
    /// server was configured without an evict directory.
    pub(crate) fn evict_path(&self, id: &str) -> Option<PathBuf> {
        self.evict_dir
            .as_ref()
            .map(|d| d.join(format!("{id}.sdyn")))
    }

    /// Opens a fresh session. The learner is built *outside* the registry
    /// lock (network init is the expensive part); admission is enforced
    /// atomically at insert.
    pub(crate) fn open(&self, id: &str, spec: &SessionSpec) -> Result<(), ServeError> {
        validate_spec(spec)?;
        let mut learner =
            OnlineLearner::with_pool(spec.online_config(), std::sync::Arc::clone(&self.pool));
        learner.set_obs(self.obs.learner_obs());
        self.insert(id, learner)
    }

    /// Opens a new session restored from snapshot bytes. Returns the
    /// restored stream position and the cumulative joules the snapshot
    /// carries (so a budget-enforcing tier can set its baseline without
    /// an extra round trip).
    pub(crate) fn open_restored(
        &self,
        id: &str,
        snapshot: &[u8],
    ) -> Result<(u64, f64), ServeError> {
        let t0 = Instant::now();
        let snap =
            ModelSnapshot::from_bytes(snapshot).map_err(|e| ServeError::Snapshot(e.to_string()))?;
        let mut learner = OnlineLearner::resume_with_pool(snap, std::sync::Arc::clone(&self.pool))
            .map_err(|e| ServeError::Snapshot(e.to_string()))?;
        self.obs.decode_us.record_duration(t0.elapsed());
        self.obs.decode_bytes.record(snapshot.len() as u64);
        learner.set_obs(self.obs.learner_obs());
        let samples = learner.samples_seen();
        let energy = learner.energy(&self.gpu);
        let total_j = energy.train_j + energy.infer_j;
        self.insert(id, learner)?;
        Ok((samples, total_j))
    }

    fn insert(&self, id: &str, learner: OnlineLearner) -> Result<(), ServeError> {
        // Priced outside the lock: a restored learner arrives carrying
        // the op counters of work done elsewhere.
        let admitted = learner.energy(&self.gpu);
        let baseline_j = admitted.train_j + admitted.infer_j;
        let mut state = self.state.lock().expect("session registry poisoned");
        if state.shutdown {
            return Err(ServeError::Shutdown);
        }
        if state.sessions.contains_key(id) {
            self.obs.admission_rejects.inc();
            return Err(ServeError::DuplicateSession(id.to_string()));
        }
        if state.sessions.len() >= self.limits.max_sessions {
            self.obs.admission_rejects.inc();
            return Err(ServeError::Admission {
                active: state.sessions.len(),
                max: self.limits.max_sessions,
            });
        }
        // Reusing an evicted id supersedes the on-disk tombstone.
        state.evicted.remove(id);
        state.sessions.insert(
            id.to_string(),
            SessionEntry {
                learner: Some(learner),
                queue: VecDeque::new(),
                closing: false,
                last_active: Instant::now(),
                joules: baseline_j,
                baseline_j,
            },
        );
        drop(state);
        // A live session on this server supersedes any shadow copy
        // parked here under the same id (e.g. a failover restored the
        // session onto its own shadow holder).
        self.drop_shadow(id);
        Ok(())
    }

    /// Queues a job on a session, enforcing the backpressure bound. A
    /// `Close` job flips the session into its closing state.
    pub(crate) fn submit(
        &self,
        id: &str,
        job: Job,
        rid: &str,
        reply: mpsc::Sender<JobResult>,
    ) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("session registry poisoned");
        if state.shutdown {
            return Err(ServeError::Shutdown);
        }
        if let Some(path) = state.evicted.get(id) {
            return Err(ServeError::SessionEvicted(path.display().to_string()));
        }
        let entry = state
            .sessions
            .get_mut(id)
            .ok_or_else(|| ServeError::UnknownSession(id.to_string()))?;
        if entry.closing {
            return Err(ServeError::SessionClosing(id.to_string()));
        }
        if entry.queue.len() >= self.limits.queue_capacity {
            self.obs.backpressure_rejects.inc();
            return Err(ServeError::Backpressure {
                depth: entry.queue.len(),
                capacity: self.limits.queue_capacity,
            });
        }
        if matches!(job, Job::Close) {
            entry.closing = true;
        }
        entry.last_active = Instant::now();
        entry.queue.push_back(Envelope {
            job,
            rid: rid.to_string(),
            reply,
            enqueued: Instant::now(),
        });
        drop(state);
        self.work_ready.notify_all();
        Ok(())
    }

    /// Blocks until at least one session is ready (learner present and
    /// queue non-empty), then takes up to `max_jobs_per_tick` jobs from
    /// **every** ready session as one tick of work; a longer queue keeps
    /// its remainder and becomes ready again next tick (round-robin
    /// across ticks, so one chatty session cannot monopolise a tick).
    /// With idle eviction configured, sessions idle past the timeout are
    /// turned into eviction work on the same ticks. Returns `None` only
    /// at shutdown with no work left, so pending jobs always drain before
    /// the scheduler exits.
    pub(crate) fn take_work(&self) -> Option<Vec<WorkUnit>> {
        let per_tick = self.limits.max_jobs_per_tick.max(1);
        let sweep = match (self.limits.idle_timeout, &self.evict_dir) {
            (Some(timeout), Some(_)) => Some(timeout),
            _ => None,
        };
        let mut state = self.state.lock().expect("session registry poisoned");
        loop {
            let mut units = Vec::new();
            for (id, entry) in state.sessions.iter_mut() {
                if entry.learner.is_none() {
                    continue;
                }
                if !entry.queue.is_empty() {
                    let take = entry.queue.len().min(per_tick);
                    units.push(WorkUnit {
                        id: id.clone(),
                        learner: entry.learner.take().expect("checked is_some"),
                        jobs: entry.queue.drain(..take).collect(),
                    });
                } else if let Some(timeout) = sweep {
                    if !entry.closing && entry.last_active.elapsed() >= timeout {
                        // Synthesised eviction: the reply receiver is
                        // dropped immediately — nobody waits on a sweep.
                        let (reply, _) = mpsc::channel();
                        units.push(WorkUnit {
                            id: id.clone(),
                            learner: entry.learner.take().expect("checked is_some"),
                            jobs: vec![Envelope {
                                job: Job::Evict,
                                // Sweeps originate server-side; mint a rid
                                // so the eviction span is still traceable.
                                rid: self.obs.registry.mint_rid(),
                                reply,
                                enqueued: Instant::now(),
                            }],
                        });
                    }
                }
            }
            if !units.is_empty() {
                state.ticks += 1;
                // Deterministic processing order for logs/tests (HashMap
                // iteration order is arbitrary).
                units.sort_by(|a, b| a.id.cmp(&b.id));
                return Some(units);
            }
            if state.shutdown {
                return None;
            }
            state = match sweep {
                // The sweep needs periodic wake-ups even when no job ever
                // arrives; bound the nap so eviction lags the timeout by
                // at most ~a quarter of it.
                Some(timeout) => {
                    let nap = (timeout / 4).min(Duration::from_millis(250));
                    self.work_ready
                        .wait_timeout(state, nap)
                        .expect("session registry poisoned")
                        .0
                }
                None => self
                    .work_ready
                    .wait(state)
                    .expect("session registry poisoned"),
            };
        }
    }

    /// Returns learners after a tick, removes closed or evicted sessions
    /// (answering any jobs that raced in behind the close/evict), and
    /// wakes the scheduler if queues refilled while their learners were
    /// checked out.
    pub(crate) fn finish(&self, finished: Vec<FinishedUnit>) {
        let mut deferred = Vec::new();
        let mut state = self.state.lock().expect("session registry poisoned");
        for unit in finished {
            state.total_samples += unit.samples_delta;
            match unit.learner {
                Some(learner) => {
                    if let Some(entry) = state.sessions.get_mut(&unit.id) {
                        entry.learner = Some(learner);
                        entry.joules = unit.joules;
                        // A hot swap replaces the learner's cumulative op
                        // counters wholesale; shifting the baseline by the
                        // jump keeps `joules - baseline_j` — the session's
                        // spend on THIS server — continuous across it.
                        entry.baseline_j += unit.baseline_shift;
                        entry.last_active = Instant::now();
                    }
                }
                None => {
                    if let Some(path) = unit.evicted.clone() {
                        self.obs.evictions.inc();
                        state.evicted.insert(unit.id.clone(), path);
                    }
                    if let Some(entry) = state.sessions.remove(&unit.id) {
                        let spent_j = unit.joules - (entry.baseline_j + unit.baseline_shift);
                        self.obs
                            .retired_mj
                            .record((spent_j.max(0.0) * 1e3).round() as u64);
                        state.retired_j += spent_j;
                        for envelope in entry.queue {
                            let err = match &unit.evicted {
                                Some(path) => {
                                    ServeError::SessionEvicted(path.display().to_string())
                                }
                                None => ServeError::SessionClosing(unit.id.clone()),
                            };
                            deferred.push((envelope.reply, Err(err)));
                        }
                    }
                }
            }
            deferred.extend(unit.deferred);
        }
        drop(state);
        // Close-path replies go out only now, after the registry update:
        // a client holding its `close` reply can reuse the id at once.
        for (reply, result) in deferred {
            let _ = reply.send(result);
        }
        self.work_ready.notify_all();
    }

    /// Stores a shadow checkpoint for `id` without opening a session.
    /// The blob must be a valid [`ModelSnapshot`] whose `samples_seen`
    /// equals the claimed `seq`, and `seq` must not regress below an
    /// already-stored shadow for the same id — both violations come back
    /// as [`ServeError::ShadowStale`], the failover tier's proof that
    /// this blob must not be replayed.
    pub(crate) fn store_shadow(
        &self,
        id: &str,
        seq: u64,
        bytes: Vec<u8>,
    ) -> Result<(), ServeError> {
        let snap =
            ModelSnapshot::from_bytes(&bytes).map_err(|e| ServeError::Snapshot(e.to_string()))?;
        if snap.samples_seen != seq {
            return Err(ServeError::ShadowStale(format!(
                "claimed seq {seq} but snapshot sits at {}",
                snap.samples_seen
            )));
        }
        let mut shadows = self.shadows.lock().expect("shadow store poisoned");
        if let Some(existing) = shadows.get(id) {
            if existing.seq > seq {
                return Err(ServeError::ShadowStale(format!(
                    "shadow at seq {} already stored, refusing regression to {seq}",
                    existing.seq
                )));
            }
        } else if shadows.len() >= SHADOW_CAPACITY {
            // Evict the entry with the least stream progress rather than
            // rejecting: a full store must not wedge shadowing.
            if let Some(oldest) = shadows
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(k, _)| k.clone())
            {
                shadows.remove(&oldest);
            }
        }
        self.obs.shadow_bytes.record(bytes.len() as u64);
        shadows.insert(id.to_string(), ShadowEntry { seq, bytes });
        self.obs.shadows.set(shadows.len() as f64);
        Ok(())
    }

    /// The stored shadow for `id` (seq, blob), if any. The entry stays in
    /// the store — a failover may retry its restore on another shard.
    pub(crate) fn fetch_shadow(&self, id: &str) -> Option<(u64, Vec<u8>)> {
        self.shadows
            .lock()
            .expect("shadow store poisoned")
            .get(id)
            .map(|e| (e.seq, e.bytes.clone()))
    }

    /// Drops the stored shadow for `id`, if any (sessions that closed
    /// cleanly no longer need failover cover).
    pub(crate) fn drop_shadow(&self, id: &str) {
        let mut shadows = self.shadows.lock().expect("shadow store poisoned");
        shadows.remove(id);
        self.obs.shadows.set(shadows.len() as f64);
    }

    /// Current server-wide counters.
    pub fn stats(&self) -> ServerStats {
        let state = self.state.lock().expect("session registry poisoned");
        ServerStats {
            sessions: state.sessions.len(),
            max_sessions: self.limits.max_sessions,
            queued_jobs: state.sessions.values().map(|e| e.queue.len()).sum(),
            ticks: state.ticks,
            total_samples: state.total_samples,
            evicted_sessions: state.evicted.len(),
            total_j: state.retired_j
                + state
                    .sessions
                    .values()
                    .map(|e| e.joules - e.baseline_j)
                    .sum::<f64>(),
            uptime_s: self.obs.registry.uptime_us() / 1_000_000,
        }
    }

    /// Renders this server's full metrics exposition (`snn-obs` text
    /// format): the cumulative counters/histograms/spans plus
    /// point-in-time gauges (session count, queue depth, joules, replica
    /// pool state) published at scrape time. Served by the `metrics`
    /// wire verb, hex-encoded into the reply's `data` field.
    pub fn metrics_text(&self) -> String {
        let stats = self.stats();
        let r = &self.obs.registry;
        r.gauge("serve.sessions").set(stats.sessions as f64);
        r.gauge("serve.queued_jobs").set(stats.queued_jobs as f64);
        r.gauge("serve.evicted_sessions")
            .set(stats.evicted_sessions as f64);
        r.gauge("serve.ticks").set(stats.ticks as f64);
        r.gauge("serve.total_samples")
            .set(stats.total_samples as f64);
        r.gauge("serve.total_j").set(stats.total_j);
        let pool = self.pool.stats();
        r.gauge("runtime.pool.idle").set(self.pool.idle() as f64);
        r.gauge("runtime.pool.checkouts").set(pool.checkouts as f64);
        r.gauge("runtime.pool.hits").set(pool.hits as f64);
        r.gauge("runtime.pool.wait_us").set(pool.wait_us as f64);
        r.gauge("runtime.pool.hit_rate").set(pool.hit_rate());
        // Build/version attribution for mixed-version clusters: the
        // exposition is numeric-only, so the version string rides in the
        // gauge *name* (`build.info.<version> = 1`, the Prometheus info
        // idiom) next to the instance's uptime.
        r.gauge(&format!("build.info.{}", env!("CARGO_PKG_VERSION")))
            .set(1.0);
        r.gauge("serve.uptime_s").set(r.uptime_us() as f64 / 1e6);
        r.snapshot().render()
    }

    /// Renders this server's flight-recorder journal (`snn-journal`
    /// text): the bounded ring of structured events plus its meta
    /// counters. Served by the `journal` wire verb, hex-encoded into the
    /// reply's `data` field.
    pub fn journal_text(&self) -> String {
        self.obs.registry.journal_snapshot().render()
    }

    /// Whether shutdown has been flagged (drives the honest `ping`:
    /// a draining server is not a healthy serving target).
    pub(crate) fn is_shutdown(&self) -> bool {
        self.state
            .lock()
            .expect("session registry poisoned")
            .shutdown
    }

    /// Flags shutdown: further opens/submits are rejected, and the
    /// scheduler exits once the remaining queued work has drained.
    pub fn shutdown(&self) {
        self.state
            .lock()
            .expect("session registry poisoned")
            .shutdown = true;
        self.work_ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikedyn::Method;

    fn tiny_spec() -> SessionSpec {
        SessionSpec {
            method: Method::SpikeDyn,
            n_exc: 6,
            n_input: 49,
            n_classes: 4,
            seed: 1,
            batch_size: 4,
            assign_every: 8,
            reservoir_capacity: 8,
            metric_window: 8,
            drift_window: 8,
        }
    }

    fn manager(max_sessions: usize, queue_capacity: usize) -> SessionManager {
        SessionManager::new(
            ServeLimits {
                max_sessions,
                queue_capacity,
                max_batch: 64,
                ..ServeLimits::default()
            },
            GpuSpec::gtx_1080_ti(),
            None,
        )
    }

    #[test]
    fn admission_enforced_at_the_limit() {
        let m = manager(2, 4);
        m.open("a", &tiny_spec()).unwrap();
        m.open("b", &tiny_spec()).unwrap();
        assert!(matches!(
            m.open("c", &tiny_spec()),
            Err(ServeError::Admission { active: 2, max: 2 })
        ));
        assert!(matches!(
            m.open("a", &tiny_spec()),
            Err(ServeError::DuplicateSession(_))
        ));
        assert_eq!(m.stats().sessions, 2);
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full() {
        let m = manager(4, 2);
        m.open("a", &tiny_spec()).unwrap();
        let (tx, _rx) = mpsc::channel();
        m.submit("a", Job::Report, "", tx.clone()).unwrap();
        m.submit("a", Job::Report, "", tx.clone()).unwrap();
        assert!(matches!(
            m.submit("a", Job::Report, "", tx.clone()),
            Err(ServeError::Backpressure {
                depth: 2,
                capacity: 2
            })
        ));
        assert!(matches!(
            m.submit("ghost", Job::Report, "", tx),
            Err(ServeError::UnknownSession(_))
        ));
        assert_eq!(m.stats().queued_jobs, 2);
    }

    #[test]
    fn closing_session_admits_no_further_jobs() {
        let m = manager(4, 4);
        m.open("a", &tiny_spec()).unwrap();
        let (tx, _rx) = mpsc::channel();
        m.submit("a", Job::Close, "", tx.clone()).unwrap();
        assert!(matches!(
            m.submit("a", Job::Report, "", tx),
            Err(ServeError::SessionClosing(_))
        ));
    }

    #[test]
    fn take_work_drains_every_ready_session_in_one_tick() {
        let m = manager(4, 4);
        m.open("a", &tiny_spec()).unwrap();
        m.open("b", &tiny_spec()).unwrap();
        let (tx, _rx) = mpsc::channel();
        m.submit("a", Job::Report, "", tx.clone()).unwrap();
        m.submit("b", Job::Report, "", tx.clone()).unwrap();
        m.submit("b", Job::Checkpoint, "", tx).unwrap();
        let units = m.take_work().unwrap();
        assert_eq!(units.len(), 2, "both sessions in one tick");
        assert_eq!(units[0].id, "a");
        assert_eq!(units[1].id, "b");
        assert_eq!(units[1].jobs.len(), 2, "whole queue drained");
        assert_eq!(m.stats().queued_jobs, 0);
        assert_eq!(m.stats().ticks, 1);
    }

    #[test]
    fn chatty_session_cannot_monopolise_a_tick() {
        // A session with a deep queue gets at most max_jobs_per_tick jobs
        // per tick; the quiet session still rides the same tick, and the
        // chatty remainder round-robins into later ticks.
        let m = SessionManager::new(
            ServeLimits {
                max_sessions: 4,
                queue_capacity: 8,
                max_batch: 64,
                max_jobs_per_tick: 2,
                idle_timeout: None,
            },
            GpuSpec::gtx_1080_ti(),
            None,
        );
        m.open("chatty", &tiny_spec()).unwrap();
        m.open("quiet", &tiny_spec()).unwrap();
        let (tx, _rx) = mpsc::channel();
        for _ in 0..6 {
            m.submit("chatty", Job::Report, "", tx.clone()).unwrap();
        }
        m.submit("quiet", Job::Report, "", tx).unwrap();

        let units = m.take_work().unwrap();
        assert_eq!(units.len(), 2, "both sessions share the tick");
        let chatty = units.iter().find(|u| u.id == "chatty").unwrap();
        assert_eq!(chatty.jobs.len(), 2, "chatty capped at max_jobs_per_tick");
        assert_eq!(
            m.stats().queued_jobs,
            4,
            "the remainder stays queued for later ticks"
        );
    }

    #[test]
    fn shutdown_unblocks_take_work_after_draining() {
        let m = std::sync::Arc::new(manager(2, 4));
        m.open("a", &tiny_spec()).unwrap();
        let (tx, _rx) = mpsc::channel();
        m.submit("a", Job::Report, "", tx).unwrap();
        m.shutdown();
        // Pending work still comes out...
        let units = m.take_work().unwrap();
        assert_eq!(units.len(), 1);
        // ...then the queue reports empty-and-done. (The learner is still
        // checked out, so nothing is ready either way.)
        assert!(m.take_work().is_none());
        assert!(matches!(
            m.open("b", &tiny_spec()),
            Err(ServeError::Shutdown)
        ));
    }

    #[test]
    fn hostile_specs_are_rejected_not_panicked() {
        // Zero-valued knobs would trip OnlineLearner's asserts; oversized
        // dimensions would allocate before admission. Both must come back
        // as bad-request errors.
        let m = manager(4, 4);
        let cases: Vec<SessionSpec> = vec![
            SessionSpec {
                batch_size: 0,
                ..tiny_spec()
            },
            SessionSpec {
                reservoir_capacity: 0,
                ..tiny_spec()
            },
            SessionSpec {
                assign_every: 0,
                ..tiny_spec()
            },
            SessionSpec {
                metric_window: 0,
                ..tiny_spec()
            },
            SessionSpec {
                drift_window: 0,
                ..tiny_spec()
            },
            SessionSpec {
                n_exc: 4_000_000_000,
                ..tiny_spec()
            },
            SessionSpec {
                n_input: 4_000_000_000,
                ..tiny_spec()
            },
            SessionSpec {
                n_classes: 0,
                ..tiny_spec()
            },
            // Each dimension inside its cap, product catastrophically big.
            SessionSpec {
                n_exc: 1 << 14,
                n_input: 1 << 16,
                ..tiny_spec()
            },
        ];
        for spec in cases {
            assert!(
                matches!(m.open("h", &spec), Err(ServeError::BadRequest(_))),
                "spec must be rejected: {spec:?}"
            );
        }
        assert_eq!(m.stats().sessions, 0);
    }

    #[test]
    fn shadow_store_validates_payloads_and_sequences() {
        let m = manager(4, 4);
        let mut learner = OnlineLearner::new(tiny_spec().online_config());
        let blob0 = learner.checkpoint().to_bytes(); // samples_seen = 0
        let gen = snn_data::SyntheticDigits::new(1);
        let batch: Vec<_> = (0..4u64)
            .map(|i| gen.sample((i % 4) as u8, i).downsample(4))
            .collect();
        learner.ingest_batch(&batch).unwrap();
        let blob4 = learner.checkpoint().to_bytes(); // samples_seen = 4

        // Garbage never lands in the store.
        assert!(matches!(
            m.store_shadow("g", 0, vec![1, 2, 3]),
            Err(ServeError::Snapshot(_))
        ));
        assert!(m.fetch_shadow("g").is_none());
        // The claimed seq must match the snapshot's stream position.
        assert!(matches!(
            m.store_shadow("x", 9, blob4.clone()),
            Err(ServeError::ShadowStale(_))
        ));
        // A valid store round-trips...
        m.store_shadow("x", 4, blob4.clone()).unwrap();
        assert_eq!(m.fetch_shadow("x").unwrap(), (4, blob4.clone()));
        // ...an older shadow can no longer displace it...
        assert!(matches!(
            m.store_shadow("x", 0, blob0),
            Err(ServeError::ShadowStale(_))
        ));
        assert_eq!(m.fetch_shadow("x").unwrap().0, 4);
        // ...and re-storing the same position is idempotent.
        m.store_shadow("x", 4, blob4).unwrap();
        // A live session under the id supersedes the parked shadow.
        m.open("x", &tiny_spec()).unwrap();
        assert!(m.fetch_shadow("x").is_none());
    }

    #[test]
    fn shadow_store_is_bounded_by_least_progress_eviction() {
        let m = manager(4, 4);
        let blob = OnlineLearner::new(tiny_spec().online_config())
            .checkpoint()
            .to_bytes();
        let n = SHADOW_CAPACITY + 8;
        for i in 0..n {
            m.store_shadow(&format!("sh-{i}"), 0, blob.clone()).unwrap();
        }
        let held = (0..n)
            .filter(|i| m.fetch_shadow(&format!("sh-{i}")).is_some())
            .count();
        assert_eq!(held, SHADOW_CAPACITY, "full store evicts, never wedges");
    }

    #[test]
    fn rejected_open_does_not_leak_snapshot_sessions() {
        let m = manager(1, 4);
        m.open("a", &tiny_spec()).unwrap();
        assert!(matches!(
            m.open_restored("b", &[1, 2, 3]),
            Err(ServeError::Snapshot(_))
        ));
        assert_eq!(m.stats().sessions, 1);
    }
}
