//! The TCP front end: thread-per-connection line server.
//!
//! [`SnnServer::start`] binds a listener and spawns two long-lived
//! threads — the accept loop and the tick scheduler
//! ([`crate::scheduler`]). Each accepted connection gets its own thread
//! that reads requests line by line, dispatches them against the shared
//! [`SessionManager`], and writes one response line per request, in
//! order. Connection threads hold no session state: a client may spread
//! one session's requests over several connections or multiplex several
//! sessions on one connection, and ordering is still per-session FIFO
//! (the registry queues are the only ordering authority).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use neuro_energy::GpuSpec;

use crate::mux::{run_mux, MuxHost};
use crate::protocol::{
    encode_predictions, extract_rid, format_response, hex_encode, parse_request, Request, Response,
    MAX_LINE_BYTES, PROTO_V2, PROTO_VERSION,
};
use crate::scheduler;
use crate::session::{Job, JobOutput, JobResult, ServeError, ServeLimits, SessionManager};

/// Everything configurable about a server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission and queueing limits.
    pub limits: ServeLimits,
    /// Device model used to price per-session energy reports.
    pub gpu: GpuSpec,
    /// Directory evicted sessions checkpoint into (one `<id>.sdyn` file
    /// per victim). `None` disables both the `evict` request and the
    /// idle-timeout sweep. The directory must already exist.
    pub evict_dir: Option<std::path::PathBuf>,
    /// Lowest protocol generation this server accepts at `hello`
    /// (default [`PROTO_VERSION`]). Pin to [`PROTO_V2`] to refuse
    /// line-protocol clients.
    pub min_proto: u32,
    /// Highest protocol generation this server accepts at `hello`
    /// (default [`PROTO_V2`]). Pin to [`PROTO_VERSION`] for a
    /// proto-1-only server.
    pub max_proto: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            limits: ServeLimits::default(),
            gpu: GpuSpec::gtx_1080_ti(),
            evict_dir: None,
            min_proto: PROTO_VERSION,
            max_proto: PROTO_V2,
        }
    }
}

/// A running multi-session serving instance. Shuts down (and joins its
/// accept + scheduler threads) on [`SnnServer::shutdown`] or drop.
#[derive(Debug)]
pub struct SnnServer {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    scheduler_thread: Option<JoinHandle<()>>,
}

impl SnnServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn start(addr: &str, config: ServerConfig) -> io::Result<SnnServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let manager = Arc::new(SessionManager::new(
            config.limits,
            config.gpu,
            config.evict_dir,
        ));
        let stop = Arc::new(AtomicBool::new(false));

        let scheduler_thread = {
            let manager = Arc::clone(&manager);
            std::thread::spawn(move || scheduler::run(manager))
        };
        let accept_thread = {
            let manager = Arc::clone(&manager);
            let stop = Arc::clone(&stop);
            let protos = config.min_proto..=config.max_proto;
            std::thread::spawn(move || accept_loop(listener, manager, stop, protos))
        };
        Ok(SnnServer {
            addr,
            manager,
            stop,
            accept_thread: Some(accept_thread),
            scheduler_thread: Some(scheduler_thread),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current server-wide counters.
    pub fn stats(&self) -> crate::session::ServerStats {
        self.manager.stats()
    }

    /// Stops accepting connections, drains queued work, and joins the
    /// server threads. Connections still open keep their sockets but all
    /// further requests are answered with `err code=shutdown`.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.manager.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.scheduler_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SnnServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(
    listener: TcpListener,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    protos: std::ops::RangeInclusive<u32>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // The listener is nonblocking (so shutdown can interrupt
                // accept); connections must block on reads.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let manager = Arc::clone(&manager);
                let protos = protos.clone();
                // Connection threads are detached: they exit on client
                // disconnect, and post-shutdown requests get error
                // responses because the registry rejects them.
                std::thread::spawn(move || {
                    let _ = handle_connection(stream, &manager, &protos);
                });
            }
            // Accept errors are all transient from this loop's point of
            // view (WouldBlock on an idle listener, ECONNABORTED from a
            // client resetting mid-handshake, EMFILE under fd pressure):
            // back off and keep serving — only the stop flag ends the
            // loop. Exiting here would silently stop accepting while the
            // rest of the server looks healthy.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Serves one connection until EOF or an unrecoverable socket error.
/// Starts in the proto 1 line protocol; an accepted `hello proto=2`
/// upgrades the connection to multiplexed binary framing
/// ([`crate::mux::run_mux`]) and never returns to lines.
fn handle_connection(
    stream: TcpStream,
    manager: &Arc<SessionManager>,
    protos: &std::ops::RangeInclusive<u32>,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let mut line = String::new();
        let n = (&mut reader).take(MAX_LINE_BYTES).read_line(&mut line)?;
        if n == 0 {
            return Ok(()); // client closed the connection
        }
        let obs = manager.obs();
        obs.count_wire(PROTO_VERSION, n as u64, 0);
        if !line.ends_with('\n') {
            // The line is incomplete: either it hit the size cap, or the
            // client died mid-send and this is the truncated tail before
            // EOF. Never dispatch a truncated line — a cut-short
            // `close id=session-10` parses as `close id=session-1`.
            if n as u64 == MAX_LINE_BYTES {
                write_response(
                    &mut writer,
                    &Response::error("bad-request", "line exceeds the protocol size limit"),
                )?;
            }
            return Ok(());
        }
        obs.requests.inc();
        // The rid either rode in as the line's final field (a relaying
        // tier stamped it) or is minted here — the wire layer is where a
        // request first enters this server's trace. A carried rid also
        // marks this request as relayed: its request span then links
        // under the relaying tier's `relay` phase.
        let carried_rid = extract_rid(&line).map(str::to_string);
        let carried = carried_rid.is_some();
        let rid = carried_rid.unwrap_or_else(|| obs.registry.mint_rid());
        let t0 = std::time::Instant::now();
        let response = match parse_request(&line) {
            // Subscribe switches the connection into streaming mode: the
            // acknowledgement and every later frame are written inside,
            // and the connection never returns to request/response.
            Ok(Request::Subscribe { interval_ms }) => {
                let dur = t0.elapsed();
                obs.verb_hist("subscribe").record_duration(dur);
                obs.registry.span("serve.subscribe", &rid, dur, &[]);
                return serve_subscription(&mut writer, manager, interval_ms);
            }
            // Hello owns version negotiation: in-range proto 1 keeps the
            // line protocol, in-range proto 2 acknowledges and upgrades
            // this connection to binary framing, everything else fails
            // fast with `proto-mismatch`.
            Ok(Request::Hello { proto }) => {
                if !protos.contains(&proto) {
                    Response::error(
                        "proto-mismatch",
                        format!(
                            "server speaks proto {}..{}, client sent {proto}",
                            protos.start(),
                            protos.end()
                        ),
                    )
                } else if proto >= PROTO_V2 {
                    let banner = hello_banner(manager, PROTO_V2);
                    let dur = t0.elapsed();
                    obs.verb_hist("hello").record_duration(dur);
                    obs.proto_verb_hist(PROTO_V2, "hello").record_duration(dur);
                    obs.registry.span("serve.hello", &rid, dur, &[]);
                    let tx = write_response(&mut writer, &banner)?;
                    obs.count_wire(PROTO_V2, 0, tx as u64);
                    let host = Arc::new(ServeHost {
                        manager: Arc::clone(manager),
                    });
                    return run_mux(reader, writer, host);
                } else {
                    hello_banner(manager, proto)
                }
            }
            Ok(request) => dispatch(request, manager, &rid),
            Err(e) => Response::error("bad-request", e.to_string()),
        };
        let dur = t0.elapsed();
        let verb = line.split_whitespace().next().unwrap_or("");
        obs.record_request(verb, dur, &rid);
        obs.proto_verb_hist(PROTO_VERSION, verb)
            .record_duration(dur);
        // Unknown verbs collapse to one span name, mirroring the metric
        // fallback, so hostile input cannot pollute the trace ring with
        // garbage names.
        let canonical = if crate::obs::VERBS.contains(&verb) {
            verb
        } else {
            "other"
        };
        obs.registry.span(
            &format!("serve.{canonical}"),
            &rid,
            dur,
            &request_phase_fields(carried),
        );
        let response = stamp_rid(response, &rid, carried);
        let w0 = std::time::Instant::now();
        let tx = write_response(&mut writer, &response)?;
        let wdur = w0.elapsed();
        obs.write_us.record_duration(wdur);
        obs.registry.span(
            "serve.phase.write",
            &rid,
            wdur,
            &[
                ("phase", "write".to_string()),
                ("parent", "request".to_string()),
            ],
        );
        obs.count_wire(PROTO_VERSION, 0, tx as u64);
    }
}

/// The phase/parent fields of a wire-layer request span: the `request`
/// phase is the shard-local root of the trace, linking under a routing
/// tier's `relay` phase only when the rid actually rode in from one.
fn request_phase_fields(carried: bool) -> Vec<(&'static str, String)> {
    let mut fields = vec![("phase", "request".to_string())];
    if carried {
        fields.push(("parent", "relay".to_string()));
    }
    fields
}

/// Echoes a carried rid onto successful replies, so any client (or
/// relay) holding an `ok` line can hand its rid straight to
/// `trace`/`cluster-trace`. Only propagated rids are echoed: locally
/// minted ones would make otherwise-identical replies differ across
/// protocol generations.
fn stamp_rid(response: Response, rid: &str, carried: bool) -> Response {
    if !carried {
        return response;
    }
    match response {
        Response::Ok(mut pairs) => {
            if !pairs.iter().any(|(k, _)| k == "rid") {
                pairs.push(("rid".to_string(), rid.to_string()));
            }
            Response::Ok(pairs)
        }
        err => err,
    }
}

/// The `ok` banner a successful `hello` negotiation answers with,
/// stamped with the agreed protocol generation.
fn hello_banner(manager: &SessionManager, proto: u32) -> Response {
    Response::ok([
        ("proto", proto.to_string()),
        ("server", "snn-serve".to_string()),
        ("evict", u8::from(manager.eviction_enabled()).to_string()),
        // Capability flag: this build stores shadow checkpoints (the
        // `shadow` verb). Routing tiers key failover protection off it.
        ("shadow", "1".to_string()),
        // This build keeps a flight-recorder journal and accepts
        // streaming subscriptions.
        ("journal", "1".to_string()),
        ("subscribe", "1".to_string()),
        // This build answers `trace rid=` with its per-request span and
        // journal material for cluster-wide trace assembly.
        ("trace", "1".to_string()),
    ])
}

fn write_response(writer: &mut TcpStream, response: &Response) -> io::Result<usize> {
    let mut wire = format_response(response);
    wire.push('\n');
    writer.write_all(wire.as_bytes())?;
    writer.flush()?;
    Ok(wire.len())
}

/// The session server as a [`MuxHost`]: answers one line per request
/// frame and samples subscription push frames, recording proto 2 wire
/// and latency metrics.
#[derive(Debug)]
struct ServeHost {
    manager: Arc<SessionManager>,
}

impl MuxHost for ServeHost {
    fn handle_line(&self, line: &str) -> String {
        let manager = &*self.manager;
        let obs = manager.obs();
        obs.requests.inc();
        let carried_rid = extract_rid(line).map(str::to_string);
        let carried = carried_rid.is_some();
        let rid = carried_rid.unwrap_or_else(|| obs.registry.mint_rid());
        let t0 = std::time::Instant::now();
        let response = match parse_request(line) {
            // The connection is already negotiated: an in-stream hello
            // (a client re-probing capabilities) re-answers the banner.
            Ok(Request::Hello { proto }) if proto == PROTO_V2 => hello_banner(manager, PROTO_V2),
            Ok(Request::Hello { proto }) => Response::error(
                "proto-mismatch",
                format!("connection is negotiated to proto {PROTO_V2}, client sent {proto}"),
            ),
            // Subscriptions are intercepted by the demux loop before this
            // is called; kept so a crafted frame cannot reach dispatch.
            Ok(Request::Subscribe { .. }) => {
                Response::error("bad-request", "subscribe is a stream")
            }
            Ok(request) => dispatch(request, manager, &rid),
            Err(e) => Response::error("bad-request", e.to_string()),
        };
        let dur = t0.elapsed();
        let verb = line.split_whitespace().next().unwrap_or("");
        obs.record_request(verb, dur, &rid);
        obs.proto_verb_hist(PROTO_V2, verb).record_duration(dur);
        let canonical = if crate::obs::VERBS.contains(&verb) {
            verb
        } else {
            "other"
        };
        obs.registry.span(
            &format!("serve.{canonical}"),
            &rid,
            dur,
            &request_phase_fields(carried),
        );
        let response = stamp_rid(response, &rid, carried);
        // Proto 2's socket write happens on the shared writer thread, so
        // the write phase times what this request path owns: rendering
        // the reply line the frame is built from.
        let w0 = std::time::Instant::now();
        let out = format_response(&response);
        let wdur = w0.elapsed();
        obs.write_us.record_duration(wdur);
        obs.registry.span(
            "serve.phase.write",
            &rid,
            wdur,
            &[
                ("phase", "write".to_string()),
                ("parent", "request".to_string()),
            ],
        );
        out
    }

    fn push_line(&self, seq: u64, journal_cursor: &mut u64) -> Option<String> {
        if self.manager.is_shutdown() {
            return None;
        }
        Some(render_push_line(&self.manager, seq, journal_cursor))
    }

    fn is_shutdown(&self) -> bool {
        self.manager.is_shutdown()
    }

    fn journal_total(&self) -> u64 {
        self.manager.obs().registry.journal_snapshot().total
    }

    fn on_wire(&self, rx_bytes: u64, tx_bytes: u64) {
        self.manager.obs().count_wire(PROTO_V2, rx_bytes, tx_bytes);
    }

    fn on_queue_wait(&self, line: &str, waited: Duration) {
        // Only relayed (rid-bearing) frames get a demux-wait node: a
        // minted rid here would never match the request span's rid.
        if let Some(rid) = extract_rid(line) {
            self.manager.obs().registry.span(
                "serve.phase.demux_wait",
                rid,
                waited,
                &[
                    ("phase", "demux_wait".to_string()),
                    ("parent", "request".to_string()),
                ],
            );
        }
    }

    fn on_flow(&self, tags_in_flight: u64, writer_queue: u64) {
        let obs = self.manager.obs();
        obs.tags_in_flight.set(tags_in_flight as f64);
        obs.writer_queue.set(writer_queue as f64);
    }

    fn next_subscriber(&self) -> u64 {
        self.manager.obs().subscriber().0
    }

    fn on_push_drop(&self, sub: u64) {
        let obs = self.manager.obs();
        obs.subscribe_drops.inc();
        obs.sub_drop_counter(sub).inc();
    }
}

/// Renders one subscription frame line (shared by the proto 1 stream
/// writer and the proto 2 push sampler): the full metrics exposition
/// plus the journal events born since `journal_cursor`, which advances.
fn render_push_line(manager: &SessionManager, seq: u64, journal_cursor: &mut u64) -> String {
    let metrics = manager.metrics_text();
    let obs = manager.obs();
    let mut journal = obs.registry.journal_snapshot();
    // Delta framing: only the events born since the last frame ride
    // along (the ring itself bounds how far back a reconnecting
    // subscriber can catch up).
    let fresh = (journal.total - *journal_cursor).min(journal.events.len() as u64);
    *journal_cursor = journal.total;
    journal
        .events
        .drain(..journal.events.len() - fresh as usize);
    format!(
        "push seq={seq} data={} journal={}",
        hex_encode(metrics.as_bytes()),
        hex_encode(journal.render().as_bytes()),
    )
}

/// How many sampled frames a subscription buffers between its sampler
/// and its socket writer. A consumer that falls further behind loses
/// frames (counted in `serve.subscribe.drops`) instead of backing the
/// sampler up.
const SUBSCRIBE_BUFFER: usize = 8;

/// Streams periodic telemetry frames until the client disconnects or the
/// server shuts down. The sampler thread renders each frame and
/// `try_send`s it into a bounded channel — it never blocks on the
/// subscriber's socket, so a stalled consumer cannot stall anything but
/// its own feed. Each frame is one line:
/// `push seq=<n> data=<hex exposition> journal=<hex journal delta>`,
/// where the journal part carries only events recorded since the
/// previous frame (its `meta` counters stay cumulative, so a subscriber
/// can detect its own losses from `seq` gaps and the totals).
fn serve_subscription(
    writer: &mut TcpStream,
    manager: &SessionManager,
    interval_ms: u64,
) -> io::Result<()> {
    let interval = Duration::from_millis(interval_ms.clamp(10, 10_000));
    write_response(
        writer,
        &Response::ok([("interval_ms", interval.as_millis().to_string())]),
    )?;
    let (tx, rx) = mpsc::sync_channel::<String>(SUBSCRIBE_BUFFER);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let obs = manager.obs();
            // Drops are billed both globally and to this subscriber's
            // own counter, so one slow consumer is identifiable.
            let (_sub, sub_drops) = obs.subscriber();
            let mut seq = 0u64;
            let mut cursor = obs.registry.journal_snapshot().total;
            loop {
                if manager.is_shutdown() {
                    return; // dropping tx ends the writer loop cleanly
                }
                std::thread::sleep(interval);
                let mut frame = render_push_line(manager, seq, &mut cursor);
                frame.push('\n');
                seq += 1;
                match tx.try_send(frame) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(_)) => {
                        obs.subscribe_drops.inc();
                        sub_drops.inc();
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => return,
                }
            }
        });
        // The writer loop runs on the connection thread; a write error
        // (client gone) drops `rx`, which the sampler sees on its next
        // try_send and exits — the scope then joins it.
        let obs = manager.obs();
        for frame in rx {
            if writer
                .write_all(frame.as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                break;
            }
            obs.count_wire(PROTO_VERSION, 0, frame.len() as u64);
        }
    });
    Ok(())
}

/// Executes one request to completion (for session jobs: submit, then
/// block this connection thread on the reply channel).
fn dispatch(request: Request, manager: &SessionManager, rid: &str) -> Response {
    match request {
        // Negotiation is owned by the connection loops (line and mux),
        // which intercept hello before dispatch; this arm is the
        // defensive fallback answering for the classic line protocol.
        Request::Hello { proto } => {
            if proto == PROTO_VERSION {
                hello_banner(manager, PROTO_VERSION)
            } else {
                Response::error(
                    "proto-mismatch",
                    format!("server speaks proto {PROTO_VERSION}, client sent {proto}"),
                )
            }
        }
        // A draining server answers ping with its shutdown state so
        // health checkers stop routing to it instead of seeing a live
        // socket and assuming a live shard.
        Request::Ping if manager.is_shutdown() => error_response(&ServeError::Shutdown),
        Request::Ping => Response::ok([
            ("pong", "1".to_string()),
            ("proto", crate::protocol::PROTO_VERSION.to_string()),
        ]),
        Request::Stats => {
            let s = manager.stats();
            Response::ok([
                ("sessions", s.sessions.to_string()),
                ("max_sessions", s.max_sessions.to_string()),
                ("queued_jobs", s.queued_jobs.to_string()),
                ("ticks", s.ticks.to_string()),
                ("total_samples", s.total_samples.to_string()),
                ("evicted", s.evicted_sessions.to_string()),
                ("total_j", s.total_j.to_string()),
                ("uptime_s", s.uptime_s.to_string()),
            ])
        }
        // The exposition is multi-line text and responses are single
        // lines, so it travels hex-encoded in `data` like snapshots do.
        Request::Metrics => Response::ok([
            ("instance", manager.obs().registry.instance().to_string()),
            ("data", hex_encode(manager.metrics_text().as_bytes())),
        ]),
        // The flight recorder travels the same way.
        Request::Journal => Response::ok([
            ("instance", manager.obs().registry.instance().to_string()),
            ("data", hex_encode(manager.journal_text().as_bytes())),
        ]),
        // Handled before dispatch (it hijacks the connection); kept in the
        // match so a new verb cannot be forgotten here.
        Request::Subscribe { .. } => Response::error("bad-request", "subscribe is a stream"),
        Request::Open { id, spec } => match manager.open(&id, &spec) {
            Ok(()) => {
                manager
                    .obs()
                    .registry
                    .journal_event("serve.open", rid, &[("id", id.clone())]);
                Response::ok([("id", id)])
            }
            Err(e) => {
                journal_reject(manager, rid, &id, &e);
                error_response(&e)
            }
        },
        Request::Restore { id, snapshot } => match manager.open_restored(&id, &snapshot) {
            Ok((samples, total_j)) => {
                manager.obs().registry.journal_event(
                    "serve.restore",
                    rid,
                    &[("id", id.clone()), ("samples", samples.to_string())],
                );
                Response::ok([
                    ("id", id),
                    ("samples", samples.to_string()),
                    ("total_j", total_j.to_string()),
                ])
            }
            Err(e) => {
                journal_reject(manager, rid, &id, &e);
                error_response(&e)
            }
        },
        Request::Ingest { id, images } => {
            if images.len() > manager.limits().max_batch {
                return error_response(&ServeError::BadRequest(format!(
                    "batch of {} exceeds max_batch {}",
                    images.len(),
                    manager.limits().max_batch
                )));
            }
            roundtrip(manager, &id, Job::Ingest(images), rid)
        }
        Request::Report { id } => roundtrip(manager, &id, Job::Report, rid),
        Request::Energy { id } => roundtrip(manager, &id, Job::Energy, rid),
        Request::Checkpoint { id } => roundtrip(manager, &id, Job::Checkpoint, rid),
        Request::Swap { id, snapshot } => roundtrip(manager, &id, Job::Swap(snapshot), rid),
        // Shadow store/fetch never touch a live session or the scheduler:
        // they are direct manager calls against the bounded shadow store.
        Request::Shadow { id, snapshot, seq } => match manager.store_shadow(&id, seq, snapshot) {
            Ok(()) => Response::ok([("id", id), ("seq", seq.to_string())]),
            Err(e) => error_response(&e),
        },
        Request::ShadowGet { id } => match manager.fetch_shadow(&id) {
            Some((seq, bytes)) => Response::ok([
                ("id", id),
                ("seq", seq.to_string()),
                ("data", hex_encode(&bytes)),
            ]),
            None => error_response(&ServeError::UnknownSession(id)),
        },
        Request::Evict { id } => roundtrip(manager, &id, Job::Evict, rid),
        Request::Close { id } => roundtrip(manager, &id, Job::Close, rid),
        // Raw trace material for one rid: this server's retained spans
        // and journal events stamped with it, as hex-encoded exposition
        // and journal documents. Assembly into a tree happens at the
        // caller (the router's `cluster-trace` merges many of these).
        Request::Trace { rid: target } => {
            let reg = &manager.obs().registry;
            let mut snap = reg.snapshot();
            snap.counters.clear();
            snap.gauges.clear();
            snap.histograms.clear();
            snap.exemplars.clear();
            snap.spans.retain(|s| s.rid == target);
            let mut journal = reg.journal_snapshot();
            journal.events.retain(|e| e.rid == target);
            // Re-base the meta counters onto the filtered view so the
            // document keeps the codec's total/dropped invariant.
            journal.total = journal.events.len() as u64;
            journal.dropped = 0;
            Response::ok([
                ("instance", reg.instance().to_string()),
                ("rid", target.clone()),
                ("spans", snap.spans.len().to_string()),
                ("events", journal.events.len().to_string()),
                ("data", hex_encode(snap.render().as_bytes())),
                ("journal", hex_encode(journal.render().as_bytes())),
            ])
        }
    }
}

/// Journals admission-class rejections (the events the post-mortem story
/// of an overloaded or flapping shard is made of); other errors already
/// surface through metrics and the wire response.
fn journal_reject(manager: &SessionManager, rid: &str, id: &str, e: &ServeError) {
    let kind = match e {
        ServeError::Admission { .. } | ServeError::DuplicateSession(_) => "serve.reject.admission",
        ServeError::Backpressure { .. } => "serve.reject.backpressure",
        _ => return,
    };
    manager
        .obs()
        .registry
        .journal_event(kind, rid, &[("id", id.to_string())]);
}

fn roundtrip(manager: &SessionManager, id: &str, job: Job, rid: &str) -> Response {
    let (tx, rx) = mpsc::channel();
    if let Err(e) = manager.submit(id, job, rid, tx) {
        journal_reject(manager, rid, id, &e);
        return error_response(&e);
    }
    match rx.recv() {
        Ok(result) => job_response(id, result),
        // The scheduler dropped the sender: only possible on shutdown.
        Err(_) => error_response(&ServeError::Shutdown),
    }
}

fn error_response(e: &ServeError) -> Response {
    Response::error(e.code(), e.to_string())
}

fn job_response(id: &str, result: JobResult) -> Response {
    let output = match result {
        Ok(output) => output,
        Err(e) => return error_response(&e),
    };
    match output {
        JobOutput::Ingested(outcome, total_j) => Response::ok([
            ("id", id.to_string()),
            ("predictions", encode_predictions(&outcome.predictions)),
            ("drifts", outcome.drift_events.len().to_string()),
            (
                "response_active",
                u8::from(outcome.response_active).to_string(),
            ),
            ("samples", outcome.samples_seen.to_string()),
            ("total_j", total_j.to_string()),
        ]),
        JobOutput::Report(report) | JobOutput::Closed(report) => Response::ok([
            ("id", id.to_string()),
            ("samples", report.samples_seen.to_string()),
            ("accuracy", report.accuracy.to_string()),
            ("forgetting", report.mean_forgetting.to_string()),
            ("drifts", report.drift_events.len().to_string()),
            ("spikes_per_sample", report.mean_exc_spikes.to_string()),
        ]),
        JobOutput::Energy(energy) => Response::ok([
            ("id", id.to_string()),
            ("train_j", energy.train_j.to_string()),
            ("infer_j", energy.infer_j.to_string()),
            ("per_sample_j", energy.per_sample_j.to_string()),
        ]),
        JobOutput::Checkpoint(bytes) => {
            Response::ok([("id", id.to_string()), ("data", hex_encode(&bytes))])
        }
        JobOutput::Swapped {
            samples_seen,
            total_j,
        } => Response::ok([
            ("id", id.to_string()),
            ("samples", samples_seen.to_string()),
            ("total_j", total_j.to_string()),
        ]),
        JobOutput::Evicted(path) => {
            Response::ok([("id", id.to_string()), ("path", path.display().to_string())])
        }
    }
}
