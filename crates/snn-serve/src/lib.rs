//! # snn-serve — multi-session serving layer over `snn-online`
//!
//! SpikeDyn (Putra & Shafique, DAC 2021) frames continual learning as an
//! always-on capability; PR 2's `snn-online` made one learner durable,
//! but still hosted exactly one `OnlineLearner` behind an in-process
//! loop. This crate is the layer that makes the repro a *service*: a
//! thread-per-connection TCP server (`std::net` only — this build
//! environment has no crates.io) speaking a small line-delimited
//! protocol, multiplexing **N independent learner sessions** behind
//! session ids.
//!
//! ## What a session gets
//!
//! * **Admission control and backpressure** — a hard session cap and a
//!   bounded per-session job queue that rejects (never buffers) overload;
//!   see [`ServeLimits`] and `DESIGN.md` §8 for the exact rules.
//! * **Cross-session micro-batching** — a tick scheduler drains every
//!   ready session per tick and runs them in parallel over **one shared
//!   warm `snn-runtime` replica pool**
//!   ([`snn_runtime::Engine::from_network_shared`]), so the replica
//!   working set is bounded by peak concurrency, not session count.
//! * **Durability over the wire** — `checkpoint` streams out the full
//!   [`snn_online::ModelSnapshot`]; `restore` opens a new session from
//!   one; `swap` hot-swaps a *running* session onto one without
//!   rebuilding its engine.
//! * **Per-session accounting** — prequential accuracy/forgetting/drift
//!   reports and `neuro-energy` op-meter totals priced on the server's
//!   device model.
//!
//! ## Determinism over the wire
//!
//! Serving changes *where* a learner runs, not *what* it computes: a
//! session fed a stream over TCP — however its ticks interleave with
//! other sessions — produces bit-identical predictions and checkpoints
//! to a single-process [`snn_online::OnlineLearner`] fed the same
//! batches, and a session restored from a wire checkpoint finishes
//! bit-identical to one that never paused. Pinned by this crate's tests
//! and the workspace-level `tests/serve_sessions.rs`.
//!
//! ## Quick example
//!
//! ```
//! use snn_serve::{ServeClient, ServerConfig, SessionSpec, SnnServer};
//! use snn_data::SyntheticDigits;
//!
//! let server = SnnServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = ServeClient::connect(server.local_addr()).unwrap();
//!
//! let spec = SessionSpec { n_exc: 6, n_input: 49, batch_size: 4, ..SessionSpec::default() };
//! client.open("demo", spec).unwrap();
//! let gen = SyntheticDigits::new(7);
//! let batch: Vec<_> = (0..4).map(|i| gen.sample(i % 3, i.into()).downsample(4)).collect();
//! let outcome = client.ingest("demo", &batch).unwrap();
//! assert_eq!(outcome.predictions.len(), 4);
//!
//! let snapshot = client.checkpoint("demo").unwrap(); // full durable state
//! client.restore("demo-2", &snapshot).unwrap();      // second live session
//! client.close("demo").unwrap();
//! client.close("demo-2").unwrap();
//! server.shutdown();
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod frame;
pub mod mux;
pub(crate) mod obs;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;

pub use client::{
    ClientError, ClientResult, IngestOutcome, Push, ServeClient, Subscription, WireReport,
};
pub use frame::{Frame, FrameError};
pub use mux::{run_mux, MuxClient, MuxHost};
pub use protocol::{ProtocolError, Request, Response, SessionSpec, PROTO_V2, PROTO_VERSION};
pub use server::{ServerConfig, SnnServer};
pub use session::{ServeError, ServeLimits, ServerStats, SessionManager};

#[cfg(test)]
mod tests {
    use super::*;
    use snn_data::{Image, SyntheticDigits};
    use spikedyn::Method;

    fn tiny_spec(seed: u64) -> SessionSpec {
        SessionSpec {
            method: Method::SpikeDyn,
            n_exc: 6,
            n_input: 49,
            n_classes: 4,
            seed,
            batch_size: 4,
            assign_every: 8,
            reservoir_capacity: 8,
            metric_window: 8,
            drift_window: 8,
        }
    }

    fn stream(seed: u64, n: u64) -> Vec<Image> {
        let gen = SyntheticDigits::new(seed);
        (0..n)
            .map(|i| gen.sample((i % 4) as u8, i).downsample(4))
            .collect()
    }

    fn start_server(limits: ServeLimits) -> SnnServer {
        SnnServer::start(
            "127.0.0.1:0",
            ServerConfig {
                limits,
                ..ServerConfig::default()
            },
        )
        .expect("bind an ephemeral port")
    }

    #[test]
    fn end_to_end_session_lifecycle_over_tcp() {
        let server = start_server(ServeLimits::default());
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.ping().unwrap();

        client.open("s1", tiny_spec(3)).unwrap();
        let s = stream(3, 16);
        let mut positions = Vec::new();
        for chunk in s.chunks(4) {
            let outcome = client.ingest("s1", chunk).unwrap();
            assert_eq!(outcome.predictions.len(), 4);
            positions.push(outcome.samples_seen);
        }
        assert_eq!(positions, vec![4, 8, 12, 16]);

        let report = client.report("s1").unwrap();
        assert_eq!(report.samples, 16);
        assert!((0.0..=1.0).contains(&report.accuracy));
        let energy = client.energy("s1").unwrap();
        assert!(energy.train_j > 0.0 && energy.infer_j > 0.0);

        let stats = client.stats().unwrap();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.total_samples, 16);
        assert!(stats.ticks >= 4, "each batch is at least one tick");

        let closed = client.close("s1").unwrap();
        assert_eq!(closed.samples, 16);
        assert_eq!(client.stats().unwrap().sessions, 0);
        assert_eq!(
            client.report("s1").unwrap_err().server_code(),
            Some("unknown-session")
        );
        server.shutdown();
    }

    #[test]
    fn served_session_is_bit_identical_to_local_learner() {
        let server = start_server(ServeLimits::default());
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.open("mirror", tiny_spec(9)).unwrap();
        let mut local = snn_online::OnlineLearner::new(tiny_spec(9).online_config());
        for chunk in stream(9, 16).chunks(4) {
            let served = client.ingest("mirror", chunk).unwrap();
            let local_preds = local.ingest_batch(chunk).unwrap();
            assert_eq!(served.predictions, local_preds);
        }
        let wire_snapshot = client.checkpoint("mirror").unwrap();
        assert_eq!(
            wire_snapshot,
            local.checkpoint().to_bytes(),
            "wire checkpoint must equal the local learner's, byte for byte"
        );
        server.shutdown();
    }

    #[test]
    fn journal_dump_and_subscription_stream_over_the_wire() {
        let server = start_server(ServeLimits::default());
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.open("j1", tiny_spec(4)).unwrap();
        client.ingest("j1", &stream(4, 4)).unwrap();

        // The flight recorder saw the admission.
        let journal = client.journal().unwrap();
        assert!(
            journal
                .of_kind("serve.open")
                .any(|e| e.field("id") == Some("j1")),
            "open event recorded: {journal:?}"
        );
        assert!(journal.total >= 1);

        // A dedicated connection streams frames with rising seq numbers
        // and parseable payloads.
        let sub_client = ServeClient::connect(server.local_addr()).unwrap();
        let mut sub = sub_client.subscribe(20).unwrap();
        let first = sub.next().unwrap();
        let second = sub.next().unwrap();
        assert!(second.seq > first.seq, "{} !> {}", second.seq, first.seq);
        assert!(first.metrics.counter("serve.requests") > 0);
        assert!(second.journal.total >= first.journal.total);

        client.close("j1").unwrap();
        drop(sub);
        server.shutdown();
    }

    #[test]
    fn admission_and_input_validation_over_the_wire() {
        let server = start_server(ServeLimits {
            max_sessions: 1,
            queue_capacity: 4,
            max_batch: 8,
            ..ServeLimits::default()
        });
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.open("only", tiny_spec(1)).unwrap();
        assert_eq!(
            client.open("only", tiny_spec(1)).unwrap_err().server_code(),
            Some("duplicate-session")
        );
        assert_eq!(
            client.open("more", tiny_spec(2)).unwrap_err().server_code(),
            Some("admission")
        );
        // Batch larger than max_batch.
        assert_eq!(
            client
                .ingest("only", &stream(1, 9))
                .unwrap_err()
                .server_code(),
            Some("bad-request")
        );
        // Wrong sample shape reaches the learner and comes back typed.
        let native = SyntheticDigits::new(1).sample(0, 0); // 28×28, session expects 7×7
        assert_eq!(
            client.ingest("only", &[native]).unwrap_err().server_code(),
            Some("learner")
        );
        // Garbage snapshots.
        assert_eq!(
            client.restore("r", &[1, 2, 3]).unwrap_err().server_code(),
            Some("snapshot")
        );
        assert_eq!(
            client.swap("only", &[9; 64]).unwrap_err().server_code(),
            Some("snapshot")
        );
        server.shutdown();
    }

    #[test]
    fn hello_handshake_accepts_matching_and_rejects_mismatched_proto() {
        use std::io::{BufRead, BufReader, Write};
        let server = start_server(ServeLimits::default());
        // ServeClient::connect already performed a successful handshake.
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        assert_eq!(client.hello().unwrap(), protocol::PROTO_VERSION);
        // A mismatched client is refused with a stable code, on a raw
        // socket so the typed client cannot paper over it.
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        raw.write_all(b"hello proto=999\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with("err code=proto-mismatch"),
            "got {reply:?}"
        );
        // The versioned banner: ok + proto field.
        raw.write_all(b"hello proto=1\n").unwrap();
        reply.clear();
        reader.read_line(&mut reply).unwrap();
        assert!(
            reply.starts_with("ok proto=1"),
            "versioned banner, got {reply:?}"
        );
        server.shutdown();
    }

    fn evict_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("snn-serve-evict-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create evict dir");
        dir
    }

    #[test]
    fn evicted_session_round_trips_through_its_disk_checkpoint() {
        let dir = evict_dir("wire");
        let server = SnnServer::start(
            "127.0.0.1:0",
            ServerConfig {
                evict_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.open("v", tiny_spec(5)).unwrap();
        let s = stream(5, 8);
        client.ingest("v", &s[..4]).unwrap();
        let reference = client.checkpoint("v").unwrap();

        let path = client.evict("v").unwrap();
        // Later requests carry the restore path as the whole message.
        let err = client.report("v").unwrap_err();
        assert_eq!(err.server_code(), Some("session-evicted"));
        match &err {
            ClientError::Server { msg, .. } => assert_eq!(msg, &path),
            other => panic!("unexpected {other:?}"),
        }
        let stats = client.stats().unwrap();
        assert_eq!((stats.sessions, stats.evicted_sessions), (0, 1));
        assert!(stats.total_j > 0.0, "retired joules still counted");

        // The on-disk checkpoint is the session, bit for bit; restoring
        // it under the same id supersedes the tombstone.
        let snap = snn_online::ModelSnapshot::load(std::path::Path::new(&path)).unwrap();
        assert_eq!(snap.to_bytes(), reference);
        assert_eq!(client.restore("v", &reference).unwrap(), 4);
        client.ingest("v", &s[4..]).unwrap();
        client.close("v").unwrap();
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn idle_sessions_are_swept_to_disk() {
        let dir = evict_dir("idle");
        let server = SnnServer::start(
            "127.0.0.1:0",
            ServerConfig {
                limits: ServeLimits {
                    idle_timeout: Some(std::time::Duration::from_millis(40)),
                    ..ServeLimits::default()
                },
                evict_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.open("lazy", tiny_spec(2)).unwrap();
        client.ingest("lazy", &stream(2, 4)).unwrap();
        // Wait out the timeout plus sweep latency.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = client.stats().unwrap();
            if stats.evicted_sessions == 1 {
                assert_eq!(stats.sessions, 0);
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "idle sweep never evicted the session"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let err = client.report("lazy").unwrap_err();
        assert_eq!(err.server_code(), Some("session-evicted"));
        assert!(
            std::path::Path::new(&match err {
                ClientError::Server { msg, .. } => msg,
                other => panic!("unexpected {other:?}"),
            })
            .exists(),
            "sweep checkpoint exists on disk"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_lines_get_bad_request_not_disconnect() {
        use std::io::{BufRead, BufReader, Write};
        let server = start_server(ServeLimits::default());
        let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(raw.try_clone().unwrap());
        for line in ["nonsense\n", "open\n", "ingest id=x data=zz\n", "ping\n"] {
            raw.write_all(line.as_bytes()).unwrap();
            raw.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            if line == "ping\n" {
                assert!(reply.starts_with("ok "), "got {reply:?}");
            } else {
                assert!(
                    reply.starts_with("err code=bad-request"),
                    "line {line:?} got {reply:?}"
                );
            }
        }
        server.shutdown();
    }

    #[test]
    fn truncated_final_line_is_never_dispatched() {
        use std::io::Write;
        let server = start_server(ServeLimits::default());
        let mut client = ServeClient::connect(server.local_addr()).unwrap();
        client.open("keep", tiny_spec(1)).unwrap();
        // A dying client's partial `close` must not execute: without a
        // trailing newline the request is dropped at EOF (a cut-short
        // `close id=keep-x` would otherwise close the wrong session).
        {
            let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
            raw.write_all(b"close id=keep").unwrap(); // no newline, then RST/EOF
            raw.flush().unwrap();
        }
        // Give the (now EOF'd) connection thread a moment to run.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(
            client.stats().unwrap().sessions,
            1,
            "truncated close must not have executed"
        );
        client.close("keep").unwrap();
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_share_the_server() {
        let server = start_server(ServeLimits::default());
        let addr = server.local_addr();
        let handles: Vec<_> = (0..4u64)
            .map(|s| {
                std::thread::spawn(move || {
                    let mut client = ServeClient::connect(addr).unwrap();
                    let id = format!("c{s}");
                    client.open(&id, tiny_spec(s)).unwrap();
                    for chunk in stream(s, 12).chunks(4) {
                        client.ingest(&id, chunk).unwrap();
                    }
                    let report = client.close(&id).unwrap();
                    assert_eq!(report.samples, 12);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.sessions, 0);
        assert_eq!(stats.total_samples, 48);
        server.shutdown();
    }
}
