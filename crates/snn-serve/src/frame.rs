//! Proto 2 binary framing (`DESIGN.md` §13).
//!
//! A frame is a length-prefixed binary envelope around exactly one
//! protocol line, with the line's bulky `data=<hex>` payload carried as
//! **raw bytes** instead of hex text — halving the wire size of every
//! checkpoint, shadow, and migration blob while reusing the proto 1
//! grammar (and every parser, dispatcher, and relay rule built on it)
//! unchanged for the small textual head.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic[2]="S2"  version=u8(2)  flags=u8  verb=u8  tag=u32
//! head_len=u32   payload_len=u32
//! head[head_len]       UTF-8 line text, data hex elided
//! payload[payload_len] raw bytes of the elided data= field
//! checksum=u32         FNV-1a over everything above
//! ```
//!
//! The `tag` names one in-flight request on a multiplexed connection:
//! responses carry the request's tag, and server-initiated frames (the
//! `subscribe` push stream) carry [`FLAG_PUSH`] plus the subscription's
//! tag. Length caps are enforced **before** any allocation, mirroring
//! the session-spec caps, so a hostile 4 GiB declared length costs
//! nothing.
//!
//! [`line_to_frame`]/[`Frame::to_line`] form a bijection over protocol
//! lines: the head is the original line with the first top-level
//! `data=<hex>` value textually elided (the `data=` marker itself stays
//! in place), so reconstruction re-inserts the re-hexed payload at the
//! exact original position — byte-identical lines, trailing
//! `rid=` field and all (`DESIGN.md` §10's last-token rule keeps
//! working).

use crate::protocol::{hex_decode, hex_encode, MAX_LINE_BYTES};
use std::io::{self, Read, Write};

/// Frame magic: `"S2"`.
pub const MAGIC: [u8; 2] = *b"S2";

/// Frame-format version carried in every frame header.
pub const FRAME_VERSION: u8 = 2;

/// Flag bit: server-initiated frame (subscription push), not a response
/// to a tagged request.
pub const FLAG_PUSH: u8 = 0b0000_0001;

/// Flag bit: the head had a `data=` field whose value rides in the
/// binary payload section. Distinguishes "no data field" from "data
/// field with an empty value".
pub const FLAG_DATA: u8 = 0b0000_0010;

/// Cap on the textual head of a frame. Heads are protocol lines minus
/// their bulk payload, so 1 MiB is already generous.
pub const MAX_FRAME_HEAD: u32 = 1024 * 1024;

/// Cap on the binary payload of a frame: the raw-byte analogue of
/// [`MAX_LINE_BYTES`] (which bounds *hex* payloads, i.e. 2 bytes of
/// line per payload byte).
pub const MAX_FRAME_PAYLOAD: u32 = (MAX_LINE_BYTES / 2) as u32;

/// Fixed header size in bytes (magic through `payload_len`).
pub const HEADER_BYTES: usize = 17;

/// Verb code for lines whose verb has no registered code; the receiver
/// parses the verb from the head text as always.
pub const VERB_RAW: u8 = 0;

/// Registered verb codes, used for dispatch-free observability (per-verb
/// frame accounting without parsing the head). The head text remains
/// authoritative: a frame whose nonzero code disagrees with its head is
/// rejected as `bad-frame`.
pub const VERB_CODES: &[(u8, &str)] = &[
    (1, "hello"),
    (2, "ping"),
    (3, "stats"),
    (4, "metrics"),
    (5, "journal"),
    (6, "subscribe"),
    (7, "open"),
    (8, "ingest"),
    (9, "report"),
    (10, "energy"),
    (11, "checkpoint"),
    (12, "restore"),
    (13, "swap"),
    (14, "shadow"),
    (15, "evict"),
    (16, "close"),
    (17, "cluster-stats"),
    (18, "cluster-metrics"),
    (19, "cluster-journal"),
    (20, "cluster-grow"),
    (21, "cluster-drain"),
    (32, "ok"),
    (33, "err"),
    (34, "push"),
];

/// The registered code for a verb, or [`VERB_RAW`] when it has none.
pub fn verb_code(verb: &str) -> u8 {
    VERB_CODES
        .iter()
        .find(|(_, v)| *v == verb)
        .map_or(VERB_RAW, |(c, _)| *c)
}

/// The verb a registered code names.
pub fn verb_name(code: u8) -> Option<&'static str> {
    VERB_CODES.iter().find(|(c, _)| *c == code).map(|(_, v)| *v)
}

/// Why a frame failed to decode. The variants split along the only
/// operational line that matters: whether the byte stream can still be
/// trusted after the failure (per-frame errors) or not (stream errors —
/// the connection must close).
#[derive(Debug)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`] — the peer is not speaking
    /// proto 2 (or the stream desynced). Fatal for the connection.
    BadMagic([u8; 2]),
    /// Unsupported frame-format version. Fatal for the connection.
    BadVersion(u8),
    /// Declared head length exceeds [`MAX_FRAME_HEAD`]. Rejected before
    /// allocation; fatal (the lengths can't be trusted to skip by).
    HeadTooBig(u32),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`]. Rejected
    /// before allocation; fatal.
    PayloadTooBig(u32),
    /// Checksum mismatch: the frame arrived corrupted. Fatal.
    BadChecksum {
        /// Checksum carried in the frame.
        want: u32,
        /// Checksum computed over the received bytes.
        got: u32,
    },
    /// The head was not valid UTF-8. Per-frame: framing stayed intact.
    BadUtf8,
    /// [`FLAG_DATA`] is set but the head has no empty top-level `data=`
    /// slot to re-insert the payload into. Per-frame.
    BadData,
    /// The frame's verb code is nonzero but unregistered, or disagrees
    /// with the head's verb. Per-frame: framing stayed intact.
    BadVerb(u8),
    /// The stream ended inside a frame.
    Truncated,
    /// Socket failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::HeadTooBig(n) => {
                write!(f, "declared head of {n} bytes exceeds {MAX_FRAME_HEAD}")
            }
            FrameError::PayloadTooBig(n) => {
                write!(
                    f,
                    "declared payload of {n} bytes exceeds {MAX_FRAME_PAYLOAD}"
                )
            }
            FrameError::BadChecksum { want, got } => {
                write!(
                    f,
                    "frame checksum mismatch (want {want:08x}, got {got:08x})"
                )
            }
            FrameError::BadUtf8 => write!(f, "frame head is not valid utf-8"),
            FrameError::BadData => write!(f, "frame head has no data= slot for its payload"),
            FrameError::BadVerb(c) => write!(f, "unknown or mismatched verb code {c}"),
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

impl FrameError {
    /// Whether the byte stream is still frame-aligned after this error
    /// (the connection may answer `err` and keep serving) or must close.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            FrameError::BadUtf8 | FrameError::BadVerb(_) | FrameError::BadData
        )
    }
}

/// One decoded proto 2 frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Flag bits ([`FLAG_PUSH`], [`FLAG_DATA`]).
    pub flags: u8,
    /// Registered verb code, or [`VERB_RAW`].
    pub verb: u8,
    /// Multiplexing tag: names the in-flight request this frame belongs
    /// to. Responses and push frames echo their request's tag.
    pub tag: u32,
    /// The protocol line (no trailing newline) with its first top-level
    /// `data=<hex>` value elided when [`FLAG_DATA`] is set.
    pub head: String,
    /// Raw bytes of the elided `data=` value (empty unless
    /// [`FLAG_DATA`]).
    pub payload: Vec<u8>,
}

/// FNV-1a over a byte slice, the integrity check of every frame: cheap,
/// dependency-free, and plenty for catching desync/truncation (the
/// transport below already guarantees bit integrity).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Frame {
    /// Encodes the frame into its wire bytes (header, head, payload,
    /// checksum).
    pub fn encode(&self) -> Vec<u8> {
        let head = self.head.as_bytes();
        let mut out = Vec::with_capacity(HEADER_BYTES + head.len() + self.payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.push(FRAME_VERSION);
        out.push(self.flags);
        out.push(self.verb);
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&(head.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(head);
        out.extend_from_slice(&self.payload);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Reads one frame from a blocking reader. Returns `Ok(None)` on a
    /// clean end of stream (EOF exactly at a frame boundary).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`]; see its variants for which failures leave
    /// the stream usable.
    pub fn read_from(reader: &mut impl Read) -> Result<Option<Frame>, FrameError> {
        let mut header = [0u8; HEADER_BYTES];
        // Distinguish clean EOF (no bytes at all) from truncation.
        let mut got = 0usize;
        while got < header.len() {
            match reader.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Ok(None),
                Ok(0) => return Err(FrameError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        if header[0..2] != MAGIC {
            return Err(FrameError::BadMagic([header[0], header[1]]));
        }
        if header[2] != FRAME_VERSION {
            return Err(FrameError::BadVersion(header[2]));
        }
        let flags = header[3];
        let verb = header[4];
        let tag = u32::from_le_bytes(header[5..9].try_into().expect("4 bytes"));
        let head_len = u32::from_le_bytes(header[9..13].try_into().expect("4 bytes"));
        let payload_len = u32::from_le_bytes(header[13..17].try_into().expect("4 bytes"));
        // The caps gate *before* the allocations below: a hostile header
        // declaring 4 GiB is refused for the price of 17 bytes.
        if head_len > MAX_FRAME_HEAD {
            return Err(FrameError::HeadTooBig(head_len));
        }
        if payload_len > MAX_FRAME_PAYLOAD {
            return Err(FrameError::PayloadTooBig(payload_len));
        }
        let mut head = vec![0u8; head_len as usize];
        reader.read_exact(&mut head)?;
        let mut payload = vec![0u8; payload_len as usize];
        reader.read_exact(&mut payload)?;
        let mut sum_bytes = [0u8; 4];
        reader.read_exact(&mut sum_bytes)?;
        let want = u32::from_le_bytes(sum_bytes);
        let mut h = fnv1a(&header);
        for &b in head.iter().chain(payload.iter()) {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        if h != want {
            return Err(FrameError::BadChecksum { want, got: h });
        }
        let head = String::from_utf8(head).map_err(|_| FrameError::BadUtf8)?;
        Ok(Some(Frame {
            flags,
            verb,
            tag,
            head,
            payload,
        }))
    }

    /// Writes the encoded frame to a blocking writer and flushes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn write_to(&self, writer: &mut impl Write) -> io::Result<()> {
        writer.write_all(&self.encode())?;
        writer.flush()
    }

    /// Reconstructs the exact protocol line this frame carries,
    /// re-hex-encoding the payload into the elided `data=` slot.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BadVerb`] when the frame's nonzero verb
    /// code disagrees with the head's verb, and [`FrameError::BadData`]
    /// when [`FLAG_DATA`] is set but the head has no empty top-level
    /// `data=` marker to fill.
    pub fn to_line(&self) -> Result<String, FrameError> {
        if self.verb != VERB_RAW {
            let head_verb = self.head.split(' ').next().unwrap_or("");
            if verb_name(self.verb) != Some(head_verb) {
                return Err(FrameError::BadVerb(self.verb));
            }
        }
        if self.flags & FLAG_DATA == 0 {
            return Ok(self.head.clone());
        }
        let at = match find_data_value(&self.head) {
            // The slot must be empty: a crafted frame carrying both a
            // literal hex value and a binary payload is ambiguous.
            Some((start, end)) if start == end => start,
            _ => return Err(FrameError::BadData),
        };
        let hex = hex_encode(&self.payload);
        let mut line = String::with_capacity(self.head.len() + hex.len());
        line.push_str(&self.head[..at]);
        line.push_str(&hex);
        line.push_str(&self.head[at..]);
        Ok(line)
    }
}

/// Byte range of the first top-level `data=` field's **value** in a
/// line, honouring the tokenizer's quoting rules so a `data=` inside a
/// quoted `msg="…"` never matches. Returns `None` when there is no
/// top-level `data=` field or its value is quoted.
fn find_data_value(line: &str) -> Option<(usize, usize)> {
    let line = line.trim_end_matches(['\r', '\n']);
    let bytes = line.as_bytes();
    // Skip the verb token.
    let mut pos = line.find(' ')?;
    while pos < bytes.len() {
        while pos < bytes.len() && bytes[pos] == b' ' {
            pos += 1;
        }
        if pos >= bytes.len() {
            break;
        }
        let start = pos;
        // One token: key=value, where a value starting with '"' runs to
        // the closing quote (no escapes — the tokenizer has none).
        let eq = match line[pos..].find(['=', ' ']) {
            Some(o) if bytes[pos + o] == b'=' => pos + o,
            _ => {
                // Keyless token (e.g. a malformed field): skip it.
                pos = line[pos..].find(' ').map_or(line.len(), |o| pos + o);
                continue;
            }
        };
        let key = &line[start..eq];
        pos = eq + 1;
        if bytes.get(pos) == Some(&b'"') {
            // Quoted value: never a payload slot.
            let close = line[pos + 1..].find('"')?;
            pos = pos + 1 + close + 1;
            continue;
        }
        let end = line[pos..].find(' ').map_or(line.len(), |o| pos + o);
        if key == "data" {
            return Some((pos, end));
        }
        pos = end;
    }
    None
}

/// Converts one protocol line into a frame, lifting the first top-level
/// `data=<hex>` value (when present and decodable) into the raw binary
/// payload. Lines without a liftable payload travel whole in the head.
/// Total: every protocol line has a frame, and [`Frame::to_line`]
/// inverts this exactly.
pub fn line_to_frame(line: &str, tag: u32, flags: u8) -> Frame {
    let line = line.trim_end_matches(['\r', '\n']);
    let verb = verb_code(line.split(' ').next().unwrap_or(""));
    if let Some((start, end)) = find_data_value(line) {
        let hex = &line[start..end];
        if !hex.is_empty() {
            if let Ok(payload) = hex_decode(hex) {
                let mut head = String::with_capacity(line.len() - hex.len());
                head.push_str(&line[..start]);
                head.push_str(&line[end..]);
                return Frame {
                    flags: flags | FLAG_DATA,
                    verb,
                    tag,
                    head,
                    payload,
                };
            }
        }
    }
    Frame {
        flags,
        verb,
        tag,
        head: line.to_string(),
        payload: Vec::new(),
    }
}

/// Byte length of the first top-level `data=` value **as it appears in
/// the line text** (i.e. hex characters). This is what a proto 1
/// transport moves for the line's payload; a proto 2 frame moves half
/// that (the decoded raw bytes). Relay tiers feed this into their
/// per-protocol `payload_bytes` counters.
pub fn line_payload_len(line: &str) -> u64 {
    find_data_value(line).map_or(0, |(start, end)| (end - start) as u64)
}

/// Re-exported for hardening tests: decodes a full frame from a byte
/// slice (must consume it exactly).
///
/// # Errors
///
/// Fails as [`Frame::read_from`] does, plus [`FrameError::Truncated`]
/// when trailing bytes remain.
pub fn decode_exact(bytes: &[u8]) -> Result<Frame, FrameError> {
    let mut cursor = bytes;
    let frame = Frame::read_from(&mut cursor)?.ok_or(FrameError::Truncated)?;
    if !cursor.is_empty() {
        return Err(FrameError::Truncated);
    }
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_line_halves_on_the_wire() {
        let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let line = format!("ok id=sess data={} rid=s0-12", hex_encode(&payload));
        let frame = line_to_frame(&line, 42, 0);
        assert_eq!(frame.flags & FLAG_DATA, FLAG_DATA);
        assert_eq!(frame.payload, payload);
        assert_eq!(frame.head, "ok id=sess data= rid=s0-12");
        assert!(frame.encode().len() < line.len() / 2 + 128);
        assert_eq!(frame.to_line().unwrap(), line);
    }

    #[test]
    fn data_inside_quoted_msg_is_not_lifted() {
        let line = "err code=bad msg=\"rejected data=deadbeef here\" rid=s0-1";
        let frame = line_to_frame(line, 1, 0);
        assert_eq!(frame.flags & FLAG_DATA, 0);
        assert_eq!(frame.to_line().unwrap(), line);
    }

    #[test]
    fn empty_and_non_hex_data_values_travel_in_the_head() {
        for line in ["restore id=x data=", "open id=x data=zz", "ping"] {
            let frame = line_to_frame(line, 9, 0);
            assert_eq!(frame.flags & FLAG_DATA, 0, "{line}");
            assert_eq!(frame.to_line().unwrap(), line, "{line}");
        }
    }

    #[test]
    fn rid_stays_the_final_token_after_reconstruction() {
        let line = format!("restore id=a data={} rid=c0-7", hex_encode(b"snapshot"));
        let rebuilt = line_to_frame(&line, 3, 0).to_line().unwrap();
        assert_eq!(crate::protocol::extract_rid(&rebuilt), Some("c0-7"));
        assert_eq!(rebuilt, line);
    }

    #[test]
    fn encode_decode_is_an_identity() {
        let frame = Frame {
            flags: FLAG_PUSH | FLAG_DATA,
            verb: verb_code("push"),
            tag: 0xDEAD_BEEF,
            head: "push seq=4 data= journal=ab".to_string(),
            payload: vec![0, 1, 2, 255],
        };
        let decoded = decode_exact(&frame.encode()).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn corrupted_bytes_fail_the_checksum() {
        let mut bytes = line_to_frame("ping", 1, 0).encode();
        // Flip a bit in the head text: the structural fields still parse,
        // so only the trailing checksum can catch it.
        bytes[HEADER_BYTES] ^= 0x40;
        assert!(matches!(
            decode_exact(&bytes),
            Err(FrameError::BadChecksum { .. })
        ));
    }

    #[test]
    fn oversized_declared_lengths_reject_before_allocation() {
        let mut bytes = line_to_frame("ping", 1, 0).encode();
        bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_exact(&bytes),
            Err(FrameError::HeadTooBig(_))
        ));
        let mut bytes = line_to_frame("ping", 1, 0).encode();
        bytes[13..17].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_exact(&bytes),
            Err(FrameError::PayloadTooBig(_))
        ));
    }

    #[test]
    fn mismatched_verb_code_is_rejected() {
        let mut frame = line_to_frame("ping", 1, 0);
        frame.verb = verb_code("close");
        let decoded = decode_exact(&frame.encode()).unwrap();
        assert!(matches!(decoded.to_line(), Err(FrameError::BadVerb(_))));
    }

    #[test]
    fn clean_eof_is_none_and_midframe_eof_is_truncated() {
        let bytes = line_to_frame("ping", 1, 0).encode();
        let mut empty: &[u8] = &[];
        assert!(Frame::read_from(&mut empty).unwrap().is_none());
        let mut cut = &bytes[..bytes.len() - 2];
        assert!(matches!(
            Frame::read_from(&mut cut),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn verb_codes_are_unique_and_invertible() {
        for (code, verb) in VERB_CODES {
            assert_eq!(verb_code(verb), *code);
            assert_eq!(verb_name(*code), Some(*verb));
            assert_ne!(*code, VERB_RAW);
        }
        let mut codes: Vec<u8> = VERB_CODES.iter().map(|(c, _)| *c).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), VERB_CODES.len());
    }
}
