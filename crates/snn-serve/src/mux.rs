//! Proto 2 connection multiplexing (`DESIGN.md` §13).
//!
//! One negotiated socket carries many in-flight requests at once: every
//! request [`Frame`] names itself with a client-chosen tag, responses
//! echo the tag, and `subscribe` streams arrive as server-initiated
//! [`FLAG_PUSH`] frames on the subscription's tag. This replaces
//! thread-per-connection fan-out on the relay path: a routing tier keeps
//! **one** connection per shard and interleaves session traffic,
//! checkpoint blobs, shadow pushes, and migrations over it.
//!
//! The server half ([`run_mux`]) is tier-agnostic: anything that can
//! answer one protocol line implements [`MuxHost`], so the session
//! server and the cluster router share this loop (and its flow-control
//! policy) verbatim.
//!
//! Flow control / slow-reader policy: at most [`MAX_INFLIGHT`] requests
//! are being served per connection — the reader stops pulling frames
//! when the window is full, so a flooding client is throttled by TCP
//! backpressure, not by unbounded thread growth. Push frames are
//! sacrificial: when the shared outbound queue is full they are dropped
//! (and counted via [`MuxHost::on_push_drop`]) rather than ever
//! stalling response traffic.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use crate::frame::{line_to_frame, Frame, FrameError, FLAG_PUSH, HEADER_BYTES};
use crate::protocol::{format_response, tokenize, Response};

/// Cap on concurrently served requests per multiplexed connection.
pub const MAX_INFLIGHT: usize = 64;

/// Wire size of a frame (header + body + checksum), for byte accounting.
fn wire_len(frame: &Frame) -> u64 {
    (HEADER_BYTES + frame.head.len() + frame.payload.len() + 4) as u64
}

/// A request-serving endpoint a multiplexed connection can be run
/// against. Implemented by the session server and the cluster router,
/// which differ only in how a line is answered and what a subscription
/// frame samples.
pub trait MuxHost: Send + Sync + 'static {
    /// Serves one request line to completion and returns the response
    /// line (no trailing newline). Must never panic on hostile input.
    fn handle_line(&self, line: &str) -> String;

    /// Renders the next subscription push line (a `push seq=… data=…
    /// journal=…` line), advancing `journal_cursor` past the events the
    /// frame carries. Returning `None` ends the stream (shutdown).
    fn push_line(&self, seq: u64, journal_cursor: &mut u64) -> Option<String>;

    /// Whether the host is draining; push samplers exit when true.
    fn is_shutdown(&self) -> bool;

    /// Initial journal cursor for a new subscription (the host's current
    /// journal total, so the first frame carries only fresh events).
    fn journal_total(&self) -> u64;

    /// Byte accounting hook: one request/response pair (or one push
    /// frame with `rx == 0`) crossed the wire.
    fn on_wire(&self, rx_bytes: u64, tx_bytes: u64) {
        let _ = (rx_bytes, tx_bytes);
    }

    /// Demux queue-wait hook: `line`'s frame waited `waited` for a slot
    /// in the in-flight window before being served (zero when the window
    /// had room). Hosts turn this into the request trace's `demux_wait`
    /// phase when the line carries a rid.
    fn on_queue_wait(&self, line: &str, waited: Duration) {
        let _ = (line, waited);
    }

    /// Flow-control sample: how many tags are currently being served and
    /// how many outbound frames sit in the writer queue. Called at every
    /// demux/complete/write step; hosts publish the numbers as gauges.
    fn on_flow(&self, tags_in_flight: u64, writer_queue: u64) {
        let _ = (tags_in_flight, writer_queue);
    }

    /// Registers a new subscription stream, returning the sequence label
    /// its drop accounting is filed under.
    fn next_subscriber(&self) -> u64 {
        0
    }

    /// A push frame was dropped for slow subscriber `sub` (the label
    /// [`MuxHost::next_subscriber`] returned for its stream).
    fn on_push_drop(&self, sub: u64) {
        let _ = sub;
    }
}

/// The outbound frame channel plus its depth counter: every enqueue and
/// the writer thread's dequeues keep `depth` equal to the frames queued
/// but not yet written, so hosts can publish writer-queue pressure.
#[derive(Clone)]
struct Outbound {
    tx: mpsc::SyncSender<Frame>,
    depth: Arc<AtomicU64>,
}

impl Outbound {
    fn send(&self, frame: Frame) -> Result<(), mpsc::SendError<Frame>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    fn try_send(&self, frame: Frame) -> Result<(), mpsc::TrySendError<Frame>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.depth.fetch_sub(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }
}

/// Serves one upgraded (post-`hello`) proto 2 connection until the peer
/// disconnects: demultiplexes request frames, fans them out to worker
/// threads bounded by [`MAX_INFLIGHT`], and serialises tagged response
/// frames through one writer thread.
///
/// Takes the connection's existing buffered reader (bytes a client
/// pipelined behind its `hello` line must not be lost in the upgrade)
/// plus the writable stream.
///
/// # Errors
///
/// Returns the socket error that ended the connection; a clean client
/// disconnect is `Ok(())`.
pub fn run_mux<R: io::Read, H: MuxHost>(
    mut reader: R,
    stream: TcpStream,
    host: Arc<H>,
) -> io::Result<()> {
    let (raw_tx, out_rx) = mpsc::sync_channel::<Frame>(MAX_INFLIGHT);
    let out_tx = Outbound {
        tx: raw_tx,
        depth: Arc::new(AtomicU64::new(0)),
    };
    // Tags currently being served (duplicate detection + the in-flight
    // window the reader blocks on).
    let inflight = Arc::new((Mutex::new(HashSet::<u32>::new()), Condvar::new()));
    let writer_thread = {
        let depth = Arc::clone(&out_tx.depth);
        let inflight = Arc::clone(&inflight);
        let host = Arc::clone(&host);
        std::thread::spawn(move || {
            let mut writer = BufWriter::new(stream);
            for frame in out_rx {
                let queued = depth.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
                let tags = inflight.0.lock().expect("inflight lock").len() as u64;
                host.on_flow(tags, queued);
                if writer
                    .write_all(&frame.encode())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // The socket is gone: drain (and drop) remaining frames
                    // so senders never block on a dead connection.
                    break;
                }
            }
        })
    };
    let result = loop {
        let frame = match Frame::read_from(&mut reader) {
            Ok(Some(frame)) => frame,
            Ok(None) => break Ok(()),
            Err(e) if e.is_recoverable() => {
                // Framing is still aligned: answer on tag 0 (the tag is
                // unknowable for a head that failed to decode) and keep
                // serving other in-flight work.
                let resp = Response::error("bad-frame", e.to_string());
                let _ = out_tx.try_send(line_to_frame(&format_response(&resp), 0, 0));
                continue;
            }
            Err(FrameError::Io(e)) => break Err(e),
            Err(e) => {
                // Desynced or hostile stream: one best-effort error
                // frame, then close — later bytes cannot be trusted.
                let resp = Response::error("bad-frame", e.to_string());
                let _ = out_tx.try_send(line_to_frame(&format_response(&resp), 0, 0));
                break Ok(());
            }
        };
        if frame.flags & FLAG_PUSH != 0 {
            let resp = Response::error("bad-frame", "push flag is server-initiated only");
            let _ = out_tx.try_send(line_to_frame(&format_response(&resp), frame.tag, 0));
            continue;
        }
        let rx_bytes = wire_len(&frame);
        let verb = frame.head.split(' ').next().unwrap_or("").to_string();
        if verb == "subscribe" {
            spawn_push_sampler(&frame, Arc::clone(&host), out_tx.clone());
            continue;
        }
        let waited;
        {
            let (set, cv) = &*inflight;
            let mut set = set.lock().expect("inflight lock");
            if set.contains(&frame.tag) {
                drop(set);
                let resp = Response::error(
                    "duplicate-tag",
                    format!("tag {} is already in flight", frame.tag),
                );
                let _ = out_tx.try_send(line_to_frame(&format_response(&resp), frame.tag, 0));
                continue;
            }
            // The flow-control window: stop pulling frames until a slot
            // frees up. The kernel's receive buffer then fills and the
            // client blocks in its own write — backpressure, not OOM.
            // Time spent here is the request's demux queue-wait.
            let wait0 = std::time::Instant::now();
            while set.len() >= MAX_INFLIGHT {
                set = cv.wait(set).expect("inflight lock");
            }
            waited = wait0.elapsed();
            set.insert(frame.tag);
            host.on_flow(set.len() as u64, out_tx.depth.load(Ordering::Relaxed));
        }
        let host = Arc::clone(&host);
        let out_tx = out_tx.clone();
        let inflight = Arc::clone(&inflight);
        std::thread::spawn(move || {
            let tag = frame.tag;
            let response_line = match frame.to_line() {
                Ok(line) => {
                    host.on_queue_wait(&line, waited);
                    host.handle_line(&line)
                }
                Err(e) => format_response(&Response::error("bad-frame", e.to_string())),
            };
            let response = line_to_frame(&response_line, tag, 0);
            host.on_wire(rx_bytes, wire_len(&response));
            let _ = out_tx.send(response);
            let (set, cv) = &*inflight;
            let remaining = {
                let mut set = set.lock().expect("inflight lock");
                set.remove(&tag);
                set.len() as u64
            };
            cv.notify_one();
            host.on_flow(remaining, out_tx.depth.load(Ordering::Relaxed));
        });
    };
    drop(out_tx);
    // Worker and sampler threads hold channel clones; the writer exits
    // once the last of them finishes (or immediately on socket death).
    let _ = writer_thread.join();
    result
}

/// Starts one subscription stream: an `ok interval_ms=…` ack on the
/// subscription's tag, then periodic [`FLAG_PUSH`] frames until host
/// shutdown or connection death. The sampler never blocks on the
/// subscriber: full outbound queues drop the frame and count it.
fn spawn_push_sampler<H: MuxHost>(frame: &Frame, host: Arc<H>, out_tx: Outbound) {
    let interval_ms: u64 = tokenize(&frame.head)
        .ok()
        .and_then(|(_, fields)| {
            fields
                .iter()
                .find(|(k, _)| k == "interval_ms")
                .and_then(|(_, v)| v.parse().ok())
        })
        .unwrap_or(200);
    let interval = Duration::from_millis(interval_ms.clamp(10, 10_000));
    let tag = frame.tag;
    let ack = Response::ok([("interval_ms", interval.as_millis().to_string())]);
    if out_tx
        .send(line_to_frame(&format_response(&ack), tag, 0))
        .is_err()
    {
        return;
    }
    std::thread::spawn(move || {
        let sub = host.next_subscriber();
        let mut cursor = host.journal_total();
        let mut seq = 0u64;
        loop {
            if host.is_shutdown() {
                return;
            }
            std::thread::sleep(interval);
            let Some(line) = host.push_line(seq, &mut cursor) else {
                return;
            };
            seq += 1;
            let push = line_to_frame(&line, tag, FLAG_PUSH);
            let tx_bytes = wire_len(&push);
            match out_tx.try_send(push) {
                Ok(()) => host.on_wire(0, tx_bytes),
                Err(mpsc::TrySendError::Full(_)) => host.on_push_drop(sub),
                Err(mpsc::TrySendError::Disconnected(_)) => return,
            }
        }
    });
}

/// The client half of a multiplexed connection: one writer, one reader
/// thread, and a tagged in-flight table routing each response (and each
/// push stream) to its caller. Cheap to share — a routing tier keeps one
/// `Arc<MuxClient>` per shard and issues concurrent calls over it.
#[derive(Debug)]
pub struct MuxClient {
    writer: Mutex<TcpStream>,
    pending: Arc<Mutex<HashMap<u32, mpsc::Sender<Frame>>>>,
    next_tag: AtomicU32,
    dead: Arc<AtomicBool>,
    tx_bytes: AtomicU64,
    rx_bytes: Arc<AtomicU64>,
    /// Deadline applied to each call's response wait (the socket itself
    /// carries no read timeout — the reader thread must block
    /// indefinitely between frames on an idle connection).
    reply_timeout: Mutex<Option<Duration>>,
}

impl MuxClient {
    /// Wraps an already-negotiated (post-`hello ok proto=2`) socket.
    /// Spawns the demultiplexing reader thread; it exits when the socket
    /// dies or this client is dropped.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from cloning/configuring the stream.
    pub fn new(stream: TcpStream, reply_timeout: Option<Duration>) -> io::Result<Arc<MuxClient>> {
        // An inherited read timeout would make the reader thread treat an
        // idle-but-healthy connection as dead; deadlines are enforced
        // per-call via `reply_timeout` instead.
        stream.set_read_timeout(None)?;
        let read_half = stream.try_clone()?;
        let pending = Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        let rx_bytes = Arc::new(AtomicU64::new(0));
        let client = Arc::new(MuxClient {
            writer: Mutex::new(stream),
            pending: Arc::clone(&pending),
            next_tag: AtomicU32::new(1),
            dead: Arc::clone(&dead),
            tx_bytes: AtomicU64::new(0),
            rx_bytes: Arc::clone(&rx_bytes),
            reply_timeout: Mutex::new(reply_timeout),
        });
        // The reader holds only the shared maps, never the Arc<MuxClient>
        // itself — otherwise Drop (which closes the socket to unblock
        // this very thread) could never run.
        std::thread::spawn(move || {
            let mut reader = BufReader::new(read_half);
            // An error or clean EOF both end the reader the same way.
            while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
                rx_bytes.fetch_add(wire_len(&frame), Ordering::Relaxed);
                let mut map = pending.lock().expect("pending lock");
                let is_push = frame.flags & FLAG_PUSH != 0;
                let tag = frame.tag;
                if let Some(tx) = map.get(&tag) {
                    let delivered = tx.send(frame).is_ok();
                    // One-shot responses retire their tag here; push
                    // streams keep theirs registered until the
                    // subscriber goes away.
                    if !is_push || !delivered {
                        map.remove(&tag);
                    }
                }
                // Unknown tags are late responses for callers that
                // already timed out: dropped silently.
            }
            dead.store(true, Ordering::SeqCst);
            // Dropping every sender unblocks all waiting callers with a
            // disconnect error.
            pending.lock().expect("pending lock").clear();
        });
        Ok(client)
    }

    /// Whether the connection has died (reader thread exited).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Re-bounds every later call's response wait (`None` blocks
    /// forever).
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) {
        *self.reply_timeout.lock().expect("timeout lock") = timeout;
    }

    /// Total bytes written to / read from the socket, frame overhead
    /// included.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (
            self.tx_bytes.load(Ordering::Relaxed),
            self.rx_bytes.load(Ordering::Relaxed),
        )
    }

    fn alloc_tag(&self) -> u32 {
        // Tag 0 is reserved for connection-level errors from the server.
        loop {
            let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
            if tag != 0 {
                return tag;
            }
        }
    }

    fn register(&self, tag: u32) -> mpsc::Receiver<Frame> {
        let (tx, rx) = mpsc::channel();
        self.pending.lock().expect("pending lock").insert(tag, tx);
        rx
    }

    fn send_line(&self, line: &str, tag: u32) -> io::Result<u64> {
        let bytes = line_to_frame(line, tag, 0).encode();
        let mut writer = self.writer.lock().expect("writer lock");
        writer.write_all(&bytes)?;
        writer.flush()?;
        self.tx_bytes
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        Ok(bytes.len() as u64)
    }

    fn recv(&self, rx: &mpsc::Receiver<Frame>, tag: u32) -> io::Result<Frame> {
        let timeout = *self.reply_timeout.lock().expect("timeout lock");
        let frame = match timeout {
            Some(t) => rx.recv_timeout(t).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => {
                    // Retire the tag so a late response is not
                    // misdelivered to a future call reusing the slot.
                    self.pending.lock().expect("pending lock").remove(&tag);
                    io::Error::new(io::ErrorKind::TimedOut, "mux reply timed out")
                }
                mpsc::RecvTimeoutError::Disconnected => disconnected(),
            })?,
            None => rx.recv().map_err(|_| disconnected())?,
        };
        Ok(frame)
    }

    /// Sends one already-formatted request line and blocks for its
    /// tagged response line — the multiplexed analogue of a line
    /// transport's write-then-read, safe to call from many threads at
    /// once.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, connection death, reply timeout, and
    /// undecodable response frames.
    pub fn call_line(&self, line: &str) -> io::Result<String> {
        self.call_line_counted(line).map(|(reply, _, _)| reply)
    }

    /// [`MuxClient::call_line`] plus this call's exact wire cost:
    /// `(reply, tx_bytes, rx_bytes)` measured on the frames actually
    /// sent and received (header and checksum included) — what a relay
    /// tier feeds into its per-protocol byte counters.
    ///
    /// # Errors
    ///
    /// Fails as [`MuxClient::call_line`] does.
    pub fn call_line_counted(&self, line: &str) -> io::Result<(String, u64, u64)> {
        if self.is_dead() {
            return Err(disconnected());
        }
        let tag = self.alloc_tag();
        let rx = self.register(tag);
        let sent = match self.send_line(line, tag) {
            Ok(sent) => sent,
            Err(e) => {
                self.pending.lock().expect("pending lock").remove(&tag);
                return Err(e);
            }
        };
        let frame = self.recv(&rx, tag)?;
        let received = wire_len(&frame);
        let reply = frame
            .to_line()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok((reply, sent, received))
    }

    /// Starts a subscription stream: sends the `subscribe` line and
    /// returns the ack line plus a receiver of raw push frames on the
    /// subscription's tag.
    ///
    /// # Errors
    ///
    /// Fails as [`MuxClient::call_line`] does on the handshake.
    pub fn subscribe_line(&self, line: &str) -> io::Result<(String, mpsc::Receiver<Frame>)> {
        if self.is_dead() {
            return Err(disconnected());
        }
        let tag = self.alloc_tag();
        let (tx, rx) = mpsc::channel();
        self.pending
            .lock()
            .expect("pending lock")
            .insert(tag, tx.clone());
        if let Err(e) = self.send_line(line, tag) {
            self.pending.lock().expect("pending lock").remove(&tag);
            return Err(e);
        }
        // The ack is the first frame on the tag; delivering it retired
        // the tag (no PUSH flag), so re-register the same sender for the
        // push stream that follows.
        let ack = self.recv(&rx, tag)?;
        self.pending.lock().expect("pending lock").insert(tag, tx);
        let ack_line = ack
            .to_line()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        Ok((ack_line, rx))
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        // Unblocks the reader thread (it holds only a socket clone).
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(Shutdown::Both);
        }
    }
}

fn disconnected() -> io::Error {
    io::Error::new(
        io::ErrorKind::UnexpectedEof,
        "multiplexed connection closed",
    )
}
