//! Adversarial input on the proto 2 framing layer (`DESIGN.md` §13).
//!
//! Every case feeds a live server hostile or damaged bytes over a real
//! upgraded socket and pins the only acceptable outcomes: a tagged (or
//! tag-0) `err code=bad-frame` reply, a clean connection drop, or both —
//! **never** a panic, an unbounded allocation, or a stall of the other
//! in-flight tags on the same connection. The server must stay healthy
//! for later connections in all cases.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::Duration;

use snn_data::{Image, SyntheticDigits};
use snn_serve::frame::{
    line_to_frame, verb_code, Frame, FrameError, FLAG_PUSH, HEADER_BYTES, MAGIC, MAX_FRAME_PAYLOAD,
    VERB_RAW,
};
use snn_serve::protocol::{format_request, parse_response, Request, Response, SessionSpec};
use snn_serve::{ServeClient, ServerConfig, SnnServer, PROTO_V2};
use spikedyn::Method;

/// A read timeout generous enough for CI yet far below "stalled".
const READ_DEADLINE: Duration = Duration::from_secs(10);

fn start_server() -> SnnServer {
    SnnServer::start("127.0.0.1:0", ServerConfig::default()).expect("bind an ephemeral port")
}

/// Connects and upgrades to proto 2 by hand: the line-based `hello`,
/// then the raw socket for frame traffic.
fn upgrade(server: &SnnServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(READ_DEADLINE))
        .expect("read timeout");
    let mut w = stream.try_clone().expect("clone");
    w.write_all(format!("hello proto={PROTO_V2}\n").as_bytes())
        .expect("hello");
    let mut banner = String::new();
    BufReader::new(stream.try_clone().expect("clone"))
        .read_line(&mut banner)
        .expect("banner");
    assert!(
        banner.starts_with("ok proto=2"),
        "upgrade refused: {banner:?}"
    );
    stream
}

/// Reads one frame, panicking on timeout (a stalled server is exactly
/// what these tests must catch).
fn read_frame(stream: &mut TcpStream) -> Option<Frame> {
    match Frame::read_from(stream) {
        Ok(frame) => frame,
        Err(FrameError::Io(e)) => panic!("read_frame: {e}"),
        Err(e) => panic!("server sent an undecodable frame: {e}"),
    }
}

/// The server must still serve fresh connections — hostile bytes on one
/// connection never poison the process.
fn assert_server_still_healthy(server: &SnnServer) {
    let mut client = ServeClient::connect_with_proto(server.local_addr(), PROTO_V2)
        .expect("fresh proto 2 connection after hostile input");
    client.ping().expect("ping after hostile input");
}

fn tiny_spec() -> SessionSpec {
    SessionSpec {
        method: Method::SpikeDyn,
        n_exc: 8,
        n_input: 49,
        n_classes: 10,
        seed: 7,
        batch_size: 4,
        assign_every: 8,
        reservoir_capacity: 12,
        metric_window: 12,
        drift_window: 8,
    }
}

fn tiny_batch(n: u64) -> Vec<Image> {
    let gen = SyntheticDigits::new(7);
    (0..n)
        .map(|i| gen.sample((i % 10) as u8, i).downsample(4))
        .collect()
}

#[test]
fn truncated_frame_is_a_clean_drop_not_a_panic() {
    let server = start_server();
    // Cut the frame off at every interesting boundary: inside the fixed
    // header, right after it, inside the head, and inside the checksum.
    let full = line_to_frame("ping", 1, 0).encode();
    for cut in [
        1,
        HEADER_BYTES - 1,
        HEADER_BYTES,
        HEADER_BYTES + 2,
        full.len() - 1,
    ] {
        let mut stream = upgrade(&server);
        stream.write_all(&full[..cut]).expect("partial write");
        stream.shutdown(Shutdown::Write).expect("half-close");
        // The server may or may not manage a best-effort error frame;
        // either way the connection must end, promptly and panic-free.
        let mut rest = Vec::new();
        let _ = stream.read_to_end(&mut rest);
    }
    assert_server_still_healthy(&server);
}

#[test]
fn oversized_declared_lengths_are_refused_before_allocation() {
    let server = start_server();
    // A 17-byte header declaring a 4 GiB payload. If the server
    // allocated what the header claims, this test would OOM the process;
    // rejecting before allocation means an error frame within the read
    // deadline instead.
    for (head_len, payload_len) in [
        (u32::MAX, 0u32),
        (0, u32::MAX),
        (0, MAX_FRAME_PAYLOAD + 1),
        (2 * 1024 * 1024, 0),
    ] {
        let mut stream = upgrade(&server);
        let mut header = Vec::new();
        header.extend_from_slice(&MAGIC);
        header.push(2); // frame version
        header.push(0); // flags
        header.push(verb_code("ping"));
        header.extend_from_slice(&9u32.to_le_bytes());
        header.extend_from_slice(&head_len.to_le_bytes());
        header.extend_from_slice(&payload_len.to_le_bytes());
        stream.write_all(&header).expect("hostile header");
        let reply = read_frame(&mut stream).expect("error frame before close");
        let resp = parse_response(&reply.to_line().expect("error frame decodes"))
            .expect("error frame parses");
        assert!(
            matches!(&resp, Response::Err { code, .. } if code == "bad-frame"),
            "for {head_len}/{payload_len}: {resp:?}"
        );
        // Fatal: the stream is desynced, so the server must close it.
        assert!(read_frame(&mut stream).is_none(), "connection must close");
    }
    assert_server_still_healthy(&server);
}

#[test]
fn bad_magic_and_bad_checksum_close_with_an_error() {
    let server = start_server();
    // Garbage where a frame should start.
    let mut stream = upgrade(&server);
    stream
        .write_all(b"GET / HTTP/1.1\r\n\r\n")
        .expect("http garbage");
    let reply = read_frame(&mut stream).expect("error frame");
    assert!(reply.head.contains("bad-frame"), "got {:?}", reply.head);
    assert!(read_frame(&mut stream).is_none(), "connection must close");

    // A well-formed frame with one flipped payload bit.
    let mut stream = upgrade(&server);
    let mut bytes = line_to_frame("ping", 3, 0).encode();
    let n = bytes.len();
    bytes[n - 6] ^= 0x10; // inside the head, caught only by the checksum
    stream.write_all(&bytes).expect("corrupt frame");
    let reply = read_frame(&mut stream).expect("error frame");
    assert!(reply.head.contains("bad-frame"), "got {:?}", reply.head);
    assert!(read_frame(&mut stream).is_none(), "connection must close");

    assert_server_still_healthy(&server);
}

#[test]
fn unknown_and_mismatched_verb_codes_answer_errors_and_keep_serving() {
    let server = start_server();
    let mut stream = upgrade(&server);

    // Verb code 200 is unassigned and disagrees with the head's `ping`.
    let mut frame = line_to_frame("ping", 5, 0);
    frame.verb = 200;
    frame.write_to(&mut stream).expect("mismatched verb");
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(reply.tag, 5, "error must come back on the request's tag");
    assert!(reply.head.contains("bad-frame"), "got {:?}", reply.head);

    // An unknown verb *name* under the raw code is a protocol-level
    // bad-request, not a framing error.
    let frame = line_to_frame("no-such-verb x=1", 6, 0);
    assert_eq!(frame.verb, VERB_RAW);
    frame.write_to(&mut stream).expect("unknown verb");
    let reply = read_frame(&mut stream).expect("reply frame");
    assert_eq!(reply.tag, 6);
    assert!(reply.head.contains("bad-request"), "got {:?}", reply.head);

    // Recoverable failures must leave the connection fully usable.
    line_to_frame("ping", 7, 0)
        .write_to(&mut stream)
        .expect("ping");
    let reply = read_frame(&mut stream).expect("pong");
    assert_eq!(reply.tag, 7);
    assert!(reply.head.starts_with("ok"), "got {:?}", reply.head);
}

#[test]
fn client_initiated_push_flag_is_rejected_per_frame() {
    let server = start_server();
    let mut stream = upgrade(&server);
    line_to_frame("ping", 4, FLAG_PUSH)
        .write_to(&mut stream)
        .expect("spoofed push");
    let reply = read_frame(&mut stream).expect("error frame");
    assert_eq!(reply.tag, 4);
    assert!(reply.head.contains("bad-frame"), "got {:?}", reply.head);
    // Still serving afterwards.
    line_to_frame("ping", 5, 0)
        .write_to(&mut stream)
        .expect("ping");
    assert!(read_frame(&mut stream)
        .expect("pong")
        .head
        .starts_with("ok"));
}

#[test]
fn duplicate_tags_error_while_the_original_request_completes() {
    let server = start_server();
    let mut stream = upgrade(&server);

    // Open a session, then race: a slow `ingest` on tag 9 immediately
    // followed by a `ping` reusing tag 9 while the ingest still runs.
    line_to_frame(
        &format_request(&Request::Open {
            id: "dup".to_string(),
            spec: tiny_spec(),
        }),
        1,
        0,
    )
    .write_to(&mut stream)
    .expect("open");
    assert!(read_frame(&mut stream)
        .expect("open reply")
        .head
        .starts_with("ok"));

    let ingest = format_request(&Request::Ingest {
        id: "dup".to_string(),
        images: tiny_batch(8),
    });
    let mut burst = line_to_frame(&ingest, 9, 0).encode();
    burst.extend_from_slice(&line_to_frame("ping", 9, 0).encode());
    stream.write_all(&burst).expect("tag collision burst");

    let first = read_frame(&mut stream).expect("first tag-9 reply");
    let second = read_frame(&mut stream).expect("second tag-9 reply");
    assert_eq!((first.tag, second.tag), (9, 9));
    let heads = [first.head.as_str(), second.head.as_str()];
    assert!(
        heads.iter().any(|h| h.contains("duplicate-tag")),
        "one reply must name the collision: {heads:?}"
    );
    assert!(
        heads.iter().any(|h| h.starts_with("ok")),
        "the original ingest must still complete: {heads:?}"
    );

    // The tag is reusable once retired.
    line_to_frame("ping", 9, 0)
        .write_to(&mut stream)
        .expect("ping");
    assert!(read_frame(&mut stream)
        .expect("pong")
        .head
        .starts_with("ok"));
}

#[test]
fn unknown_tag_responses_are_dropped_by_the_client_not_misdelivered() {
    // A hand-rolled server that answers every request with a stray
    // frame on an unrelated tag *before* the real reply.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut hello = String::new();
        reader.read_line(&mut hello).expect("hello line");
        let mut writer = stream.try_clone().expect("clone");
        writer
            .write_all(b"ok proto=2 server=fake\n")
            .expect("banner");
        let mut stream = stream;
        while let Ok(Some(frame)) = Frame::read_from(&mut reader) {
            line_to_frame("ok stray=1", frame.tag.wrapping_add(1), 0)
                .write_to(&mut stream)
                .expect("stray frame");
            line_to_frame("ok pong=1", frame.tag, 0)
                .write_to(&mut stream)
                .expect("real reply");
        }
    });

    let mut client =
        ServeClient::connect_with_proto(addr, PROTO_V2).expect("negotiate with fake server");
    for _ in 0..4 {
        let reply = client.call_raw("ping").expect("call through stray frames");
        assert!(
            reply.contains("pong=1") && !reply.contains("stray=1"),
            "stray tag misdelivered: {reply:?}"
        );
    }
    drop(client);
    handle.join().expect("fake server exits");
}

#[test]
fn interleaved_partial_writes_never_stall_other_tags() {
    let server = start_server();
    let mut stream = upgrade(&server);

    // Frame A (tag 1) goes out whole; frame B (tag 2) dribbles out
    // byte-by-byte. A's reply must arrive while B is still incomplete.
    line_to_frame("ping", 1, 0)
        .write_to(&mut stream)
        .expect("whole frame");
    let b = line_to_frame("stats", 2, 0).encode();
    let split = b.len() / 2;
    stream.write_all(&b[..split]).expect("partial frame");
    stream.flush().expect("flush");

    let reply = read_frame(&mut stream).expect("tag 1 reply despite partial tag 2");
    assert_eq!(reply.tag, 1);
    assert!(reply.head.starts_with("ok"));

    // Finish B one byte at a time; its reply still arrives.
    for byte in &b[split..] {
        stream
            .write_all(std::slice::from_ref(byte))
            .expect("dribble");
    }
    let reply = read_frame(&mut stream).expect("tag 2 reply");
    assert_eq!(reply.tag, 2);
    assert!(reply.head.starts_with("ok"));
}
