//! Drift scenarios for streaming continual learning.
//!
//! The paper's §IV evaluates two environments (dynamic and non-dynamic,
//! see [`crate::stream`]). A long-running online learner faces richer
//! distribution shifts; this module provides four deterministic scenario
//! generators beyond the paper's pair:
//!
//! * [`gradual_drift_stream`] — the class mixture ramps smoothly from one
//!   task set to another (virtual drift with a long transition).
//! * [`recurring_tasks_stream`] — task blocks repeat cyclically, so
//!   previously learned classes come back (tests recovery, not just
//!   retention).
//! * [`noise_burst_stream`] — a stationary class mixture whose middle
//!   window is corrupted by salt noise (input-level drift with no label
//!   shift).
//! * [`class_imbalance_stream`] — one class dominates the stream while the
//!   rest share the remainder uniformly.
//!
//! All generators are pure functions of `(generator seed, scenario seed,
//! position)`: the same arguments always produce the same stream, bit for
//! bit, which the online subsystem's checkpoint/resume tests rely on.

use rand::Rng;
use snn_core::rng::{derive_seed, seeded_rng};

use crate::image::Image;
use crate::synthetic::SyntheticDigits;

/// The four streaming drift scenarios, as an enumerable set for experiment
/// harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Class mixture ramps from the first half of the classes to the
    /// second half over the stream.
    GradualDrift,
    /// Task blocks cycle: 0,1,2,0,1,2,… with fresh samples each block.
    RecurringTasks,
    /// Uniform class mixture with a salt-noise burst in the middle third.
    NoiseBurst,
    /// One dominant class (70 %), the rest uniform.
    ClassImbalance,
}

impl Scenario {
    /// All scenarios in presentation order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::GradualDrift,
            Scenario::RecurringTasks,
            Scenario::NoiseBurst,
            Scenario::ClassImbalance,
        ]
    }

    /// Short identifier used in reports and CSV files.
    pub fn label(&self) -> &'static str {
        match self {
            Scenario::GradualDrift => "gradual-drift",
            Scenario::RecurringTasks => "recurring-tasks",
            Scenario::NoiseBurst => "noise-burst",
            Scenario::ClassImbalance => "class-imbalance",
        }
    }

    /// Builds the scenario's stream of `total` samples over `classes`.
    ///
    /// Every scenario draws fresh per-class sample indices starting at
    /// `index_offset`, so streams can be kept disjoint from evaluation
    /// sets the same way [`crate::stream::eval_set`] does.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn stream(
        &self,
        gen: &SyntheticDigits,
        classes: &[u8],
        total: u64,
        seed: u64,
        index_offset: u64,
    ) -> Vec<Image> {
        assert!(!classes.is_empty(), "scenario needs at least one class");
        match self {
            Scenario::GradualDrift => {
                let mid = classes.len().div_ceil(2);
                gradual_drift_stream(
                    gen,
                    &classes[..mid],
                    &classes[mid.min(classes.len() - 1)..],
                    total,
                    seed,
                    index_offset,
                )
            }
            Scenario::RecurringTasks => {
                let cycles = 3;
                let block = (total / (cycles * classes.len() as u64)).max(1);
                recurring_tasks_stream(gen, classes, block, total, index_offset)
            }
            Scenario::NoiseBurst => {
                let burst = BurstWindow {
                    start: total / 3,
                    len: total / 3,
                    salt_fraction: 0.25,
                };
                noise_burst_stream(gen, classes, total, burst, seed, index_offset)
            }
            Scenario::ClassImbalance => {
                class_imbalance_stream(gen, classes, classes[0], 0.7, total, seed, index_offset)
            }
        }
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Draws a class with fresh per-class indices, shared by the samplers.
struct ClassSampler<'a> {
    gen: &'a SyntheticDigits,
    next_index: Vec<u64>,
}

impl<'a> ClassSampler<'a> {
    fn new(gen: &'a SyntheticDigits, index_offset: u64) -> Self {
        ClassSampler {
            gen,
            next_index: vec![index_offset; 256],
        }
    }

    fn draw(&mut self, class: u8) -> Image {
        let idx = self.next_index[class as usize];
        self.next_index[class as usize] += 1;
        self.gen.sample(class, idx)
    }
}

/// Builds a gradual-drift stream: sample `i` of `total` draws from
/// `to_classes` with probability `i / (total - 1)` and from `from_classes`
/// otherwise, so the mixture ramps linearly from purely-old to purely-new.
///
/// # Panics
///
/// Panics if either class set is empty.
pub fn gradual_drift_stream(
    gen: &SyntheticDigits,
    from_classes: &[u8],
    to_classes: &[u8],
    total: u64,
    seed: u64,
    index_offset: u64,
) -> Vec<Image> {
    assert!(
        !from_classes.is_empty() && !to_classes.is_empty(),
        "drift endpoints need at least one class each"
    );
    let mut rng = seeded_rng(derive_seed(seed, 0x6D1F));
    let mut sampler = ClassSampler::new(gen, index_offset);
    (0..total)
        .map(|i| {
            let p_new = if total <= 1 {
                0.0
            } else {
                i as f64 / (total - 1) as f64
            };
            let set = if rng.gen_bool(p_new) {
                to_classes
            } else {
                from_classes
            };
            let class = set[rng.gen_range(0..set.len())];
            sampler.draw(class)
        })
        .collect()
}

/// Builds a recurring-tasks stream: tasks are presented in consecutive
/// blocks of `block_len` fresh samples, cycling through `tasks` repeatedly
/// until `total` samples have been emitted (the last block may be short).
pub fn recurring_tasks_stream(
    gen: &SyntheticDigits,
    tasks: &[u8],
    block_len: u64,
    total: u64,
    index_offset: u64,
) -> Vec<Image> {
    assert!(!tasks.is_empty(), "need at least one task");
    assert!(block_len > 0, "block length must be positive");
    let mut sampler = ClassSampler::new(gen, index_offset);
    (0..total)
        .map(|i| {
            let block = i / block_len;
            let task = tasks[(block % tasks.len() as u64) as usize];
            sampler.draw(task)
        })
        .collect()
}

/// A contiguous window of the stream corrupted by salt noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstWindow {
    /// First corrupted sample index.
    pub start: u64,
    /// Number of corrupted samples.
    pub len: u64,
    /// Fraction of pixels forced to full intensity inside the window.
    pub salt_fraction: f32,
}

impl BurstWindow {
    /// True when sample `i` falls inside the burst.
    pub fn contains(&self, i: u64) -> bool {
        i >= self.start && i < self.start + self.len
    }
}

/// Builds a noise-burst stream: classes are drawn uniformly throughout,
/// but samples inside `burst` have `salt_fraction` of their pixels forced
/// to full intensity — input-statistics drift with unchanged labels.
pub fn noise_burst_stream(
    gen: &SyntheticDigits,
    classes: &[u8],
    total: u64,
    burst: BurstWindow,
    seed: u64,
    index_offset: u64,
) -> Vec<Image> {
    assert!(!classes.is_empty(), "need at least one class");
    let mut rng = seeded_rng(derive_seed(seed, 0xB0B5));
    let mut sampler = ClassSampler::new(gen, index_offset);
    (0..total)
        .map(|i| {
            let class = classes[rng.gen_range(0..classes.len())];
            let mut img = sampler.draw(class);
            if burst.contains(i) {
                let n = img.len();
                let n_salt = (n as f32 * burst.salt_fraction).round() as usize;
                for _ in 0..n_salt {
                    let x = rng.gen_range(0..img.width());
                    let y = rng.gen_range(0..img.height());
                    img.set(x, y, 1.0);
                }
            }
            img
        })
        .collect()
}

/// Builds a class-imbalance stream: `dominant` is drawn with probability
/// `dominant_p`, the remaining probability mass is split uniformly over
/// the other classes (if `classes` contains only the dominant class, every
/// sample is that class).
///
/// # Panics
///
/// Panics if `dominant_p` is outside `[0, 1]`.
pub fn class_imbalance_stream(
    gen: &SyntheticDigits,
    classes: &[u8],
    dominant: u8,
    dominant_p: f64,
    total: u64,
    seed: u64,
    index_offset: u64,
) -> Vec<Image> {
    assert!(!classes.is_empty(), "need at least one class");
    assert!(
        (0.0..=1.0).contains(&dominant_p),
        "dominant probability must be in [0, 1]"
    );
    let minority: Vec<u8> = classes.iter().copied().filter(|&c| c != dominant).collect();
    let mut rng = seeded_rng(derive_seed(seed, 0x1BA1));
    let mut sampler = ClassSampler::new(gen, index_offset);
    (0..total)
        .map(|_| {
            let class = if minority.is_empty() || rng.gen_bool(dominant_p) {
                dominant
            } else {
                minority[rng.gen_range(0..minority.len())]
            };
            sampler.draw(class)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> SyntheticDigits {
        SyntheticDigits::new(7)
    }

    fn labels(stream: &[Image]) -> Vec<u8> {
        stream.iter().map(|s| s.label).collect()
    }

    #[test]
    fn all_scenarios_are_deterministic() {
        let g = gen();
        let classes: Vec<u8> = (0..10).collect();
        for s in Scenario::all() {
            let a = s.stream(&g, &classes, 60, 5, 0);
            let b = s.stream(&g, &classes, 60, 5, 0);
            assert_eq!(a, b, "{s} must be reproducible");
            assert_eq!(a.len(), 60);
            // Recurring tasks is a fixed block schedule — the only
            // scenario whose stream is intentionally seed-independent.
            if s != Scenario::RecurringTasks {
                let c = s.stream(&g, &classes, 60, 6, 0);
                assert_ne!(labels(&a), labels(&c), "{s} must depend on its seed");
            }
        }
    }

    #[test]
    fn scenario_labels_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for s in Scenario::all() {
            assert!(seen.insert(s.label()));
            assert_eq!(s.to_string(), s.label());
        }
    }

    #[test]
    fn gradual_drift_ramps_between_class_sets() {
        let g = gen();
        let stream = gradual_drift_stream(&g, &[0, 1], &[8, 9], 300, 3, 0);
        let head = &stream[..60];
        let tail = &stream[240..];
        let new_frac = |part: &[Image]| {
            part.iter().filter(|s| s.label >= 8).count() as f64 / part.len() as f64
        };
        assert!(new_frac(head) < 0.35, "early stream is mostly old classes");
        assert!(new_frac(tail) > 0.65, "late stream is mostly new classes");
    }

    #[test]
    fn recurring_tasks_cycle_in_blocks() {
        let g = gen();
        let stream = recurring_tasks_stream(&g, &[3, 5], 4, 16, 0);
        assert_eq!(
            labels(&stream),
            vec![3, 3, 3, 3, 5, 5, 5, 5, 3, 3, 3, 3, 5, 5, 5, 5]
        );
        // Blocks use fresh samples, never re-fed.
        assert_ne!(stream[0], stream[8]);
    }

    #[test]
    fn noise_burst_raises_intensity_only_inside_window() {
        let g = gen();
        let burst = BurstWindow {
            start: 10,
            len: 10,
            salt_fraction: 0.3,
        };
        let stream = noise_burst_stream(&g, &[0, 1], 30, burst, 9, 0);
        let mean = |part: &[Image]| {
            part.iter()
                .map(|s| f64::from(s.mean_intensity()))
                .sum::<f64>()
                / part.len() as f64
        };
        let clean = mean(&stream[..10]);
        let noisy = mean(&stream[10..20]);
        let after = mean(&stream[20..]);
        assert!(
            noisy > clean * 1.5,
            "burst window must be brighter: {clean} vs {noisy}"
        );
        assert!(after < noisy, "noise must stop after the burst");
    }

    #[test]
    fn class_imbalance_skews_towards_dominant() {
        let g = gen();
        let classes: Vec<u8> = (0..10).collect();
        let stream = class_imbalance_stream(&g, &classes, 4, 0.7, 400, 2, 0);
        let dominant = stream.iter().filter(|s| s.label == 4).count() as f64 / 400.0;
        assert!(
            (dominant - 0.7).abs() < 0.1,
            "dominant share {dominant} should be near 0.7"
        );
        let others: std::collections::HashSet<u8> =
            stream.iter().map(|s| s.label).filter(|&l| l != 4).collect();
        assert!(others.len() >= 5, "minority classes still appear");
    }

    #[test]
    fn zero_length_streams_are_empty_for_every_scenario() {
        let g = gen();
        let classes: Vec<u8> = (0..10).collect();
        for s in Scenario::all() {
            assert!(s.stream(&g, &classes, 0, 1, 0).is_empty(), "{s}");
        }
        // The raw generators agree.
        assert!(gradual_drift_stream(&g, &[0], &[1], 0, 1, 0).is_empty());
        assert!(recurring_tasks_stream(&g, &[0], 4, 0, 0).is_empty());
        let burst = BurstWindow {
            start: 0,
            len: 0,
            salt_fraction: 0.5,
        };
        assert!(noise_burst_stream(&g, &[0], 0, burst, 1, 0).is_empty());
        assert!(class_imbalance_stream(&g, &[0], 0, 0.5, 0, 1, 0).is_empty());
    }

    #[test]
    fn single_sample_gradual_drift_stays_in_the_old_phase() {
        // total == 1 exercises the `total <= 1` ramp guard: p_new must be
        // 0, never 0/0.
        let g = gen();
        let stream = gradual_drift_stream(&g, &[2], &[9], 1, 5, 0);
        assert_eq!(labels(&stream), vec![2]);
    }

    #[test]
    fn single_class_scenarios_degenerate_cleanly() {
        let g = gen();
        // Scenario::stream with one class: every generator must emit only
        // that class (gradual drift's mid-split folds both phases onto it).
        for s in Scenario::all() {
            let stream = s.stream(&g, &[7], 24, 3, 0);
            assert_eq!(stream.len(), 24, "{s}");
            assert!(labels(&stream).iter().all(|&l| l == 7), "{s}");
        }
    }

    #[test]
    fn imbalance_with_only_the_dominant_class_is_pure() {
        // `minority.is_empty()` path: dominant_p is irrelevant, every draw
        // is the dominant class — including dominant_p == 0.
        let g = gen();
        let stream = class_imbalance_stream(&g, &[4], 4, 0.0, 20, 2, 0);
        assert!(labels(&stream).iter().all(|&l| l == 4));
    }

    #[test]
    fn imbalance_probability_boundaries() {
        let g = gen();
        let classes: Vec<u8> = (0..4).collect();
        // p = 1: only the dominant class ever appears.
        let all_dominant = class_imbalance_stream(&g, &classes, 2, 1.0, 40, 3, 0);
        assert!(labels(&all_dominant).iter().all(|&l| l == 2));
        // p = 0: the dominant class never appears (minorities exist).
        let none_dominant = class_imbalance_stream(&g, &classes, 2, 0.0, 40, 3, 0);
        assert!(labels(&none_dominant).iter().all(|&l| l != 2));
    }

    #[test]
    fn recurring_tasks_shorter_than_one_cycle_truncate() {
        // total < cycles × tasks: Scenario::stream clamps the block length
        // to ≥ 1 instead of panicking on a zero block.
        let g = gen();
        let stream = Scenario::RecurringTasks.stream(&g, &(0..10).collect::<Vec<u8>>(), 5, 1, 0);
        assert_eq!(labels(&stream), vec![0, 1, 2, 3, 4]);
        // And the raw generator's final block may be short.
        let raw = recurring_tasks_stream(&g, &[1, 2], 3, 7, 0);
        assert_eq!(labels(&raw), vec![1, 1, 1, 2, 2, 2, 1]);
    }

    #[test]
    fn empty_burst_window_never_corrupts() {
        let g = gen();
        let burst = BurstWindow {
            start: 5,
            len: 0,
            salt_fraction: 1.0,
        };
        assert!(!burst.contains(5), "zero-length window contains nothing");
        let noisy = noise_burst_stream(&g, &[0, 1], 12, burst, 9, 0);
        // Same seed, salt-free window: identical to a burst that never
        // overlaps the stream.
        let clean = noise_burst_stream(
            &g,
            &[0, 1],
            12,
            BurstWindow {
                start: 100,
                len: 10,
                salt_fraction: 1.0,
            },
            9,
            0,
        );
        assert_eq!(noisy, clean);
    }

    #[test]
    fn index_offset_keeps_streams_disjoint_from_eval_sets() {
        let g = gen();
        let classes: Vec<u8> = (0..4).collect();
        for s in Scenario::all() {
            let stream = s.stream(&g, &classes, 20, 1, 0);
            let eval = crate::stream::eval_set(&g, &classes, 3, 1_000_000, 1);
            for t in &stream {
                for e in &eval {
                    assert_ne!(t, e, "{s}: stream and eval samples must not collide");
                }
            }
        }
    }
}
