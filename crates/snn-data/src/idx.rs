//! IDX file format parsing (the MNIST container format).
//!
//! When the real MNIST files are available, experiments can load them with
//! [`load_images`] / [`load_labels`] or [`Mnist::load`]; everything else in
//! the workspace treats the result identically to the synthetic dataset.
//!
//! Format reference: `http://yann.lecun.com/exdb/mnist/` — big-endian magic
//! `0x00000801` (u8 vector) or `0x00000803` (u8 3-D tensor), then one
//! big-endian `u32` per dimension, then raw `u8` payload.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use crate::image::Image;

/// Minimal big-endian cursor over a byte slice (replaces the `bytes` crate,
/// which is unavailable in the offline build environment).
struct BeCursor<'a> {
    buf: &'a [u8],
}

impl<'a> BeCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BeCursor { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Reads one big-endian `u32`; caller must have checked `remaining`.
    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.buf.split_at(4);
        self.buf = rest;
        u32::from_be_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        head
    }
}

/// Errors from IDX parsing.
#[derive(Debug)]
pub enum IdxError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic number did not match the expected type code.
    BadMagic {
        /// Magic value found in the file.
        found: u32,
        /// Magic value the caller expected.
        expected: u32,
    },
    /// File ended before the declared payload.
    Truncated {
        /// Bytes the header promised.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Images and labels files disagree on sample count.
    CountMismatch {
        /// Number of images.
        images: usize,
        /// Number of labels.
        labels: usize,
    },
}

impl fmt::Display for IdxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxError::Io(e) => write!(f, "i/o error reading idx file: {e}"),
            IdxError::BadMagic { found, expected } => {
                write!(
                    f,
                    "bad idx magic: found {found:#010x}, expected {expected:#010x}"
                )
            }
            IdxError::Truncated { expected, got } => {
                write!(
                    f,
                    "truncated idx payload: expected {expected} bytes, got {got}"
                )
            }
            IdxError::CountMismatch { images, labels } => {
                write!(f, "idx count mismatch: {images} images vs {labels} labels")
            }
        }
    }
}

impl std::error::Error for IdxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IdxError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IdxError {
    fn from(e: io::Error) -> Self {
        IdxError::Io(e)
    }
}

const MAGIC_LABELS: u32 = 0x0000_0801;
const MAGIC_IMAGES: u32 = 0x0000_0803;

/// Parses an IDX3 image tensor from raw bytes into normalised images with
/// placeholder label 0 (pair with [`parse_labels`]).
///
/// # Errors
///
/// Returns [`IdxError::BadMagic`] or [`IdxError::Truncated`] on malformed
/// input.
pub fn parse_images(raw: &[u8]) -> Result<Vec<Image>, IdxError> {
    let mut buf = BeCursor::new(raw);
    if buf.remaining() < 16 {
        return Err(IdxError::Truncated {
            expected: 16,
            got: buf.remaining(),
        });
    }
    let magic = buf.get_u32();
    if magic != MAGIC_IMAGES {
        return Err(IdxError::BadMagic {
            found: magic,
            expected: MAGIC_IMAGES,
        });
    }
    let n = buf.get_u32() as usize;
    let h = buf.get_u32() as usize;
    let w = buf.get_u32() as usize;
    // Zero-sized images would make `need` collapse to 0 below, letting an
    // arbitrary `n` bypass the payload check and drive a huge allocation.
    if n > 0 && (h == 0 || w == 0) {
        return Err(IdxError::Truncated {
            expected: n,
            got: 0,
        });
    }
    let need = n
        .checked_mul(h)
        .and_then(|x| x.checked_mul(w))
        .unwrap_or(usize::MAX);
    if buf.remaining() < need {
        return Err(IdxError::Truncated {
            expected: need,
            got: buf.remaining(),
        });
    }
    let mut images = Vec::with_capacity(n);
    for _ in 0..n {
        let pixels: Vec<f32> = buf
            .take(h * w)
            .iter()
            .map(|&b| f32::from(b) / 255.0)
            .collect();
        images.push(Image::new(w, h, pixels, 0));
    }
    Ok(images)
}

/// Parses an IDX1 label vector from raw bytes.
///
/// # Errors
///
/// Returns [`IdxError::BadMagic`] or [`IdxError::Truncated`] on malformed
/// input.
pub fn parse_labels(raw: &[u8]) -> Result<Vec<u8>, IdxError> {
    let mut buf = BeCursor::new(raw);
    if buf.remaining() < 8 {
        return Err(IdxError::Truncated {
            expected: 8,
            got: buf.remaining(),
        });
    }
    let magic = buf.get_u32();
    if magic != MAGIC_LABELS {
        return Err(IdxError::BadMagic {
            found: magic,
            expected: MAGIC_LABELS,
        });
    }
    let n = buf.get_u32() as usize;
    if buf.remaining() < n {
        return Err(IdxError::Truncated {
            expected: n,
            got: buf.remaining(),
        });
    }
    Ok(buf.take(n).to_vec())
}

/// Loads and parses an IDX3 image file.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load_images<P: AsRef<Path>>(path: P) -> Result<Vec<Image>, IdxError> {
    parse_images(&fs::read(path)?)
}

/// Loads and parses an IDX1 label file.
///
/// # Errors
///
/// Propagates I/O and parse errors.
pub fn load_labels<P: AsRef<Path>>(path: P) -> Result<Vec<u8>, IdxError> {
    parse_labels(&fs::read(path)?)
}

/// A loaded MNIST-style dataset (train + test splits).
#[derive(Debug, Clone)]
pub struct Mnist {
    /// Training images with labels applied.
    pub train: Vec<Image>,
    /// Test images with labels applied.
    pub test: Vec<Image>,
}

impl Mnist {
    /// Loads the four standard MNIST files from a directory
    /// (`train-images-idx3-ubyte`, `train-labels-idx1-ubyte`,
    /// `t10k-images-idx3-ubyte`, `t10k-labels-idx1-ubyte`).
    ///
    /// # Errors
    ///
    /// Fails if any file is missing/malformed or image and label counts
    /// disagree.
    pub fn load<P: AsRef<Path>>(dir: P) -> Result<Self, IdxError> {
        let dir = dir.as_ref();
        let train = Self::load_split(
            &dir.join("train-images-idx3-ubyte"),
            &dir.join("train-labels-idx1-ubyte"),
        )?;
        let test = Self::load_split(
            &dir.join("t10k-images-idx3-ubyte"),
            &dir.join("t10k-labels-idx1-ubyte"),
        )?;
        Ok(Mnist { train, test })
    }

    fn load_split(images: &Path, labels: &Path) -> Result<Vec<Image>, IdxError> {
        let mut imgs = load_images(images)?;
        let labs = load_labels(labels)?;
        if imgs.len() != labs.len() {
            return Err(IdxError::CountMismatch {
                images: imgs.len(),
                labels: labs.len(),
            });
        }
        for (img, lab) in imgs.iter_mut().zip(labs) {
            img.label = lab;
        }
        Ok(imgs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_idx_images(n: u32, h: u32, w: u32, fill: u8) -> Vec<u8> {
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        raw.extend_from_slice(&n.to_be_bytes());
        raw.extend_from_slice(&h.to_be_bytes());
        raw.extend_from_slice(&w.to_be_bytes());
        raw.extend(std::iter::repeat_n(fill, (n * h * w) as usize));
        raw
    }

    fn make_idx_labels(labels: &[u8]) -> Vec<u8> {
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC_LABELS.to_be_bytes());
        raw.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        raw.extend_from_slice(labels);
        raw
    }

    #[test]
    fn roundtrip_images() {
        let raw = make_idx_images(3, 4, 5, 255);
        let imgs = parse_images(&raw).unwrap();
        assert_eq!(imgs.len(), 3);
        assert_eq!(imgs[0].width(), 5);
        assert_eq!(imgs[0].height(), 4);
        assert_eq!(imgs[0].get(0, 0), 1.0, "255 maps to intensity 1.0");
    }

    #[test]
    fn roundtrip_labels() {
        let raw = make_idx_labels(&[3, 1, 4, 1, 5]);
        assert_eq!(parse_labels(&raw).unwrap(), vec![3, 1, 4, 1, 5]);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = make_idx_images(1, 2, 2, 0);
        raw[3] = 0x99;
        assert!(matches!(parse_images(&raw), Err(IdxError::BadMagic { .. })));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut raw = make_idx_images(2, 4, 4, 7);
        raw.truncate(raw.len() - 5);
        assert!(matches!(
            parse_images(&raw),
            Err(IdxError::Truncated { .. })
        ));
    }

    #[test]
    fn zero_dimension_with_nonzero_count_rejected() {
        // Malicious header: n = u32::MAX, h = w = 0 — the declared payload
        // is 0 bytes, so without an explicit guard the parser would try to
        // materialise 4.3 billion empty images.
        let mut raw = Vec::new();
        raw.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        raw.extend_from_slice(&u32::MAX.to_be_bytes());
        raw.extend_from_slice(&0u32.to_be_bytes());
        raw.extend_from_slice(&0u32.to_be_bytes());
        assert!(matches!(
            parse_images(&raw),
            Err(IdxError::Truncated { .. })
        ));
        // n = 0 with zero dimensions stays valid (an empty tensor).
        let empty = make_idx_images(0, 0, 0, 0);
        assert_eq!(parse_images(&empty).unwrap().len(), 0);
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            parse_images(&[0, 0]),
            Err(IdxError::Truncated { .. })
        ));
        assert!(matches!(
            parse_labels(&[0, 0]),
            Err(IdxError::Truncated { .. })
        ));
    }

    #[test]
    fn labels_magic_checked() {
        let raw = make_idx_images(1, 1, 1, 0);
        assert!(matches!(parse_labels(&raw), Err(IdxError::BadMagic { .. })));
    }

    #[test]
    fn mnist_load_from_tempdir() {
        let dir = std::env::temp_dir().join(format!("snn-data-idx-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("train-images-idx3-ubyte"),
            make_idx_images(2, 2, 2, 128),
        )
        .unwrap();
        fs::write(
            dir.join("train-labels-idx1-ubyte"),
            make_idx_labels(&[1, 2]),
        )
        .unwrap();
        fs::write(
            dir.join("t10k-images-idx3-ubyte"),
            make_idx_images(1, 2, 2, 64),
        )
        .unwrap();
        fs::write(dir.join("t10k-labels-idx1-ubyte"), make_idx_labels(&[7])).unwrap();
        let mnist = Mnist::load(&dir).unwrap();
        assert_eq!(mnist.train.len(), 2);
        assert_eq!(mnist.train[0].label, 1);
        assert_eq!(mnist.train[1].label, 2);
        assert_eq!(mnist.test[0].label, 7);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn count_mismatch_detected() {
        let dir =
            std::env::temp_dir().join(format!("snn-data-idx-mismatch-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("train-images-idx3-ubyte"),
            make_idx_images(2, 2, 2, 0),
        )
        .unwrap();
        fs::write(dir.join("train-labels-idx1-ubyte"), make_idx_labels(&[1])).unwrap();
        fs::write(
            dir.join("t10k-images-idx3-ubyte"),
            make_idx_images(1, 2, 2, 0),
        )
        .unwrap();
        fs::write(dir.join("t10k-labels-idx1-ubyte"), make_idx_labels(&[7])).unwrap();
        assert!(matches!(
            Mnist::load(&dir),
            Err(IdxError::CountMismatch { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_messages() {
        let e = IdxError::BadMagic {
            found: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("bad idx magic"));
        let e = IdxError::CountMismatch {
            images: 5,
            labels: 4,
        };
        assert!(e.to_string().contains('5'));
    }
}
