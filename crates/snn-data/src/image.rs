//! Grayscale images with labels.

use serde::{Deserialize, Serialize};

/// Side length of the MNIST-compatible image grid.
pub const IMAGE_SIDE: usize = 28;

/// A labelled grayscale image with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<f32>,
    /// Class label (digit 0–9 for the MNIST-like datasets).
    pub label: u8,
}

impl Image {
    /// Creates an image from a pixel buffer.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    pub fn new(width: usize, height: usize, pixels: Vec<f32>, label: u8) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        Image {
            width,
            height,
            pixels,
            label,
        }
    }

    /// A black (all-zero) image.
    pub fn black(width: usize, height: usize, label: u8) -> Self {
        Image::new(width, height, vec![0.0; width * height], label)
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// True for a zero-sized image.
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Intensity at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.pixels[y * self.width + x]
    }

    /// Sets the intensity at `(x, y)`, clamped to `[0, 1]`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.pixels[y * self.width + x] = v.clamp(0.0, 1.0);
    }

    /// The row-major intensity buffer — the input-layer rate vector.
    pub fn pixels(&self) -> &[f32] {
        &self.pixels
    }

    /// Mean intensity over all pixels.
    pub fn mean_intensity(&self) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().sum::<f32>() / self.pixels.len() as f32
    }

    /// Fraction of pixels brighter than `threshold`.
    pub fn ink_fraction(&self, threshold: f32) -> f32 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let n = self.pixels.iter().filter(|&&p| p > threshold).count();
        n as f32 / self.pixels.len() as f32
    }

    /// Normalised overlap with another image of the same shape
    /// (cosine similarity of the pixel vectors). Used by tests to verify
    /// the synthetic dataset keeps intra-class similarity above
    /// inter-class similarity.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn cosine_similarity(&self, other: &Image) -> f32 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let dot: f32 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| a * b)
            .sum();
        let na: f32 = self.pixels.iter().map(|a| a * a).sum::<f32>().sqrt();
        let nb: f32 = other.pixels.iter().map(|b| b * b).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    /// Downsamples by an integer `factor` using box averaging. Used by
    /// tests and fast experiment profiles to shrink the input layer
    /// (e.g. 28×28 → 14×14) while keeping class structure.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or does not divide both dimensions.
    pub fn downsample(&self, factor: usize) -> Image {
        assert!(factor > 0, "factor must be positive");
        assert!(
            self.width.is_multiple_of(factor) && self.height.is_multiple_of(factor),
            "factor must divide both dimensions"
        );
        let (w, h) = (self.width / factor, self.height / factor);
        let mut pixels = vec![0.0f32; w * h];
        let norm = (factor * factor) as f32;
        for y in 0..h {
            for x in 0..w {
                let mut sum = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        sum += self.get(x * factor + dx, y * factor + dy);
                    }
                }
                pixels[y * w + x] = sum / norm;
            }
        }
        Image::new(w, h, pixels, self.label)
    }

    /// Renders the image as ASCII art (for debugging and examples).
    pub fn to_ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let v = self.get(x, y).clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_size() {
        let img = Image::new(2, 3, vec![0.0; 6], 7);
        assert_eq!(img.width(), 2);
        assert_eq!(img.height(), 3);
        assert_eq!(img.label, 7);
    }

    #[test]
    #[should_panic(expected = "pixel buffer size mismatch")]
    fn new_panics_on_bad_size() {
        let _ = Image::new(2, 3, vec![0.0; 5], 0);
    }

    #[test]
    fn set_clamps() {
        let mut img = Image::black(2, 2, 0);
        img.set(0, 0, 3.0);
        img.set(1, 1, -1.0);
        assert_eq!(img.get(0, 0), 1.0);
        assert_eq!(img.get(1, 1), 0.0);
    }

    #[test]
    fn mean_and_ink() {
        let img = Image::new(2, 2, vec![0.0, 1.0, 1.0, 0.0], 0);
        assert!((img.mean_intensity() - 0.5).abs() < 1e-6);
        assert!((img.ink_fraction(0.5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = Image::new(2, 2, vec![1.0, 0.0, 0.0, 0.0], 0);
        let b = Image::new(2, 2, vec![1.0, 0.0, 0.0, 0.0], 0);
        let c = Image::new(2, 2, vec![0.0, 1.0, 0.0, 0.0], 0);
        assert!((a.cosine_similarity(&b) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine_similarity(&c), 0.0);
        let z = Image::black(2, 2, 0);
        assert_eq!(a.cosine_similarity(&z), 0.0);
    }

    #[test]
    fn ascii_has_one_row_per_line() {
        let img = Image::black(4, 3, 0);
        assert_eq!(img.to_ascii().lines().count(), 3);
    }

    #[test]
    fn downsample_box_averages() {
        let img = Image::new(4, 2, vec![1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0], 3);
        let small = img.downsample(2);
        assert_eq!(small.width(), 2);
        assert_eq!(small.height(), 1);
        assert_eq!(small.label, 3);
        assert!((small.get(0, 0) - 1.0).abs() < 1e-6);
        assert!((small.get(1, 0) - 0.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "divide both dimensions")]
    fn downsample_rejects_nondivisor() {
        let _ = Image::black(4, 4, 0).downsample(3);
    }
}
